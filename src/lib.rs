//! # nanobench — a reproduction of nanoBench (ISPASS 2020) in Rust
//!
//! This façade crate re-exports the whole workspace: the nanoBench tool
//! itself ([`nanobench_core`]), the simulated x86 machine it runs on, and
//! the two case-study toolkits from the paper.
//!
//! See the repository `README.md` for a guided tour, and `DESIGN.md` for
//! the system inventory and experiment index.

#![warn(missing_docs)]

pub use nanobench_analysis as analysis;
pub use nanobench_cache as cache;
pub use nanobench_cache_tools as cache_tools;
pub use nanobench_core as nb;
pub use nanobench_inst_tools as inst_tools;
pub use nanobench_machine as machine;
pub use nanobench_pmu as pmu;
pub use nanobench_store as store;
pub use nanobench_uarch as uarch;
pub use nanobench_x86 as x86;
