//! §III-D: the kernel-space version can benchmark privileged instructions;
//! the user-space version faults on them.
//!
//! Run with `cargo run --example kernel_vs_user`.

use nanobench::nb::shell::{kernel_nanobench, user_nanobench};
use nanobench::uarch::port::MicroArch;

fn main() {
    let opts = r#"-asm "wbinvd" -unroll_count 1 -n_measurements 3"#;
    println!("kernel-nanoBench.sh -asm \"wbinvd\" ...");
    match kernel_nanobench(MicroArch::Skylake, opts) {
        Ok(out) => println!("  ok; core cycles: {:.0}", out.core_cycles().unwrap_or(0.0)),
        Err(e) => println!("  unexpected error: {e}"),
    }
    println!("nanoBench.sh -asm \"wbinvd\" ... (user space)");
    match user_nanobench(MicroArch::Skylake, opts) {
        Ok(_) => println!("  unexpectedly succeeded!"),
        Err(e) => println!("  faults as expected: {e}"),
    }
}
