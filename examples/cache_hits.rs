//! cacheSeq (§VI-C): measuring the hits and misses of a hand-written
//! access sequence against a specific cache set, using the paper's
//! sequence notation.
//!
//! Run with `cargo run --example cache_hits`.

use nanobench::cache::presets::cpu_by_microarch;
use nanobench::cache_tools::{AccessSeq, CacheSeq, Level};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cpu = cpu_by_microarch("Skylake").expect("Skylake preset");
    let mut cs = CacheSeq::new(&cpu, Level::L1, 3, None, 12, 7)?;

    // `?` marks an access as included in the measurement; the leading
    // <WBINVD> flushes all caches (a privileged instruction — cacheSeq
    // always uses the kernel-space version of nanoBench).
    for text in [
        "<WBINVD> B0? B0?",                        // miss, then hit
        "<WBINVD> B0 B1 B2 B3 B0?",                // still resident (8 ways)
        "<WBINVD> B0 B1 B2 B3 B4 B5 B6 B7 B8 B0?", // 9 blocks overflow the set
    ] {
        let seq = AccessSeq::parse(text).map_err(std::io::Error::other)?;
        let hits = cs.run_hits(&seq)?;
        println!("{text:<46} -> {hits} measured hit(s)");
    }
    Ok(())
}
