//! Case study I (§V): measuring latency, throughput and port usage of a
//! few instructions, like uops.info does — including a privileged
//! instruction, which only the kernel-space version can benchmark.
//!
//! Run with `cargo run --example port_usage`.

use nanobench::inst_tools::{measure_instruction, InstSpec};
use nanobench::uarch::port::MicroArch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let specs = vec![
        InstSpec::new(
            "ADD (r64, r64)",
            Some("add rax, rax"),
            "add rax, rax; add rbx, rbx; add rcx, rcx; add rdx, rdx",
            4,
        ),
        InstSpec::new(
            "MOV load (r64, m64)",
            Some("mov r14, [r14]"),
            "mov rax, [r14]; mov rbx, [r14+64]; mov rcx, [r14+128]; mov rdx, [r14+192]",
            4,
        )
        .with_init("mov [r14], r14"),
        InstSpec::new(
            "IMUL (r64, r64)",
            Some("imul rax, rax"),
            "imul rax, rax; imul rbx, rbx; imul rcx, rcx; imul rdx, rdx",
            4,
        ),
        // Privileged: needs the kernel-space version (§III-D).
        InstSpec::new("RDMSR (APERF)", None, "rdmsr", 1).with_init("mov rcx, 0xE8; mov rdx, 0"),
    ];
    println!("{:<22} {:>6} {:>8}  Ports", "Instruction", "Lat", "TP");
    for spec in &specs {
        let m = measure_instruction(MicroArch::Skylake, spec)?;
        let lat = m
            .latency
            .map_or_else(|| "-".to_string(), |l| format!("{l:.1}"));
        println!(
            "{:<22} {:>6} {:>8.2}  {}",
            m.name,
            lat,
            m.throughput,
            m.port_usage_string()
        );
    }
    Ok(())
}
