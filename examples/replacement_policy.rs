//! Case study II (§VI): inferring the replacement policy of a cache with
//! the random-sequence fitting tool, exactly as Table I was produced.
//!
//! Run with `cargo run --release --example replacement_policy`.

use nanobench::cache::presets::cpu_by_microarch;
use nanobench::cache_tools::{
    fit_policy, infer_permutation_policy, CacheSeq, Level, PermInferResult,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cpu = cpu_by_microarch("Skylake").expect("Skylake preset");

    // Tool 1 (§VI-C1): permutation-policy inference on the L1.
    let mut cs = CacheSeq::new(&cpu, Level::L1, 7, None, 2 * cpu.l1_assoc + 2, 1)?;
    match infer_permutation_policy(&mut cs, cpu.l1_assoc)? {
        PermInferResult::Named { name, .. } => {
            println!("L1 permutation inference: {name} (Table I says PLRU)");
        }
        other => println!("L1 inference: {other:?}"),
    }

    // Tool 2 (§VI-C1): candidate fitting on the L2 (a QLRU variant on
    // Skylake, which tool 1 would reject as non-permutation).
    let mut cs = CacheSeq::new(&cpu, Level::L2, 33, None, cpu.l2_assoc + 4, 2)?;
    let fit = fit_policy(&mut cs, cpu.l2_assoc, 80, 3)?;
    println!(
        "L2 candidate fitting:     {} after {} random sequences (Table I says QLRU_H00_M1_R2_U1)",
        fit.summary(),
        fit.sequences_tested
    );
    Ok(())
}
