//! Quickstart: the paper's §III-A example — measuring the L1 data cache
//! latency with one nanoBench call.
//!
//! Run with `cargo run --example quickstart`.

use nanobench::nb::NanoBench;
use nanobench::uarch::port::MicroArch;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Equivalent to:
    //   ./nanoBench.sh -asm "mov R14, [R14]"
    //                  -asm_init "mov [R14], R14"
    //                  -config cfg_Skylake.txt
    let mut nb = NanoBench::kernel(MicroArch::Skylake);
    let result = nb
        .asm("mov R14, [R14]")?
        .asm_init("mov [R14], R14")?
        .config_str(nanobench::pmu::config::cfg_skylake())?
        .unroll_count(100)
        .warm_up_count(2)
        .run()?;

    print!("{result}");
    println!();
    println!(
        "L1 data cache latency: {} cycles",
        result.core_cycles().expect("core cycles measured")
    );
    Ok(())
}
