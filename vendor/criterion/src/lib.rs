//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no network access, so this path dependency
//! stands in for crates.io `criterion`. It keeps the same bench-authoring
//! surface — [`Criterion`], `benchmark_group`, `bench_function`,
//! [`Bencher::iter`], [`criterion_group!`]/[`criterion_main!`], and
//! [`black_box`] — but replaces the statistical machinery with a simple
//! warm-up + timed-samples loop that prints mean/min/max per benchmark.
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets), each benchmark body runs once, so the
//! bench doubles as a smoke test.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }

    /// Registers a standalone benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_one(id, sample_size, test_mode, f);
        self
    }
}

/// A group of benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(id, sample_size, self.criterion.test_mode, f);
        self
    }

    /// Finishes the group (a no-op in this shim; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, test_mode: bool, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: if test_mode { 1 } else { sample_size.max(1) },
        warm_up: !test_mode,
    };
    f(&mut b);
    if test_mode {
        println!("  {id}: ok (test mode)");
        return;
    }
    let n = b.samples.len().max(1) as f64;
    let total: Duration = b.samples.iter().sum();
    let mean = total.as_secs_f64() / n;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "  {id}: mean {:.3} ms, min {:.3} ms, max {:.3} ms ({} samples)",
        mean * 1e3,
        min.as_secs_f64() * 1e3,
        max.as_secs_f64() * 1e3,
        b.samples.len(),
    );
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: usize,
    warm_up: bool,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording one timing sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.warm_up {
            black_box(routine());
        }
        for _ in 0..self.iters_per_sample {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
