//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The build environment has no network access, so this path dependency
//! stands in for crates.io `serde`. It provides a [`Serialize`] trait built
//! around a self-describing [`Value`] tree; `serde_json` (the sibling shim)
//! renders that tree. The derive macro is not provided — the one workspace
//! type that serializes ([`TableRow`] in `nanobench-inst-tools`) implements
//! [`Serialize`] by hand.
//!
//! [`TableRow`]: ../nanobench_inst_tools/table/struct.TableRow.html

/// A self-describing serialized value (the data model `serde_json` renders).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (serialized without a decimal point).
    UInt(u64),
    /// A float (always serialized with a decimal point, like serde_json).
    Float(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered map (field order is preserved).
    Object(Vec<(String, Value)>),
}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serde data model.
    fn to_value(&self) -> Value;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_num {
    ($variant:ident, $as:ty, $($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $as)
            }
        }
    )*};
}
impl_serialize_num!(UInt, u64, u8, u16, u32, u64, usize);
impl_serialize_num!(Int, i64, i8, i16, i32, i64, isize);
impl_serialize_num!(Float, f64, f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
