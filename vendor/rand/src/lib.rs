//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access, so instead of the crates.io
//! `rand` this path dependency provides the same trait/type names backed by a
//! deterministic xoshiro256++ generator: [`rngs::SmallRng`], the [`Rng`] and
//! [`SeedableRng`] traits, `gen`, `gen_range`, `gen_bool`, and `fill_bytes`.
//! Streams are fully deterministic per seed, which is exactly what the
//! simulation wants (the real `SmallRng` makes the same promise).

/// Low-level source of randomness: the subset of `rand_core::RngCore` needed
/// by the [`Rng`] extension trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (splitmix64 key expansion,
    /// matching the spirit of `rand`'s `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from a `Range` / `RangeInclusive`.
pub trait SampleUniform: Copy {
    /// Draws a value in `[low, high]` (inclusive bounds).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as u128) - (low as u128) + 1;
                // Multiply-shift mapping of a 64-bit draw onto the span:
                // negligible bias for the span sizes used in simulation.
                let draw = rng.next_u64() as u128;
                low + ((draw * span) >> 64) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128) - (low as i128);
                let off = <$u>::sample_inclusive(rng, 0, span as $u);
                ((low as i128) + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + num_helpers::One + core::ops::Sub<Output = T>> SampleRange<T>
    for core::ops::Range<T>
{
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_inclusive(rng, self.start, self.end - num_helpers::One::one())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range on empty range");
        T::sample_inclusive(rng, low, high)
    }
}

mod num_helpers {
    /// Internal: the multiplicative identity, so `Range<T>` can shift its
    /// exclusive upper bound to an inclusive one.
    pub trait One {
        fn one() -> Self;
    }
    macro_rules! impl_one {
        ($($t:ty),*) => {$(impl One for $t { fn one() -> Self { 1 as $t } })*};
    }
    impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, like `rand`'s `Standard`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic small-state generator (xoshiro256++), standing in for
    /// `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut key = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut key);
            }
            // xoshiro's all-zero state is a fixed point; splitmix64 never
            // produces four zero words from any key, but stay defensive.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let x: i64 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&x));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
