//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`] and [`to_string_pretty`] over the sibling `serde` shim's
//! `Serialize` trait.

use serde::{Serialize, Value};

/// Renders `value` as compact JSON. Infallible in this shim (the data model
/// is already a tree), but keeps `serde_json`'s `Result` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders `value` as pretty-printed JSON (two-space indent, like
/// `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialization error. The shim never produces one; the type exists so call
/// sites written against real `serde_json` compile unchanged.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&format!("{n}")),
        Value::UInt(n) => out.push_str(&format!("{n}")),
        Value::Float(n) => write_float(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, write_value, '[', ']'),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            |out, (k, v), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, d);
            },
            '{',
            '}',
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    mut write_item: F,
    open: char,
    close: char,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, Option<usize>, usize),
{
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, n: f64) {
    if !n.is_finite() {
        // serde_json rejects non-finite floats; the shim emits null instead.
        out.push_str("null");
    } else {
        // `{:?}` keeps the trailing `.0` on integral floats, like serde_json.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use serde::Value;

    #[test]
    fn pretty_prints_nested_objects() {
        let v = Value::Array(vec![Value::Object(vec![
            ("name".into(), Value::String("add".into())),
            ("lat".into(), Value::Float(1.0)),
        ])]);
        let s = super::to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "[\n  {\n    \"name\": \"add\",\n    \"lat\": 1.0\n  }\n]"
        );
    }

    #[test]
    fn escapes_strings() {
        let s = super::to_string(&Value::String("a\"b\n".into())).unwrap();
        assert_eq!(s, "\"a\\\"b\\n\"");
    }
}
