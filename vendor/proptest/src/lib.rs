//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no network access, so this path dependency
//! stands in for crates.io `proptest`. It keeps the same surface syntax —
//! the [`proptest!`] macro with `pattern in strategy` bindings, the
//! [`Strategy`] trait, [`Just`], [`prop_oneof!`], `collection::vec`, and
//! the `prop_assert*` macros — but replaces proptest's shrinking machinery
//! with plain random generation: each test body runs for a fixed number of
//! cases (256) drawn from a deterministic per-test RNG. Failures report the
//! case number instead of a shrunk minimal input.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies. Deterministic per test-case index.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Creates the RNG for one test case.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        // Stable hash of the test name so different tests get different
        // streams; FNV-1a is enough.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }
}

/// Number of random cases each `proptest!` test body runs.
pub const CASES: u64 = 256;

/// A generator of test inputs, mirroring `proptest::strategy::Strategy`
/// (minus shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

/// Object-safe form of [`Strategy`]; implemented automatically.
pub trait DynStrategy<T> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate_dyn(rng)
    }
}

/// A strategy that always yields a clone of one value
/// (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy choosing uniformly among type-erased alternatives; what
/// [`prop_oneof!`] builds.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
        let idx = rng.below(self.0.len());
        self.0[idx].generate(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// Builds a [`VecStrategy`]: `vec(element, 1..120)` yields vectors of
    /// 1 to 119 elements.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy {
            element,
            min: size.start,
            max_exclusive: size.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below(self.max_exclusive - self.min);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` caller expects in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, Strategy};
}

/// Chooses uniformly among the listed strategies (all must share a `Value`
/// type). Weighted variants of the real macro are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for [`CASES`] deterministic random
/// cases. A panicking case is re-raised with its case number in the message.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest {} failed at case {}/{}",
                            stringify!($name),
                            case,
                            $crate::CASES,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u64..10, v in collection::vec(0usize..3, 1..5)) {
            prop_assert!(x < 10);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        #[test]
        fn oneof_hits_every_branch(choices in collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..60)) {
            prop_assert!(choices.iter().all(|&c| c == 1 || c == 2));
        }
    }
}
