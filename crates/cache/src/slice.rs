//! The undocumented hash function mapping physical addresses to L3 slices.
//!
//! Starting with Sandy Bridge, the last-level cache is divided into slices
//! managed by C-Boxes (§VI-A). The mapping from physical address to slice is
//! an undocumented XOR-based hash that several papers reverse engineered
//! (Hund et al., Maurice et al.; refs [32, 35] in the paper). We use the
//! published Sandy Bridge bit masks, which is what the paper's
//! address-generation tools rely on.

/// XOR mask for slice-selection bit 0 (physical address bits).
const SLICE_BIT0_MASK: u64 =
    bits(&[18, 19, 21, 23, 25, 27, 29, 30, 31, 32]) | bits(&[6, 10, 12, 14, 16, 17]);

/// XOR mask for slice-selection bit 1.
const SLICE_BIT1_MASK: u64 =
    bits(&[17, 19, 20, 21, 22, 23, 24, 26, 28, 29, 31, 33]) | bits(&[7, 11, 13, 15]);

/// XOR mask for slice-selection bit 2 (8-slice parts).
const SLICE_BIT2_MASK: u64 = bits(&[8, 12, 16, 18, 20, 22, 24, 25, 26, 27, 28, 30, 32, 33]);

const fn bits(positions: &[u32]) -> u64 {
    let mut mask = 0u64;
    let mut i = 0;
    while i < positions.len() {
        mask |= 1u64 << positions[i];
        i += 1;
    }
    mask
}

/// Computes the parity of `value & mask`.
fn parity(value: u64, mask: u64) -> u64 {
    ((value & mask).count_ones() & 1) as u64
}

/// The slice-selection hash.
///
/// `num_slices` must be 1, 2, 4 or 8; for 1 the function returns 0 (the
/// pre-Sandy-Bridge unsliced organization of Nehalem/Westmere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceHash {
    num_slices: usize,
}

impl SliceHash {
    /// Creates a hash for the given slice count.
    ///
    /// # Panics
    ///
    /// Panics if `num_slices` is not 1, 2, 4 or 8.
    pub fn new(num_slices: usize) -> SliceHash {
        assert!(
            matches!(num_slices, 1 | 2 | 4 | 8),
            "slice count must be 1, 2, 4 or 8 (got {num_slices})"
        );
        SliceHash { num_slices }
    }

    /// Number of slices.
    pub fn num_slices(self) -> usize {
        self.num_slices
    }

    /// Maps a physical address to its slice.
    pub fn slice_of(self, paddr: u64) -> usize {
        match self.num_slices {
            1 => 0,
            2 => parity(paddr, SLICE_BIT0_MASK) as usize,
            4 => (parity(paddr, SLICE_BIT0_MASK) | (parity(paddr, SLICE_BIT1_MASK) << 1)) as usize,
            8 => {
                (parity(paddr, SLICE_BIT0_MASK)
                    | (parity(paddr, SLICE_BIT1_MASK) << 1)
                    | (parity(paddr, SLICE_BIT2_MASK) << 2)) as usize
            }
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_of_is_stable_and_in_range() {
        for slices in [1usize, 2, 4, 8] {
            let h = SliceHash::new(slices);
            for i in 0..4096u64 {
                let paddr = i * 64;
                let s = h.slice_of(paddr);
                assert!(s < slices);
                assert_eq!(s, h.slice_of(paddr), "hash must be deterministic");
            }
        }
    }

    #[test]
    fn slices_are_roughly_balanced() {
        let h = SliceHash::new(4);
        let mut counts = [0usize; 4];
        for i in 0..65536u64 {
            counts[h.slice_of(i * 64)] += 1;
        }
        for &c in &counts {
            assert!(
                (14000..19000).contains(&c),
                "unbalanced slice distribution: {counts:?}"
            );
        }
    }

    #[test]
    fn set_bits_influence_slice() {
        // §VI-D discusses that (contrary to an earlier claim in the
        // literature) the set-index bits DO influence the slice for
        // power-of-two core counts; our hash includes bits below 17.
        let h = SliceHash::new(2);
        let differing = (0..64u64)
            .filter(|i| h.slice_of(i * 64) != h.slice_of((i + 64) * 64))
            .count();
        assert!(differing > 0, "set-index bits must affect the slice hash");
    }

    #[test]
    #[should_panic(expected = "slice count")]
    fn bad_slice_count_panics() {
        let _ = SliceHash::new(3);
    }
}
