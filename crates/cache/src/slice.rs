//! The undocumented hash function mapping physical addresses to L3 slices.
//!
//! Starting with Sandy Bridge, the last-level cache is divided into slices
//! managed by C-Boxes (§VI-A). The mapping from physical address to slice is
//! an undocumented XOR-based hash that several papers reverse engineered
//! (Hund et al., Maurice et al.; refs [32, 35] in the paper). We use the
//! published Sandy Bridge bit masks, which is what the paper's
//! address-generation tools rely on.

/// XOR mask for slice-selection bit 0 (physical address bits).
const SLICE_BIT0_MASK: u64 =
    bits(&[18, 19, 21, 23, 25, 27, 29, 30, 31, 32]) | bits(&[6, 10, 12, 14, 16, 17]);

/// XOR mask for slice-selection bit 1.
const SLICE_BIT1_MASK: u64 =
    bits(&[17, 19, 20, 21, 22, 23, 24, 26, 28, 29, 31, 33]) | bits(&[7, 11, 13, 15]);

/// XOR mask for slice-selection bit 2 (8-slice parts).
const SLICE_BIT2_MASK: u64 = bits(&[8, 12, 16, 18, 20, 22, 24, 25, 26, 27, 28, 30, 32, 33]);

const fn bits(positions: &[u32]) -> u64 {
    let mut mask = 0u64;
    let mut i = 0;
    while i < positions.len() {
        mask |= 1u64 << positions[i];
        i += 1;
    }
    mask
}

/// Computes the parity of `value & mask`.
fn parity(value: u64, mask: u64) -> u64 {
    ((value & mask).count_ones() & 1) as u64
}

/// Error for slice counts the hash cannot represent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceHashError {
    /// The rejected slice count.
    pub num_slices: usize,
}

impl std::fmt::Display for SliceHashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "slice count must be between 1 and 8 (got {})",
            self.num_slices
        )
    }
}

impl std::error::Error for SliceHashError {}

/// The slice-selection hash.
///
/// `num_slices` must be between 1 and 8. For 1 the function returns 0 (the
/// pre-Sandy-Bridge unsliced organization of Nehalem/Westmere); powers of
/// two use the low bits of the XOR hash directly; other counts (e.g. the
/// six C-Boxes of the i7-8700K) reduce the full 3-bit hash modulo the
/// slice count, which is deterministic but slightly unbalanced — the real
/// non-power-of-two hash is unpublished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceHash {
    num_slices: usize,
}

impl SliceHash {
    /// Creates a hash for the given slice count.
    ///
    /// # Errors
    ///
    /// Returns [`SliceHashError`] if `num_slices` is 0 or greater than 8.
    pub fn new(num_slices: usize) -> Result<SliceHash, SliceHashError> {
        if (1..=8).contains(&num_slices) {
            Ok(SliceHash { num_slices })
        } else {
            Err(SliceHashError { num_slices })
        }
    }

    /// Number of slices.
    pub fn num_slices(self) -> usize {
        self.num_slices
    }

    /// Maps a physical address to its slice.
    pub fn slice_of(self, paddr: u64) -> usize {
        match self.num_slices {
            1 => 0,
            2 => parity(paddr, SLICE_BIT0_MASK) as usize,
            4 => (parity(paddr, SLICE_BIT0_MASK) | (parity(paddr, SLICE_BIT1_MASK) << 1)) as usize,
            // 5..=8 reduce the full 3-bit hash; for 8 the reduction is the
            // identity, so this is also the plain 8-slice hash.
            n => {
                let h3 = (parity(paddr, SLICE_BIT0_MASK)
                    | (parity(paddr, SLICE_BIT1_MASK) << 1)
                    | (parity(paddr, SLICE_BIT2_MASK) << 2)) as usize;
                h3 % n
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_of_is_stable_and_in_range() {
        for slices in 1usize..=8 {
            let h = SliceHash::new(slices).unwrap();
            for i in 0..4096u64 {
                let paddr = i * 64;
                let s = h.slice_of(paddr);
                assert!(s < slices);
                assert_eq!(s, h.slice_of(paddr), "hash must be deterministic");
            }
        }
    }

    #[test]
    fn slices_are_roughly_balanced() {
        let h = SliceHash::new(4).unwrap();
        let mut counts = [0usize; 4];
        for i in 0..65536u64 {
            counts[h.slice_of(i * 64)] += 1;
        }
        for &c in &counts {
            assert!(
                (14000..19000).contains(&c),
                "unbalanced slice distribution: {counts:?}"
            );
        }
    }

    #[test]
    fn set_bits_influence_slice() {
        // §VI-D discusses that (contrary to an earlier claim in the
        // literature) the set-index bits DO influence the slice for
        // power-of-two core counts; our hash includes bits below 17.
        let h = SliceHash::new(2).unwrap();
        let differing = (0..64u64)
            .filter(|i| h.slice_of(i * 64) != h.slice_of((i + 64) * 64))
            .count();
        assert!(differing > 0, "set-index bits must affect the slice hash");
    }

    #[test]
    fn six_slices_reduce_the_three_bit_hash() {
        // The i7-8700K case: six C-Boxes. The reduced hash must agree with
        // the full 3-bit hash wherever that hash is already in range, so
        // power-of-two behaviour is a strict restriction of it.
        let h6 = SliceHash::new(6).unwrap();
        let h8 = SliceHash::new(8).unwrap();
        for i in 0..4096u64 {
            let paddr = i * 64;
            assert_eq!(h6.slice_of(paddr), h8.slice_of(paddr) % 6);
        }
        let mut seen = [false; 6];
        for i in 0..65536u64 {
            seen[h6.slice_of(i * 64)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all six slices must be reachable");
    }

    #[test]
    fn bad_slice_count_is_an_error() {
        assert!(SliceHash::new(0).is_err());
        assert!(SliceHash::new(9).is_err());
        assert!(SliceHash::new(3).is_ok());
        let err = SliceHash::new(12).unwrap_err();
        assert!(err.to_string().contains("12"));
    }
}
