//! Cache-hierarchy simulator for the nanoBench reproduction.
//!
//! Implements the memory-hierarchy substrate the paper's case study II
//! (§VI) experiments on: set-associative L1/L2 caches, a sliced L3 with
//! C-Box lookup counters and the undocumented slice-selection hash,
//! hardware prefetchers disableable via MSR 0x1A4, and — most importantly —
//! the full library of replacement policies from §VI-B: permutation
//! policies (LRU, FIFO, PLRU), MRU and its Sandy Bridge variant, the
//! parameterized QLRU family with the paper's naming scheme, and adaptive
//! replacement via set dueling.
//!
//! The ten CPU models of Table I are available as presets ([`presets`]);
//! their configured policies are the ground truth that the inference tools
//! in `nanobench-cache-tools` re-discover.
//!
//! # Examples
//!
//! ```
//! use nanobench_cache::policy::{simulate_sequence, PolicyKind};
//!
//! // Simulate <A B C A> on a 2-way LRU set: all four accesses miss.
//! let hits = simulate_sequence(&PolicyKind::Lru, 2, 0, &[0, 1, 2, 0]);
//! assert!(hits.iter().all(|h| !h));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod policy;
pub mod prefetch;
pub mod presets;
pub mod slice;

pub use cache::{Cache, CacheConfig, CacheStats, LineState, PselCounter, LINE_SIZE};
pub use hierarchy::{
    CacheHierarchy, CoherenceViolation, CoreOutOfRange, HierarchyConfig, HierarchyError, HitLevel,
    L3Config, L3PolicyConfig, Latencies, MemAccessResult, ProtocolMutation, SetRole, SliceLeaders,
    SnoopResult,
};
pub use policy::{PolicyKind, QlruVariant, SetPolicy};
pub use prefetch::{Prefetchers, MSR_MISC_FEATURE_CONTROL};
pub use presets::{cpu_by_microarch, table1_cpus, CpuSpec};
pub use slice::{SliceHash, SliceHashError};
