//! Cache-hierarchy presets for the ten CPUs of Table I.
//!
//! Each preset encodes the cache geometry of the part and — as the
//! simulated "ground truth" — the replacement policies the paper reports
//! for it. The cache-characterization tools (crate
//! `nanobench-cache-tools`) must re-discover these policies blindly; the
//! Table I experiment compares their output against
//! [`CpuSpec::expected_policies`].

use crate::cache::CacheConfig;
use crate::hierarchy::{HierarchyConfig, L3Config, L3PolicyConfig, Latencies, SliceLeaders};
use crate::policy::{HitFunc, InsertAge, PolicyKind, QlruVariant, RVariant, UVariant};

/// KB shorthand.
const KB: u64 = 1024;
/// MB shorthand.
const MB: u64 = 1024 * 1024;

/// Builds a deterministic-insertion QLRU variant (`QLRU_Hxy_Mz_Rr_Uu`).
///
/// The presets construct their ground-truth policies as constants instead
/// of parsing name strings, so a typo in a preset cannot panic when the
/// hierarchy is built; `preset_qlru_constants_match_their_paper_names`
/// pins each constant to the paper's name.
const fn qlru_fixed(
    from3: u8,
    from2: u8,
    insert: u8,
    replace: RVariant,
    update: UVariant,
) -> QlruVariant {
    QlruVariant {
        hit: HitFunc { from3, from2 },
        insert: InsertAge::Fixed(insert),
        replace,
        update,
        umo: false,
    }
}

/// Builds a probabilistic-insertion QLRU variant (`QLRU_Hxy_MRpz_Rr_Uu`).
const fn qlru_prob(
    from3: u8,
    from2: u8,
    p: u32,
    age: u8,
    replace: RVariant,
    update: UVariant,
) -> QlruVariant {
    QlruVariant {
        hit: HitFunc { from3, from2 },
        insert: InsertAge::Probabilistic { p, age },
        replace,
        update,
        umo: false,
    }
}

/// `QLRU_H11_M1_R1_U2` (Ivy Bridge L3 leader A).
const QLRU_H11_M1_R1_U2: QlruVariant = qlru_fixed(1, 1, 1, RVariant::R1, UVariant::U2);
/// `QLRU_H11_MR161_R1_U2` (Ivy Bridge L3 leader B).
const QLRU_H11_MR161_R1_U2: QlruVariant = qlru_prob(1, 1, 16, 1, RVariant::R1, UVariant::U2);
/// `QLRU_H11_M1_R0_U0` (Haswell+ L3 leader A / Skylake+ uniform L3).
const QLRU_H11_M1_R0_U0: QlruVariant = qlru_fixed(1, 1, 1, RVariant::R0, UVariant::U0);
/// `QLRU_H11_MR161_R0_U0` (Haswell/Broadwell L3 leader B).
const QLRU_H11_MR161_R0_U0: QlruVariant = qlru_prob(1, 1, 16, 1, RVariant::R0, UVariant::U0);
/// `QLRU_H00_M1_R2_U1` (Skylake/Kaby/Coffee Lake L2).
const QLRU_H00_M1_R2_U1: QlruVariant = qlru_fixed(0, 0, 1, RVariant::R2, UVariant::U1);
/// `QLRU_H00_M1_R0_U1` (Cannon Lake L2).
const QLRU_H00_M1_R0_U1: QlruVariant = qlru_fixed(0, 0, 1, RVariant::R0, UVariant::U1);

/// A CPU model from Table I.
#[derive(Debug, Clone)]
pub struct CpuSpec {
    /// Marketing name, e.g. `"Core i5-750"`.
    pub model: &'static str,
    /// Microarchitecture name, e.g. `"Nehalem"`.
    pub microarch: &'static str,
    /// Core generation (1 = Nehalem ... 8 = Cannon Lake row).
    pub generation: u8,
    /// L1 data cache size in bytes.
    pub l1_size: u64,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L1 policy.
    pub l1_policy: PolicyKind,
    /// L2 size in bytes.
    pub l2_size: u64,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// L2 policy.
    pub l2_policy: PolicyKind,
    /// Total L3 size in bytes.
    pub l3_size: u64,
    /// L3 associativity.
    pub l3_assoc: usize,
    /// Number of L3 slices (1 before Sandy Bridge).
    pub l3_slices: usize,
    /// L3 policy configuration (ground truth).
    pub l3_policy: L3PolicyConfig,
}

/// The leader-set ranges reported in §VI-D: sets 512–575 and 768–831.
// One contiguous range per policy really is a `Vec<Range>` of one element
// here: `SliceLeaders` supports arbitrarily many ranges.
#[allow(clippy::single_range_in_vec_init)]
fn leader_ranges() -> SliceLeaders {
    SliceLeaders {
        a: vec![512..576],
        b: vec![768..832],
    }
}

/// Leader ranges with the two policies' set ranges swapped (Broadwell's
/// second slice, §VI-D).
#[allow(clippy::single_range_in_vec_init)]
fn leader_ranges_swapped() -> SliceLeaders {
    SliceLeaders {
        a: vec![768..832],
        b: vec![512..576],
    }
}

impl CpuSpec {
    /// Builds the full hierarchy configuration for this CPU.
    pub fn hierarchy_config(&self) -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig {
                size_bytes: self.l1_size,
                assoc: self.l1_assoc,
                policy: self.l1_policy.clone(),
            },
            l2: CacheConfig {
                size_bytes: self.l2_size,
                assoc: self.l2_assoc,
                policy: self.l2_policy.clone(),
            },
            l3: L3Config {
                size_bytes: self.l3_size,
                assoc: self.l3_assoc,
                slices: self.l3_slices,
                policy: self.l3_policy.clone(),
            },
            latencies: Latencies::default(),
            inclusive_l3: true,
        }
    }

    /// Feeds a stable description of this CPU's cache geometry and
    /// ground-truth policies into `h`, for deriving persistent-store keys:
    /// two `CpuSpec`s hash alike exactly when they configure the same
    /// simulated hierarchy. Policies are hashed by their Table I names
    /// (which round-trip through [`PolicyKind::parse`]), so the hash does
    /// not depend on in-memory representation details.
    pub fn hash_config<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        self.model.hash(h);
        self.microarch.hash(h);
        self.generation.hash(h);
        self.l1_size.hash(h);
        self.l1_assoc.hash(h);
        self.l1_policy.name().hash(h);
        self.l2_size.hash(h);
        self.l2_assoc.hash(h);
        self.l2_policy.name().hash(h);
        self.l3_size.hash(h);
        self.l3_assoc.hash(h);
        self.l3_slices.hash(h);
        match &self.l3_policy {
            L3PolicyConfig::Uniform(kind) => {
                0u8.hash(h);
                kind.name().hash(h);
            }
            L3PolicyConfig::Adaptive {
                policy_a,
                policy_b,
                leaders,
            } => {
                1u8.hash(h);
                policy_a.name().hash(h);
                policy_b.name().hash(h);
                leaders.len().hash(h);
                for slice in leaders {
                    for ranges in [&slice.a, &slice.b] {
                        ranges.len().hash(h);
                        for r in ranges {
                            r.start.hash(h);
                            r.end.hash(h);
                        }
                    }
                }
            }
        }
    }

    /// The (L1, L2, L3) policy names as Table I reports them; adaptive L3s
    /// are reported as `"adaptive(<A>, <B>)"`.
    pub fn expected_policies(&self) -> (String, String, String) {
        let l3 = match &self.l3_policy {
            L3PolicyConfig::Uniform(kind) => kind.name(),
            L3PolicyConfig::Adaptive {
                policy_a, policy_b, ..
            } => format!("adaptive({}, {})", policy_a.name(), policy_b.name()),
        };
        (self.l1_policy.name(), self.l2_policy.name(), l3)
    }
}

/// All ten CPUs of Table I, in the paper's row order.
pub fn table1_cpus() -> Vec<CpuSpec> {
    let plru = PolicyKind::Plru;
    let mru = PolicyKind::Mru {
        fill_sets_all_ones: false,
    };
    let mru_star = PolicyKind::Mru {
        fill_sets_all_ones: true,
    };
    vec![
        CpuSpec {
            model: "Core i5-750",
            microarch: "Nehalem",
            generation: 1,
            l1_size: 32 * KB,
            l1_assoc: 8,
            l1_policy: plru.clone(),
            l2_size: 256 * KB,
            l2_assoc: 8,
            l2_policy: plru.clone(),
            l3_size: 8 * MB,
            l3_assoc: 16,
            l3_slices: 1,
            l3_policy: L3PolicyConfig::Uniform(mru.clone()),
        },
        CpuSpec {
            model: "Core i5-650",
            microarch: "Westmere",
            generation: 1,
            l1_size: 32 * KB,
            l1_assoc: 8,
            l1_policy: plru.clone(),
            l2_size: 256 * KB,
            l2_assoc: 8,
            l2_policy: plru.clone(),
            l3_size: 4 * MB,
            l3_assoc: 16,
            l3_slices: 1,
            l3_policy: L3PolicyConfig::Uniform(mru),
        },
        CpuSpec {
            model: "Core i7-2600",
            microarch: "Sandy Bridge",
            generation: 2,
            l1_size: 32 * KB,
            l1_assoc: 8,
            l1_policy: plru.clone(),
            l2_size: 256 * KB,
            l2_assoc: 8,
            l2_policy: plru.clone(),
            l3_size: 8 * MB,
            l3_assoc: 16,
            l3_slices: 4,
            l3_policy: L3PolicyConfig::Uniform(mru_star),
        },
        CpuSpec {
            model: "Core i5-3470",
            microarch: "Ivy Bridge",
            generation: 3,
            l1_size: 32 * KB,
            l1_assoc: 8,
            l1_policy: plru.clone(),
            l2_size: 256 * KB,
            l2_assoc: 8,
            l2_policy: plru.clone(),
            l3_size: 6 * MB,
            l3_assoc: 12,
            l3_slices: 4,
            // §VI-D: leader sets 512-575 / 768-831 in ALL slices.
            l3_policy: L3PolicyConfig::Adaptive {
                policy_a: PolicyKind::Qlru(QLRU_H11_M1_R1_U2),
                policy_b: PolicyKind::Qlru(QLRU_H11_MR161_R1_U2),
                leaders: vec![leader_ranges(); 4],
            },
        },
        CpuSpec {
            model: "Xeon E3-1225 v3",
            microarch: "Haswell",
            generation: 4,
            l1_size: 32 * KB,
            l1_assoc: 8,
            l1_policy: plru.clone(),
            l2_size: 256 * KB,
            l2_assoc: 8,
            l2_policy: plru.clone(),
            l3_size: 8 * MB,
            l3_assoc: 16,
            l3_slices: 4,
            // §VI-D: leader sets only in slice 0.
            l3_policy: L3PolicyConfig::Adaptive {
                policy_a: PolicyKind::Qlru(QLRU_H11_M1_R0_U0),
                policy_b: PolicyKind::Qlru(QLRU_H11_MR161_R0_U0),
                leaders: vec![
                    leader_ranges(),
                    SliceLeaders::default(),
                    SliceLeaders::default(),
                    SliceLeaders::default(),
                ],
            },
        },
        CpuSpec {
            model: "Core i5-5200U",
            microarch: "Broadwell",
            generation: 5,
            l1_size: 32 * KB,
            l1_assoc: 8,
            l1_policy: plru.clone(),
            l2_size: 256 * KB,
            l2_assoc: 8,
            l2_policy: plru.clone(),
            l3_size: 3 * MB,
            l3_assoc: 12,
            l3_slices: 2,
            // §VI-D: policy A in sets 512-575 of slice 0 and 768-831 of
            // slice 1; policy B in the other two ranges.
            l3_policy: L3PolicyConfig::Adaptive {
                policy_a: PolicyKind::Qlru(QLRU_H11_M1_R0_U0),
                policy_b: PolicyKind::Qlru(QLRU_H11_MR161_R0_U0),
                leaders: vec![leader_ranges(), leader_ranges_swapped()],
            },
        },
        CpuSpec {
            model: "Core i7-6500U",
            microarch: "Skylake",
            generation: 6,
            l1_size: 32 * KB,
            l1_assoc: 8,
            l1_policy: plru.clone(),
            l2_size: 256 * KB,
            l2_assoc: 4,
            l2_policy: PolicyKind::Qlru(QLRU_H00_M1_R2_U1),
            l3_size: 4 * MB,
            l3_assoc: 16,
            l3_slices: 2,
            l3_policy: L3PolicyConfig::Uniform(PolicyKind::Qlru(QLRU_H11_M1_R0_U0)),
        },
        CpuSpec {
            model: "Core i7-7700",
            microarch: "Kaby Lake",
            generation: 7,
            l1_size: 32 * KB,
            l1_assoc: 8,
            l1_policy: plru.clone(),
            l2_size: 256 * KB,
            l2_assoc: 4,
            l2_policy: PolicyKind::Qlru(QLRU_H00_M1_R2_U1),
            l3_size: 8 * MB,
            l3_assoc: 16,
            l3_slices: 4,
            l3_policy: L3PolicyConfig::Uniform(PolicyKind::Qlru(QLRU_H11_M1_R0_U0)),
        },
        CpuSpec {
            model: "Core i7-8700K",
            microarch: "Coffee Lake",
            generation: 8,
            l1_size: 32 * KB,
            l1_assoc: 8,
            l1_policy: plru.clone(),
            l2_size: 256 * KB,
            l2_assoc: 4,
            l2_policy: PolicyKind::Qlru(QLRU_H00_M1_R2_U1),
            l3_size: 8 * MB,
            l3_assoc: 16,
            // The i7-8700K has six C-Boxes. The slice hash can model six
            // (3-bit hash reduced mod 6), but the per-slice *set* count
            // must stay a power of two for the cache geometry, and
            // 8 MB / 6 slices is not — so we keep four slices here (see
            // DESIGN.md §5).
            l3_slices: 4,
            l3_policy: L3PolicyConfig::Uniform(PolicyKind::Qlru(QLRU_H11_M1_R0_U0)),
        },
        CpuSpec {
            model: "Core i3-8121U",
            microarch: "Cannon Lake",
            generation: 8,
            l1_size: 32 * KB,
            l1_assoc: 8,
            l1_policy: plru,
            l2_size: 256 * KB,
            l2_assoc: 4,
            l2_policy: PolicyKind::Qlru(QLRU_H00_M1_R0_U1),
            l3_size: 4 * MB,
            l3_assoc: 16,
            l3_slices: 2,
            l3_policy: L3PolicyConfig::Uniform(PolicyKind::Qlru(QLRU_H11_M1_R0_U0)),
        },
    ]
}

/// Looks up a Table I CPU by microarchitecture name (case-insensitive).
pub fn cpu_by_microarch(name: &str) -> Option<CpuSpec> {
    table1_cpus()
        .into_iter()
        .find(|c| c.microarch.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_qlru_constants_match_their_paper_names() {
        for (variant, name) in [
            (QLRU_H11_M1_R1_U2, "QLRU_H11_M1_R1_U2"),
            (QLRU_H11_MR161_R1_U2, "QLRU_H11_MR161_R1_U2"),
            (QLRU_H11_M1_R0_U0, "QLRU_H11_M1_R0_U0"),
            (QLRU_H11_MR161_R0_U0, "QLRU_H11_MR161_R0_U0"),
            (QLRU_H00_M1_R2_U1, "QLRU_H00_M1_R2_U1"),
            (QLRU_H00_M1_R0_U1, "QLRU_H00_M1_R0_U1"),
        ] {
            assert_eq!(variant.name(), name);
            assert_eq!(QlruVariant::parse(name).unwrap(), variant);
        }
    }

    #[test]
    fn ten_rows_like_table1() {
        let cpus = table1_cpus();
        assert_eq!(cpus.len(), 10);
        assert_eq!(cpus[0].microarch, "Nehalem");
        assert_eq!(cpus[9].microarch, "Cannon Lake");
    }

    #[test]
    fn geometries_are_consistent() {
        for cpu in table1_cpus() {
            let cfg = cpu.hierarchy_config();
            assert_eq!(cfg.l1.num_sets(), 64, "{}: L1 must have 64 sets", cpu.model);
            let sets = cfg.l3.sets_per_slice();
            assert!(
                sets.is_power_of_two(),
                "{}: L3 sets/slice = {sets}",
                cpu.model
            );
            // Leader-set ranges must exist in the slice.
            if let L3PolicyConfig::Adaptive { leaders, .. } = &cfg.l3.policy {
                for l in leaders {
                    for r in l.a.iter().chain(l.b.iter()) {
                        assert!(r.end <= sets, "{}: leader range outside slice", cpu.model);
                    }
                }
            }
        }
    }

    #[test]
    fn all_l1_policies_are_plru() {
        for cpu in table1_cpus() {
            assert_eq!(cpu.expected_policies().0, "PLRU", "{}", cpu.model);
        }
    }

    #[test]
    fn skylake_l2_is_the_table1_variant() {
        let sky = cpu_by_microarch("skylake").unwrap();
        assert_eq!(sky.expected_policies().1, "QLRU_H00_M1_R2_U1");
        assert_eq!(sky.l2_assoc, 4);
        let cnl = cpu_by_microarch("Cannon Lake").unwrap();
        assert_eq!(cnl.expected_policies().1, "QLRU_H00_M1_R0_U1");
    }

    #[test]
    fn hierarchies_instantiate() {
        for cpu in table1_cpus() {
            let _ = crate::hierarchy::CacheHierarchy::new(&cpu.hierarchy_config(), 7);
        }
    }
}
