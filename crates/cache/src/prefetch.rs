//! Hardware prefetcher models, disableable via MSR 0x1A4.
//!
//! §IV-A2 of the paper: "for microbenchmarks that measure properties of
//! caches ... it can be helpful to disable cache prefetching. On Intel CPUs,
//! this can be achieved by setting specific bits in a model-specific
//! register." We model the two L2 prefetchers and the two L1 (DCU)
//! prefetchers controlled by `MSR_MISC_FEATURE_CONTROL` (0x1A4):
//!
//! | bit | prefetcher                  |
//! |-----|-----------------------------|
//! | 0   | L2 hardware (streamer)      |
//! | 1   | L2 adjacent cache line      |
//! | 2   | DCU (L1 next-line streamer) |
//! | 3   | DCU IP (stride)             |
//!
//! Stream detection state lives in fixed-capacity, direct-indexed tables
//! ([`L2_STREAM_SLOTS`] / [`L1_STREAM_SLOTS`]) rather than growable maps:
//! real stream detectors track a bounded number of streams, and the
//! direct-indexed lookup keeps the per-demand-access cost at a modulo and
//! a tag compare instead of a SipHash probe.

/// MSR address of the prefetcher-control register.
pub const MSR_MISC_FEATURE_CONTROL: u32 = 0x1A4;

/// Streams the L2 streamer tracks concurrently (real streamers monitor up
/// to 32 streams; Intel SDM / optimization manual, "one per 4K page").
pub const L2_STREAM_SLOTS: usize = 32;

/// Streams the DCU (L1) prefetcher tracks concurrently.
pub const L1_STREAM_SLOTS: usize = 16;

/// Per-4KB-page stream tracking state.
#[derive(Debug, Clone, Copy)]
struct Stream {
    last_block: u64,
    stride: i64,
    confidence: u8,
}

/// A fixed-capacity, direct-indexed stream table: slot `page % capacity`,
/// tagged with the page number. A new page whose slot is occupied evicts
/// the old stream — matching real stream detectors, which track a bounded
/// number of streams and drop the oldest rather than growing without
/// limit. (The previous implementation used a `HashMap` keyed by page:
/// unbounded, and a SipHash computation per demand access.)
#[derive(Debug)]
struct StreamTable {
    slots: Box<[Option<(u64, Stream)>]>,
}

impl StreamTable {
    fn new(capacity: usize) -> StreamTable {
        StreamTable {
            slots: vec![None; capacity].into_boxed_slice(),
        }
    }

    /// The stream for `page`, allocating (or evicting a colliding page's
    /// stream) with `last_block = block` — the same initial state the
    /// old map-based `entry(page).or_insert(...)` produced.
    fn entry(&mut self, page: u64, block: u64) -> &mut Stream {
        let idx = (page % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        match slot {
            Some((tag, _)) if *tag == page => {}
            _ => {
                *slot = Some((
                    page,
                    Stream {
                        last_block: block,
                        stride: 0,
                        confidence: 0,
                    },
                ));
            }
        }
        &mut slot.as_mut().expect("slot just filled").1
    }

    fn clear(&mut self) {
        self.slots.fill(None);
    }
}

/// Prefetch decisions produced for one demand access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefetchRequests {
    /// Physical addresses to prefetch into L2 (and L3).
    pub into_l2: Vec<u64>,
    /// Physical addresses to prefetch into L1.
    pub into_l1: Vec<u64>,
}

/// The prefetcher bank of one core.
#[derive(Debug)]
pub struct Prefetchers {
    /// Bits of MSR 0x1A4: a set bit *disables* the corresponding prefetcher.
    disable_bits: u64,
    l2_streams: StreamTable,
    l1_streams: StreamTable,
}

impl Default for Prefetchers {
    fn default() -> Prefetchers {
        Prefetchers::new()
    }
}

impl Prefetchers {
    /// Creates the prefetcher bank with all prefetchers enabled.
    pub fn new() -> Prefetchers {
        Prefetchers {
            disable_bits: 0,
            l2_streams: StreamTable::new(L2_STREAM_SLOTS),
            l1_streams: StreamTable::new(L1_STREAM_SLOTS),
        }
    }

    /// Writes the MSR 0x1A4 value (set bits disable prefetchers).
    pub fn set_disable_bits(&mut self, value: u64) {
        self.disable_bits = value;
    }

    /// Reads back the MSR 0x1A4 value.
    pub fn disable_bits(&self) -> u64 {
        self.disable_bits
    }

    /// Convenience: disables all four prefetchers (value 0xF), as the
    /// paper's cache tools do before measuring.
    pub fn disable_all(&mut self) {
        self.disable_bits = 0xF;
    }

    fn l2_streamer_enabled(&self) -> bool {
        self.disable_bits & 0x1 == 0
    }

    fn adjacent_line_enabled(&self) -> bool {
        self.disable_bits & 0x2 == 0
    }

    fn dcu_enabled(&self) -> bool {
        self.disable_bits & 0x4 == 0
    }

    /// Observes a demand access to `paddr` that reached the L2 (i.e. missed
    /// L1). `l2_hit` tells whether it hit in L2. Returns prefetches to issue.
    pub fn observe_l2_access(&mut self, paddr: u64, l2_hit: bool) -> PrefetchRequests {
        let mut reqs = PrefetchRequests::default();
        let block = paddr / 64;
        let page = paddr >> 12;

        if self.adjacent_line_enabled() && !l2_hit {
            // Adjacent-line: fetch the other half of the 128-byte pair.
            reqs.into_l2.push((block ^ 1) * 64);
        }
        if self.l2_streamer_enabled() {
            let stream = self.l2_streams.entry(page, block);
            let stride = block as i64 - stream.last_block as i64;
            if stride != 0 && stride == stream.stride {
                stream.confidence = stream.confidence.saturating_add(1);
            } else if stride != 0 {
                stream.stride = stride;
                stream.confidence = 0;
            }
            stream.last_block = block;
            if stream.confidence >= 1 && stream.stride != 0 {
                // Prefetch the next two blocks of the stream, staying in
                // the page (hardware prefetchers do not cross 4KB pages).
                for k in 1..=2i64 {
                    let next = block as i64 + stream.stride * k;
                    if next >= 0 && (next as u64 * 64) >> 12 == page {
                        reqs.into_l2.push(next as u64 * 64);
                    }
                }
            }
        }
        reqs
    }

    /// Observes a demand access at the L1 level; returns L1 prefetches.
    pub fn observe_l1_access(&mut self, paddr: u64, l1_hit: bool) -> PrefetchRequests {
        let mut reqs = PrefetchRequests::default();
        if !self.dcu_enabled() || l1_hit {
            return reqs;
        }
        let block = paddr / 64;
        let page = paddr >> 12;
        let stream = self.l1_streams.entry(page, block);
        let stride = block as i64 - stream.last_block as i64;
        if stride == 1 {
            stream.confidence = stream.confidence.saturating_add(1);
        } else if stride != 0 {
            stream.confidence = 0;
        }
        stream.last_block = block;
        if stream.confidence >= 1 && ((block + 1) * 64) >> 12 == page {
            // DCU streamer fetches the next sequential line.
            reqs.into_l1.push((block + 1) * 64);
        }
        reqs
    }

    /// Clears stream-detection state (contents of MSR persist).
    pub fn reset_streams(&mut self) {
        self.l2_streams.clear();
        self.l1_streams.clear();
    }

    /// Number of live L2 streamer entries (diagnostics / tests).
    pub fn l2_streams_live(&self) -> usize {
        self.l2_streams.slots.iter().flatten().count()
    }

    /// Restores power-on state: all prefetchers enabled (MSR 0x1A4 = 0)
    /// and no stream history.
    pub fn reset(&mut self) {
        self.disable_bits = 0;
        self.reset_streams();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_prefetchers_do_nothing() {
        let mut p = Prefetchers::new();
        p.disable_all();
        assert_eq!(p.disable_bits(), 0xF);
        for i in 0..10u64 {
            let r = p.observe_l2_access(i * 64, false);
            assert!(r.into_l2.is_empty());
            let r = p.observe_l1_access(i * 64, false);
            assert!(r.into_l1.is_empty());
        }
    }

    #[test]
    fn adjacent_line_pairs() {
        let mut p = Prefetchers::new();
        p.set_disable_bits(0b0101); // only adjacent-line enabled among L2
        let r = p.observe_l2_access(0x80, false); // block 2 -> buddy block 3
        assert_eq!(r.into_l2, vec![0xC0]);
        let r = p.observe_l2_access(0xC0, false); // block 3 -> buddy block 2
        assert_eq!(r.into_l2, vec![0x80]);
    }

    #[test]
    fn streamer_detects_sequential_pattern() {
        let mut p = Prefetchers::new();
        p.set_disable_bits(0b1110); // only the L2 streamer enabled
        let mut prefetched = Vec::new();
        for i in 0..8u64 {
            prefetched.extend(p.observe_l2_access(i * 64, false).into_l2);
        }
        // After two same-stride deltas the streamer starts prefetching ahead.
        assert!(prefetched.contains(&(3 * 64)));
        assert!(!prefetched.is_empty());
    }

    #[test]
    fn streamer_does_not_cross_pages() {
        let mut p = Prefetchers::new();
        p.set_disable_bits(0b1110);
        let base = 4096 - 3 * 64;
        let mut prefetched = Vec::new();
        for i in 0..3u64 {
            prefetched.extend(p.observe_l2_access(base + i * 64, false).into_l2);
        }
        assert!(
            prefetched.iter().all(|a| *a < 4096),
            "prefetches must stay within the 4KB page: {prefetched:?}"
        );
    }

    /// Golden: the exact per-access prefetch decisions of a two-page
    /// strided workload, unchanged by the move from the map-based stream
    /// store to the fixed-capacity table (the pages occupy distinct
    /// slots). Derived from the streamer model: prefetching starts at the
    /// second same-stride delta and stays within the 4KB page.
    #[test]
    fn golden_two_page_streams_unchanged() {
        let mut p = Prefetchers::new();
        p.set_disable_bits(0b1110); // only the L2 streamer
        let mut log = Vec::new();
        for i in 0..4u64 {
            // Interleave a forward stream on page 0 with a stride-2
            // stream on page 1; per-page state must not interfere.
            log.push(p.observe_l2_access(i * 64, false).into_l2);
            log.push(p.observe_l2_access(4096 + i * 128, false).into_l2);
        }
        let expected: Vec<Vec<u64>> = vec![
            vec![],                             // page 0, block 0: new stream
            vec![],                             // page 1, block 64: new stream
            vec![],                             // page 0: first delta, conf 0
            vec![],                             // page 1: first delta, conf 0
            vec![3 * 64, 4 * 64],               // page 0: conf 1, prefetch +1/+2
            vec![4096 + 6 * 64, 4096 + 8 * 64], // page 1: conf 1, stride 2
            vec![4 * 64, 5 * 64],
            vec![4096 + 8 * 64, 4096 + 10 * 64],
        ];
        assert_eq!(log, expected);
    }

    #[test]
    fn colliding_pages_evict_each_others_stream() {
        let mut p = Prefetchers::new();
        p.set_disable_bits(0b1110); // only the L2 streamer
        let far = L2_STREAM_SLOTS as u64 * 4096; // same slot as page 0
                                                 // Build confidence on page 0...
        for i in 0..3u64 {
            p.observe_l2_access(i * 64, false);
        }
        assert_eq!(p.l2_streams_live(), 1);
        // ...then one access to the colliding page evicts that stream.
        p.observe_l2_access(far, false);
        assert_eq!(p.l2_streams_live(), 1);
        // Page 0 must start over: its next two accesses rebuild the
        // stride history before any prefetch is issued again.
        assert!(p.observe_l2_access(3 * 64, false).into_l2.is_empty());
        assert!(p.observe_l2_access(4 * 64, false).into_l2.is_empty());
        assert_eq!(
            p.observe_l2_access(5 * 64, false).into_l2,
            vec![6 * 64, 7 * 64]
        );
    }

    #[test]
    fn stream_table_capacity_is_bounded() {
        let mut p = Prefetchers::new();
        // Touch far more pages than the table has slots; the live-entry
        // count must never exceed the architectural stream limit.
        for page in 0..10 * L2_STREAM_SLOTS as u64 {
            p.observe_l2_access(page * 4096, false);
            assert!(p.l2_streams_live() <= L2_STREAM_SLOTS);
        }
        assert_eq!(p.l2_streams_live(), L2_STREAM_SLOTS);
        p.reset_streams();
        assert_eq!(p.l2_streams_live(), 0);
    }

    #[test]
    fn dcu_next_line() {
        let mut p = Prefetchers::new();
        p.set_disable_bits(0b1011); // only DCU enabled
        assert!(p.observe_l1_access(0, false).into_l1.is_empty());
        let r = p.observe_l1_access(64, false);
        assert_eq!(r.into_l1, vec![128]);
    }
}
