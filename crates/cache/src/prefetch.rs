//! Hardware prefetcher models, disableable via MSR 0x1A4.
//!
//! §IV-A2 of the paper: "for microbenchmarks that measure properties of
//! caches ... it can be helpful to disable cache prefetching. On Intel CPUs,
//! this can be achieved by setting specific bits in a model-specific
//! register." We model the two L2 prefetchers and the two L1 (DCU)
//! prefetchers controlled by `MSR_MISC_FEATURE_CONTROL` (0x1A4):
//!
//! | bit | prefetcher                  |
//! |-----|-----------------------------|
//! | 0   | L2 hardware (streamer)      |
//! | 1   | L2 adjacent cache line      |
//! | 2   | DCU (L1 next-line streamer) |
//! | 3   | DCU IP (stride)             |

use std::collections::HashMap;

/// MSR address of the prefetcher-control register.
pub const MSR_MISC_FEATURE_CONTROL: u32 = 0x1A4;

/// Per-4KB-page stream tracking state.
#[derive(Debug, Clone, Copy)]
struct Stream {
    last_block: u64,
    stride: i64,
    confidence: u8,
}

/// Prefetch decisions produced for one demand access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefetchRequests {
    /// Physical addresses to prefetch into L2 (and L3).
    pub into_l2: Vec<u64>,
    /// Physical addresses to prefetch into L1.
    pub into_l1: Vec<u64>,
}

/// The prefetcher bank of one core.
#[derive(Debug, Default)]
pub struct Prefetchers {
    /// Bits of MSR 0x1A4: a set bit *disables* the corresponding prefetcher.
    disable_bits: u64,
    l2_streams: HashMap<u64, Stream>,
    l1_streams: HashMap<u64, Stream>,
}

impl Prefetchers {
    /// Creates the prefetcher bank with all prefetchers enabled.
    pub fn new() -> Prefetchers {
        Prefetchers::default()
    }

    /// Writes the MSR 0x1A4 value (set bits disable prefetchers).
    pub fn set_disable_bits(&mut self, value: u64) {
        self.disable_bits = value;
    }

    /// Reads back the MSR 0x1A4 value.
    pub fn disable_bits(&self) -> u64 {
        self.disable_bits
    }

    /// Convenience: disables all four prefetchers (value 0xF), as the
    /// paper's cache tools do before measuring.
    pub fn disable_all(&mut self) {
        self.disable_bits = 0xF;
    }

    fn l2_streamer_enabled(&self) -> bool {
        self.disable_bits & 0x1 == 0
    }

    fn adjacent_line_enabled(&self) -> bool {
        self.disable_bits & 0x2 == 0
    }

    fn dcu_enabled(&self) -> bool {
        self.disable_bits & 0x4 == 0
    }

    /// Observes a demand access to `paddr` that reached the L2 (i.e. missed
    /// L1). `l2_hit` tells whether it hit in L2. Returns prefetches to issue.
    pub fn observe_l2_access(&mut self, paddr: u64, l2_hit: bool) -> PrefetchRequests {
        let mut reqs = PrefetchRequests::default();
        let block = paddr / 64;
        let page = paddr >> 12;

        if self.adjacent_line_enabled() && !l2_hit {
            // Adjacent-line: fetch the other half of the 128-byte pair.
            reqs.into_l2.push((block ^ 1) * 64);
        }
        if self.l2_streamer_enabled() {
            let stream = self.l2_streams.entry(page).or_insert(Stream {
                last_block: block,
                stride: 0,
                confidence: 0,
            });
            let stride = block as i64 - stream.last_block as i64;
            if stride != 0 && stride == stream.stride {
                stream.confidence = stream.confidence.saturating_add(1);
            } else if stride != 0 {
                stream.stride = stride;
                stream.confidence = 0;
            }
            stream.last_block = block;
            if stream.confidence >= 1 && stream.stride != 0 {
                // Prefetch the next two blocks of the stream, staying in
                // the page (hardware prefetchers do not cross 4KB pages).
                for k in 1..=2i64 {
                    let next = block as i64 + stream.stride * k;
                    if next >= 0 && (next as u64 * 64) >> 12 == page {
                        reqs.into_l2.push(next as u64 * 64);
                    }
                }
            }
        }
        reqs
    }

    /// Observes a demand access at the L1 level; returns L1 prefetches.
    pub fn observe_l1_access(&mut self, paddr: u64, l1_hit: bool) -> PrefetchRequests {
        let mut reqs = PrefetchRequests::default();
        if !self.dcu_enabled() || l1_hit {
            return reqs;
        }
        let block = paddr / 64;
        let page = paddr >> 12;
        let stream = self.l1_streams.entry(page).or_insert(Stream {
            last_block: block,
            stride: 0,
            confidence: 0,
        });
        let stride = block as i64 - stream.last_block as i64;
        if stride == 1 {
            stream.confidence = stream.confidence.saturating_add(1);
        } else if stride != 0 {
            stream.confidence = 0;
        }
        stream.last_block = block;
        if stream.confidence >= 1 && ((block + 1) * 64) >> 12 == page {
            // DCU streamer fetches the next sequential line.
            reqs.into_l1.push((block + 1) * 64);
        }
        reqs
    }

    /// Clears stream-detection state (contents of MSR persist).
    pub fn reset_streams(&mut self) {
        self.l2_streams.clear();
        self.l1_streams.clear();
    }

    /// Restores power-on state: all prefetchers enabled (MSR 0x1A4 = 0)
    /// and no stream history.
    pub fn reset(&mut self) {
        self.disable_bits = 0;
        self.reset_streams();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_prefetchers_do_nothing() {
        let mut p = Prefetchers::new();
        p.disable_all();
        assert_eq!(p.disable_bits(), 0xF);
        for i in 0..10u64 {
            let r = p.observe_l2_access(i * 64, false);
            assert!(r.into_l2.is_empty());
            let r = p.observe_l1_access(i * 64, false);
            assert!(r.into_l1.is_empty());
        }
    }

    #[test]
    fn adjacent_line_pairs() {
        let mut p = Prefetchers::new();
        p.set_disable_bits(0b0101); // only adjacent-line enabled among L2
        let r = p.observe_l2_access(0x80, false); // block 2 -> buddy block 3
        assert_eq!(r.into_l2, vec![0xC0]);
        let r = p.observe_l2_access(0xC0, false); // block 3 -> buddy block 2
        assert_eq!(r.into_l2, vec![0x80]);
    }

    #[test]
    fn streamer_detects_sequential_pattern() {
        let mut p = Prefetchers::new();
        p.set_disable_bits(0b1110); // only the L2 streamer enabled
        let mut prefetched = Vec::new();
        for i in 0..8u64 {
            prefetched.extend(p.observe_l2_access(i * 64, false).into_l2);
        }
        // After two same-stride deltas the streamer starts prefetching ahead.
        assert!(prefetched.contains(&(3 * 64)));
        assert!(!prefetched.is_empty());
    }

    #[test]
    fn streamer_does_not_cross_pages() {
        let mut p = Prefetchers::new();
        p.set_disable_bits(0b1110);
        let base = 4096 - 3 * 64;
        let mut prefetched = Vec::new();
        for i in 0..3u64 {
            prefetched.extend(p.observe_l2_access(base + i * 64, false).into_l2);
        }
        assert!(
            prefetched.iter().all(|a| *a < 4096),
            "prefetches must stay within the 4KB page: {prefetched:?}"
        );
    }

    #[test]
    fn dcu_next_line() {
        let mut p = Prefetchers::new();
        p.set_disable_bits(0b1011); // only DCU enabled
        assert!(p.observe_l1_access(0, false).into_l1.is_empty());
        let r = p.observe_l1_access(64, false);
        assert_eq!(r.into_l1, vec![128]);
    }
}
