//! A single set-associative cache.

use crate::policy::{PolicyKind, PolicySlot, SetPolicy};
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::Arc;

/// Cache line size in bytes (64 on all CPUs in Table I).
pub const LINE_SIZE: u64 = 64;

/// Seed salt separating a dueling set's policy-B random stream from its
/// policy-A stream (shared between construction and reset so both derive
/// identical streams).
pub(crate) const POLICY_B_SEED_SALT: u64 = 0xB00B;

/// Per-set seed derivation used by [`Cache::new`] and [`Cache::reset_seeded`].
fn derive_set_seed(cache_seed: u64, set: usize) -> u64 {
    cache_seed ^ (set as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Geometry and policy of a single cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Replacement policy.
    pub policy: PolicyKind,
}

impl CacheConfig {
    /// Number of sets (`size / (assoc * 64)`).
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero or non-power-of-two
    /// set count).
    pub fn num_sets(&self) -> usize {
        let sets = self.size_bytes / (self.assoc as u64 * LINE_SIZE);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a power of two"
        );
        sets as usize
    }
}

/// MESI coherence state of a cached line (§VI context: the shared L3 is
/// contended by several cores; private L1/L2 copies carry these states).
///
/// `Invalid` is represented by the line's absence; [`Cache::state_of`]
/// returns it for lines that are not present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LineState {
    /// Not present.
    Invalid,
    /// Present in exactly one core's private caches, clean.
    Exclusive,
    /// Present in one or more cores' private caches, clean.
    Shared,
    /// Present in exactly one core's private caches, dirty.
    Modified,
}

impl LineState {
    /// One-letter MESI name (`M`/`E`/`S`/`I`), used by the golden traces.
    pub fn letter(self) -> char {
        match self {
            LineState::Modified => 'M',
            LineState::Exclusive => 'E',
            LineState::Shared => 'S',
            LineState::Invalid => 'I',
        }
    }
}

/// Aggregate hit/miss statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
    /// Number of valid lines evicted by fills.
    pub evictions: u64,
}

/// Upper bound on associativity, so occupancy snapshots fit in a stack
/// buffer — the access path must not heap-allocate (it runs once per
/// simulated load/store).
pub const MAX_ASSOC: usize = 64;

/// Sentinel marking an empty way in the packed tag arena. No reachable
/// physical address produces this block number (it would need a paddr of
/// `u64::MAX * 64`).
const TAG_INVALID: u64 = u64::MAX;

/// Decodes a packed 2-bit MESI value (the `LineState` declaration order).
#[inline]
fn state_from_bits(bits: u8) -> LineState {
    match bits {
        0 => LineState::Invalid,
        1 => LineState::Exclusive,
        2 => LineState::Shared,
        _ => LineState::Modified,
    }
}

/// Shared policy-selector state for set dueling (§VI-B3).
///
/// Leader sets increment/decrement the counter on misses; follower sets
/// consult [`PselCounter::use_policy_b`].
#[derive(Debug, Default)]
pub struct PselCounter(AtomicI32);

/// Saturation bound of the 10-bit PSEL counter.
const PSEL_MAX: i32 = 1023;
/// Initial / threshold value.
const PSEL_MID: i32 = 512;

impl PselCounter {
    /// Creates a counter at the midpoint.
    pub fn new() -> Arc<PselCounter> {
        Arc::new(PselCounter(AtomicI32::new(PSEL_MID)))
    }

    /// Records a miss in a leader set of policy A (pushes toward B).
    pub fn miss_in_a(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some((v + 1).min(PSEL_MAX))
            });
    }

    /// Records a miss in a leader set of policy B (pushes toward A).
    pub fn miss_in_b(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some((v - 1).max(0))
            });
    }

    /// Whether follower sets should currently use policy B.
    pub fn use_policy_b(&self) -> bool {
        self.0.load(Ordering::Relaxed) > PSEL_MID
    }

    /// Raw counter value (for tests and debugging).
    pub fn value(&self) -> i32 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the counter to the midpoint.
    pub fn reset(&self) {
        self.0.store(PSEL_MID, Ordering::Relaxed);
    }
}

/// A leader-set wrapper: delegates to `inner` and reports misses to the
/// PSEL counter.
#[derive(Debug, Clone)]
pub struct LeaderPolicy {
    inner: Box<dyn SetPolicy>,
    psel: Arc<PselCounter>,
    /// `true` if this leader runs policy A.
    is_a: bool,
    /// Cached `inner.wants_occupied_on_hit()` — the answer never changes
    /// over a policy's lifetime, and the cache asks on every hit.
    wants_occupied: bool,
}

impl LeaderPolicy {
    /// Wraps `inner` as a leader for policy A (`is_a`) or B.
    pub fn new(inner: Box<dyn SetPolicy>, psel: Arc<PselCounter>, is_a: bool) -> LeaderPolicy {
        let wants_occupied = inner.wants_occupied_on_hit();
        LeaderPolicy {
            inner,
            psel,
            is_a,
            wants_occupied,
        }
    }
}

impl SetPolicy for LeaderPolicy {
    fn on_hit(&mut self, way: usize, occupied: &[bool]) {
        self.inner.on_hit(way, occupied);
    }

    fn wants_occupied_on_hit(&self) -> bool {
        self.wants_occupied
    }

    fn on_miss(&mut self, occupied: &[bool]) -> usize {
        if self.is_a {
            self.psel.miss_in_a();
        } else {
            self.psel.miss_in_b();
        }
        self.inner.on_miss(occupied)
    }

    fn on_invalidate(&mut self, way: usize) {
        self.inner.on_invalidate(way);
    }

    fn on_flush(&mut self) {
        self.inner.on_flush();
    }

    fn reset(&mut self, seed: u64) {
        // The B leader's inner policy was instantiated with the salted
        // seed; reproduce that derivation so reset replays construction.
        let inner_seed = if self.is_a {
            seed
        } else {
            seed ^ POLICY_B_SEED_SALT
        };
        self.inner.reset(inner_seed);
    }

    fn box_clone(&self) -> Box<dyn SetPolicy> {
        Box::new(self.clone())
    }
}

/// A follower-set wrapper: holds state for both candidate policies and
/// routes each decision to whichever one the PSEL counter currently favours
/// (the inactive policy's state freezes, like hardware reinterpreting the
/// same status bits).
#[derive(Debug, Clone)]
pub struct FollowerPolicy {
    a: Box<dyn SetPolicy>,
    b: Box<dyn SetPolicy>,
    psel: Arc<PselCounter>,
    /// Cached "either candidate reads the occupancy on hits" — the answer
    /// never changes over a policy's lifetime, and the cache asks on every
    /// hit.
    wants_occupied: bool,
}

impl FollowerPolicy {
    /// Creates a follower over the two candidate policies.
    pub fn new(
        a: Box<dyn SetPolicy>,
        b: Box<dyn SetPolicy>,
        psel: Arc<PselCounter>,
    ) -> FollowerPolicy {
        // Either inner policy may be active when a hit lands.
        let wants_occupied = a.wants_occupied_on_hit() || b.wants_occupied_on_hit();
        FollowerPolicy {
            a,
            b,
            psel,
            wants_occupied,
        }
    }

    fn active(&mut self) -> &mut Box<dyn SetPolicy> {
        if self.psel.use_policy_b() {
            &mut self.b
        } else {
            &mut self.a
        }
    }
}

impl SetPolicy for FollowerPolicy {
    fn on_hit(&mut self, way: usize, occupied: &[bool]) {
        self.active().on_hit(way, occupied);
    }

    fn wants_occupied_on_hit(&self) -> bool {
        self.wants_occupied
    }

    fn on_miss(&mut self, occupied: &[bool]) -> usize {
        self.active().on_miss(occupied)
    }

    fn on_invalidate(&mut self, way: usize) {
        self.a.on_invalidate(way);
        self.b.on_invalidate(way);
    }

    fn on_flush(&mut self) {
        self.a.on_flush();
        self.b.on_flush();
    }

    fn reset(&mut self, seed: u64) {
        self.a.reset(seed);
        self.b.reset(seed ^ POLICY_B_SEED_SALT);
    }

    fn box_clone(&self) -> Box<dyn SetPolicy> {
        Box::new(self.clone())
    }
}

/// A single set-associative cache level (or one L3 slice).
///
/// Storage is struct-of-arrays: one contiguous tag arena and one packed
/// 2-bit MESI arena for the whole cache, indexed `set * assoc + way`, so
/// the per-access probe walks one dense cache-line-friendly span instead
/// of chasing per-set `Vec` allocations.
#[derive(Debug)]
pub struct Cache {
    /// Block number per way ([`TAG_INVALID`] marks an empty way), indexed
    /// `set * assoc + way`.
    tags: Vec<u64>,
    /// MESI state per way, packed four 2-bit values per byte in the same
    /// `set * assoc + way` indexing; meaningful only where the tag is
    /// valid.
    states: Vec<u8>,
    /// Most-recently-hit (or filled) way per set, probed before the scan.
    mru_way: Vec<u8>,
    policies: Vec<PolicySlot>,
    assoc: usize,
    set_bits: u32,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from a configuration; `seed` feeds probabilistic
    /// policies (each set derives its own stream).
    pub fn new(config: &CacheConfig, seed: u64) -> Cache {
        Cache::with_policies(config.num_sets(), config.assoc, |set| {
            config
                .policy
                .instantiate_slot(config.assoc, derive_set_seed(seed, set))
        })
    }

    /// Builds a cache with a custom per-set policy factory (used for set
    /// dueling, where leader and follower sets differ; wrap those in
    /// [`PolicySlot::Boxed`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two or `assoc` is zero.
    pub fn with_policies(
        num_sets: usize,
        assoc: usize,
        mut factory: impl FnMut(usize) -> PolicySlot,
    ) -> Cache {
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(assoc > 0);
        assert!(assoc <= MAX_ASSOC, "associativity above {MAX_ASSOC}");
        let ways = num_sets * assoc;
        Cache {
            tags: vec![TAG_INVALID; ways],
            states: vec![0; ways.div_ceil(4)],
            mru_way: vec![0; num_sets],
            policies: (0..num_sets).map(&mut factory).collect(),
            assoc,
            set_bits: num_sets.trailing_zeros(),
            stats: CacheStats::default(),
        }
    }

    /// The MESI state packed at arena index `idx` (`set * assoc + way`).
    #[inline]
    fn state_at(&self, idx: usize) -> LineState {
        state_from_bits((self.states[idx >> 2] >> ((idx & 3) << 1)) & 0b11)
    }

    /// Overwrites the packed MESI state at arena index `idx`.
    #[inline]
    fn set_state_at(&mut self, idx: usize, state: LineState) {
        let shift = (idx & 3) << 1;
        let byte = &mut self.states[idx >> 2];
        *byte = (*byte & !(0b11 << shift)) | ((state as u8) << shift);
    }

    /// Scans `set` for `block`, probing the most-recently-used way first
    /// (the probe is exact: a set never holds duplicate tags).
    #[inline]
    fn find_way(&self, set: usize, block: u64) -> Option<usize> {
        let base = set * self.assoc;
        let mru = self.mru_way[set] as usize;
        if self.tags[base + mru] == block {
            return Some(mru);
        }
        self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == block)
    }

    /// Writes the per-way occupancy of `set` into `buf` and returns the
    /// filled prefix (`..assoc`).
    #[inline]
    fn occupied<'a>(&self, set: usize, buf: &'a mut [bool; MAX_ASSOC]) -> &'a [bool] {
        let base = set * self.assoc;
        for (b, &t) in buf.iter_mut().zip(&self.tags[base..base + self.assoc]) {
            *b = t != TAG_INVALID;
        }
        &buf[..self.assoc]
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        1 << self.set_bits
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// The set index of a physical address.
    pub fn set_index(&self, paddr: u64) -> usize {
        ((paddr / LINE_SIZE) & ((1 << self.set_bits) - 1)) as usize
    }

    /// Looks up `paddr` without changing any state.
    pub fn probe(&self, paddr: u64) -> bool {
        let block = paddr / LINE_SIZE;
        self.find_way(self.set_index(paddr), block).is_some()
    }

    /// Performs a lookup, updating replacement state on a hit. Returns
    /// `true` on a hit. On a miss, no fill happens — the caller decides
    /// (this separation lets the hierarchy fill multiple levels coherently).
    #[inline]
    pub fn access(&mut self, paddr: u64) -> bool {
        self.access_with_state(paddr).is_some()
    }

    /// [`Cache::access`] that additionally returns the MESI state of the
    /// hit line (`None` on a miss): one tag probe serves both the hit
    /// decision and the state read, which the hierarchy's L1 fast path
    /// needs on every store hit.
    #[inline]
    pub fn access_with_state(&mut self, paddr: u64) -> Option<LineState> {
        let block = paddr / LINE_SIZE;
        let set = self.set_index(paddr);
        if let Some(way) = self.find_way(set, block) {
            if self.policies[set].wants_occupied_on_hit() {
                let mut occ = [false; MAX_ASSOC];
                self.occupied(set, &mut occ);
                self.policies[set].on_hit(way, &occ[..self.assoc]);
            } else {
                self.policies[set].on_hit(way, &[]);
            }
            self.mru_way[set] = way as u8;
            self.stats.hits += 1;
            Some(self.state_at(set * self.assoc + way))
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Inserts the line for `paddr` in the `Exclusive` state, returning
    /// the physical block address of the evicted line if a valid line was
    /// displaced.
    pub fn fill(&mut self, paddr: u64) -> Option<u64> {
        self.fill_with_state(paddr, LineState::Exclusive)
    }

    /// Inserts the line for `paddr` with an explicit MESI state (what the
    /// coherent hierarchy uses), returning the physical block address of
    /// the evicted line if a valid line was displaced. If the line is
    /// already present, only its state is updated.
    pub fn fill_with_state(&mut self, paddr: u64, state: LineState) -> Option<u64> {
        let block = paddr / LINE_SIZE;
        let set = self.set_index(paddr);
        let base = set * self.assoc;
        if let Some(way) = self.find_way(set, block) {
            self.set_state_at(base + way, state); // already present (e.g. racing prefetch)
            return None;
        }
        let mut occ = [false; MAX_ASSOC];
        self.occupied(set, &mut occ);
        let way = self.policies[set].on_miss(&occ[..self.assoc]);
        let evicted = self.tags[base + way];
        self.tags[base + way] = block;
        self.set_state_at(base + way, state);
        self.mru_way[set] = way as u8;
        if evicted == TAG_INVALID {
            None
        } else {
            self.stats.evictions += 1;
            Some(evicted * LINE_SIZE)
        }
    }

    /// The MESI state of the line containing `paddr`; `Invalid` if absent.
    pub fn state_of(&self, paddr: u64) -> LineState {
        let block = paddr / LINE_SIZE;
        let set = self.set_index(paddr);
        self.find_way(set, block).map_or(LineState::Invalid, |way| {
            self.state_at(set * self.assoc + way)
        })
    }

    /// Sets the MESI state of the line containing `paddr`; returns whether
    /// the line was present (absent lines are left `Invalid`).
    pub fn set_state(&mut self, paddr: u64, state: LineState) -> bool {
        let block = paddr / LINE_SIZE;
        let set = self.set_index(paddr);
        match self.find_way(set, block) {
            Some(way) => {
                self.set_state_at(set * self.assoc + way, state);
                true
            }
            None => false,
        }
    }

    /// Invalidates the line containing `paddr` if present; returns whether
    /// it was present.
    pub fn invalidate(&mut self, paddr: u64) -> bool {
        let block = paddr / LINE_SIZE;
        let set = self.set_index(paddr);
        if let Some(way) = self.find_way(set, block) {
            self.tags[set * self.assoc + way] = TAG_INVALID;
            self.set_state_at(set * self.assoc + way, LineState::Invalid);
            self.policies[set].on_invalidate(way);
            true
        } else {
            false
        }
    }

    /// Flushes the entire cache (as `WBINVD` does).
    pub fn flush_all(&mut self) {
        self.tags.fill(TAG_INVALID);
        self.states.fill(0);
        self.mru_way.fill(0);
        for policy in &mut self.policies {
            policy.on_flush();
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics to zero (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Restores the just-built state in place: empties every set, rewinds
    /// every per-set policy (deriving its seed via `per_set_seed`, which
    /// must match the derivation used at construction), and zeroes the
    /// statistics — all without dropping the tag or policy allocations.
    pub fn reset_with(&mut self, mut per_set_seed: impl FnMut(usize) -> u64) {
        self.tags.fill(TAG_INVALID);
        self.states.fill(0);
        self.mru_way.fill(0);
        for (s, policy) in self.policies.iter_mut().enumerate() {
            policy.reset(per_set_seed(s));
        }
        self.stats = CacheStats::default();
    }

    /// [`Cache::reset_with`] using the same per-set seed derivation as
    /// [`Cache::new`]; pass the cache seed that was passed there.
    pub fn reset_seeded(&mut self, cache_seed: u64) {
        self.reset_with(|set| derive_set_seed(cache_seed, set));
    }

    /// Iterates over every valid line as `(paddr, state)` pairs (the
    /// paddr is the line's base address). Used by the hierarchy's
    /// full-state coherence audit.
    pub fn valid_lines(&self) -> impl Iterator<Item = (u64, LineState)> + '_ {
        self.tags
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != TAG_INVALID)
            .map(|(i, &t)| (t * LINE_SIZE, self.state_at(i)))
    }

    /// The blocks currently cached in `set` (by way).
    pub fn set_contents(&self, set: usize) -> Vec<Option<u64>> {
        let base = set * self.assoc;
        self.tags[base..base + self.assoc]
            .iter()
            .map(|&t| if t == TAG_INVALID { None } else { Some(t) })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        Cache::new(
            &CacheConfig {
                size_bytes: 4 * 64 * 8, // 8 sets x 4 ways
                assoc: 4,
                policy: PolicyKind::Lru,
            },
            0,
        )
    }

    #[test]
    fn dueling_wrappers_forward_wants_occupied_on_hit() {
        // Regression: the set-dueling wrappers must forward the hit-path
        // occupancy requirement, or a wrapped non-UMO QLRU silently sees
        // an empty occupancy slice on hits (observable as wrong Table I
        // inference on the adaptive-L3 parts).
        let qlru = crate::policy::QlruVariant::parse("QLRU_H11_M1_R1_U2").unwrap();
        let kind = PolicyKind::Qlru(qlru);
        let psel = PselCounter::new();
        let leader = LeaderPolicy::new(kind.instantiate(4, 0), psel.clone(), true);
        assert!(leader.wants_occupied_on_hit());
        let follower = FollowerPolicy::new(
            kind.instantiate(4, 0),
            PolicyKind::Lru.instantiate(4, 0),
            psel,
        );
        assert!(follower.wants_occupied_on_hit());
        let lru_leader =
            LeaderPolicy::new(PolicyKind::Lru.instantiate(4, 0), PselCounter::new(), true);
        assert!(!lru_leader.wants_occupied_on_hit());
    }

    #[test]
    fn geometry() {
        let c = small_cache();
        assert_eq!(c.num_sets(), 8);
        assert_eq!(c.assoc(), 4);
        assert_eq!(c.set_index(0), 0);
        assert_eq!(c.set_index(64), 1);
        assert_eq!(c.set_index(64 * 8), 0);
        assert_eq!(c.set_index(63), 0);
    }

    #[test]
    fn access_fill_evict() {
        let mut c = small_cache();
        assert!(!c.access(0x0));
        c.fill(0x0);
        assert!(c.access(0x0));
        // Fill 4 more conflicting lines (same set 0: stride = 8 * 64).
        let stride = 8 * 64u64;
        let mut evicted = Vec::new();
        for i in 1..=4u64 {
            c.access(i * stride);
            if let Some(e) = c.fill(i * stride) {
                evicted.push(e);
            }
        }
        assert_eq!(evicted, vec![0x0]); // LRU evicts the first line
        assert!(!c.probe(0x0));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 5);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = small_cache();
        c.fill(0x40);
        assert!(c.probe(0x40));
        assert!(c.invalidate(0x40));
        assert!(!c.invalidate(0x40));
        c.fill(0x40);
        c.flush_all();
        assert!(!c.probe(0x40));
    }

    #[test]
    fn psel_saturation() {
        let psel = PselCounter::new();
        for _ in 0..2000 {
            psel.miss_in_a();
        }
        assert_eq!(psel.value(), 1023);
        assert!(psel.use_policy_b());
        for _ in 0..4000 {
            psel.miss_in_b();
        }
        assert_eq!(psel.value(), 0);
        assert!(!psel.use_policy_b());
    }

    #[test]
    fn follower_switches_with_psel() {
        use crate::policy::PolicyKind;
        let psel = PselCounter::new();
        let a = PolicyKind::Lru.instantiate(4, 0);
        let b = PolicyKind::Fifo.instantiate(4, 0);
        let mut f = FollowerPolicy::new(a, b, Arc::clone(&psel));
        let occ = [true; 4];
        // With PSEL at midpoint, policy A (LRU) is active: hits reorder.
        f.on_hit(0, &occ);
        // Push PSEL toward B and verify misses now follow FIFO order
        // regardless of the hit we just made on way 0.
        for _ in 0..600 {
            psel.miss_in_a();
        }
        assert!(psel.use_policy_b());
        let way = f.on_miss(&occ);
        assert_eq!(way, 0, "FIFO (policy B) ignores the earlier hit");
    }
}
