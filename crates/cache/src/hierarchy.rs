//! The three-level cache hierarchy: per-core private L1/L2 and a sliced,
//! inclusive L3 shared by all cores, with C-Box lookup counters, (optional)
//! adaptive replacement via set dueling, and a MESI-style snooping
//! coherence layer between the cores' private caches.

use crate::cache::{
    Cache, CacheConfig, CacheStats, FollowerPolicy, LeaderPolicy, LineState, PselCounter,
    POLICY_B_SEED_SALT,
};
use crate::policy::{PolicyKind, PolicySlot};
use crate::prefetch::Prefetchers;
use crate::slice::{SliceHash, SliceHashError};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// A core index outside the hierarchy's `0..n_cores` range, returned by
/// the fallible entry points ([`CacheHierarchy::access_from`] and
/// friends) instead of panicking — a bad index coming in over the public
/// API is a caller bug the simulator must reject, not abort on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreOutOfRange {
    /// The offending core index.
    pub core: usize,
    /// The number of cores the hierarchy was built with.
    pub n_cores: usize,
}

impl fmt::Display for CoreOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core index {} out of range for a {}-core hierarchy",
            self.core, self.n_cores
        )
    }
}

impl std::error::Error for CoreOutOfRange {}

/// Why a hierarchy could not be constructed (the fallible counterpart of
/// the panics [`CacheHierarchy::new_multi`] documents).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// `n_cores` outside `1..=8`.
    CoreCount(usize),
    /// A multi-core hierarchy over a non-inclusive L3 (the snoop protocol
    /// relies on inclusion).
    NonInclusiveMultiCore,
    /// L3 sets per slice not a power of two.
    L3Geometry(usize),
    /// Invalid L3 slice count.
    Slice(SliceHashError),
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::CoreCount(n) => {
                write!(f, "core count must be between 1 and 8 (got {n})")
            }
            HierarchyError::NonInclusiveMultiCore => {
                f.write_str("multi-core hierarchies require an inclusive L3")
            }
            HierarchyError::L3Geometry(sets) => {
                write!(f, "L3 sets per slice must be a power of two (got {sets})")
            }
            HierarchyError::Slice(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for HierarchyError {}

/// A coherence-protocol invariant the hierarchy's state violates,
/// reported by [`CacheHierarchy::check_invariants`]. Under
/// `debug_assertions` every access asserts these for the touched line,
/// turning every debug-mode suite into a continuous protocol monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoherenceViolation {
    /// Single-writer-multiple-reader broken: a core holds the line
    /// `Modified` while another core also holds a copy.
    MultipleOwners {
        /// The line.
        paddr: u64,
        /// The core holding the `Modified` copy.
        owner: usize,
        /// A different core that also holds the line.
        other: usize,
        /// The state of `other`'s copy.
        other_state: LineState,
    },
    /// `Exclusive` is not exclusive: a core holds the line `E` while
    /// another core also holds a copy.
    SharedExclusive {
        /// The line.
        paddr: u64,
        /// The core holding the `Exclusive` copy.
        owner: usize,
        /// A different core that also holds the line.
        other: usize,
    },
    /// Inclusion broken: a private L1/L2 copy exists but the line is not
    /// present in the (inclusive) L3.
    InclusionHole {
        /// The line.
        paddr: u64,
        /// The core whose private caches hold the orphaned copy.
        core: usize,
        /// The orphaned copy's state.
        state: LineState,
    },
}

impl fmt::Display for CoherenceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoherenceViolation::MultipleOwners {
                paddr,
                owner,
                other,
                other_state,
            } => write!(
                f,
                "SWMR violated at {paddr:#x}: core {owner} holds M while core {other} holds {}",
                other_state.letter()
            ),
            CoherenceViolation::SharedExclusive {
                paddr,
                owner,
                other,
            } => write!(
                f,
                "exclusivity violated at {paddr:#x}: core {owner} holds E while core {other} \
                 also holds a copy"
            ),
            CoherenceViolation::InclusionHole { paddr, core, state } => write!(
                f,
                "inclusion violated at {paddr:#x}: core {core} holds {} but the line is not in \
                 the L3",
                state.letter()
            ),
        }
    }
}

impl std::error::Error for CoherenceViolation {}

/// A seeded protocol corruption, used to mutation-test `nbverify`'s
/// conformance bridge and the runtime invariant monitor: each variant
/// disables one coherence action, and the checkers must catch every one
/// with a counterexample. `None` (the default) is the faithful protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolMutation {
    /// `clflush`/inclusive-victim back-invalidation skips the private
    /// caches entirely, leaving orphaned copies behind.
    SkipBackInvalidation,
    /// A read that snoop-hits a remote `Modified` copy forwards the data
    /// but leaves the remote copy `Modified` instead of downgrading it.
    ForwardWithoutDowngrade,
    /// A store's RFO stops invalidating remote copies.
    DropRfoInvalidate,
    /// An L3 eviction back-invalidates only the L1s, leaving stale L2
    /// copies behind (inclusion broken on the evict path).
    BreakInclusionOnEvict,
    /// A read that snoop-hits a remote `Modified` copy is served from the
    /// (stale) L3 data as a clean hit instead of the dirty forward.
    StaleDataForward,
}

/// Which level of the memory hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the shared L3.
    L3,
    /// Served by main memory.
    Memory,
}

/// What the coherence snoop of the *other* cores' private caches found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SnoopResult {
    /// No other core held the line (always the case on a 1-core machine).
    Miss,
    /// Another core held a clean (`E`/`S`) copy.
    Hit,
    /// Another core held the line `Modified`; its copy was downgraded
    /// (read) or invalidated (write), and the data was forwarded
    /// cross-core at [`Latencies::snoop_hitm`] cost.
    HitM,
}

/// The outcome of one data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessResult {
    /// The level that served the access.
    pub level: HitLevel,
    /// Load-to-use latency in core cycles.
    pub latency: u64,
    /// The L3 slice looked up, when the access reached the L3.
    pub slice: Option<usize>,
    /// What snooping the other cores found (`Miss` on a 1-core machine).
    pub snoop: SnoopResult,
    /// Remote private-cache copies invalidated by this access (stores to
    /// shared lines; 0 on a 1-core machine).
    pub invalidated: u8,
}

/// Load-to-use latencies per level, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// L1 data cache hit latency (4 cycles on all Table I parts; this is
    /// the number §III-A's example measures).
    pub l1: u64,
    /// L2 hit latency.
    pub l2: u64,
    /// L3 hit latency.
    pub l3: u64,
    /// Main-memory latency.
    pub mem: u64,
    /// Cross-core forward latency when the snoop finds a `Modified` copy
    /// in another core's private caches (an `XSNP_HITM` hit).
    pub snoop_hitm: u64,
}

impl Default for Latencies {
    fn default() -> Latencies {
        Latencies {
            l1: 4,
            l2: 12,
            l3: 42,
            mem: 200,
            snoop_hitm: 70,
        }
    }
}

/// Leader-set ranges of one L3 slice for set dueling (§VI-B3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SliceLeaders {
    /// Set ranges dedicated to policy A.
    pub a: Vec<Range<usize>>,
    /// Set ranges dedicated to policy B.
    pub b: Vec<Range<usize>>,
}

impl SliceLeaders {
    fn role_of(&self, set: usize) -> SetRole {
        if self.a.iter().any(|r| r.contains(&set)) {
            SetRole::LeaderA
        } else if self.b.iter().any(|r| r.contains(&set)) {
            SetRole::LeaderB
        } else {
            SetRole::Follower
        }
    }
}

/// The dueling role of an L3 set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetRole {
    /// Dedicated to policy A.
    LeaderA,
    /// Dedicated to policy B.
    LeaderB,
    /// Follows the currently winning policy.
    Follower,
}

/// L3 replacement configuration: a single policy, or set dueling between
/// two policies with per-slice leader ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L3PolicyConfig {
    /// All sets use one policy.
    Uniform(PolicyKind),
    /// Set dueling (Ivy Bridge / Haswell / Broadwell in Table I).
    Adaptive {
        /// Policy run by the A leader sets (and followers when A wins).
        policy_a: PolicyKind,
        /// Policy run by the B leader sets.
        policy_b: PolicyKind,
        /// Leader ranges, indexed by slice. Slices beyond the vector's
        /// length have no leaders (all sets are followers).
        leaders: Vec<SliceLeaders>,
    },
}

/// Geometry and policy of the sliced L3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L3Config {
    /// Total capacity across all slices, in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub assoc: usize,
    /// Number of slices (1, 2, 4 or 8).
    pub slices: usize,
    /// Replacement configuration.
    pub policy: L3PolicyConfig,
}

impl L3Config {
    /// Sets per slice.
    pub fn sets_per_slice(&self) -> usize {
        let per_slice = self.size_bytes / self.slices as u64;
        (per_slice / (self.assoc as u64 * 64)) as usize
    }
}

/// Full hierarchy configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// Shared, sliced L3.
    pub l3: L3Config,
    /// Per-level latencies.
    pub latencies: Latencies,
    /// Whether the L3 is inclusive (evictions back-invalidate L1/L2);
    /// true for all Table I parts.
    pub inclusive_l3: bool,
}

impl HierarchyConfig {
    /// The number of L3 slices / C-Boxes. This is the *single* derivation
    /// point every consumer that must agree with the hierarchy uses — the
    /// slice hash, the C-Box lookup counters, `Pmu::new`'s uncore counter
    /// count, and the machine's per-core drain buffers.
    pub fn slice_count(&self) -> usize {
        self.l3.slices
    }
}

/// One core's private cache levels plus its prefetcher bank.
#[derive(Debug)]
struct PrivateCaches {
    l1: Cache,
    l2: Cache,
    prefetchers: Prefetchers,
}

/// Seed salt separating core `i`'s private-cache random streams from core
/// 0's; core 0's salt is 0, so a 1-core hierarchy is bit-identical to the
/// historical single-core one.
fn core_salt(core: usize) -> u64 {
    (core as u64) << 40
}

impl PrivateCaches {
    fn new(config: &HierarchyConfig, seed: u64, core: usize) -> PrivateCaches {
        PrivateCaches {
            l1: Cache::new(&config.l1, seed ^ 0x11 ^ core_salt(core)),
            l2: Cache::new(&config.l2, seed ^ 0x22 ^ core_salt(core)),
            prefetchers: Prefetchers::new(),
        }
    }

    /// The strongest MESI state this core holds the line in (its L1 and
    /// L2 copies normally agree; prefetch fills may leave only one level).
    fn state_of(&self, paddr: u64) -> LineState {
        let l1 = self.l1.state_of(paddr);
        if l1 == LineState::Modified {
            return l1; // already the strongest state; skip the L2 scan
        }
        l1.max(self.l2.state_of(paddr))
    }

    fn set_state(&mut self, paddr: u64, state: LineState) {
        self.l1.set_state(paddr, state);
        self.l2.set_state(paddr, state);
    }

    fn invalidate(&mut self, paddr: u64) -> bool {
        let in_l1 = self.l1.invalidate(paddr);
        let in_l2 = self.l2.invalidate(paddr);
        in_l1 || in_l2
    }
}

/// The simulated cache hierarchy: per-core private L1/L2 + shared L3,
/// kept coherent with a MESI-style snooping protocol.
#[derive(Debug)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    cores: Vec<PrivateCaches>,
    l3: Vec<Cache>,
    hash: SliceHash,
    psel: Arc<PselCounter>,
    uncore_lookups: Vec<u64>,
    /// Sum of `uncore_lookups`, maintained incrementally so per-access
    /// drain polling can early-out without touching the per-slice counts.
    uncore_total: u64,
    /// Per-slice snoops that found a copy in another core (HIT or HITM).
    snoop_hits: Vec<u64>,
    /// Total cross-core invalidations (remote copies killed by stores).
    invalidations: u64,
    /// Seeded protocol corruption (mutation testing); `None` is faithful.
    mutation: Option<ProtocolMutation>,
    /// Whether the debug-build per-access invariant assert is armed.
    /// Mutation tests disarm it to observe violations via
    /// [`CacheHierarchy::check_invariants`] instead of aborting.
    monitor: bool,
}

impl CacheHierarchy {
    /// Builds a single-core hierarchy; `seed` drives probabilistic
    /// replacement. Identical to `new_multi(config, seed, 1)`.
    pub fn new(config: &HierarchyConfig, seed: u64) -> CacheHierarchy {
        CacheHierarchy::new_multi(config, seed, 1)
    }

    /// Builds the hierarchy with `n_cores` sets of private L1/L2 caches
    /// sharing the sliced L3. Core 0's caches derive the same random
    /// streams as the historical single-core hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or greater than 8, or if the L3 geometry
    /// is inconsistent.
    pub fn new_multi(config: &HierarchyConfig, seed: u64, n_cores: usize) -> CacheHierarchy {
        match CacheHierarchy::try_new_multi(config, seed, n_cores) {
            Ok(h) => h,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`CacheHierarchy::new_multi`]: returns the
    /// constraint violation instead of panicking, for callers assembling
    /// configurations from external input.
    pub fn try_new_multi(
        config: &HierarchyConfig,
        seed: u64,
        n_cores: usize,
    ) -> Result<CacheHierarchy, HierarchyError> {
        if !(1..=8).contains(&n_cores) {
            return Err(HierarchyError::CoreCount(n_cores));
        }
        // The snoop protocol relies on inclusion: a line held in any
        // core's private caches is guaranteed to be in the L3, so only
        // the L3-hit path needs to probe remote cores. A non-inclusive
        // multi-core L3 would let private copies outlive their L3 line
        // and break the coherence invariants (all Table I parts are
        // inclusive, so this constrains nothing the paper models).
        if n_cores > 1 && !config.inclusive_l3 {
            return Err(HierarchyError::NonInclusiveMultiCore);
        }
        let psel = PselCounter::new();
        let sets_per_slice = config.l3.sets_per_slice();
        if !sets_per_slice.is_power_of_two() {
            return Err(HierarchyError::L3Geometry(sets_per_slice));
        }
        let mut l3 = Vec::with_capacity(config.l3.slices);
        for slice in 0..config.l3.slices {
            let slice_seed = seed ^ ((slice as u64 + 1) << 48);
            let cache = match &config.l3.policy {
                L3PolicyConfig::Uniform(kind) => {
                    Cache::with_policies(sets_per_slice, config.l3.assoc, |set| {
                        kind.instantiate_slot(config.l3.assoc, slice_seed ^ set as u64)
                    })
                }
                L3PolicyConfig::Adaptive {
                    policy_a,
                    policy_b,
                    leaders,
                } => {
                    let slice_leaders = leaders.get(slice).cloned().unwrap_or_default();
                    let psel = Arc::clone(&psel);
                    Cache::with_policies(sets_per_slice, config.l3.assoc, move |set| {
                        let sa = policy_a.instantiate(config.l3.assoc, slice_seed ^ set as u64);
                        let sb = policy_b.instantiate(
                            config.l3.assoc,
                            slice_seed ^ set as u64 ^ POLICY_B_SEED_SALT,
                        );
                        // Dueling wrappers stay behind the boxed escape
                        // hatch; only the uniform families devirtualize.
                        PolicySlot::Boxed(match slice_leaders.role_of(set) {
                            SetRole::LeaderA => {
                                Box::new(LeaderPolicy::new(sa, Arc::clone(&psel), true))
                            }
                            SetRole::LeaderB => {
                                Box::new(LeaderPolicy::new(sb, Arc::clone(&psel), false))
                            }
                            SetRole::Follower => {
                                Box::new(FollowerPolicy::new(sa, sb, Arc::clone(&psel)))
                            }
                        })
                    })
                }
            };
            l3.push(cache);
        }
        let slices = config.slice_count();
        Ok(CacheHierarchy {
            cores: (0..n_cores)
                .map(|core| PrivateCaches::new(config, seed, core))
                .collect(),
            l3,
            hash: SliceHash::new(slices).map_err(HierarchyError::Slice)?,
            psel,
            uncore_lookups: vec![0; slices],
            uncore_total: 0,
            snoop_hits: vec![0; slices],
            invalidations: 0,
            config: config.clone(),
            mutation: None,
            monitor: true,
        })
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of cores (sets of private L1/L2 caches).
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Performs a data access from core 0 (load semantics). Kept for the
    /// single-core callers; see [`CacheHierarchy::access_from`].
    pub fn access(&mut self, paddr: u64) -> MemAccessResult {
        self.access_from(0, paddr, false)
            .expect("core 0 always exists")
    }

    /// Performs a data access from `core` (load or store — both allocate
    /// on miss), running the MESI coherence protocol against the other
    /// cores' private caches:
    ///
    /// * a store that hits a `Shared` line issues an RFO upgrade —
    ///   invalidating every remote copy — before writing (`S → M`);
    /// * a load that misses privately but snoop-hits a remote `Modified`
    ///   copy is forwarded cross-core ([`Latencies::snoop_hitm`]) and
    ///   downgrades the remote copy (`M → S`);
    /// * a store that misses privately invalidates all remote copies
    ///   (read-for-ownership) and fills `Modified`.
    ///
    /// With one core every snoop loop is empty, so the behaviour — hit
    /// levels, latencies, replacement updates, C-Box counts — is
    /// bit-identical to the historical single-core hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreOutOfRange`] when `core >= n_cores` — an out-of-range
    /// index must not panic in release builds.
    #[inline]
    pub fn access_from(
        &mut self,
        core: usize,
        paddr: u64,
        is_write: bool,
    ) -> Result<MemAccessResult, CoreOutOfRange> {
        // The L1 lookup runs exactly once per access; its hit state feeds
        // the two provable-no-op early returns without a second tag probe:
        //
        // * a read hit — the DCU prefetcher ignores hits, reads trigger no
        //   coherence transition, and no prefetch was generated;
        // * a write hit on an already-Modified line — no upgrade, no
        //   snoop, no prefetch.
        //
        // Everything else takes the outlined general path, keeping this
        // wrapper small enough to inline into the engine's fused load.
        let l1 = match self.cores.get_mut(core) {
            Some(c) => &mut c.l1,
            None => return Err(self.core_out_of_range(core)),
        };
        let l1_state = l1.access_with_state(paddr);
        if let Some(state) = l1_state {
            if !is_write || state == LineState::Modified {
                return Ok(MemAccessResult {
                    level: HitLevel::L1,
                    latency: self.config.latencies.l1,
                    slice: None,
                    snoop: SnoopResult::Miss,
                    invalidated: 0,
                });
            }
        }
        let res = self.access_from_after_l1(core, paddr, is_write, l1_state.is_some());
        #[cfg(debug_assertions)]
        self.assert_line_invariants(paddr);
        Ok(res)
    }

    #[cold]
    fn core_out_of_range(&self, core: usize) -> CoreOutOfRange {
        CoreOutOfRange {
            core,
            n_cores: self.cores.len(),
        }
    }

    /// Panics (debug builds only) if the line's coherence invariants do
    /// not hold; the mutation tests disarm this via
    /// [`CacheHierarchy::set_invariant_monitor`].
    #[cfg(debug_assertions)]
    fn assert_line_invariants(&self, paddr: u64) {
        if self.monitor {
            if let Err(v) = self.check_line_invariants(paddr) {
                panic!("coherence invariant violated after access: {v}");
            }
        }
    }

    /// Continuation of [`CacheHierarchy::access_from`] after the L1 lookup
    /// (which already updated replacement state and hit/miss counters):
    /// prefetcher observation, coherence, and the L2/L3/memory walk.
    fn access_from_after_l1(
        &mut self,
        core: usize,
        paddr: u64,
        is_write: bool,
        l1_hit: bool,
    ) -> MemAccessResult {
        let lat = self.config.latencies;
        let l1_pref = self.cores[core]
            .prefetchers
            .observe_l1_access(paddr, l1_hit);
        if l1_hit {
            let (latency, snoop, invalidated) = self.private_hit(core, paddr, is_write, lat.l1);
            self.apply_prefetches(core, l1_pref.into_l1, l1_pref.into_l2);
            return MemAccessResult {
                level: HitLevel::L1,
                latency,
                slice: None,
                snoop,
                invalidated,
            };
        }
        let l2_hit = self.cores[core].l2.access(paddr);
        let l2_pref = self.cores[core]
            .prefetchers
            .observe_l2_access(paddr, l2_hit);
        if l2_hit {
            let state = self.cores[core].l2.state_of(paddr);
            self.cores[core].l1.fill_with_state(paddr, state);
            let (latency, snoop, invalidated) = self.private_hit(core, paddr, is_write, lat.l2);
            self.apply_prefetches(core, l1_pref.into_l1, l2_pref.into_l2);
            return MemAccessResult {
                level: HitLevel::L2,
                latency,
                slice: None,
                snoop,
                invalidated,
            };
        }
        let slice = self.hash.slice_of(paddr);
        self.uncore_lookups[slice] += 1;
        self.uncore_total += 1;
        let l3_hit = self.l3[slice].access(paddr);
        if l3_hit {
            // The L3 is inclusive, so remote copies can exist only here.
            let (snoop, invalidated) = self.snoop_remote(core, paddr, is_write, slice);
            let fill_state = if is_write {
                LineState::Modified
            } else if snoop == SnoopResult::Miss {
                LineState::Exclusive
            } else {
                LineState::Shared
            };
            self.cores[core].l2.fill_with_state(paddr, fill_state);
            self.cores[core].l1.fill_with_state(paddr, fill_state);
            self.apply_prefetches(core, l1_pref.into_l1, l2_pref.into_l2);
            let latency = if snoop == SnoopResult::HitM {
                lat.snoop_hitm
            } else {
                lat.l3
            };
            return MemAccessResult {
                level: HitLevel::L3,
                latency,
                slice: Some(slice),
                snoop,
                invalidated,
            };
        }
        self.fill_l3(paddr);
        let fill_state = if is_write {
            LineState::Modified
        } else {
            LineState::Exclusive
        };
        self.cores[core].l2.fill_with_state(paddr, fill_state);
        self.cores[core].l1.fill_with_state(paddr, fill_state);
        self.apply_prefetches(core, l1_pref.into_l1, l2_pref.into_l2);
        MemAccessResult {
            level: HitLevel::Memory,
            latency: lat.mem,
            slice: Some(slice),
            snoop: SnoopResult::Miss,
            invalidated: 0,
        }
    }

    /// Coherence work for an access that hit in `core`'s private caches.
    /// Reads cost nothing extra; writes upgrade `E → M` silently and
    /// `S → M` via an RFO through the line's C-Box that invalidates every
    /// remote copy. Returns `(latency, snoop, invalidated)`.
    fn private_hit(
        &mut self,
        core: usize,
        paddr: u64,
        is_write: bool,
        base_latency: u64,
    ) -> (u64, SnoopResult, u8) {
        if !is_write {
            return (base_latency, SnoopResult::Miss, 0);
        }
        match self.cores[core].state_of(paddr) {
            LineState::Shared => {
                // RFO upgrade: the request goes through the uncore even if
                // no other core still holds a copy.
                let slice = self.hash.slice_of(paddr);
                self.uncore_lookups[slice] += 1;
                self.uncore_total += 1;
                let (snoop, invalidated) = self.snoop_remote(core, paddr, true, slice);
                self.cores[core].set_state(paddr, LineState::Modified);
                (self.config.latencies.l3, snoop, invalidated)
            }
            LineState::Exclusive => {
                self.cores[core].set_state(paddr, LineState::Modified);
                (base_latency, SnoopResult::Miss, 0)
            }
            _ => (base_latency, SnoopResult::Miss, 0),
        }
    }

    /// Snoops every core other than `core` for the line. On a write all
    /// remote copies are invalidated; on a read a remote `Modified` copy
    /// is downgraded to `Shared` (and any remote `Exclusive` copy too,
    /// since the requester now shares the line). Returns the strongest
    /// snoop outcome and the number of invalidated remote copies.
    fn snoop_remote(
        &mut self,
        core: usize,
        paddr: u64,
        is_write: bool,
        slice: usize,
    ) -> (SnoopResult, u8) {
        let mut snoop = SnoopResult::Miss;
        let mut invalidated = 0u8;
        let mutation = self.mutation;
        for (i, remote) in self.cores.iter_mut().enumerate() {
            if i == core {
                continue;
            }
            let state = remote.state_of(paddr);
            if state == LineState::Invalid {
                continue;
            }
            let dirty = state == LineState::Modified
                && mutation != Some(ProtocolMutation::StaleDataForward);
            snoop = snoop.max(if dirty {
                SnoopResult::HitM
            } else {
                SnoopResult::Hit
            });
            if is_write {
                if mutation != Some(ProtocolMutation::DropRfoInvalidate) {
                    remote.invalidate(paddr);
                    invalidated += 1;
                }
            } else if state != LineState::Modified
                || mutation != Some(ProtocolMutation::ForwardWithoutDowngrade)
            {
                remote.set_state(paddr, LineState::Shared);
            }
        }
        if snoop != SnoopResult::Miss {
            self.snoop_hits[slice] += 1;
        }
        self.invalidations += u64::from(invalidated);
        (snoop, invalidated)
    }

    /// Fills a block into the L3, back-invalidating every core's private
    /// caches if an inclusive eviction displaces a block.
    fn fill_l3(&mut self, paddr: u64) {
        let slice = self.hash.slice_of(paddr);
        if let Some(evicted) = self.l3[slice].fill(paddr) {
            if self.config.inclusive_l3 {
                self.back_invalidate(evicted);
                #[cfg(debug_assertions)]
                self.assert_line_invariants(evicted);
            }
        }
    }

    /// Back-invalidates every core's private copies of an inclusive L3
    /// victim. The seeded mutations corrupt exactly this step so the
    /// checkers can prove they would catch a real back-invalidation bug.
    fn back_invalidate(&mut self, paddr: u64) {
        match self.mutation {
            Some(ProtocolMutation::SkipBackInvalidation) => {}
            Some(ProtocolMutation::BreakInclusionOnEvict) => {
                for core in &mut self.cores {
                    core.l1.invalidate(paddr);
                }
            }
            _ => {
                for core in &mut self.cores {
                    core.invalidate(paddr);
                }
            }
        }
    }

    /// Whether any core *other than* `core` holds the line privately.
    fn remote_holder(&self, core: usize, paddr: u64) -> bool {
        self.cores
            .iter()
            .enumerate()
            .any(|(i, c)| i != core && c.state_of(paddr) != LineState::Invalid)
    }

    fn apply_prefetches(&mut self, core: usize, into_l1: Vec<u64>, into_l2: Vec<u64>) {
        for paddr in into_l2 {
            if !self.cores[core].l2.probe(paddr) {
                // A prefetch never forces a coherence transition: if some
                // other core holds the line it is simply dropped (as
                // hardware prefetchers do on snoop conflicts).
                if self.remote_holder(core, paddr) {
                    continue;
                }
                let slice = self.hash.slice_of(paddr);
                if !self.l3[slice].probe(paddr) {
                    self.uncore_lookups[slice] += 1;
                    self.uncore_total += 1;
                    self.fill_l3(paddr);
                }
                self.cores[core].l2.fill(paddr);
            }
        }
        for paddr in into_l1 {
            if !self.cores[core].l1.probe(paddr) {
                if !self.cores[core].l2.probe(paddr) {
                    if self.remote_holder(core, paddr) {
                        continue;
                    }
                    let slice = self.hash.slice_of(paddr);
                    if !self.l3[slice].probe(paddr) {
                        self.uncore_lookups[slice] += 1;
                        self.uncore_total += 1;
                        self.fill_l3(paddr);
                    }
                    self.cores[core].l2.fill(paddr);
                }
                let state = self.cores[core].l2.state_of(paddr);
                self.cores[core].l1.fill_with_state(paddr, state);
            }
        }
    }

    /// `WBINVD`: writes back and invalidates all caches — every core's
    /// private levels and the shared L3 (§VI-C).
    pub fn wbinvd(&mut self) {
        for core in &mut self.cores {
            core.l1.flush_all();
            core.l2.flush_all();
            core.prefetchers.reset_streams();
        }
        for slice in &mut self.l3 {
            slice.flush_all();
        }
    }

    /// `CLFLUSH`: invalidates one line from every level of every core.
    pub fn clflush(&mut self, paddr: u64) {
        if self.mutation != Some(ProtocolMutation::SkipBackInvalidation) {
            for core in &mut self.cores {
                core.invalidate(paddr);
            }
        }
        let slice = self.hash.slice_of(paddr);
        self.l3[slice].invalidate(paddr);
        #[cfg(debug_assertions)]
        self.assert_line_invariants(paddr);
    }

    /// Non-destructive probe: the level that would serve a core-0 access.
    pub fn probe_level(&self, paddr: u64) -> HitLevel {
        self.probe_level_from(0, paddr)
            .expect("core 0 always exists")
    }

    /// Non-destructive probe: the level that would serve an access by
    /// `core` now.
    ///
    /// # Errors
    ///
    /// Returns [`CoreOutOfRange`] when `core >= n_cores`.
    pub fn probe_level_from(&self, core: usize, paddr: u64) -> Result<HitLevel, CoreOutOfRange> {
        let c = self
            .cores
            .get(core)
            .ok_or_else(|| self.core_out_of_range(core))?;
        Ok(if c.l1.probe(paddr) {
            HitLevel::L1
        } else if c.l2.probe(paddr) {
            HitLevel::L2
        } else if self.l3[self.hash.slice_of(paddr)].probe(paddr) {
            HitLevel::L3
        } else {
            HitLevel::Memory
        })
    }

    /// The strongest MESI state `core` holds the line in (`Invalid` when
    /// its private caches do not hold it).
    ///
    /// # Errors
    ///
    /// Returns [`CoreOutOfRange`] when `core >= n_cores`.
    pub fn line_state(&self, core: usize, paddr: u64) -> Result<LineState, CoreOutOfRange> {
        self.cores
            .get(core)
            .map(|c| c.state_of(paddr))
            .ok_or_else(|| self.core_out_of_range(core))
    }

    /// Checks the coherence invariants for one line across every core:
    /// single-writer-multiple-reader (`M` on one core ⇒ `I` everywhere
    /// else), `E` uniqueness, and L3 inclusion (a private copy ⇒ the line
    /// is present in the inclusive L3). Returns the first violation found.
    pub fn check_line_invariants(&self, paddr: u64) -> Result<(), CoherenceViolation> {
        let mut holder: Option<(usize, LineState)> = None;
        for (i, c) in self.cores.iter().enumerate() {
            let state = c.state_of(paddr);
            if state == LineState::Invalid {
                continue;
            }
            if self.config.inclusive_l3 && !self.l3[self.hash.slice_of(paddr)].probe(paddr) {
                return Err(CoherenceViolation::InclusionHole {
                    paddr,
                    core: i,
                    state,
                });
            }
            if let Some((prev, prev_state)) = holder {
                // Two cores hold the line: neither copy may claim
                // exclusive ownership.
                if prev_state == LineState::Modified || state == LineState::Modified {
                    let (owner, other, other_state) = if prev_state == LineState::Modified {
                        (prev, i, state)
                    } else {
                        (i, prev, prev_state)
                    };
                    return Err(CoherenceViolation::MultipleOwners {
                        paddr,
                        owner,
                        other,
                        other_state,
                    });
                }
                if prev_state == LineState::Exclusive || state == LineState::Exclusive {
                    let (owner, other) = if prev_state == LineState::Exclusive {
                        (prev, i)
                    } else {
                        (i, prev)
                    };
                    return Err(CoherenceViolation::SharedExclusive {
                        paddr,
                        owner,
                        other,
                    });
                }
            }
            holder = Some((i, state));
        }
        Ok(())
    }

    /// Full-hierarchy protocol audit: sweeps every valid line in every
    /// core's private caches and checks [`check_line_invariants`] for
    /// each. O(total private ways) — meant for checkpoints and the
    /// `nbverify` sweeps, not the per-access hot path (which asserts the
    /// touched line only, under `debug_assertions`).
    ///
    /// [`check_line_invariants`]: CacheHierarchy::check_line_invariants
    pub fn check_invariants(&self) -> Result<(), CoherenceViolation> {
        for c in &self.cores {
            for (paddr, _) in c.l1.valid_lines().chain(c.l2.valid_lines()) {
                self.check_line_invariants(paddr)?;
            }
        }
        Ok(())
    }

    /// Seeds (or clears) a protocol corruption for mutation testing. The
    /// faithful protocol is `None`; see [`ProtocolMutation`].
    pub fn seed_protocol_mutation(&mut self, mutation: Option<ProtocolMutation>) {
        self.mutation = mutation;
    }

    /// Arms or disarms the per-access invariant assert that runs under
    /// `debug_assertions`. On by default; mutation tests disarm it so a
    /// seeded corruption can be observed through
    /// [`CacheHierarchy::check_invariants`] instead of aborting the test.
    pub fn set_invariant_monitor(&mut self, on: bool) {
        self.monitor = on;
    }

    /// Conformance hook: drops `paddr` from `core`'s L1, exactly as a
    /// capacity eviction that chose this line as victim would (the L2 and
    /// L3 copies are untouched). Returns whether the line was present.
    ///
    /// # Errors
    ///
    /// Returns [`CoreOutOfRange`] when `core >= n_cores`.
    pub fn force_evict_l1(&mut self, core: usize, paddr: u64) -> Result<bool, CoreOutOfRange> {
        if core >= self.cores.len() {
            return Err(self.core_out_of_range(core));
        }
        Ok(self.cores[core].l1.invalidate(paddr))
    }

    /// Conformance hook: drops `paddr` from `core`'s L2 (a capacity
    /// eviction victim); any L1 copy survives, as the non-inclusive
    /// private levels allow. Returns whether the line was present.
    ///
    /// # Errors
    ///
    /// Returns [`CoreOutOfRange`] when `core >= n_cores`.
    pub fn force_evict_l2(&mut self, core: usize, paddr: u64) -> Result<bool, CoreOutOfRange> {
        if core >= self.cores.len() {
            return Err(self.core_out_of_range(core));
        }
        Ok(self.cores[core].l2.invalidate(paddr))
    }

    /// Conformance hook: evicts `paddr` from the L3 as a capacity victim,
    /// running the same inclusive back-invalidation as an organic
    /// conflict eviction. Returns whether the line was present in the L3.
    pub fn force_evict_l3(&mut self, paddr: u64) -> bool {
        let slice = self.hash.slice_of(paddr);
        let present = self.l3[slice].invalidate(paddr);
        if present && self.config.inclusive_l3 {
            self.back_invalidate(paddr);
            #[cfg(debug_assertions)]
            self.assert_line_invariants(paddr);
        }
        present
    }

    /// Core 0's prefetcher bank (MSR 0x1A4 is routed here by the machine).
    pub fn prefetchers_mut(&mut self) -> &mut Prefetchers {
        &mut self.cores[0].prefetchers
    }

    /// Read-only access to core 0's prefetcher bank.
    pub fn prefetchers(&self) -> &Prefetchers {
        &self.cores[0].prefetchers
    }

    /// Core `core`'s prefetcher bank.
    pub fn prefetchers_of_mut(&mut self, core: usize) -> &mut Prefetchers {
        &mut self.cores[core].prefetchers
    }

    /// Per-slice C-Box lookup counts (uncore counters, §II-B). Counts
    /// traffic from *all* cores, as the package-wide C-Box counters do.
    pub fn uncore_lookups(&self) -> &[u64] {
        &self.uncore_lookups
    }

    /// Total C-Box lookups across all slices. Monotonic between stat
    /// resets; cheap to poll, so per-access drains can skip reading the
    /// per-slice counts when nothing new happened.
    pub fn uncore_total(&self) -> u64 {
        self.uncore_total
    }

    /// Per-slice snoops that found the line in another core's private
    /// caches (clean or modified).
    pub fn snoop_hits(&self) -> &[u64] {
        &self.snoop_hits
    }

    /// Total remote copies invalidated by stores (cross-core traffic).
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Core 0's L1 statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.cores[0].l1.stats()
    }

    /// Core 0's L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.cores[0].l2.stats()
    }

    /// Core `core`'s L1 statistics.
    pub fn l1_stats_of(&self, core: usize) -> CacheStats {
        self.cores[core].l1.stats()
    }

    /// Core `core`'s L2 statistics.
    pub fn l2_stats_of(&self, core: usize) -> CacheStats {
        self.cores[core].l2.stats()
    }

    /// Combined L3 statistics across slices.
    pub fn l3_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for slice in &self.l3 {
            let s = slice.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// Restores the hierarchy to the state [`CacheHierarchy::new`] built
    /// for `seed`, without dropping any set/tag allocations: empties every
    /// level, rewinds per-set policy state (including probabilistic
    /// policies' random streams), recentres the PSEL counter, re-enables
    /// the prefetchers and clears their streams, and zeroes statistics and
    /// uncore counters. Pass the seed the hierarchy was built with to
    /// replay bit-identically, or a different one to restart it as if
    /// freshly built with that seed.
    pub fn reset(&mut self, seed: u64) {
        for (i, core) in self.cores.iter_mut().enumerate() {
            core.l1.reset_seeded(seed ^ 0x11 ^ core_salt(i));
            core.l2.reset_seeded(seed ^ 0x22 ^ core_salt(i));
            core.prefetchers.reset();
        }
        for (slice, cache) in self.l3.iter_mut().enumerate() {
            let slice_seed = seed ^ ((slice as u64 + 1) << 48);
            cache.reset_with(|set| slice_seed ^ set as u64);
        }
        self.psel.reset();
        self.uncore_lookups.fill(0);
        self.uncore_total = 0;
        self.snoop_hits.fill(0);
        self.invalidations = 0;
    }

    /// Resets all statistics (contents are untouched).
    pub fn reset_stats(&mut self) {
        for core in &mut self.cores {
            core.l1.reset_stats();
            core.l2.reset_stats();
        }
        for slice in &mut self.l3 {
            slice.reset_stats();
        }
        self.uncore_lookups.fill(0);
        self.uncore_total = 0;
        self.snoop_hits.fill(0);
        self.invalidations = 0;
    }

    /// The (slice, set) an address maps to in the L3.
    pub fn l3_location(&self, paddr: u64) -> (usize, usize) {
        let slice = self.hash.slice_of(paddr);
        (slice, self.l3[slice].set_index(paddr))
    }

    /// The L1 set index of an address (same geometry on every core).
    pub fn l1_set(&self, paddr: u64) -> usize {
        self.cores[0].l1.set_index(paddr)
    }

    /// The L2 set index of an address (same geometry on every core).
    pub fn l2_set(&self, paddr: u64) -> usize {
        self.cores[0].l2.set_index(paddr)
    }

    /// The PSEL counter (exposed for the set-dueling experiments).
    pub fn psel(&self) -> &Arc<PselCounter> {
        &self.psel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 4 * 1024, // 8 sets x 8 ways
                assoc: 8,
                policy: PolicyKind::Plru,
            },
            l2: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 8,
                policy: PolicyKind::Plru,
            },
            l3: L3Config {
                size_bytes: 256 * 1024,
                assoc: 16,
                slices: 2,
                policy: L3PolicyConfig::Uniform(PolicyKind::Qlru(
                    crate::policy::QlruVariant::parse("QLRU_H11_M1_R0_U0").unwrap(),
                )),
            },
            latencies: Latencies::default(),
            inclusive_l3: true,
        }
    }

    #[test]
    fn miss_then_hits_walk_down_the_hierarchy() {
        let mut h = CacheHierarchy::new(&small_config(), 1);
        h.prefetchers_mut().disable_all();
        let r = h.access(0x1000);
        assert_eq!(r.level, HitLevel::Memory);
        assert_eq!(r.latency, 200);
        let r = h.access(0x1000);
        assert_eq!(r.level, HitLevel::L1);
        assert_eq!(r.latency, 4);
        // Evict from L1 by filling its set (same L1 set: stride 8*64=512B;
        // L1 has 8 sets -> same-set stride 512).
        for i in 1..=8u64 {
            h.access(0x1000 + i * 512);
        }
        let r = h.access(0x1000);
        assert!(
            matches!(r.level, HitLevel::L2 | HitLevel::L3),
            "after L1 eviction the block must still be in an outer level, got {:?}",
            r.level
        );
    }

    #[test]
    fn wbinvd_empties_everything() {
        let mut h = CacheHierarchy::new(&small_config(), 1);
        h.prefetchers_mut().disable_all();
        h.access(0x4000);
        assert_eq!(h.probe_level(0x4000), HitLevel::L1);
        h.wbinvd();
        assert_eq!(h.probe_level(0x4000), HitLevel::Memory);
    }

    #[test]
    fn clflush_removes_single_line() {
        let mut h = CacheHierarchy::new(&small_config(), 1);
        h.prefetchers_mut().disable_all();
        h.access(0x4000);
        h.access(0x8000);
        h.clflush(0x4000);
        assert_eq!(h.probe_level(0x4000), HitLevel::Memory);
        assert_eq!(h.probe_level(0x8000), HitLevel::L1);
    }

    #[test]
    fn inclusive_l3_back_invalidates() {
        let mut cfg = small_config();
        // Tiny L3 so we can evict from it easily: 2 slices x 64 sets x 2 ways.
        cfg.l3 = L3Config {
            size_bytes: 2 * 64 * 2 * 64,
            assoc: 2,
            slices: 2,
            policy: L3PolicyConfig::Uniform(PolicyKind::Lru),
        };
        let mut h = CacheHierarchy::new(&cfg, 1);
        h.prefetchers_mut().disable_all();
        h.access(0x0);
        // Generate many conflicting L3 lines until 0x0 is back-invalidated.
        let (slice0, set0) = h.l3_location(0x0);
        let mut conflicts = 0;
        let mut addr = 0x0u64;
        while conflicts < 8 {
            addr += 64 * 64; // same L3 set index (64 sets per slice)
            if h.l3_location(addr) == (slice0, set0) {
                h.access(addr);
                conflicts += 1;
            }
        }
        assert_eq!(
            h.probe_level(0x0),
            HitLevel::Memory,
            "inclusive eviction must remove the block from L1/L2 too"
        );
    }

    #[test]
    fn uncore_lookups_count_l3_traffic() {
        let mut h = CacheHierarchy::new(&small_config(), 1);
        h.prefetchers_mut().disable_all();
        h.access(0x100000);
        let total: u64 = h.uncore_lookups().iter().sum();
        assert_eq!(total, 1);
        h.access(0x100000); // L1 hit; no L3 lookup
        let total: u64 = h.uncore_lookups().iter().sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn prefetcher_perturbs_measurements() {
        // With prefetchers on, a sequential scan takes fewer memory-level
        // hits than with them off — the reason §IV-A2 recommends disabling
        // them for cache benchmarks.
        let count_mem = |disable: bool| {
            let mut h = CacheHierarchy::new(&small_config(), 1);
            if disable {
                h.prefetchers_mut().disable_all();
            }
            (0..32u64)
                .filter(|i| h.access(i * 64).level == HitLevel::Memory)
                .count()
        };
        assert!(count_mem(false) < count_mem(true));
    }
}
