//! The three-level cache hierarchy: per-core L1/L2 and a sliced, inclusive
//! L3 with C-Box lookup counters and (optional) adaptive replacement via set
//! dueling.

use crate::cache::{
    Cache, CacheConfig, CacheStats, FollowerPolicy, LeaderPolicy, PselCounter, POLICY_B_SEED_SALT,
};
use crate::policy::PolicyKind;
use crate::prefetch::Prefetchers;
use crate::slice::SliceHash;
use std::ops::Range;
use std::sync::Arc;

/// Which level of the memory hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the shared L3.
    L3,
    /// Served by main memory.
    Memory,
}

/// The outcome of one data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessResult {
    /// The level that served the access.
    pub level: HitLevel,
    /// Load-to-use latency in core cycles.
    pub latency: u64,
    /// The L3 slice looked up, when the access reached the L3.
    pub slice: Option<usize>,
}

/// Load-to-use latencies per level, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// L1 data cache hit latency (4 cycles on all Table I parts; this is
    /// the number §III-A's example measures).
    pub l1: u64,
    /// L2 hit latency.
    pub l2: u64,
    /// L3 hit latency.
    pub l3: u64,
    /// Main-memory latency.
    pub mem: u64,
}

impl Default for Latencies {
    fn default() -> Latencies {
        Latencies {
            l1: 4,
            l2: 12,
            l3: 42,
            mem: 200,
        }
    }
}

/// Leader-set ranges of one L3 slice for set dueling (§VI-B3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SliceLeaders {
    /// Set ranges dedicated to policy A.
    pub a: Vec<Range<usize>>,
    /// Set ranges dedicated to policy B.
    pub b: Vec<Range<usize>>,
}

impl SliceLeaders {
    fn role_of(&self, set: usize) -> SetRole {
        if self.a.iter().any(|r| r.contains(&set)) {
            SetRole::LeaderA
        } else if self.b.iter().any(|r| r.contains(&set)) {
            SetRole::LeaderB
        } else {
            SetRole::Follower
        }
    }
}

/// The dueling role of an L3 set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetRole {
    /// Dedicated to policy A.
    LeaderA,
    /// Dedicated to policy B.
    LeaderB,
    /// Follows the currently winning policy.
    Follower,
}

/// L3 replacement configuration: a single policy, or set dueling between
/// two policies with per-slice leader ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L3PolicyConfig {
    /// All sets use one policy.
    Uniform(PolicyKind),
    /// Set dueling (Ivy Bridge / Haswell / Broadwell in Table I).
    Adaptive {
        /// Policy run by the A leader sets (and followers when A wins).
        policy_a: PolicyKind,
        /// Policy run by the B leader sets.
        policy_b: PolicyKind,
        /// Leader ranges, indexed by slice. Slices beyond the vector's
        /// length have no leaders (all sets are followers).
        leaders: Vec<SliceLeaders>,
    },
}

/// Geometry and policy of the sliced L3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L3Config {
    /// Total capacity across all slices, in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub assoc: usize,
    /// Number of slices (1, 2, 4 or 8).
    pub slices: usize,
    /// Replacement configuration.
    pub policy: L3PolicyConfig,
}

impl L3Config {
    /// Sets per slice.
    pub fn sets_per_slice(&self) -> usize {
        let per_slice = self.size_bytes / self.slices as u64;
        (per_slice / (self.assoc as u64 * 64)) as usize
    }
}

/// Full hierarchy configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// Shared, sliced L3.
    pub l3: L3Config,
    /// Per-level latencies.
    pub latencies: Latencies,
    /// Whether the L3 is inclusive (evictions back-invalidate L1/L2);
    /// true for all Table I parts.
    pub inclusive_l3: bool,
}

/// The simulated cache hierarchy of one core + shared L3.
#[derive(Debug)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    l3: Vec<Cache>,
    hash: SliceHash,
    psel: Arc<PselCounter>,
    prefetchers: Prefetchers,
    uncore_lookups: Vec<u64>,
}

impl CacheHierarchy {
    /// Builds the hierarchy; `seed` drives probabilistic replacement.
    pub fn new(config: &HierarchyConfig, seed: u64) -> CacheHierarchy {
        let psel = PselCounter::new();
        let sets_per_slice = config.l3.sets_per_slice();
        assert!(
            sets_per_slice.is_power_of_two(),
            "L3 sets per slice must be a power of two (got {sets_per_slice})"
        );
        let mut l3 = Vec::with_capacity(config.l3.slices);
        for slice in 0..config.l3.slices {
            let slice_seed = seed ^ ((slice as u64 + 1) << 48);
            let cache = match &config.l3.policy {
                L3PolicyConfig::Uniform(kind) => {
                    Cache::with_policies(sets_per_slice, config.l3.assoc, |set| {
                        kind.instantiate(config.l3.assoc, slice_seed ^ set as u64)
                    })
                }
                L3PolicyConfig::Adaptive {
                    policy_a,
                    policy_b,
                    leaders,
                } => {
                    let slice_leaders = leaders.get(slice).cloned().unwrap_or_default();
                    let psel = Arc::clone(&psel);
                    Cache::with_policies(sets_per_slice, config.l3.assoc, move |set| {
                        let sa = policy_a.instantiate(config.l3.assoc, slice_seed ^ set as u64);
                        let sb = policy_b.instantiate(
                            config.l3.assoc,
                            slice_seed ^ set as u64 ^ POLICY_B_SEED_SALT,
                        );
                        match slice_leaders.role_of(set) {
                            SetRole::LeaderA => {
                                Box::new(LeaderPolicy::new(sa, Arc::clone(&psel), true))
                            }
                            SetRole::LeaderB => {
                                Box::new(LeaderPolicy::new(sb, Arc::clone(&psel), false))
                            }
                            SetRole::Follower => {
                                Box::new(FollowerPolicy::new(sa, sb, Arc::clone(&psel)))
                            }
                        }
                    })
                }
            };
            l3.push(cache);
        }
        CacheHierarchy {
            l1: Cache::new(&config.l1, seed ^ 0x11),
            l2: Cache::new(&config.l2, seed ^ 0x22),
            l3,
            hash: SliceHash::new(config.l3.slices),
            psel,
            prefetchers: Prefetchers::new(),
            uncore_lookups: vec![0; config.l3.slices],
            config: config.clone(),
        }
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Performs a data access (load or store — both allocate on miss).
    pub fn access(&mut self, paddr: u64) -> MemAccessResult {
        let lat = self.config.latencies;
        let l1_hit = self.l1.access(paddr);
        let l1_pref = self.prefetchers.observe_l1_access(paddr, l1_hit);
        if l1_hit {
            self.apply_prefetches(l1_pref.into_l1, l1_pref.into_l2);
            return MemAccessResult {
                level: HitLevel::L1,
                latency: lat.l1,
                slice: None,
            };
        }
        let l2_hit = self.l2.access(paddr);
        let l2_pref = self.prefetchers.observe_l2_access(paddr, l2_hit);
        if l2_hit {
            self.l1.fill(paddr);
            self.apply_prefetches(l1_pref.into_l1, l2_pref.into_l2);
            return MemAccessResult {
                level: HitLevel::L2,
                latency: lat.l2,
                slice: None,
            };
        }
        let slice = self.hash.slice_of(paddr);
        self.uncore_lookups[slice] += 1;
        let l3_hit = self.l3[slice].access(paddr);
        if l3_hit {
            self.l2.fill(paddr);
            self.l1.fill(paddr);
            self.apply_prefetches(l1_pref.into_l1, l2_pref.into_l2);
            return MemAccessResult {
                level: HitLevel::L3,
                latency: lat.l3,
                slice: Some(slice),
            };
        }
        self.fill_l3(paddr);
        self.l2.fill(paddr);
        self.l1.fill(paddr);
        self.apply_prefetches(l1_pref.into_l1, l2_pref.into_l2);
        MemAccessResult {
            level: HitLevel::Memory,
            latency: lat.mem,
            slice: Some(slice),
        }
    }

    /// Fills a block into the L3, back-invalidating inner levels if an
    /// inclusive eviction displaces a block.
    fn fill_l3(&mut self, paddr: u64) {
        let slice = self.hash.slice_of(paddr);
        if let Some(evicted) = self.l3[slice].fill(paddr) {
            if self.config.inclusive_l3 {
                self.l2.invalidate(evicted);
                self.l1.invalidate(evicted);
            }
        }
    }

    fn apply_prefetches(&mut self, into_l1: Vec<u64>, into_l2: Vec<u64>) {
        for paddr in into_l2 {
            if !self.l2.probe(paddr) {
                let slice = self.hash.slice_of(paddr);
                if !self.l3[slice].probe(paddr) {
                    self.uncore_lookups[slice] += 1;
                    self.fill_l3(paddr);
                }
                self.l2.fill(paddr);
            }
        }
        for paddr in into_l1 {
            if !self.l1.probe(paddr) {
                if !self.l2.probe(paddr) {
                    let slice = self.hash.slice_of(paddr);
                    if !self.l3[slice].probe(paddr) {
                        self.uncore_lookups[slice] += 1;
                        self.fill_l3(paddr);
                    }
                    self.l2.fill(paddr);
                }
                self.l1.fill(paddr);
            }
        }
    }

    /// `WBINVD`: writes back and invalidates all caches (§VI-C).
    pub fn wbinvd(&mut self) {
        self.l1.flush_all();
        self.l2.flush_all();
        for slice in &mut self.l3 {
            slice.flush_all();
        }
        self.prefetchers.reset_streams();
    }

    /// `CLFLUSH`: invalidates one line from every level.
    pub fn clflush(&mut self, paddr: u64) {
        self.l1.invalidate(paddr);
        self.l2.invalidate(paddr);
        let slice = self.hash.slice_of(paddr);
        self.l3[slice].invalidate(paddr);
    }

    /// Non-destructive probe: the level that would serve an access now.
    pub fn probe_level(&self, paddr: u64) -> HitLevel {
        if self.l1.probe(paddr) {
            HitLevel::L1
        } else if self.l2.probe(paddr) {
            HitLevel::L2
        } else if self.l3[self.hash.slice_of(paddr)].probe(paddr) {
            HitLevel::L3
        } else {
            HitLevel::Memory
        }
    }

    /// The prefetcher bank (MSR 0x1A4 is routed here by the machine).
    pub fn prefetchers_mut(&mut self) -> &mut Prefetchers {
        &mut self.prefetchers
    }

    /// Read-only access to the prefetcher bank.
    pub fn prefetchers(&self) -> &Prefetchers {
        &self.prefetchers
    }

    /// Per-slice C-Box lookup counts (uncore counters, §II-B).
    pub fn uncore_lookups(&self) -> &[u64] {
        &self.uncore_lookups
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Combined L3 statistics across slices.
    pub fn l3_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for slice in &self.l3 {
            let s = slice.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// Restores the hierarchy to the state [`CacheHierarchy::new`] built
    /// for `seed`, without dropping any set/tag allocations: empties every
    /// level, rewinds per-set policy state (including probabilistic
    /// policies' random streams), recentres the PSEL counter, re-enables
    /// the prefetchers and clears their streams, and zeroes statistics and
    /// uncore counters. Pass the seed the hierarchy was built with to
    /// replay bit-identically, or a different one to restart it as if
    /// freshly built with that seed.
    pub fn reset(&mut self, seed: u64) {
        self.l1.reset_seeded(seed ^ 0x11);
        self.l2.reset_seeded(seed ^ 0x22);
        for (slice, cache) in self.l3.iter_mut().enumerate() {
            let slice_seed = seed ^ ((slice as u64 + 1) << 48);
            cache.reset_with(|set| slice_seed ^ set as u64);
        }
        self.psel.reset();
        self.prefetchers.reset();
        self.uncore_lookups.fill(0);
    }

    /// Resets all statistics (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        for slice in &mut self.l3 {
            slice.reset_stats();
        }
        self.uncore_lookups.fill(0);
    }

    /// The (slice, set) an address maps to in the L3.
    pub fn l3_location(&self, paddr: u64) -> (usize, usize) {
        let slice = self.hash.slice_of(paddr);
        (slice, self.l3[slice].set_index(paddr))
    }

    /// The L1 set index of an address.
    pub fn l1_set(&self, paddr: u64) -> usize {
        self.l1.set_index(paddr)
    }

    /// The L2 set index of an address.
    pub fn l2_set(&self, paddr: u64) -> usize {
        self.l2.set_index(paddr)
    }

    /// The PSEL counter (exposed for the set-dueling experiments).
    pub fn psel(&self) -> &Arc<PselCounter> {
        &self.psel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 4 * 1024, // 8 sets x 8 ways
                assoc: 8,
                policy: PolicyKind::Plru,
            },
            l2: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 8,
                policy: PolicyKind::Plru,
            },
            l3: L3Config {
                size_bytes: 256 * 1024,
                assoc: 16,
                slices: 2,
                policy: L3PolicyConfig::Uniform(PolicyKind::Qlru(
                    crate::policy::QlruVariant::parse("QLRU_H11_M1_R0_U0").unwrap(),
                )),
            },
            latencies: Latencies::default(),
            inclusive_l3: true,
        }
    }

    #[test]
    fn miss_then_hits_walk_down_the_hierarchy() {
        let mut h = CacheHierarchy::new(&small_config(), 1);
        h.prefetchers_mut().disable_all();
        let r = h.access(0x1000);
        assert_eq!(r.level, HitLevel::Memory);
        assert_eq!(r.latency, 200);
        let r = h.access(0x1000);
        assert_eq!(r.level, HitLevel::L1);
        assert_eq!(r.latency, 4);
        // Evict from L1 by filling its set (same L1 set: stride 8*64=512B;
        // L1 has 8 sets -> same-set stride 512).
        for i in 1..=8u64 {
            h.access(0x1000 + i * 512);
        }
        let r = h.access(0x1000);
        assert!(
            matches!(r.level, HitLevel::L2 | HitLevel::L3),
            "after L1 eviction the block must still be in an outer level, got {:?}",
            r.level
        );
    }

    #[test]
    fn wbinvd_empties_everything() {
        let mut h = CacheHierarchy::new(&small_config(), 1);
        h.prefetchers_mut().disable_all();
        h.access(0x4000);
        assert_eq!(h.probe_level(0x4000), HitLevel::L1);
        h.wbinvd();
        assert_eq!(h.probe_level(0x4000), HitLevel::Memory);
    }

    #[test]
    fn clflush_removes_single_line() {
        let mut h = CacheHierarchy::new(&small_config(), 1);
        h.prefetchers_mut().disable_all();
        h.access(0x4000);
        h.access(0x8000);
        h.clflush(0x4000);
        assert_eq!(h.probe_level(0x4000), HitLevel::Memory);
        assert_eq!(h.probe_level(0x8000), HitLevel::L1);
    }

    #[test]
    fn inclusive_l3_back_invalidates() {
        let mut cfg = small_config();
        // Tiny L3 so we can evict from it easily: 2 slices x 64 sets x 2 ways.
        cfg.l3 = L3Config {
            size_bytes: 2 * 64 * 2 * 64,
            assoc: 2,
            slices: 2,
            policy: L3PolicyConfig::Uniform(PolicyKind::Lru),
        };
        let mut h = CacheHierarchy::new(&cfg, 1);
        h.prefetchers_mut().disable_all();
        h.access(0x0);
        // Generate many conflicting L3 lines until 0x0 is back-invalidated.
        let (slice0, set0) = h.l3_location(0x0);
        let mut conflicts = 0;
        let mut addr = 0x0u64;
        while conflicts < 8 {
            addr += 64 * 64; // same L3 set index (64 sets per slice)
            if h.l3_location(addr) == (slice0, set0) {
                h.access(addr);
                conflicts += 1;
            }
        }
        assert_eq!(
            h.probe_level(0x0),
            HitLevel::Memory,
            "inclusive eviction must remove the block from L1/L2 too"
        );
    }

    #[test]
    fn uncore_lookups_count_l3_traffic() {
        let mut h = CacheHierarchy::new(&small_config(), 1);
        h.prefetchers_mut().disable_all();
        h.access(0x100000);
        let total: u64 = h.uncore_lookups().iter().sum();
        assert_eq!(total, 1);
        h.access(0x100000); // L1 hit; no L3 lookup
        let total: u64 = h.uncore_lookups().iter().sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn prefetcher_perturbs_measurements() {
        // With prefetchers on, a sequential scan takes fewer memory-level
        // hits than with them off — the reason §IV-A2 recommends disabling
        // them for cache benchmarks.
        let count_mem = |disable: bool| {
            let mut h = CacheHierarchy::new(&small_config(), 1);
            if disable {
                h.prefetchers_mut().disable_all();
            }
            (0..32u64)
                .filter(|i| h.access(i * 64).level == HitLevel::Memory)
                .count()
        };
        assert!(count_mem(false) < count_mem(true));
    }
}
