//! Cache replacement policies.
//!
//! This module implements every policy family the paper discusses (§VI-B):
//! permutation-based policies (LRU, FIFO, tree-based PLRU, and arbitrary
//! permutation specifications), the one-bit MRU/NRU policy with the Sandy
//! Bridge WBINVD variant, the fully parameterized QLRU family with the
//! paper's naming scheme (`QLRU_Hxy_Mz_Rr_Uu[_UMO]`), and a random policy.
//!
//! A policy instance manages one cache set. "Locations" (ways) are indexed
//! from 0; the paper's "leftmost" is way 0.

mod basic;
mod mru;
mod permutation;
mod qlru;

pub use basic::{Fifo, Lru, Plru, RandomPolicy};
pub use mru::Mru;
pub use permutation::{fifo_spec, lru_spec, plru_spec, Perm, PermutationPolicy, PermutationSpec};
pub use qlru::{
    all_meaningful_qlru_variants, HitFunc, InsertAge, QlruPolicy, QlruVariant, RVariant, UVariant,
};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Per-set replacement policy state machine.
///
/// The cache set tells the policy about hits and asks it for a placement
/// location on misses; the policy never sees addresses, only way indices and
/// the current occupancy. This mirrors how real replacement logic only
/// observes per-line status bits.
pub trait SetPolicy: fmt::Debug + Send {
    /// Called when an access hits the block at `way`.
    ///
    /// `occupied[w]` indicates which ways currently hold valid lines.
    /// The slice is only guaranteed to be populated when
    /// [`SetPolicy::wants_occupied_on_hit`] returns `true`; policies that
    /// ignore it on hits let the cache skip the occupancy scan entirely.
    fn on_hit(&mut self, way: usize, occupied: &[bool]);

    /// Whether [`SetPolicy::on_hit`] reads `occupied`. Defaults to `false`
    /// so the cache's hit fast path avoids building the occupancy vector;
    /// policies whose hit transition depends on it (e.g. QLRU update
    /// heuristics) must override this.
    fn wants_occupied_on_hit(&self) -> bool {
        false
    }

    /// Called on a miss; returns the way where the new block is placed
    /// (evicting any valid line there) and updates internal state as if the
    /// new block had been inserted.
    fn on_miss(&mut self, occupied: &[bool]) -> usize;

    /// Called when the line at `way` is invalidated (e.g. `CLFLUSH`).
    fn on_invalidate(&mut self, way: usize);

    /// Called when the whole cache is flushed (e.g. `WBINVD`).
    fn on_flush(&mut self);

    /// Restores the just-constructed state for `seed`, reusing existing
    /// allocations. Unlike [`SetPolicy::on_flush`] — which models a
    /// hardware flush and leaves any random-number stream where it is —
    /// this also rewinds the stream of probabilistic policies, so a reset
    /// cache replays bit-identically to a freshly built one.
    /// Deterministic policies ignore `seed`.
    fn reset(&mut self, seed: u64);

    /// Clones the policy into a fresh box (object-safe `Clone`).
    fn box_clone(&self) -> Box<dyn SetPolicy>;
}

impl Clone for Box<dyn SetPolicy> {
    fn clone(&self) -> Box<dyn SetPolicy> {
        self.box_clone()
    }
}

/// Devirtualized per-set policy dispatch: one variant per built-in policy
/// family, so the cache's access path resolves policy calls through a
/// direct `match` instead of a vtable. [`PolicySlot::Boxed`] is the escape
/// hatch for wrapper policies (the set-dueling leader/follower wrappers)
/// and external [`SetPolicy`] implementations.
#[derive(Debug, Clone)]
pub enum PolicySlot {
    /// Least-recently-used.
    Lru(Lru),
    /// First-in first-out.
    Fifo(Fifo),
    /// Tree-based pseudo-LRU.
    Plru(Plru),
    /// One-bit MRU / NRU (both WBINVD variants).
    Mru(Mru),
    /// A QLRU variant.
    Qlru(QlruPolicy),
    /// An arbitrary permutation policy.
    Permutation(PermutationPolicy),
    /// Uniformly random replacement.
    Random(RandomPolicy),
    /// Dynamic dispatch for wrappers and external policies.
    Boxed(Box<dyn SetPolicy>),
}

/// Delegates a [`SetPolicy`] method call to whichever concrete policy the
/// slot holds (direct call for the built-in variants, vtable only for
/// `Boxed`).
macro_rules! for_each_slot {
    ($slot:expr, $p:ident => $call:expr) => {
        match $slot {
            PolicySlot::Lru($p) => $call,
            PolicySlot::Fifo($p) => $call,
            PolicySlot::Plru($p) => $call,
            PolicySlot::Mru($p) => $call,
            PolicySlot::Qlru($p) => $call,
            PolicySlot::Permutation($p) => $call,
            PolicySlot::Random($p) => $call,
            PolicySlot::Boxed($p) => $call,
        }
    };
}

impl PolicySlot {
    /// [`SetPolicy::on_hit`].
    #[inline]
    pub fn on_hit(&mut self, way: usize, occupied: &[bool]) {
        for_each_slot!(self, p => p.on_hit(way, occupied))
    }

    /// [`SetPolicy::wants_occupied_on_hit`].
    #[inline]
    pub fn wants_occupied_on_hit(&self) -> bool {
        for_each_slot!(self, p => p.wants_occupied_on_hit())
    }

    /// [`SetPolicy::on_miss`].
    #[inline]
    pub fn on_miss(&mut self, occupied: &[bool]) -> usize {
        for_each_slot!(self, p => p.on_miss(occupied))
    }

    /// [`SetPolicy::on_invalidate`].
    #[inline]
    pub fn on_invalidate(&mut self, way: usize) {
        for_each_slot!(self, p => p.on_invalidate(way))
    }

    /// [`SetPolicy::on_flush`].
    #[inline]
    pub fn on_flush(&mut self) {
        for_each_slot!(self, p => p.on_flush())
    }

    /// [`SetPolicy::reset`].
    pub fn reset(&mut self, seed: u64) {
        for_each_slot!(self, p => p.reset(seed))
    }
}

/// A policy selector: everything needed to instantiate per-set policy state.
///
/// `PolicyKind` is the configuration-level description used by cache
/// configurations ([Table I presets](crate::presets)) and by the candidate
/// library of the policy-inference tools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyKind {
    /// Least-recently-used.
    Lru,
    /// First-in first-out.
    Fifo,
    /// Tree-based pseudo-LRU (associativity must be a power of two).
    Plru,
    /// One-bit MRU / bit-PLRU / NRU (§VI-B2). `fill_sets_all_ones` selects
    /// the Sandy Bridge variant that keeps all status bits set while the
    /// cache is not yet full after a WBINVD (reported as `MRU*` in Table I).
    Mru {
        /// Sandy Bridge WBINVD variant flag.
        fill_sets_all_ones: bool,
    },
    /// A QLRU variant per the paper's naming scheme (§VI-B2).
    Qlru(QlruVariant),
    /// An arbitrary permutation policy given by its A+1 permutations.
    Permutation(PermutationSpec),
    /// Uniformly random replacement.
    Random,
}

impl PolicyKind {
    /// Short human-readable name, matching the paper's naming scheme
    /// (`PLRU`, `MRU`, `MRU*`, `QLRU_H11_M1_R0_U0`, ...).
    pub fn name(&self) -> String {
        match self {
            PolicyKind::Lru => "LRU".to_string(),
            PolicyKind::Fifo => "FIFO".to_string(),
            PolicyKind::Plru => "PLRU".to_string(),
            PolicyKind::Mru {
                fill_sets_all_ones: false,
            } => "MRU".to_string(),
            PolicyKind::Mru {
                fill_sets_all_ones: true,
            } => "MRU*".to_string(),
            PolicyKind::Qlru(v) => v.name(),
            PolicyKind::Permutation(_) => "PERMUTATION".to_string(),
            PolicyKind::Random => "RANDOM".to_string(),
        }
    }

    /// Parses a policy name produced by [`PolicyKind::name`].
    ///
    /// # Errors
    ///
    /// Returns an error string when the name is not recognized.
    pub fn parse(name: &str) -> Result<PolicyKind, String> {
        match name {
            "LRU" => Ok(PolicyKind::Lru),
            "FIFO" => Ok(PolicyKind::Fifo),
            "PLRU" => Ok(PolicyKind::Plru),
            "MRU" => Ok(PolicyKind::Mru {
                fill_sets_all_ones: false,
            }),
            "MRU*" => Ok(PolicyKind::Mru {
                fill_sets_all_ones: true,
            }),
            "RANDOM" => Ok(PolicyKind::Random),
            other if other.starts_with("QLRU_") => QlruVariant::parse(other).map(PolicyKind::Qlru),
            other => Err(format!("unknown policy name `{other}`")),
        }
    }

    /// Whether the policy makes probabilistic decisions.
    pub fn is_probabilistic(&self) -> bool {
        match self {
            PolicyKind::Random => true,
            PolicyKind::Qlru(v) => v.is_probabilistic(),
            _ => false,
        }
    }

    /// Checks that this policy can manage a set with `assoc` ways.
    ///
    /// This is the fallible counterpart of the constraints
    /// [`PolicyKind::instantiate`] enforces by panicking; configuration
    /// code that handles user-supplied policies should call this (or
    /// [`PolicyKind::try_instantiate`]) so a bad policy/associativity
    /// combination surfaces as an error instead of aborting a worker.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint: zero
    /// associativity, PLRU with a non-power-of-two or >64-way set, or an
    /// inconsistent permutation specification.
    pub fn validate(&self, assoc: usize) -> Result<(), String> {
        if assoc == 0 {
            return Err("associativity must be positive".to_string());
        }
        match self {
            PolicyKind::Plru => {
                if !assoc.is_power_of_two() {
                    return Err(format!(
                        "PLRU requires a power-of-two associativity, got {assoc}"
                    ));
                }
                if assoc > 64 {
                    return Err(format!("PLRU supports at most 64 ways, got {assoc}"));
                }
            }
            PolicyKind::Permutation(spec) => {
                spec.validate()?;
                if spec.assoc() != assoc {
                    return Err(format!(
                        "permutation spec is for {} ways, set has {assoc}",
                        spec.assoc()
                    ));
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Instantiates per-set state for a set with `assoc` ways, validating
    /// the policy/associativity combination first.
    ///
    /// `seed` provides determinism for probabilistic policies; derive it
    /// from (cache seed, set index) so different sets draw independently.
    ///
    /// # Errors
    ///
    /// Returns the error of [`PolicyKind::validate`].
    pub fn try_instantiate(&self, assoc: usize, seed: u64) -> Result<Box<dyn SetPolicy>, String> {
        self.validate(assoc)?;
        Ok(match self {
            PolicyKind::Lru => Box::new(Lru::new(assoc)),
            PolicyKind::Fifo => Box::new(Fifo::new(assoc)),
            PolicyKind::Plru => Box::new(Plru::new(assoc)),
            PolicyKind::Mru { fill_sets_all_ones } => {
                Box::new(Mru::new(assoc, *fill_sets_all_ones))
            }
            PolicyKind::Qlru(v) => {
                Box::new(QlruPolicy::new(assoc, *v, SmallRng::seed_from_u64(seed)))
            }
            PolicyKind::Permutation(spec) => Box::new(PermutationPolicy::try_new(spec.clone())?),
            PolicyKind::Random => Box::new(RandomPolicy::new(assoc, SmallRng::seed_from_u64(seed))),
        })
    }

    /// Instantiates per-set state for a set with `assoc` ways.
    ///
    /// `seed` provides determinism for probabilistic policies; derive it
    /// from (cache seed, set index) so different sets draw independently.
    /// Use [`PolicyKind::try_instantiate`] where the policy comes from
    /// user input.
    ///
    /// # Panics
    ///
    /// Panics if [`PolicyKind::validate`] rejects the combination (e.g.
    /// `assoc` is 0, or the policy is PLRU and `assoc` is not a power of
    /// two).
    pub fn instantiate(&self, assoc: usize, seed: u64) -> Box<dyn SetPolicy> {
        match self.try_instantiate(assoc, seed) {
            Ok(policy) => policy,
            Err(e) => panic!("cannot instantiate policy {}: {e}", self.name()),
        }
    }

    /// Like [`PolicyKind::try_instantiate`], but returns the devirtualized
    /// [`PolicySlot`] the cache's hot path dispatches through.
    ///
    /// # Errors
    ///
    /// Returns the error of [`PolicyKind::validate`].
    pub fn try_instantiate_slot(&self, assoc: usize, seed: u64) -> Result<PolicySlot, String> {
        self.validate(assoc)?;
        Ok(match self {
            PolicyKind::Lru => PolicySlot::Lru(Lru::new(assoc)),
            PolicyKind::Fifo => PolicySlot::Fifo(Fifo::new(assoc)),
            PolicyKind::Plru => PolicySlot::Plru(Plru::new(assoc)),
            PolicyKind::Mru { fill_sets_all_ones } => {
                PolicySlot::Mru(Mru::new(assoc, *fill_sets_all_ones))
            }
            PolicyKind::Qlru(v) => {
                PolicySlot::Qlru(QlruPolicy::new(assoc, *v, SmallRng::seed_from_u64(seed)))
            }
            PolicyKind::Permutation(spec) => {
                PolicySlot::Permutation(PermutationPolicy::try_new(spec.clone())?)
            }
            PolicyKind::Random => {
                PolicySlot::Random(RandomPolicy::new(assoc, SmallRng::seed_from_u64(seed)))
            }
        })
    }

    /// Panicking counterpart of [`PolicyKind::try_instantiate_slot`], for
    /// validated configurations.
    ///
    /// # Panics
    ///
    /// Panics if [`PolicyKind::validate`] rejects the combination.
    pub fn instantiate_slot(&self, assoc: usize, seed: u64) -> PolicySlot {
        match self.try_instantiate_slot(assoc, seed) {
            Ok(slot) => slot,
            Err(e) => panic!("cannot instantiate policy {}: {e}", self.name()),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Simulates an access sequence of abstract blocks against a policy on a
/// single cache set, returning per-access hit/miss.
///
/// Blocks are identified by arbitrary `u64` ids; the set starts empty. This
/// is the "simulation of different replacement policies" the paper's
/// inference tool compares measurements against (§VI-C1).
///
/// # Examples
///
/// ```
/// use nanobench_cache::policy::{simulate_sequence, PolicyKind};
/// // 2-way LRU: A B A -> miss miss hit
/// let hits = simulate_sequence(&PolicyKind::Lru, 2, 0, &[0, 1, 0]);
/// assert_eq!(hits, vec![false, false, true]);
/// ```
pub fn simulate_sequence(kind: &PolicyKind, assoc: usize, seed: u64, blocks: &[u64]) -> Vec<bool> {
    let mut sim = SetSim::new(kind, assoc, seed);
    blocks.iter().map(|b| sim.access(*b)).collect()
}

/// A standalone single-set simulator (contents + policy).
#[derive(Debug, Clone)]
pub struct SetSim {
    tags: Vec<Option<u64>>,
    policy: Box<dyn SetPolicy>,
}

impl SetSim {
    /// Creates an empty set with `assoc` ways governed by `kind`.
    pub fn new(kind: &PolicyKind, assoc: usize, seed: u64) -> SetSim {
        SetSim {
            tags: vec![None; assoc],
            policy: kind.instantiate(assoc, seed),
        }
    }

    /// Fallible counterpart of [`SetSim::new`].
    ///
    /// # Errors
    ///
    /// Returns the error of [`PolicyKind::validate`].
    pub fn try_new(kind: &PolicyKind, assoc: usize, seed: u64) -> Result<SetSim, String> {
        Ok(SetSim {
            tags: vec![None; assoc],
            policy: kind.try_instantiate(assoc, seed)?,
        })
    }

    /// Accesses `block`; returns `true` on a hit.
    pub fn access(&mut self, block: u64) -> bool {
        let occupied: Vec<bool> = self.tags.iter().map(Option::is_some).collect();
        if let Some(way) = self.tags.iter().position(|t| *t == Some(block)) {
            self.policy.on_hit(way, &occupied);
            true
        } else {
            let way = self.policy.on_miss(&occupied);
            assert!(way < self.tags.len(), "policy returned way out of range");
            self.tags[way] = Some(block);
            false
        }
    }

    /// Returns `true` if `block` is currently cached (without touching
    /// policy state).
    pub fn contains(&self, block: u64) -> bool {
        self.tags.contains(&Some(block))
    }

    /// Empties the set, as after `WBINVD`.
    pub fn flush(&mut self) {
        self.tags.fill(None);
        self.policy.on_flush();
    }

    /// The current contents by way (left = way 0).
    pub fn contents(&self) -> &[Option<u64>] {
        &self.tags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        let kinds = [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Plru,
            PolicyKind::Mru {
                fill_sets_all_ones: false,
            },
            PolicyKind::Mru {
                fill_sets_all_ones: true,
            },
            PolicyKind::Random,
        ];
        for kind in kinds {
            assert_eq!(PolicyKind::parse(&kind.name()).unwrap(), kind);
        }
        for v in all_meaningful_qlru_variants() {
            let kind = PolicyKind::Qlru(v);
            assert_eq!(PolicyKind::parse(&kind.name()).unwrap(), kind, "{}", kind);
        }
    }

    #[test]
    fn validate_rejects_bad_combinations() {
        assert!(PolicyKind::Lru.validate(0).is_err());
        assert!(PolicyKind::Plru.validate(12).is_err());
        assert!(PolicyKind::Plru.validate(128).is_err());
        assert!(PolicyKind::Plru.validate(16).is_ok());
        let mut spec = lru_spec(4);
        assert!(PolicyKind::Permutation(spec.clone()).validate(8).is_err());
        assert!(PolicyKind::Permutation(spec.clone()).validate(4).is_ok());
        spec.miss = vec![0, 0, 1, 2];
        assert!(PolicyKind::Permutation(spec).validate(4).is_err());
    }

    #[test]
    fn try_instantiate_errors_instead_of_panicking() {
        assert!(PolicyKind::Plru.try_instantiate(12, 0).is_err());
        assert!(SetSim::try_new(&PolicyKind::Plru, 12, 0).is_err());
        let sim = SetSim::try_new(&PolicyKind::Plru, 8, 0);
        assert!(sim.is_ok());
    }

    #[test]
    fn simulate_lru_basics() {
        // 2-way LRU, sequence A B C A: C evicts A (LRU), so final A misses.
        let hits = simulate_sequence(&PolicyKind::Lru, 2, 0, &[0, 1, 2, 0]);
        assert_eq!(hits, vec![false, false, false, false]);
        // A B A C B: A hit; C evicts B? no, evicts LRU=B after A touched. B misses.
        let hits = simulate_sequence(&PolicyKind::Lru, 2, 0, &[0, 1, 0, 2, 1]);
        assert_eq!(hits, vec![false, false, true, false, false]);
    }

    #[test]
    fn set_sim_flush() {
        let mut sim = SetSim::new(&PolicyKind::Lru, 4, 0);
        sim.access(1);
        assert!(sim.contains(1));
        sim.flush();
        assert!(!sim.contains(1));
        assert!(!sim.access(1));
    }
}
