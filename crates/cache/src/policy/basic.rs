//! LRU, FIFO, tree-based PLRU and random replacement.

use super::SetPolicy;
use rand::rngs::SmallRng;
use rand::Rng;

/// Least-recently-used replacement.
///
/// Maintains a recency stack; the victim is the least recently used
/// occupied way. Empty ways are filled left to right first.
#[derive(Debug, Clone)]
pub struct Lru {
    /// `stack[0]` is the most recently used way.
    stack: Vec<usize>,
}

impl Lru {
    /// Creates LRU state for a set with `assoc` ways.
    pub fn new(assoc: usize) -> Lru {
        Lru {
            stack: (0..assoc).collect(),
        }
    }

    fn touch(&mut self, way: usize) {
        if let Some(pos) = self.stack.iter().position(|w| *w == way) {
            self.stack.remove(pos);
            self.stack.insert(0, way);
        }
    }
}

impl SetPolicy for Lru {
    fn on_hit(&mut self, way: usize, _occupied: &[bool]) {
        self.touch(way);
    }

    fn on_miss(&mut self, occupied: &[bool]) -> usize {
        let way = match occupied.iter().position(|o| !o) {
            Some(empty) => empty,
            None => *self.stack.last().expect("associativity is positive"),
        };
        self.touch(way);
        way
    }

    fn on_invalidate(&mut self, way: usize) {
        // Move to LRU position so the way is reused predictably.
        if let Some(pos) = self.stack.iter().position(|w| *w == way) {
            self.stack.remove(pos);
            self.stack.push(way);
        }
    }

    fn on_flush(&mut self) {
        let assoc = self.stack.len();
        self.stack.clear();
        self.stack.extend(0..assoc);
    }

    fn reset(&mut self, _seed: u64) {
        self.on_flush();
    }

    fn box_clone(&self) -> Box<dyn SetPolicy> {
        Box::new(self.clone())
    }
}

/// First-in first-out replacement: hits do not update state.
#[derive(Debug, Clone)]
pub struct Fifo {
    /// `queue[0]` is the next victim (oldest).
    queue: Vec<usize>,
}

impl Fifo {
    /// Creates FIFO state for a set with `assoc` ways.
    pub fn new(assoc: usize) -> Fifo {
        Fifo {
            queue: (0..assoc).collect(),
        }
    }
}

impl SetPolicy for Fifo {
    fn on_hit(&mut self, _way: usize, _occupied: &[bool]) {}

    fn on_miss(&mut self, occupied: &[bool]) -> usize {
        let way = match occupied.iter().position(|o| !o) {
            Some(empty) => empty,
            None => self.queue[0],
        };
        if let Some(pos) = self.queue.iter().position(|w| *w == way) {
            self.queue.remove(pos);
            self.queue.push(way);
        }
        way
    }

    fn on_invalidate(&mut self, way: usize) {
        if let Some(pos) = self.queue.iter().position(|w| *w == way) {
            self.queue.remove(pos);
            self.queue.insert(0, way);
        }
    }

    fn on_flush(&mut self) {
        let assoc = self.queue.len();
        self.queue.clear();
        self.queue.extend(0..assoc);
    }

    fn reset(&mut self, _seed: u64) {
        self.on_flush();
    }

    fn box_clone(&self) -> Box<dyn SetPolicy> {
        Box::new(self.clone())
    }
}

/// Tree-based pseudo-LRU (§VI-B1).
///
/// Maintains a complete binary tree of direction bits over the ways. On a
/// miss the victim is found by following the bits from the root; after each
/// access all bits on the path to the accessed way are set to point *away*
/// from it.
///
/// # Panics
///
/// `Plru::new` panics if the associativity is not a power of two.
#[derive(Debug, Clone)]
pub struct Plru {
    assoc: usize,
    /// Heap-layout tree bits packed into a word: bit 1 is the root, node
    /// `i` has children `2i` and `2i+1`. Bit value 0 points left, 1 points
    /// right. Associativity is capped at 64 ways, so the tree's `assoc`
    /// nodes always fit.
    tree: u64,
}

impl Plru {
    /// Creates PLRU state for a set with `assoc` ways (power of two).
    pub fn new(assoc: usize) -> Plru {
        assert!(
            assoc.is_power_of_two(),
            "PLRU requires a power-of-two associativity, got {assoc}"
        );
        assert!(assoc <= 64, "PLRU supports at most 64 ways, got {assoc}");
        Plru { assoc, tree: 0 }
    }

    fn promote(&mut self, way: usize) {
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut hi = self.assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Accessed the left half: point the bit right (away).
                self.tree |= 1 << node;
                node *= 2;
                hi = mid;
            } else {
                self.tree &= !(1 << node);
                node = 2 * node + 1;
                lo = mid;
            }
        }
    }

    fn victim(&self) -> usize {
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut hi = self.assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.tree & (1 << node) != 0 {
                node = 2 * node + 1;
                lo = mid;
            } else {
                node *= 2;
                hi = mid;
            }
        }
        lo
    }
}

impl SetPolicy for Plru {
    fn on_hit(&mut self, way: usize, _occupied: &[bool]) {
        self.promote(way);
    }

    fn on_miss(&mut self, occupied: &[bool]) -> usize {
        let way = match occupied.iter().position(|o| !o) {
            Some(empty) => empty,
            None => self.victim(),
        };
        self.promote(way);
        way
    }

    fn on_invalidate(&mut self, _way: usize) {}

    fn on_flush(&mut self) {
        self.tree = 0;
    }

    fn reset(&mut self, _seed: u64) {
        self.tree = 0;
    }

    fn box_clone(&self) -> Box<dyn SetPolicy> {
        Box::new(self.clone())
    }
}

/// Uniformly random replacement (victim drawn from all ways on a full set).
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    assoc: usize,
    rng: SmallRng,
}

impl RandomPolicy {
    /// Creates random-replacement state for a set with `assoc` ways.
    pub fn new(assoc: usize, rng: SmallRng) -> RandomPolicy {
        RandomPolicy { assoc, rng }
    }
}

impl SetPolicy for RandomPolicy {
    fn on_hit(&mut self, _way: usize, _occupied: &[bool]) {}

    fn on_miss(&mut self, occupied: &[bool]) -> usize {
        match occupied.iter().position(|o| !o) {
            Some(empty) => empty,
            None => self.rng.gen_range(0..self.assoc),
        }
    }

    fn on_invalidate(&mut self, _way: usize) {}

    fn on_flush(&mut self) {}

    fn reset(&mut self, seed: u64) {
        use rand::SeedableRng;
        self.rng = SmallRng::seed_from_u64(seed);
    }

    fn box_clone(&self) -> Box<dyn SetPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{simulate_sequence, PolicyKind, SetSim};

    #[test]
    fn lru_eviction_order() {
        let mut sim = SetSim::new(&PolicyKind::Lru, 4, 0);
        for b in 0..4 {
            sim.access(b);
        }
        sim.access(0); // refresh block 0
        sim.access(100); // evicts LRU = block 1
        assert!(sim.contains(0));
        assert!(!sim.contains(1));
        assert!(sim.contains(2));
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut sim = SetSim::new(&PolicyKind::Fifo, 4, 0);
        for b in 0..4 {
            sim.access(b);
        }
        sim.access(0); // hit; does not change FIFO order
        sim.access(100); // evicts first-in = block 0
        assert!(!sim.contains(0));
        assert!(sim.contains(1));
    }

    #[test]
    fn plru_classic_4way() {
        // Standard 4-way PLRU worked example: fill 0,1,2,3 then hit 0;
        // the next victim must come from the right half and be way 2.
        let mut p = Plru::new(4);
        let occ = [true; 4];
        for w in 0..4 {
            p.promote(w);
        }
        p.on_hit(0, &occ);
        assert_eq!(p.victim(), 2);
    }

    #[test]
    fn plru_is_not_lru() {
        // Search for a sequence distinguishing PLRU from LRU on a 4-way
        // set; such sequences must exist (the policies differ).
        let mut state = 99u64;
        let mut seq: Vec<u64> = Vec::new();
        let found = (0..600).any(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seq.push((state >> 33) % 6);
            simulate_sequence(&PolicyKind::Lru, 4, 0, &seq)
                != simulate_sequence(&PolicyKind::Plru, 4, 0, &seq)
        });
        assert!(found, "PLRU must be observationally different from LRU");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two() {
        let _ = Plru::new(12);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let seq: Vec<u64> = (0..200).map(|i| i % 9).collect();
        let a = simulate_sequence(&PolicyKind::Random, 4, 42, &seq);
        let b = simulate_sequence(&PolicyKind::Random, 4, 42, &seq);
        let c = simulate_sequence(&PolicyKind::Random, 4, 43, &seq);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
