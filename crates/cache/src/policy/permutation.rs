//! Permutation-based replacement policies (§VI-B1).
//!
//! A permutation policy maintains a total order of the blocks in a cache
//! set; a hit permutes the order depending only on the accessed block's
//! position, and a miss replaces the smallest element. Such policies are
//! fully specified by A+1 permutations (plus, in our occupancy-aware
//! setting, the permutations applied when *filling* an empty way, which
//! real hardware does before evicting anything).
//!
//! LRU, FIFO and tree-based PLRU are permutation policies; their canonical
//! specifications are provided by [`lru_spec`], [`fifo_spec`] and
//! [`plru_spec`], and the property tests in this crate verify that the
//! spec-driven policy is behaviourally identical to the native
//! implementations.

use super::SetPolicy;

/// A permutation over positions: `perm[old_position] = new_position`.
pub type Perm = Vec<usize>;

fn is_permutation(p: &[usize]) -> bool {
    let mut seen = vec![false; p.len()];
    for &x in p {
        if x >= p.len() || seen[x] {
            return false;
        }
        seen[x] = true;
    }
    true
}

/// A complete specification of a permutation policy for one associativity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermutationSpec {
    /// The initial order after a flush: `initial_order[pos]` is the way at
    /// that position (position 0 = next victim). For LRU/FIFO this is the
    /// identity; for tree-PLRU it is the order induced by the all-zero tree.
    pub initial_order: Perm,
    /// Permutation applied on a hit at each position.
    pub hit: Vec<Perm>,
    /// Permutation applied when an empty way at the given position is
    /// filled (cache not yet full).
    pub fill: Vec<Perm>,
    /// Permutation applied on a miss in a full set; the new block starts at
    /// position 0 (the victim's position) before the permutation.
    pub miss: Perm,
}

impl PermutationSpec {
    /// The associativity this spec is for.
    pub fn assoc(&self) -> usize {
        self.miss.len()
    }

    /// Checks that all components are valid permutations of the same size.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        let a = self.assoc();
        if self.hit.len() != a || self.fill.len() != a {
            return Err(format!(
                "expected {a} hit and fill permutations, got {} and {}",
                self.hit.len(),
                self.fill.len()
            ));
        }
        for (i, p) in std::iter::once(&self.initial_order)
            .chain(self.hit.iter())
            .chain(self.fill.iter())
            .chain(std::iter::once(&self.miss))
            .enumerate()
        {
            if p.len() != a || !is_permutation(p) {
                return Err(format!("component {i} is not a permutation of 0..{a}"));
            }
        }
        Ok(())
    }
}

/// The permutation that moves position `p` to the top (position A-1) and
/// shifts every position above `p` down by one.
fn promote_perm(assoc: usize, p: usize) -> Perm {
    (0..assoc)
        .map(|pos| {
            if pos == p {
                assoc - 1
            } else if pos > p {
                pos - 1
            } else {
                pos
            }
        })
        .collect()
}

/// Canonical LRU specification: every access promotes to the top.
pub fn lru_spec(assoc: usize) -> PermutationSpec {
    let promote: Vec<Perm> = (0..assoc).map(|p| promote_perm(assoc, p)).collect();
    PermutationSpec {
        initial_order: (0..assoc).collect(),
        hit: promote.clone(),
        fill: promote,
        miss: promote_perm(assoc, 0),
    }
}

/// Canonical FIFO specification: hits change nothing; insertions (fills and
/// misses) go to the top.
pub fn fifo_spec(assoc: usize) -> PermutationSpec {
    let identity: Perm = (0..assoc).collect();
    PermutationSpec {
        initial_order: identity.clone(),
        hit: vec![identity; assoc],
        fill: (0..assoc).map(|p| promote_perm(assoc, p)).collect(),
        miss: promote_perm(assoc, 0),
    }
}

/// Tree-PLRU position of `way` for the given tree bits (heap layout, node 1
/// is the root; `false` points left). The position is the sum over the path
/// of `2^depth` for each bit pointing away from the way.
fn plru_position(assoc: usize, tree: &[bool], way: usize) -> usize {
    let mut node = 1usize;
    let mut lo = 0usize;
    let mut hi = assoc;
    let mut weight = 1usize;
    let mut pos = 0usize;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if way < mid {
            if tree[node] {
                pos += weight; // bit points right, away from the left-side way
            }
            node *= 2;
            hi = mid;
        } else {
            if !tree[node] {
                pos += weight;
            }
            node = 2 * node + 1;
            lo = mid;
        }
        weight *= 2;
    }
    pos
}

fn plru_promote(assoc: usize, tree: &mut [bool], way: usize) {
    let mut node = 1usize;
    let mut lo = 0usize;
    let mut hi = assoc;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if way < mid {
            tree[node] = true;
            node *= 2;
            hi = mid;
        } else {
            tree[node] = false;
            node = 2 * node + 1;
            lo = mid;
        }
    }
}

/// Derives the canonical tree-PLRU permutation specification by simulating
/// the tree (§VI-B1 notes PLRU is a permutation policy).
///
/// # Panics
///
/// Panics if `assoc` is not a power of two.
pub fn plru_spec(assoc: usize) -> PermutationSpec {
    assert!(
        assoc.is_power_of_two(),
        "PLRU requires power-of-two associativity"
    );
    // From the all-zero tree, way w sits at position plru_position(w).
    // Hitting the way at position p promotes it; the permutation is read
    // off by comparing positions before and after.
    let tree0 = vec![false; assoc];
    let pos0: Vec<usize> = (0..assoc)
        .map(|w| plru_position(assoc, &tree0, w))
        .collect();
    // way_at[p] = way at position p in the initial state.
    let mut way_at = vec![0usize; assoc];
    for (w, &p) in pos0.iter().enumerate() {
        way_at[p] = w;
    }
    let mut hit = Vec::with_capacity(assoc);
    for p in 0..assoc {
        let mut tree = tree0.clone();
        plru_promote(assoc, &mut tree, way_at[p]);
        let perm: Perm = (0..assoc)
            .map(|old| plru_position(assoc, &tree, way_at[old]))
            .collect();
        hit.push(perm);
    }
    // A fill/miss also just promotes the accessed way.
    let miss = hit[0].clone();
    PermutationSpec {
        initial_order: way_at,
        fill: hit.clone(),
        hit,
        miss,
    }
}

/// A policy driven by an explicit [`PermutationSpec`].
#[derive(Debug, Clone)]
pub struct PermutationPolicy {
    spec: PermutationSpec,
    /// `order[pos]` = way currently at that position; position 0 is the
    /// next victim.
    order: Vec<usize>,
}

impl PermutationPolicy {
    /// Creates policy state in the canonical initial order (way i at
    /// position i).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`PermutationSpec::validate`]; use
    /// [`PermutationPolicy::try_new`] for specs from user input.
    pub fn new(spec: PermutationSpec) -> PermutationPolicy {
        match PermutationPolicy::try_new(spec) {
            Ok(policy) => policy,
            Err(e) => panic!("invalid permutation spec: {e}"),
        }
    }

    /// Fallible counterpart of [`PermutationPolicy::new`].
    ///
    /// # Errors
    ///
    /// Returns the error of [`PermutationSpec::validate`].
    pub fn try_new(spec: PermutationSpec) -> Result<PermutationPolicy, String> {
        spec.validate()?;
        let order = spec.initial_order.clone();
        Ok(PermutationPolicy { spec, order })
    }

    fn apply(&mut self, perm_idx: PermChoice) {
        let perm = match perm_idx {
            PermChoice::Hit(p) => &self.spec.hit[p],
            PermChoice::Fill(p) => &self.spec.fill[p],
            PermChoice::Miss => &self.spec.miss,
        };
        let mut new_order = vec![usize::MAX; self.order.len()];
        for (old_pos, &way) in self.order.iter().enumerate() {
            new_order[perm[old_pos]] = way;
        }
        self.order = new_order;
    }

    fn position_of(&self, way: usize) -> usize {
        self.order
            .iter()
            .position(|w| *w == way)
            .expect("way is always present in the order")
    }
}

enum PermChoice {
    Hit(usize),
    Fill(usize),
    Miss,
}

impl SetPolicy for PermutationPolicy {
    fn on_hit(&mut self, way: usize, _occupied: &[bool]) {
        let p = self.position_of(way);
        self.apply(PermChoice::Hit(p));
    }

    fn on_miss(&mut self, occupied: &[bool]) -> usize {
        if let Some(empty) = occupied.iter().position(|o| !o) {
            let p = self.position_of(empty);
            self.apply(PermChoice::Fill(p));
            empty
        } else {
            let victim = self.order[0];
            self.apply(PermChoice::Miss);
            victim
        }
    }

    fn on_invalidate(&mut self, _way: usize) {}

    fn on_flush(&mut self) {
        self.order.clone_from(&self.spec.initial_order);
    }

    fn reset(&mut self, _seed: u64) {
        self.order.clone_from(&self.spec.initial_order);
    }

    fn box_clone(&self) -> Box<dyn SetPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{simulate_sequence, PolicyKind};

    #[test]
    fn specs_validate() {
        for a in [2usize, 4, 8, 16] {
            lru_spec(a).validate().unwrap();
            fifo_spec(a).validate().unwrap();
            plru_spec(a).validate().unwrap();
        }
        plru_spec(12_usize.next_power_of_two()).validate().unwrap();
    }

    #[test]
    fn invalid_spec_rejected() {
        let mut spec = lru_spec(4);
        spec.miss = vec![0, 0, 1, 2];
        assert!(spec.validate().is_err());
        let mut spec = lru_spec(4);
        spec.initial_order = vec![0, 1, 2, 2];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn plru_initial_order_is_tree_induced() {
        // All-zero 4-way tree: positions are [w0, w2, w1, w3].
        assert_eq!(plru_spec(4).initial_order, vec![0, 2, 1, 3]);
    }

    fn pseudo_random_seq(len: usize, universe: u64, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % universe
            })
            .collect()
    }

    #[test]
    fn spec_driven_lru_matches_native() {
        for assoc in [2usize, 4, 8] {
            let spec = PolicyKind::Permutation(lru_spec(assoc));
            for seed in 0..20 {
                let seq = pseudo_random_seq(100, assoc as u64 + 3, seed);
                assert_eq!(
                    simulate_sequence(&PolicyKind::Lru, assoc, 0, &seq),
                    simulate_sequence(&spec, assoc, 0, &seq),
                    "assoc {assoc} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn spec_driven_fifo_matches_native() {
        for assoc in [2usize, 4, 8] {
            let spec = PolicyKind::Permutation(fifo_spec(assoc));
            for seed in 0..20 {
                let seq = pseudo_random_seq(100, assoc as u64 + 3, seed);
                assert_eq!(
                    simulate_sequence(&PolicyKind::Fifo, assoc, 0, &seq),
                    simulate_sequence(&spec, assoc, 0, &seq),
                    "assoc {assoc} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn spec_driven_plru_matches_native() {
        for assoc in [2usize, 4, 8, 16] {
            let spec = PolicyKind::Permutation(plru_spec(assoc));
            for seed in 0..30 {
                let seq = pseudo_random_seq(150, assoc as u64 + 5, seed);
                assert_eq!(
                    simulate_sequence(&PolicyKind::Plru, assoc, 0, &seq),
                    simulate_sequence(&spec, assoc, 0, &seq),
                    "assoc {assoc} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn plru_positions_all_zero_tree() {
        // 8-way, all bits zero: way 0 is the victim (position 0) and way 4
        // (other side of the root) is position 1.
        let tree = vec![false; 8];
        assert_eq!(plru_position(8, &tree, 0), 0);
        assert_eq!(plru_position(8, &tree, 4), 1);
        assert_eq!(plru_position(8, &tree, 2), 2);
        // The positions form a permutation.
        let mut pos: Vec<usize> = (0..8).map(|w| plru_position(8, &tree, w)).collect();
        pos.sort_unstable();
        assert_eq!(pos, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn lru_and_plru_specs_differ() {
        assert_ne!(lru_spec(4), plru_spec(4));
        assert_ne!(lru_spec(4), fifo_spec(4));
    }
}
