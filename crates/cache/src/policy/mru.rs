//! The MRU (bit-PLRU / PLRUm / NRU) policy and its Sandy Bridge variant.

use super::SetPolicy;

/// One-status-bit-per-line MRU replacement (§VI-B2 of the paper).
///
/// Each line has one bit. An access sets the line's bit to 0; if it was the
/// last bit set to 1, the bits of *all other* lines are set to 1. On a miss
/// the leftmost line whose bit is 1 is replaced.
///
/// The Sandy Bridge L3 uses a variant (`MRU*` in Table I) that keeps all
/// bits set to 1 while the cache is not yet full after a `WBINVD`: fills do
/// not clear the inserted line's bit until the set is full.
#[derive(Debug, Clone)]
pub struct Mru {
    bits: Vec<bool>,
    fill_sets_all_ones: bool,
}

impl Mru {
    /// Creates MRU state for a set with `assoc` ways.
    pub fn new(assoc: usize, fill_sets_all_ones: bool) -> Mru {
        Mru {
            bits: vec![true; assoc],
            fill_sets_all_ones,
        }
    }

    /// Applies the access rule: clear the bit, saturating by setting all
    /// others when the last 1-bit disappears.
    fn touch(&mut self, way: usize) {
        let was_last_one = self.bits[way] && self.bits.iter().filter(|b| **b).count() == 1;
        self.bits[way] = false;
        if was_last_one {
            for (w, bit) in self.bits.iter_mut().enumerate() {
                if w != way {
                    *bit = true;
                }
            }
        }
    }

    /// Exposes the status bits (for tests and debugging).
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }
}

impl SetPolicy for Mru {
    fn on_hit(&mut self, way: usize, _occupied: &[bool]) {
        self.touch(way);
    }

    fn on_miss(&mut self, occupied: &[bool]) -> usize {
        match occupied.iter().position(|o| !o) {
            Some(empty) => {
                if self.fill_sets_all_ones {
                    // Sandy Bridge variant: while filling, all bits stay 1.
                    self.bits.fill(true);
                } else {
                    self.touch(empty);
                }
                empty
            }
            None => {
                let way = self.bits.iter().position(|b| *b).unwrap_or(0); // all bits 0 cannot persist, but stay safe
                self.touch(way);
                way
            }
        }
    }

    fn on_invalidate(&mut self, way: usize) {
        self.bits[way] = true;
    }

    fn on_flush(&mut self) {
        self.bits.fill(true);
    }

    fn reset(&mut self, _seed: u64) {
        self.bits.fill(true);
    }

    fn box_clone(&self) -> Box<dyn SetPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{simulate_sequence, PolicyKind, SetSim};

    #[test]
    fn mru_saturation_rule() {
        let mut m = Mru::new(4, false);
        let occ = [true; 4];
        // Clear bits 0..2; when bit 3 (the last 1) is cleared, all others
        // must be re-set.
        for w in 0..3 {
            m.on_hit(w, &occ);
        }
        assert_eq!(m.bits(), &[false, false, false, true]);
        m.on_hit(3, &occ);
        assert_eq!(m.bits(), &[true, true, true, false]);
    }

    #[test]
    fn mru_victim_is_leftmost_one() {
        let mut sim = SetSim::new(
            &PolicyKind::Mru {
                fill_sets_all_ones: false,
            },
            4,
            0,
        );
        for b in 0..4u64 {
            sim.access(b);
        }
        // Base variant: fills touch bits. After the 4th fill the saturation
        // rule leaves bits [1,1,1,0], so the next victim is way 0.
        sim.access(100);
        assert!(!sim.contains(0));
        assert!(sim.contains(3));
    }

    #[test]
    fn sandy_bridge_variant_differs_after_fill_hits() {
        // Base MRU and the WBINVD variant diverge on some sequence with
        // hits during the fill phase (that divergence is what Table I's
        // `MRU*` entry reports). Search for a witness.
        let base_kind = PolicyKind::Mru {
            fill_sets_all_ones: false,
        };
        let sandy_kind = PolicyKind::Mru {
            fill_sets_all_ones: true,
        };
        let mut state = 7u64;
        let mut seq: Vec<u64> = Vec::new();
        let found = (0..600).any(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seq.push((state >> 33) % 6);
            simulate_sequence(&base_kind, 4, 0, &seq) != simulate_sequence(&sandy_kind, 4, 0, &seq)
        });
        assert!(found, "MRU* must be observationally different from MRU");
    }

    #[test]
    fn mru_is_not_lru_or_fifo() {
        let seq: Vec<u64> = vec![0, 1, 2, 3, 0, 1, 4, 0, 2, 5, 0, 1, 2, 3];
        let mru = simulate_sequence(
            &PolicyKind::Mru {
                fill_sets_all_ones: false,
            },
            4,
            0,
            &seq,
        );
        assert_ne!(mru, simulate_sequence(&PolicyKind::Lru, 4, 0, &seq));
        assert_ne!(mru, simulate_sequence(&PolicyKind::Fifo, 4, 0, &seq));
    }
}
