//! The parameterized QLRU (Quad-age LRU / 2-bit RRIP) policy family with
//! the paper's naming scheme (§VI-B2).
//!
//! A variant is described by a name of the form
//! `QLRU_Hxy_M{x|Rpx}_R{0,1,2}_U{0,1,2,3}[_UMO]`:
//!
//! * **Hxy** — hit promotion: age 3 → `x`, age 2 → `y`, otherwise → 0.
//! * **Mx / MRpx** — insertion age on a miss (`MRpx`: age `x` with
//!   probability 1/p, age 3 otherwise).
//! * **R0/R1/R2** — where a block is inserted / which block is replaced.
//! * **U0..U3** — how ages are updated when no block has age 3 anymore.
//! * **UMO** — the no-age-3 check happens only on a miss, before victim
//!   selection ("update on miss only").

use super::SetPolicy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt;

/// Hit promotion function `Hxy` (§VI-B2): maps the current age of a block
/// that was hit to its new age.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HitFunc {
    /// New age for a block whose age was 3 (x ∈ {0, 1, 2}).
    pub from3: u8,
    /// New age for a block whose age was 2 (y ∈ {0, 1}).
    pub from2: u8,
}

impl HitFunc {
    /// Applies the promotion function.
    pub fn apply(self, age: u8) -> u8 {
        match age {
            3 => self.from3,
            2 => self.from2,
            _ => 0,
        }
    }
}

/// Insertion age on a miss: deterministic `Mx`, or probabilistic `MRpx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsertAge {
    /// Always insert with the given age.
    Fixed(u8),
    /// Insert with age `age` with probability `1/p`, and age 3 otherwise
    /// (the paper writes this `MRpx`, e.g. `MR161` for p = 16, x = 1).
    Probabilistic {
        /// Denominator p of the 1/p probability.
        p: u32,
        /// Age used with probability 1/p.
        age: u8,
    },
}

/// Replacement / insert-location variant (§VI-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RVariant {
    /// Fill leftmost empty; replace leftmost age-3 block; undefined if none
    /// (this combination never arises in the meaningful variants).
    R0,
    /// Like R0, but when no age-3 block exists, replace the leftmost block.
    R1,
    /// Like R0, but fill the *rightmost* empty location while not full.
    R2,
}

/// Age-update variant applied when no block has age 3 (§VI-B2). `i` is the
/// accessed location and `M` the maximum current age.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UVariant {
    /// `age'(b) = age(b) + (3 - M)` for all blocks.
    U0,
    /// Like U0 but the accessed block keeps its age.
    U1,
    /// `age'(b) = age(b) + 1` for all blocks.
    U2,
    /// Like U2 but the accessed block keeps its age.
    U3,
}

/// A fully specified QLRU variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QlruVariant {
    /// Hit promotion policy.
    pub hit: HitFunc,
    /// Insertion age.
    pub insert: InsertAge,
    /// Insert-location / replacement variant.
    pub replace: RVariant,
    /// Age-update variant.
    pub update: UVariant,
    /// Whether ages are only updated on a miss ("update on miss only").
    pub umo: bool,
}

impl QlruVariant {
    /// The paper's name for this variant, e.g. `QLRU_H11_M1_R0_U0` or
    /// `QLRU_H00_MR162_R0_U0_UMO`.
    pub fn name(&self) -> String {
        let h = format!("H{}{}", self.hit.from3, self.hit.from2);
        let m = match self.insert {
            InsertAge::Fixed(age) => format!("M{age}"),
            InsertAge::Probabilistic { p, age } => format!("MR{p}{age}"),
        };
        let r = match self.replace {
            RVariant::R0 => "R0",
            RVariant::R1 => "R1",
            RVariant::R2 => "R2",
        };
        let u = match self.update {
            UVariant::U0 => "U0",
            UVariant::U1 => "U1",
            UVariant::U2 => "U2",
            UVariant::U3 => "U3",
        };
        let umo = if self.umo { "_UMO" } else { "" };
        format!("QLRU_{h}_{m}_{r}_{u}{umo}")
    }

    /// Parses a name produced by [`QlruVariant::name`].
    ///
    /// # Errors
    ///
    /// Returns an error string for malformed names.
    pub fn parse(name: &str) -> Result<QlruVariant, String> {
        let rest = name
            .strip_prefix("QLRU_")
            .ok_or_else(|| format!("`{name}` does not start with QLRU_"))?;
        let (rest, umo) = match rest.strip_suffix("_UMO") {
            Some(r) => (r, true),
            None => (rest, false),
        };
        let parts: Vec<&str> = rest.split('_').collect();
        if parts.len() != 4 {
            return Err(format!("`{name}` does not have 4 components"));
        }
        let h = parts[0]
            .strip_prefix('H')
            .filter(|s| s.len() == 2)
            .ok_or_else(|| format!("bad H component in `{name}`"))?;
        let from3 = h[0..1].parse::<u8>().map_err(|e| e.to_string())?;
        let from2 = h[1..2].parse::<u8>().map_err(|e| e.to_string())?;
        let m = parts[1]
            .strip_prefix('M')
            .ok_or_else(|| format!("bad M component in `{name}`"))?;
        let insert = if let Some(rp) = m.strip_prefix('R') {
            // MRpx: all but the last digit are p, the last digit is the age.
            if rp.len() < 2 {
                return Err(format!("bad MR component in `{name}`"));
            }
            let (p_str, age_str) = rp.split_at(rp.len() - 1);
            InsertAge::Probabilistic {
                p: p_str
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?,
                age: age_str
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?,
            }
        } else {
            InsertAge::Fixed(
                m.parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?,
            )
        };
        let replace = match parts[2] {
            "R0" => RVariant::R0,
            "R1" => RVariant::R1,
            "R2" => RVariant::R2,
            other => return Err(format!("bad R component `{other}`")),
        };
        let update = match parts[3] {
            "U0" => UVariant::U0,
            "U1" => UVariant::U1,
            "U2" => UVariant::U2,
            "U3" => UVariant::U3,
            other => return Err(format!("bad U component `{other}`")),
        };
        Ok(QlruVariant {
            hit: HitFunc { from3, from2 },
            insert,
            replace,
            update,
            umo,
        })
    }

    /// Whether the insertion age is probabilistic (`MRpx`).
    pub fn is_probabilistic(&self) -> bool {
        matches!(self.insert, InsertAge::Probabilistic { .. })
    }
}

impl fmt::Display for QlruVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Enumerates all *meaningful deterministic* QLRU variants (§VI-B2).
///
/// Excluded combinations:
/// * `R0` with `U2`/`U3` — R0 requires an age-3 block to always exist, which
///   those update rules do not guarantee (explicitly noted in the paper);
/// * insertion age `M3` with hit promotion leaving age 3 unreachable is kept
///   (the inference tool handles observational equivalence separately).
///
/// The probabilistic `MRpx` variants are not enumerated: they cannot be
/// identified by exact hit-count matching and are detected via age graphs
/// (§VI-C2), as in the paper.
pub fn all_meaningful_qlru_variants() -> Vec<QlruVariant> {
    let mut out = Vec::new();
    for from3 in 0..=2u8 {
        for from2 in 0..=1u8 {
            for insert_age in 0..=3u8 {
                for replace in [RVariant::R0, RVariant::R1, RVariant::R2] {
                    for update in [UVariant::U0, UVariant::U1, UVariant::U2, UVariant::U3] {
                        if replace == RVariant::R0 && matches!(update, UVariant::U2 | UVariant::U3)
                        {
                            continue;
                        }
                        for umo in [false, true] {
                            out.push(QlruVariant {
                                hit: HitFunc { from3, from2 },
                                insert: InsertAge::Fixed(insert_age),
                                replace,
                                update,
                                umo,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// Per-set QLRU state.
#[derive(Debug, Clone)]
pub struct QlruPolicy {
    variant: QlruVariant,
    ages: Vec<u8>,
    rng: SmallRng,
}

impl QlruPolicy {
    /// Creates QLRU state for a set with `assoc` ways.
    pub fn new(assoc: usize, variant: QlruVariant, rng: SmallRng) -> QlruPolicy {
        QlruPolicy {
            variant,
            ages: vec![3; assoc],
            rng,
        }
    }

    /// The current per-way ages (for tests and debugging).
    pub fn ages(&self) -> &[u8] {
        &self.ages
    }

    fn draw_insert_age(&mut self) -> u8 {
        match self.variant.insert {
            InsertAge::Fixed(age) => age,
            InsertAge::Probabilistic { p, age } => {
                if self.rng.gen_range(0..p) == 0 {
                    age
                } else {
                    3
                }
            }
        }
    }

    /// Applies the U-update if no occupied block has age 3. `accessed` is
    /// the location `i` from the paper's definition.
    fn maybe_update(&mut self, accessed: usize, occupied: &[bool]) {
        let any3 = self
            .ages
            .iter()
            .zip(occupied)
            .any(|(a, occ)| *occ && *a == 3);
        if any3 {
            return;
        }
        let max_age = self
            .ages
            .iter()
            .zip(occupied)
            .filter(|(_, occ)| **occ)
            .map(|(a, _)| *a)
            .max()
            .unwrap_or(0);
        let delta3 = 3 - max_age;
        for (w, age) in self.ages.iter_mut().enumerate() {
            if !occupied.get(w).copied().unwrap_or(false) {
                continue;
            }
            let skip_accessed = matches!(self.variant.update, UVariant::U1 | UVariant::U3);
            if skip_accessed && w == accessed {
                continue;
            }
            let delta = match self.variant.update {
                UVariant::U0 | UVariant::U1 => delta3,
                UVariant::U2 | UVariant::U3 => 1,
            };
            *age = (*age + delta).min(3);
        }
    }

    fn pick_victim(&self, occupied: &[bool]) -> usize {
        let leftmost_3 = self
            .ages
            .iter()
            .zip(occupied)
            .position(|(a, occ)| *occ && *a == 3);
        // With no age-3 block, R1 replaces the leftmost; R0/R2 are
        // undefined here (the paper excludes such combinations) — fall back
        // to leftmost so behaviour stays total and deterministic.
        leftmost_3.unwrap_or(0)
    }
}

impl SetPolicy for QlruPolicy {
    fn on_hit(&mut self, way: usize, occupied: &[bool]) {
        self.ages[way] = self.variant.hit.apply(self.ages[way]);
        if !self.variant.umo {
            self.maybe_update(way, occupied);
        }
    }

    fn wants_occupied_on_hit(&self) -> bool {
        // UMO variants only run the update heuristic on misses.
        !self.variant.umo
    }

    fn on_miss(&mut self, occupied: &[bool]) -> usize {
        // UMO: the no-age-3 check happens on the miss, before victim
        // selection. The "accessed" block for U1/U3 does not exist yet; the
        // update applies to all blocks (use an out-of-range index).
        if self.variant.umo {
            self.maybe_update(usize::MAX, occupied);
        }
        let way = if let Some(empty) = find_empty(occupied, self.variant.replace) {
            empty
        } else {
            self.pick_victim(occupied)
        };
        self.ages[way] = self.draw_insert_age();
        if !self.variant.umo {
            // After the fill, the inserted block is the accessed one.
            let mut occ_after = occupied.to_vec();
            if way < occ_after.len() {
                occ_after[way] = true;
            }
            self.maybe_update(way, &occ_after);
        }
        way
    }

    fn on_invalidate(&mut self, way: usize) {
        self.ages[way] = 3;
    }

    fn on_flush(&mut self) {
        self.ages.fill(3);
    }

    fn reset(&mut self, seed: u64) {
        use rand::SeedableRng;
        self.ages.fill(3);
        self.rng = SmallRng::seed_from_u64(seed);
    }

    fn box_clone(&self) -> Box<dyn SetPolicy> {
        Box::new(self.clone())
    }
}

fn find_empty(occupied: &[bool], replace: RVariant) -> Option<usize> {
    match replace {
        RVariant::R0 | RVariant::R1 => occupied.iter().position(|o| !o),
        RVariant::R2 => occupied.iter().rposition(|o| !o),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{simulate_sequence, PolicyKind, SetSim};

    fn v(name: &str) -> QlruVariant {
        QlruVariant::parse(name).unwrap()
    }

    #[test]
    fn names_round_trip() {
        for variant in all_meaningful_qlru_variants() {
            assert_eq!(QlruVariant::parse(&variant.name()).unwrap(), variant);
        }
        // The probabilistic Ivy Bridge policy from §VI-D.
        let ivy = v("QLRU_H11_MR161_R1_U2");
        assert_eq!(ivy.insert, InsertAge::Probabilistic { p: 16, age: 1 });
        assert_eq!(ivy.name(), "QLRU_H11_MR161_R1_U2");
    }

    #[test]
    fn paper_rrip_names() {
        // §VI-B2: SRRIP-HP = QLRU_H00_M2_R0_U0_UMO; BRRIP = QLRU_H00_MRp2_R0_U0_UMO.
        let srrip = v("QLRU_H00_M2_R0_U0_UMO");
        assert!(srrip.umo);
        assert_eq!(srrip.insert, InsertAge::Fixed(2));
        assert_eq!(srrip.hit.apply(3), 0);
        assert_eq!(srrip.hit.apply(2), 0);
    }

    #[test]
    fn meaningful_variant_count() {
        // 6 hit funcs × 4 insertion ages × (R0 with U0/U1 + R1/R2 with 4 Us)
        // × 2 UMO = 6 * 4 * (2 + 8) * 2 = 480.
        assert_eq!(all_meaningful_qlru_variants().len(), 480);
    }

    #[test]
    fn insertion_location_r2_vs_r1() {
        // While filling an empty 4-way set, R1 fills left to right, R2
        // right to left.
        let kind_r1 = PolicyKind::Qlru(v("QLRU_H00_M1_R1_U1"));
        let kind_r2 = PolicyKind::Qlru(v("QLRU_H00_M1_R2_U1"));
        let mut r1 = SetSim::new(&kind_r1, 4, 0);
        let mut r2 = SetSim::new(&kind_r2, 4, 0);
        for b in 10..13u64 {
            r1.access(b);
            r2.access(b);
        }
        assert_eq!(r1.contents()[0], Some(10));
        assert_eq!(r2.contents()[3], Some(10));
        assert_eq!(r2.contents()[1], Some(12));
    }

    #[test]
    fn skylake_l3_age_dynamics() {
        // Hand-traced dynamics of QLRU_H11_M1_R0_U0 (the Skylake/Kaby/
        // Coffee/Cannon Lake L3 policy per Table I) on a 4-way set:
        // the first fill is inserted with age 1, and because no block has
        // age 3 afterwards, U0 renormalizes it to 3. Subsequent fills stay
        // at age 1 while an age-3 block exists.
        let variant = v("QLRU_H11_M1_R0_U0");
        let mut p = QlruPolicy::new(4, variant, rand::SeedableRng::seed_from_u64(0));
        let mut occupied = vec![false; 4];
        let w0 = p.on_miss(&occupied);
        occupied[w0] = true;
        assert_eq!(w0, 0, "R0 fills leftmost empty");
        assert_eq!(p.ages()[0], 3, "U0 renormalizes the lone block to age 3");
        let w1 = p.on_miss(&occupied);
        occupied[w1] = true;
        assert_eq!(w1, 1);
        assert_eq!(
            p.ages()[1],
            1,
            "insertion age 1 persists while an age-3 block exists"
        );
        // A hit on way 0 takes it from 3 to 1 (H11); then no age-3 block
        // remains among {3->1, 1}, so U0 adds 2 to every occupied block.
        p.on_hit(0, &occupied);
        assert_eq!(&p.ages()[..2], &[3, 3]);
    }

    #[test]
    fn distinct_variants_are_distinguishable() {
        // The Skylake L2 and Cannon Lake L2 policies (Table I) differ only
        // in the R component; verify they are observationally different.
        let a = PolicyKind::Qlru(v("QLRU_H00_M1_R2_U1"));
        let b = PolicyKind::Qlru(v("QLRU_H00_M1_R0_U1"));
        let mut state = 3u64;
        let mut seq: Vec<u64> = Vec::new();
        let found = (0..600).any(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seq.push((state >> 33) % 7);
            simulate_sequence(&a, 4, 0, &seq) != simulate_sequence(&b, 4, 0, &seq)
        });
        assert!(found, "R0 and R2 variants must differ");
    }

    #[test]
    fn umo_differs_from_non_umo() {
        let a = PolicyKind::Qlru(v("QLRU_H00_M2_R0_U0"));
        let b = PolicyKind::Qlru(v("QLRU_H00_M2_R0_U0_UMO"));
        // Find some sequence over 5 blocks on a 4-way set that separates them.
        let mut found = false;
        let mut seq = Vec::new();
        let mut state = 12345u64;
        for len in 0..400 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seq.push(state >> 33 & 7);
            if len > 8 {
                let ha = simulate_sequence(&a, 4, 0, &seq);
                let hb = simulate_sequence(&b, 4, 0, &seq);
                if ha != hb {
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "UMO variant should be observationally different");
    }

    #[test]
    fn probabilistic_insertion_rates() {
        // MR161: roughly 1/16 of inserted blocks get age 1.
        let variant = v("QLRU_H11_MR161_R1_U2");
        let mut policy = QlruPolicy::new(16, variant, rand::SeedableRng::seed_from_u64(7));
        let mut age1 = 0usize;
        let n = 4096;
        let occupied = vec![true; 16];
        for _ in 0..n {
            let way = policy.on_miss(&occupied);
            // Read the age right after insertion (U2 may bump it, but the
            // inserted value is what draw produced; check both 1 and 2).
            if policy.ages()[way] <= 2 {
                age1 += 1;
            }
        }
        let rate = age1 as f64 / n as f64;
        assert!(
            (0.03..0.10).contains(&rate),
            "expected ~1/16 low-age insertions, got {rate}"
        );
    }

    #[test]
    fn r0_fallback_is_total() {
        // Construct a state with no age-3 block under R0 and verify the
        // policy still returns a valid way instead of panicking.
        let variant = v("QLRU_H00_M0_R0_U1");
        let mut policy = QlruPolicy::new(4, variant, rand::SeedableRng::seed_from_u64(0));
        let occupied = vec![true; 4];
        for _ in 0..20 {
            let way = policy.on_miss(&occupied);
            assert!(way < 4);
        }
    }
}
