//! Golden tests pinning the MESI coherence transitions of the multi-core
//! hierarchy for small fixed traces. If a protocol change alters any
//! state, hit level, snoop outcome, or invalidation count in these
//! sequences, the test fails with the exact step that moved.

use nanobench_cache::hierarchy::{CacheHierarchy, HitLevel, SnoopResult};
use nanobench_cache::presets::cpu_by_microarch;
use nanobench_cache::LineState;

/// One observed step: `(core, is_write, level, snoop, invalidated,
/// state_core0, state_core1)` compressed into a compact string.
fn step(h: &mut CacheHierarchy, core: usize, paddr: u64, is_write: bool) -> String {
    let r = h.access_from(core, paddr, is_write);
    let level = match r.level {
        HitLevel::L1 => "L1",
        HitLevel::L2 => "L2",
        HitLevel::L3 => "L3",
        HitLevel::Memory => "Mem",
    };
    let snoop = match r.snoop {
        SnoopResult::Miss => "-",
        SnoopResult::Hit => "hit",
        SnoopResult::HitM => "hitm",
    };
    format!(
        "c{core}{} {level} {snoop} i{} {}{}",
        if is_write { "W" } else { "R" },
        r.invalidated,
        h.line_state(0, paddr).letter(),
        h.line_state(1, paddr).letter(),
    )
}

fn skylake_2core() -> CacheHierarchy {
    let cfg = cpu_by_microarch("Skylake").unwrap().hierarchy_config();
    let mut h = CacheHierarchy::new_multi(&cfg, 7, 2);
    for core in 0..2 {
        h.prefetchers_of_mut(core).disable_all();
    }
    h
}

#[test]
fn false_sharing_trace_transitions_are_pinned() {
    let mut h = skylake_2core();
    let line = 0x4_0000;
    let trace = [
        (0usize, line, true), // c0 write-miss: fetch for ownership -> M
        (0, line, false),     // c0 read hit, no transition
        (1, line, true),      // c1 write: snoops c0's M copy, kills it
        (1, line, true),      // c1 write hit on its own M copy: silent
        (0, line, false),     // c0 read: HITM forward, both end Shared
        (1, line, true),      // c1 write on S: RFO upgrade, invalidates c0
        (0, line, true),      // c0 write: HITM, steals ownership
        (1, line, false),     // c1 read: HITM forward, both Shared
        (0, line, false),     // c0 read hit on its S copy
    ];
    let got: Vec<String> = trace
        .iter()
        .map(|&(core, paddr, w)| step(&mut h, core, paddr, w))
        .collect();
    let expected = [
        "c0W Mem - i0 MI",
        "c0R L1 - i0 MI",
        "c1W L3 hitm i1 IM",
        "c1W L1 - i0 IM",
        "c0R L3 hitm i0 SS",
        "c1W L1 hit i1 IM",
        "c0W L3 hitm i1 MI",
        "c1R L3 hitm i0 SS",
        "c0R L1 - i0 SS",
    ];
    assert_eq!(got, expected, "MESI transition trace moved");
    assert_eq!(h.invalidations(), 3);
    let snoops: u64 = h.snoop_hits().iter().sum();
    assert_eq!(snoops, 5, "five accesses found a remote copy");
}

#[test]
fn read_sharing_trace_stays_clean() {
    // Two cores reading the same line: Exclusive on first touch, Shared
    // once the second core joins, and no invalidation traffic at all.
    let mut h = skylake_2core();
    let line = 0x8_0000;
    let got: Vec<String> = [(0usize, false), (1, false), (0, false), (1, false)]
        .iter()
        .map(|&(core, w)| step(&mut h, core, line, w))
        .collect();
    let expected = [
        "c0R Mem - i0 EI",
        "c1R L3 hit i0 SS",
        "c0R L1 - i0 SS",
        "c1R L1 - i0 SS",
    ];
    assert_eq!(got, expected);
    assert_eq!(h.invalidations(), 0);
}

#[test]
fn snoop_latencies_follow_the_config() {
    let mut h = skylake_2core();
    let lat = h.config().latencies;
    let line = 0xC_0000;
    h.access_from(0, line, true); // c0 owns the line Modified
    let r = h.access_from(1, line, false);
    assert_eq!(r.snoop, SnoopResult::HitM);
    assert_eq!(
        r.latency, lat.snoop_hitm,
        "HITM forwards at the cross-core latency"
    );
    let clean = 0xC_1000;
    h.access_from(0, clean, false); // Exclusive, clean, in core 0
    let r = h.access_from(1, clean, false);
    assert_eq!(r.snoop, SnoopResult::Hit);
    assert_eq!(r.latency, lat.l3, "clean snoop hits serve at L3 latency");
}

#[test]
fn inclusive_l3_eviction_back_invalidates_all_cores() {
    // Fill one L3 set past its associativity from core 0 and verify a
    // line core 1 holds gets back-invalidated when the L3 evicts it.
    let mut h = skylake_2core();
    let line = 0x10_0000;
    h.access_from(1, line, false);
    assert_eq!(h.line_state(1, line), LineState::Exclusive);
    let (slice, set) = h.l3_location(line);
    let assoc = h.config().l3.assoc;
    // Generate enough conflicting lines (same slice and set) to evict.
    let mut conflicts = 0;
    let mut addr = line;
    while conflicts < 4 * assoc {
        addr += 64 * h.config().l3.sets_per_slice() as u64;
        if h.l3_location(addr) == (slice, set) {
            h.access_from(0, addr, false);
            conflicts += 1;
        }
    }
    assert_eq!(
        h.line_state(1, line),
        LineState::Invalid,
        "inclusive eviction must invalidate the remote private copy"
    );
}
