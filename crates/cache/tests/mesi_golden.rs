//! Golden tests pinning the MESI coherence transitions of the multi-core
//! hierarchy. The 2-core traces are hand-pinned compact strings (if a
//! protocol change alters any state, hit level, snoop outcome, or
//! invalidation count, the test fails with the exact step that moved);
//! the 3-core traces derive their expectations from the `nbverify` pure
//! protocol spec (`nanobench_analysis::mesi`) step by step, so their
//! coverage is generated from the model checker's transition function
//! rather than hand-picked.

use nanobench_analysis::mesi::{self, Op, SpecConfig, SpecState};
use nanobench_cache::hierarchy::{CacheHierarchy, HitLevel, SnoopResult};
use nanobench_cache::presets::cpu_by_microarch;
use nanobench_cache::LineState;

/// One observed step: `(core, is_write, level, snoop, invalidated,
/// state_core0, state_core1)` compressed into a compact string.
fn step(h: &mut CacheHierarchy, core: usize, paddr: u64, is_write: bool) -> String {
    let r = h.access_from(core, paddr, is_write).unwrap();
    let level = match r.level {
        HitLevel::L1 => "L1",
        HitLevel::L2 => "L2",
        HitLevel::L3 => "L3",
        HitLevel::Memory => "Mem",
    };
    let snoop = match r.snoop {
        SnoopResult::Miss => "-",
        SnoopResult::Hit => "hit",
        SnoopResult::HitM => "hitm",
    };
    format!(
        "c{core}{} {level} {snoop} i{} {}{}",
        if is_write { "W" } else { "R" },
        r.invalidated,
        h.line_state(0, paddr).unwrap().letter(),
        h.line_state(1, paddr).unwrap().letter(),
    )
}

fn skylake_cores(n: usize) -> CacheHierarchy {
    let cfg = cpu_by_microarch("Skylake").unwrap().hierarchy_config();
    let mut h = CacheHierarchy::new_multi(&cfg, 7, n);
    for core in 0..n {
        h.prefetchers_of_mut(core).disable_all();
    }
    h
}

fn skylake_2core() -> CacheHierarchy {
    skylake_cores(2)
}

#[test]
fn false_sharing_trace_transitions_are_pinned() {
    let mut h = skylake_2core();
    let line = 0x4_0000;
    let trace = [
        (0usize, line, true), // c0 write-miss: fetch for ownership -> M
        (0, line, false),     // c0 read hit, no transition
        (1, line, true),      // c1 write: snoops c0's M copy, kills it
        (1, line, true),      // c1 write hit on its own M copy: silent
        (0, line, false),     // c0 read: HITM forward, both end Shared
        (1, line, true),      // c1 write on S: RFO upgrade, invalidates c0
        (0, line, true),      // c0 write: HITM, steals ownership
        (1, line, false),     // c1 read: HITM forward, both Shared
        (0, line, false),     // c0 read hit on its S copy
    ];
    let got: Vec<String> = trace
        .iter()
        .map(|&(core, paddr, w)| step(&mut h, core, paddr, w))
        .collect();
    let expected = [
        "c0W Mem - i0 MI",
        "c0R L1 - i0 MI",
        "c1W L3 hitm i1 IM",
        "c1W L1 - i0 IM",
        "c0R L3 hitm i0 SS",
        "c1W L1 hit i1 IM",
        "c0W L3 hitm i1 MI",
        "c1R L3 hitm i0 SS",
        "c0R L1 - i0 SS",
    ];
    assert_eq!(got, expected, "MESI transition trace moved");
    assert_eq!(h.invalidations(), 3);
    let snoops: u64 = h.snoop_hits().iter().sum();
    assert_eq!(snoops, 5, "five accesses found a remote copy");
}

#[test]
fn read_sharing_trace_stays_clean() {
    // Two cores reading the same line: Exclusive on first touch, Shared
    // once the second core joins, and no invalidation traffic at all.
    let mut h = skylake_2core();
    let line = 0x8_0000;
    let got: Vec<String> = [(0usize, false), (1, false), (0, false), (1, false)]
        .iter()
        .map(|&(core, w)| step(&mut h, core, line, w))
        .collect();
    let expected = [
        "c0R Mem - i0 EI",
        "c1R L3 hit i0 SS",
        "c0R L1 - i0 SS",
        "c1R L1 - i0 SS",
    ];
    assert_eq!(got, expected);
    assert_eq!(h.invalidations(), 0);
}

#[test]
fn snoop_latencies_follow_the_config() {
    let mut h = skylake_2core();
    let lat = h.config().latencies;
    let line = 0xC_0000;
    h.access_from(0, line, true).unwrap(); // c0 owns the line Modified
    let r = h.access_from(1, line, false).unwrap();
    assert_eq!(r.snoop, SnoopResult::HitM);
    assert_eq!(
        r.latency, lat.snoop_hitm,
        "HITM forwards at the cross-core latency"
    );
    let clean = 0xC_1000;
    h.access_from(0, clean, false).unwrap(); // Exclusive, clean, in core 0
    let r = h.access_from(1, clean, false).unwrap();
    assert_eq!(r.snoop, SnoopResult::Hit);
    assert_eq!(r.latency, lat.l3, "clean snoop hits serve at L3 latency");
}

#[test]
fn inclusive_l3_eviction_back_invalidates_all_cores() {
    // Fill one L3 set past its associativity from core 0 and verify a
    // line core 1 holds gets back-invalidated when the L3 evicts it.
    let mut h = skylake_2core();
    let line = 0x10_0000;
    h.access_from(1, line, false).unwrap();
    assert_eq!(h.line_state(1, line).unwrap(), LineState::Exclusive);
    let (slice, set) = h.l3_location(line);
    let assoc = h.config().l3.assoc;
    // Generate enough conflicting lines (same slice and set) to evict.
    let mut conflicts = 0;
    let mut addr = line;
    while conflicts < 4 * assoc {
        addr += 64 * h.config().l3.sets_per_slice() as u64;
        if h.l3_location(addr) == (slice, set) {
            h.access_from(0, addr, false).unwrap();
            conflicts += 1;
        }
    }
    assert_eq!(
        h.line_state(1, line).unwrap(),
        LineState::Invalid,
        "inclusive eviction must invalidate the remote private copy"
    );
}

// ---------------------------------------------------------------------------
// Spec-derived 3-core traces. Expectations below are computed step by
// step from `nanobench_analysis::mesi::step` — the pure protocol written
// from DESIGN.md §3d — so the golden coverage tracks the checked spec
// instead of a hand-transcribed table.
// ---------------------------------------------------------------------------

/// Distinct 64-byte lines mapping to distinct sets in every Skylake level
/// (no organic capacity eviction can interleave with the trace).
const LINES: [u64; 2] = [0x4_0000, 0x4_0040];

/// Replays `ops` through the spec and the real hierarchy in lockstep,
/// asserting every observable matches: read/write hit level, snoop
/// result, invalidation count, latency, and the per-core MESI state of
/// every line after every step. Returns the rendered trace.
fn run_spec_derived(h: &mut CacheHierarchy, cfg: SpecConfig, ops: &[Op]) -> Vec<String> {
    let lat = h.config().latencies;
    let mut state = SpecState::initial();
    let mut rendered = Vec::new();
    for (i, &op) in ops.iter().enumerate() {
        let (next, spec_out) = mesi::step(&state, cfg, op, None);
        let impl_out = match op {
            Op::Read { core, line } => Some(h.access_from(core, LINES[line], false).unwrap()),
            Op::Write { core, line } => Some(h.access_from(core, LINES[line], true).unwrap()),
            Op::EvictL3 { line } => {
                assert!(h.force_evict_l3(LINES[line]), "step {i}: line not in L3");
                None
            }
            other => panic!("op {other:?} not used by the golden traces"),
        };
        if let (Some(so), Some(io)) = (spec_out, impl_out) {
            let want_level = match so.level {
                mesi::Level::L1 => HitLevel::L1,
                mesi::Level::L2 => HitLevel::L2,
                mesi::Level::L3 => HitLevel::L3,
                mesi::Level::Memory => HitLevel::Memory,
            };
            let want_snoop = match so.snoop {
                mesi::Snoop::Miss => SnoopResult::Miss,
                mesi::Snoop::Hit => SnoopResult::Hit,
                mesi::Snoop::HitM => SnoopResult::HitM,
            };
            // The spec's latency rule: serving level, except HITM
            // forwards and S->M RFO upgrades, which cost uncore trips.
            let upgrade = matches!(op, Op::Write { core, line }
                if state.core_state(core, line) == mesi::Mesi::S);
            let want_latency = if upgrade {
                lat.l3
            } else {
                match so.level {
                    mesi::Level::L1 => lat.l1,
                    mesi::Level::L2 => lat.l2,
                    mesi::Level::L3 if so.snoop == mesi::Snoop::HitM => lat.snoop_hitm,
                    mesi::Level::L3 => lat.l3,
                    mesi::Level::Memory => lat.mem,
                }
            };
            assert_eq!(io.level, want_level, "step {i} ({}): level", op.describe());
            assert_eq!(io.snoop, want_snoop, "step {i} ({}): snoop", op.describe());
            assert_eq!(
                io.invalidated,
                so.invalidated,
                "step {i} ({}): invalidations",
                op.describe()
            );
            assert_eq!(
                io.latency,
                want_latency,
                "step {i} ({}): latency",
                op.describe()
            );
            assert!(so.fresh, "step {i}: the spec predicts a stale access");
        }
        for (line, &line_paddr) in LINES.iter().enumerate().take(cfg.lines) {
            let mut letters = String::new();
            for core in 0..cfg.cores {
                let impl_state = h.line_state(core, line_paddr).unwrap();
                let spec_state = next.core_state(core, line);
                assert_eq!(
                    impl_state.letter(),
                    spec_state.letter(),
                    "step {i} ({}): core {core} state of line{line}",
                    op.describe()
                );
                letters.push(impl_state.letter());
            }
            rendered.push(format!("{}: line{line}={letters}", op.describe()));
        }
        state = next;
    }
    rendered
}

#[test]
fn three_core_chained_hitm_forwards_match_the_spec() {
    // Ownership hops c0 -> c2 -> c0 with HITM forwards and reads chained
    // between every hop; each step's expectation comes from the spec.
    let cfg = SpecConfig { cores: 3, lines: 1 };
    let mut h = skylake_cores(3);
    let ops = [
        Op::Write { core: 0, line: 0 }, // c0 owns M
        Op::Read { core: 1, line: 0 },  // HITM forward, c0/c1 Shared
        Op::Write { core: 2, line: 0 }, // RFO kills both copies
        Op::Read { core: 0, line: 0 },  // HITM forward from c2
        Op::Read { core: 1, line: 0 },  // clean snoop hit
        Op::Write { core: 0, line: 0 }, // upgrade storm: S->M over 3 sharers
    ];
    run_spec_derived(&mut h, cfg, &ops);
    assert!(h.check_invariants().is_ok());
}

#[test]
fn three_core_upgrade_storm_matches_the_spec() {
    // All three cores read-share, then take turns stealing ownership:
    // every S->M upgrade must invalidate exactly the live remote copies.
    let cfg = SpecConfig { cores: 3, lines: 2 };
    let mut h = skylake_cores(3);
    let ops = [
        Op::Read { core: 0, line: 0 },
        Op::Read { core: 1, line: 0 },
        Op::Read { core: 2, line: 0 },
        Op::Write { core: 0, line: 0 }, // invalidates c1 + c2
        Op::Read { core: 1, line: 1 },
        Op::Write { core: 1, line: 0 }, // HITM RFO against c0
        Op::Read { core: 2, line: 0 },
        Op::Write { core: 2, line: 0 }, // upgrade against c1's survivor
        Op::Read { core: 0, line: 1 },  // second line stays clean-shared
    ];
    run_spec_derived(&mut h, cfg, &ops);
    assert!(h.check_invariants().is_ok());
}

#[test]
fn three_core_l3_eviction_back_invalidates_per_the_spec() {
    // A dirty line and a shared line both die when the inclusive L3
    // evicts them; the spec's EvictL3 op models the back-invalidation.
    let cfg = SpecConfig { cores: 3, lines: 2 };
    let mut h = skylake_cores(3);
    let ops = [
        Op::Write { core: 0, line: 0 }, // dirty in c0
        Op::Read { core: 1, line: 1 },
        Op::Read { core: 2, line: 1 }, // line1 shared c1/c2
        Op::EvictL3 { line: 0 },       // back-invalidates c0's M copy
        Op::EvictL3 { line: 1 },       // back-invalidates both sharers
        Op::Read { core: 0, line: 0 }, // refetches from memory, Exclusive
        Op::Read { core: 1, line: 1 },
    ];
    run_spec_derived(&mut h, cfg, &ops);
    assert!(h.check_invariants().is_ok());
}
