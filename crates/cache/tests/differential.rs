//! Differential test: the arena/enum cache against a naive reference model.
//!
//! The oracle keeps the pre-refactor representation — per-set
//! `Vec<Option<u64>>` tags plus per-set `Box<dyn SetPolicy>` — and always
//! hands the policy a full occupancy slice on hits, i.e. it does not use
//! the `wants_occupied_on_hit` fast path, has no MRU-way probe, and no
//! packed state words. Agreement on every observable (hit/miss + MESI
//! state, eviction victim, invalidation result, stats, final contents)
//! pins the refactored storage layout and enum dispatch as
//! behaviour-preserving across the whole policy library, including the
//! boxed set-dueling escape hatch.

use std::sync::Arc;

use nanobench_cache::cache::{FollowerPolicy, LeaderPolicy};
use nanobench_cache::policy::PolicySlot;
use nanobench_cache::{
    Cache, CacheStats, LineState, PolicyKind, PselCounter, SetPolicy, LINE_SIZE,
};
use proptest::prelude::*;
use proptest::TestRng;

const NUM_SETS: usize = 4;
/// Distinct cache blocks the generated streams touch: 8 per set, i.e.
/// 2x the largest associativity, so evictions and re-fills are common.
const BLOCK_SPAN: u64 = 32;

/// Mirrors the salt the hierarchy uses to split a dueling set's policy-B
/// stream from its policy-A stream. The exact value is irrelevant here —
/// both models below must merely derive identical seeds.
const B_SEED_SALT: u64 = 0xB00B;

/// Per-set seed derivation applied identically to both models (the
/// cache-internal derivation is private, which is fine: equivalence only
/// needs symmetry, not the same constants).
fn set_seed(case_seed: u64, set: usize) -> u64 {
    case_seed ^ (set as u64).wrapping_mul(0x517c_c1b7_2722_0a95)
}

/// The pre-refactor cache representation, reimplemented as a test oracle.
struct NaiveSet {
    tags: Vec<Option<u64>>,
    states: Vec<LineState>,
    policy: Box<dyn SetPolicy>,
}

struct NaiveCache {
    sets: Vec<NaiveSet>,
    stats: CacheStats,
}

impl NaiveCache {
    fn new(
        num_sets: usize,
        assoc: usize,
        mut factory: impl FnMut(usize) -> Box<dyn SetPolicy>,
    ) -> NaiveCache {
        NaiveCache {
            sets: (0..num_sets)
                .map(|s| NaiveSet {
                    tags: vec![None; assoc],
                    states: vec![LineState::Invalid; assoc],
                    policy: factory(s),
                })
                .collect(),
            stats: CacheStats::default(),
        }
    }

    fn set_index(&self, paddr: u64) -> usize {
        ((paddr / LINE_SIZE) & (self.sets.len() as u64 - 1)) as usize
    }

    fn find_way(&self, set: usize, block: u64) -> Option<usize> {
        self.sets[set].tags.iter().position(|&t| t == Some(block))
    }

    fn occupied(&self, set: usize) -> Vec<bool> {
        self.sets[set].tags.iter().map(|t| t.is_some()).collect()
    }

    fn access_with_state(&mut self, paddr: u64) -> Option<LineState> {
        let block = paddr / LINE_SIZE;
        let set = self.set_index(paddr);
        match self.find_way(set, block) {
            Some(way) => {
                let occ = self.occupied(set);
                self.sets[set].policy.on_hit(way, &occ);
                self.stats.hits += 1;
                Some(self.sets[set].states[way])
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn fill_with_state(&mut self, paddr: u64, state: LineState) -> Option<u64> {
        let block = paddr / LINE_SIZE;
        let set = self.set_index(paddr);
        if let Some(way) = self.find_way(set, block) {
            self.sets[set].states[way] = state;
            return None;
        }
        let occ = self.occupied(set);
        let way = self.sets[set].policy.on_miss(&occ);
        let evicted = self.sets[set].tags[way];
        self.sets[set].tags[way] = Some(block);
        self.sets[set].states[way] = state;
        evicted.map(|block| {
            self.stats.evictions += 1;
            block * LINE_SIZE
        })
    }

    fn set_state(&mut self, paddr: u64, state: LineState) -> bool {
        let block = paddr / LINE_SIZE;
        let set = self.set_index(paddr);
        match self.find_way(set, block) {
            Some(way) => {
                self.sets[set].states[way] = state;
                true
            }
            None => false,
        }
    }

    fn state_of(&self, paddr: u64) -> LineState {
        let block = paddr / LINE_SIZE;
        let set = self.set_index(paddr);
        self.find_way(set, block)
            .map_or(LineState::Invalid, |way| self.sets[set].states[way])
    }

    fn invalidate(&mut self, paddr: u64) -> bool {
        let block = paddr / LINE_SIZE;
        let set = self.set_index(paddr);
        match self.find_way(set, block) {
            Some(way) => {
                self.sets[set].tags[way] = None;
                self.sets[set].states[way] = LineState::Invalid;
                self.sets[set].policy.on_invalidate(way);
                true
            }
            None => false,
        }
    }

    fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.tags.fill(None);
            set.states.fill(LineState::Invalid);
            set.policy.on_flush();
        }
    }

    fn set_contents(&self, set: usize) -> Vec<Option<u64>> {
        self.sets[set].tags.clone()
    }
}

/// One generated operation against both models.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Access; on a miss, fill with the given state.
    Access(u64, LineState),
    Invalidate(u64),
    SetState(u64, LineState),
    StateOf(u64),
    Flush,
}

/// Draws one [`Op`], weighted toward accesses so replacement state gets
/// exercised deeply, with flushes rare.
struct OpStrategy;

impl Strategy for OpStrategy {
    type Value = Op;
    fn generate(&self, rng: &mut TestRng) -> Op {
        let paddr = (0..BLOCK_SPAN).generate(rng) * LINE_SIZE + (0..LINE_SIZE).generate(rng);
        let state = match (0u8..3).generate(rng) {
            0 => LineState::Exclusive,
            1 => LineState::Shared,
            _ => LineState::Modified,
        };
        match (0u8..19).generate(rng) {
            0..=11 => Op::Access(paddr, state),
            12 | 13 => Op::Invalidate(paddr),
            14 | 15 => Op::SetState(paddr, state),
            16 | 17 => Op::StateOf(paddr),
            _ => Op::Flush,
        }
    }
}

/// Drives the same stream through both models and checks every observable.
fn check_equivalence(mut arena: Cache, mut oracle: NaiveCache, ops: &[Op]) {
    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Access(paddr, state) => {
                let a = arena.access_with_state(paddr);
                let o = oracle.access_with_state(paddr);
                assert_eq!(a, o, "op {i}: hit/state mismatch at {paddr:#x}");
                if a.is_none() {
                    let ev_a = arena.fill_with_state(paddr, state);
                    let ev_o = oracle.fill_with_state(paddr, state);
                    assert_eq!(ev_a, ev_o, "op {i}: eviction mismatch at {paddr:#x}");
                }
            }
            Op::Invalidate(paddr) => {
                assert_eq!(arena.invalidate(paddr), oracle.invalidate(paddr), "op {i}");
            }
            Op::SetState(paddr, state) => {
                assert_eq!(
                    arena.set_state(paddr, state),
                    oracle.set_state(paddr, state),
                    "op {i}"
                );
            }
            Op::StateOf(paddr) => {
                assert_eq!(arena.state_of(paddr), oracle.state_of(paddr), "op {i}");
            }
            Op::Flush => {
                arena.flush_all();
                oracle.flush_all();
            }
        }
    }
    assert_eq!(arena.stats(), oracle.stats);
    for set in 0..arena.num_sets() {
        assert_eq!(
            arena.set_contents(set),
            oracle.set_contents(set),
            "final contents of set {set}"
        );
    }
    for block in 0..BLOCK_SPAN {
        let paddr = block * LINE_SIZE;
        assert_eq!(
            arena.state_of(paddr),
            oracle.state_of(paddr),
            "final state of block {block}"
        );
    }
}

/// Every parseable policy family exercised by the plain differential run.
const POLICIES: &[&str] = &[
    "LRU",
    "FIFO",
    "PLRU",
    "MRU",
    "MRU*",
    "RANDOM",
    "QLRU_H11_M1_R0_U0",
    "QLRU_H00_M1_R2_U1",
];

proptest! {
    /// Uniform-policy caches: the enum fast path against the boxed oracle.
    #[test]
    fn arena_cache_matches_naive_model(
        policy_idx in 0..POLICIES.len(),
        assoc in prop_oneof![Just(4usize), Just(8usize)],
        case_seed in 0..u64::MAX,
        ops in collection::vec(OpStrategy, 1..200),
    ) {
        let kind = PolicyKind::parse(POLICIES[policy_idx]).unwrap();
        let arena = Cache::with_policies(NUM_SETS, assoc, |set| {
            kind.instantiate_slot(assoc, set_seed(case_seed, set))
        });
        let oracle = NaiveCache::new(NUM_SETS, assoc, |set| {
            kind.instantiate(assoc, set_seed(case_seed, set))
        });
        check_equivalence(arena, oracle, &ops);
    }

    /// Set dueling through the `PolicySlot::Boxed` escape hatch: leader
    /// sets 0 (policy A) and 1 (policy B), followers elsewhere, each model
    /// owning an independent PSEL counter that must evolve identically.
    #[test]
    fn dueling_cache_matches_naive_model(
        assoc in prop_oneof![Just(4usize), Just(8usize)],
        case_seed in 0..u64::MAX,
        ops in collection::vec(OpStrategy, 1..200),
    ) {
        let a = PolicyKind::Lru;
        let b = PolicyKind::parse("QLRU_H00_M1_R2_U1").unwrap();
        let make = |psel: &Arc<PselCounter>| {
            let psel = Arc::clone(psel);
            let (a, b) = (a.clone(), b.clone());
            move |set: usize| -> Box<dyn SetPolicy> {
                let sa = set_seed(case_seed, set);
                let sb = sa ^ B_SEED_SALT;
                match set {
                    0 => Box::new(LeaderPolicy::new(
                        a.instantiate(assoc, sa),
                        Arc::clone(&psel),
                        true,
                    )),
                    1 => Box::new(LeaderPolicy::new(
                        b.instantiate(assoc, sb),
                        Arc::clone(&psel),
                        false,
                    )),
                    _ => Box::new(FollowerPolicy::new(
                        a.instantiate(assoc, sa),
                        b.instantiate(assoc, sb),
                        Arc::clone(&psel),
                    )),
                }
            }
        };
        let arena_psel = PselCounter::new();
        let arena_factory = make(&arena_psel);
        let arena = Cache::with_policies(NUM_SETS, assoc, |set| {
            PolicySlot::Boxed(arena_factory(set))
        });
        let oracle_psel = PselCounter::new();
        let oracle = NaiveCache::new(NUM_SETS, assoc, make(&oracle_psel));
        check_equivalence(arena, oracle, &ops);
        prop_assert_eq!(arena_psel.value(), oracle_psel.value());
    }
}
