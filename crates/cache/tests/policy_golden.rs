//! Golden tests for the replacement-policy library: `QlruVariant::parse`
//! over the whole naming scheme, and per-`PolicyKind` hit/miss vectors for
//! a fixed access sequence (pinning simulator behaviour against
//! regressions).

use nanobench_cache::policy::{
    all_meaningful_qlru_variants, fifo_spec, lru_spec, simulate_sequence, InsertAge, PolicyKind,
    QlruVariant, RVariant, SetSim, UVariant,
};

#[test]
fn qlru_parse_accepts_every_valid_combination() {
    // All deterministic H/M/R/U combinations of the naming scheme, with and
    // without the _UMO suffix — including the R0+U2/U3 combinations the
    // *meaningful* enumeration excludes: their names are still well-formed.
    let mut checked = 0;
    for from3 in 0..=2u8 {
        for from2 in 0..=1u8 {
            for age in 0..=3u8 {
                for r in ["R0", "R1", "R2"] {
                    for u in ["U0", "U1", "U2", "U3"] {
                        for umo in ["", "_UMO"] {
                            let name = format!("QLRU_H{from3}{from2}_M{age}_{r}_{u}{umo}");
                            let v = QlruVariant::parse(&name)
                                .unwrap_or_else(|e| panic!("`{name}` must parse: {e}"));
                            assert_eq!(v.hit.from3, from3, "{name}");
                            assert_eq!(v.hit.from2, from2, "{name}");
                            assert_eq!(v.insert, InsertAge::Fixed(age), "{name}");
                            assert_eq!(v.umo, !umo.is_empty(), "{name}");
                            assert_eq!(v.name(), name, "name must round-trip");
                            checked += 1;
                        }
                    }
                }
            }
        }
    }
    assert_eq!(checked, 3 * 2 * 4 * 3 * 4 * 2);
}

#[test]
fn qlru_parse_accepts_probabilistic_insertion() {
    // The Ivy Bridge policy of §VI-D: insert with age 1 with probability
    // 1/16, age 3 otherwise.
    let v = QlruVariant::parse("QLRU_H11_MR161_R1_U2").unwrap();
    assert_eq!(v.insert, InsertAge::Probabilistic { p: 16, age: 1 });
    assert_eq!(v.replace, RVariant::R1);
    assert_eq!(v.update, UVariant::U2);
    assert!(v.is_probabilistic());
    assert_eq!(v.name(), "QLRU_H11_MR161_R1_U2");
}

#[test]
fn qlru_parse_covers_the_meaningful_enumeration() {
    for v in all_meaningful_qlru_variants() {
        assert_eq!(QlruVariant::parse(&v.name()).unwrap(), v);
    }
}

#[test]
fn qlru_parse_rejects_malformed_names() {
    let bad = [
        "",
        "LRU",
        "QLRU",
        "QLRU_",
        "qlru_H11_M1_R0_U0",      // lowercase prefix
        "QLRU_H11_M1_R0",         // missing U component
        "QLRU_H11_M1_R0_U0_X",    // trailing junk
        "QLRU_H11_M1_R0_U0_UMO_", // trailing underscore
        "QLRU_H1_M1_R0_U0",       // H needs two digits
        "QLRU_H111_M1_R0_U0",     // H has too many digits
        "QLRU_Hxy_M1_R0_U0",      // non-digit ages
        "QLRU_H11_M_R0_U0",       // M needs an age
        "QLRU_H11_Mx_R0_U0",      // non-digit insertion age
        "QLRU_H11_MR1_R0_U0",     // MRpx needs p and x
        "QLRU_H11_MRx1_R0_U0",    // non-numeric p
        "QLRU_H11_M1_R3_U0",      // R3 does not exist
        "QLRU_H11_M1_Rx_U0",      // non-digit R
        "QLRU_H11_M1_R0_U4",      // U4 does not exist
        "QLRU_H11_M1_R0_V0",      // wrong component letter
        "QLRU_M1_H11_R0_U0",      // components out of order
    ];
    for name in bad {
        assert!(
            QlruVariant::parse(name).is_err(),
            "`{name}` must be rejected"
        );
    }
}

/// The shared access sequence for the per-policy golden vectors: six
/// distinct blocks through a 4-way set, mixing re-use distances.
const SEQ: [u64; 24] = [
    0, 1, 2, 3, 0, 4, 1, 2, 5, 0, 3, 4, 2, 2, 1, 5, 0, 3, 4, 5, 1, 0, 2, 3,
];

fn golden(kind: &PolicyKind, expect: &str) {
    let hits = simulate_sequence(kind, 4, 42, &SEQ);
    let got: String = hits.iter().map(|h| if *h { 'H' } else { 'M' }).collect();
    assert_eq!(got, expect, "golden hit/miss vector for {}", kind.name());
}

#[test]
fn setsim_golden_lru() {
    golden(&PolicyKind::Lru, "MMMMHMMMMMMMMHMMMMMHMMMM");
}

#[test]
fn setsim_golden_fifo() {
    golden(&PolicyKind::Fifo, "MMMMHMHHMMHHMHMHHMMMHMMM");
}

#[test]
fn setsim_golden_plru() {
    golden(&PolicyKind::Plru, "MMMMHMHMMMMMMHMMMMMHMMMM");
}

#[test]
fn setsim_golden_mru_and_sandy_bridge_variant() {
    golden(
        &PolicyKind::Mru {
            fill_sets_all_ones: false,
        },
        "MMMMHMMMMMMMMHMMHMMMMHMM",
    );
    golden(
        &PolicyKind::Mru {
            fill_sets_all_ones: true,
        },
        "MMMMHMMMMMMMHHMMMMMMMMMH",
    );
}

#[test]
fn setsim_golden_qlru() {
    // The Skylake-era L3 policy and the Skylake L2 policy (Table I).
    let l3 = QlruVariant::parse("QLRU_H11_M1_R0_U0").unwrap();
    golden(&PolicyKind::Qlru(l3), "MMMMHMHHMMMMMHMMMMMMMMMM");
    let l2 = QlruVariant::parse("QLRU_H00_M1_R2_U1").unwrap();
    golden(&PolicyKind::Qlru(l2), "MMMMHMHHMHMMHHMMMMMMMHMM");
}

#[test]
fn setsim_golden_permutation_specs_match_their_policies() {
    // A permutation policy built from the LRU/FIFO specifications must be
    // behaviourally identical to the native implementation.
    golden(
        &PolicyKind::Permutation(lru_spec(4)),
        "MMMMHMMMMMMMMHMMMMMHMMMM",
    );
    golden(
        &PolicyKind::Permutation(fifo_spec(4)),
        "MMMMHMHHMMHHMHMHHMMMHMMM",
    );
}

#[test]
fn setsim_golden_random_is_deterministic_per_seed() {
    // Random replacement is still reproducible for a fixed seed (the whole
    // simulation depends on that); this pins the seed-42 stream.
    golden(&PolicyKind::Random, "MMMMHMHHMHMMMHMHHMMHMMMM");
    let a = simulate_sequence(&PolicyKind::Random, 4, 7, &SEQ);
    let b = simulate_sequence(&PolicyKind::Random, 4, 7, &SEQ);
    assert_eq!(a, b);
}

#[test]
fn setsim_flush_empties_the_set() {
    let mut sim = SetSim::new(&PolicyKind::Lru, 4, 0);
    for b in 0..4 {
        sim.access(b);
    }
    assert!(sim.contains(2));
    sim.flush();
    assert!(sim.contents().iter().all(Option::is_none));
    assert!(!sim.access(2), "first access after flush must miss");
}
