//! Measurement of latency, throughput and port usage for one instruction
//! variant (§V).
//!
//! * **Latency**: a chain of copies of the instruction with a dependency
//!   between output and input operands, unrolled `unrollCount` times; the
//!   per-repetition core-cycle count is the latency. Implicit dependencies
//!   (flags, RAX/RDX for divisions) are respected by choosing chain forms
//!   whose destination feeds the next copy.
//! * **Throughput**: several *independent* copies using disjoint registers,
//!   unrolled; cycles per instruction is the reciprocal throughput. Only
//!   unrolling is used (no loop), since "for a benchmark that measures the
//!   port usage of an instruction, using only unrolling is better" (§III-F).
//! * **Port usage**: the `UOPS_DISPATCHED_PORT.PORT_x` counters from the
//!   throughput run, normalized per instruction.

use nanobench_core::{Aggregate, BenchSpec, NbError, Session};
use nanobench_uarch::port::MicroArch;
use nanobench_x86::asm::parse_asm;
use nanobench_x86::encode::encode_program;

/// Counter configuration with the port-pressure and µop events.
const PORTS_CONFIG: &str = "\
0E.01 UOPS_ISSUED.ANY
A1.01 UOPS_DISPATCHED_PORT.PORT_0
A1.02 UOPS_DISPATCHED_PORT.PORT_1
A1.04 UOPS_DISPATCHED_PORT.PORT_2
A1.08 UOPS_DISPATCHED_PORT.PORT_3
A1.10 UOPS_DISPATCHED_PORT.PORT_4
A1.20 UOPS_DISPATCHED_PORT.PORT_5
A1.40 UOPS_DISPATCHED_PORT.PORT_6
A1.80 UOPS_DISPATCHED_PORT.PORT_7
";

/// A benchmark specification for one instruction variant.
#[derive(Debug, Clone)]
pub struct InstSpec {
    /// Display name, e.g. `"ADD (r64, r64)"`.
    pub name: String,
    /// Self-dependent chain form, e.g. `"add rax, rax"`; `None` when the
    /// instruction has no register dependency to chain (e.g. NOP).
    pub latency_asm: Option<String>,
    /// Initialization for the chain (registers, valid memory).
    pub latency_init: String,
    /// Independent copies on disjoint registers, `;`-separated.
    pub throughput_asm: String,
    /// Initialization for the throughput run.
    pub throughput_init: String,
    /// Number of instructions per `throughput_asm` statement list.
    pub throughput_copies: usize,
}

impl InstSpec {
    /// A simple spec where chain and throughput forms share an empty init.
    pub fn new(
        name: impl Into<String>,
        latency_asm: Option<&str>,
        throughput_asm: &str,
        copies: usize,
    ) -> InstSpec {
        InstSpec {
            name: name.into(),
            latency_asm: latency_asm.map(str::to_string),
            latency_init: String::new(),
            throughput_asm: throughput_asm.to_string(),
            throughput_init: String::new(),
            throughput_copies: copies,
        }
    }

    /// Adds initialization code to both runs.
    pub fn with_init(mut self, init: &str) -> InstSpec {
        self.latency_init = init.to_string();
        self.throughput_init = init.to_string();
        self
    }

    /// Stable fingerprint of everything the measurement computes from,
    /// for persistent-store keys: two specs hash alike exactly when they
    /// generate the same microbenchmarks.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = nanobench_store::Fnv1a::new();
        self.name.hash(&mut h);
        self.latency_asm.hash(&mut h);
        self.latency_init.hash(&mut h);
        self.throughput_asm.hash(&mut h);
        self.throughput_init.hash(&mut h);
        self.throughput_copies.hash(&mut h);
        h.finish()
    }
}

/// The measured characteristics of one instruction variant.
#[derive(Debug, Clone, PartialEq)]
pub struct InstMeasurement {
    /// Variant name.
    pub name: String,
    /// Chain latency in cycles (`None` if the variant has no chain form).
    pub latency: Option<f64>,
    /// Reciprocal throughput in cycles per instruction.
    pub throughput: f64,
    /// µops issued per instruction.
    pub uops: f64,
    /// Per-port pressure, `ports[i]` = µops on port *i* per instruction.
    pub ports: Vec<f64>,
}

impl InstMeasurement {
    /// uops.info-style port string, e.g. `"1*p23"` for a load that uses
    /// ports 2 and 3 interchangeably.
    pub fn port_usage_string(&self) -> String {
        // Group ports with (nearly) equal pressure.
        let mut groups: Vec<(String, f64)> = Vec::new();
        let mut used: Vec<(u8, f64)> = self
            .ports
            .iter()
            .enumerate()
            .filter(|(_, v)| **v > 0.05)
            .map(|(p, v)| (p as u8, *v))
            .collect();
        used.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("port pressure is finite"));
        while let Some((p0, v0)) = used.first().copied() {
            let (same, rest): (Vec<_>, Vec<_>) =
                used.iter().partition(|(_, v)| (v - v0).abs() < 0.1);
            let total: f64 = same.iter().map(|(_, v)| v).sum();
            let names: String = same.iter().map(|(p, _)| p.to_string()).collect();
            groups.push((format!("p{names}"), total));
            used = rest;
            let _ = p0;
        }
        if groups.is_empty() {
            return "-".to_string();
        }
        groups
            .iter()
            .map(|(g, total)| format!("{:.2}*{}", total, g))
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

/// Measures one instruction variant on the given microarchitecture,
/// building (and discarding) a fresh kernel session.
///
/// Campaigns over many variants should build one [`Session`] per worker
/// and call [`measure_instruction_on`] instead — the machine construction
/// dominates a single measurement's cost.
///
/// # Errors
///
/// Propagates assembly and CPU faults (e.g. privileged variants must run
/// on the kernel version, which this uses).
pub fn measure_instruction(uarch: MicroArch, spec: &InstSpec) -> Result<InstMeasurement, NbError> {
    let mut session = Session::kernel(uarch);
    measure_instruction_on(&mut session, spec)
}

/// Measures one instruction variant on a reusable session. The session is
/// reset (to its current seed) before the latency run and again before the
/// throughput run, so results are identical to measuring on fresh
/// machines — the pre-session behaviour — while skipping the rebuilds.
///
/// # Errors
///
/// Propagates assembly and CPU faults.
pub fn measure_instruction_on(
    session: &mut Session,
    spec: &InstSpec,
) -> Result<InstMeasurement, NbError> {
    measure_with(session, spec, false)
}

/// Like [`measure_instruction_on`], but routes the benchmark through the
/// §III-E binary code-input path: the assembly is assembled, *encoded to
/// machine-code bytes*, and handed to the session as raw bytes
/// ([`BenchSpec::code_bytes`]). Since decode(encode(code)) reproduces the
/// instruction list exactly, the results are bit-identical to the asm path —
/// the e5 experiment pins this for every vector variant of the suite.
///
/// # Errors
///
/// Propagates assembly, encoding and CPU faults.
pub fn measure_instruction_via_bytes_on(
    session: &mut Session,
    spec: &InstSpec,
) -> Result<InstMeasurement, NbError> {
    measure_with(session, spec, true)
}

/// Sets a benchmark's main and init parts either as assembly or through the
/// encode-to-bytes-and-decode path.
fn set_code(bench: &mut BenchSpec, code: &str, init: &str, via_bytes: bool) -> Result<(), NbError> {
    if via_bytes {
        let (code_bytes, _) = encode_program(&parse_asm(code)?)?;
        let (init_bytes, _) = encode_program(&parse_asm(init)?)?;
        bench.code_bytes(&code_bytes)?.init_bytes(&init_bytes)?;
    } else {
        bench.asm(code)?.asm_init(init)?;
    }
    Ok(())
}

fn measure_with(
    session: &mut Session,
    spec: &InstSpec,
    via_bytes: bool,
) -> Result<InstMeasurement, NbError> {
    // Latency: dependency chain.
    let latency = match &spec.latency_asm {
        Some(chain) => {
            session.reset();
            let mut bench = BenchSpec::new();
            set_code(&mut bench, chain, &spec.latency_init, via_bytes)?;
            bench
                .config_str("0E.01 UOPS_ISSUED.ANY")?
                .unroll_count(100)
                .warm_up_count(2)
                .n_measurements(5)
                .aggregate(Aggregate::Median);
            session.run(&bench)?.core_cycles()
        }
        None => None,
    };

    // Throughput and port usage: independent copies, unrolled only.
    session.reset();
    let mut bench = BenchSpec::new();
    set_code(
        &mut bench,
        &spec.throughput_asm,
        &spec.throughput_init,
        via_bytes,
    )?;
    bench
        .config_str(PORTS_CONFIG)?
        .unroll_count(50)
        .warm_up_count(2)
        .n_measurements(5)
        .aggregate(Aggregate::Median);
    let result = session.run(&bench)?;
    let copies = spec.throughput_copies as f64;
    let throughput = result.core_cycles().unwrap_or(0.0) / copies;
    let uops = result.get("UOPS_ISSUED.ANY").unwrap_or(0.0) / copies;
    let ports: Vec<f64> = (0..8)
        .map(|p| {
            result
                .get(&format!("UOPS_DISPATCHED_PORT.PORT_{p}"))
                .unwrap_or(0.0)
                / copies
        })
        .collect();

    Ok(InstMeasurement {
        name: spec.name.clone(),
        latency: latency.map(|l| l.max(0.0)),
        throughput: throughput.max(0.0),
        uops: uops.max(0.0),
        ports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_r64_characteristics() {
        let spec = InstSpec::new(
            "ADD (r64, r64)",
            Some("add rax, rax"),
            "add rax, rax; add rbx, rbx; add rcx, rcx; add rdx, rdx",
            4,
        );
        let m = measure_instruction(MicroArch::Skylake, &spec).unwrap();
        assert_eq!(m.latency, Some(1.0));
        assert!(
            (0.2..0.3).contains(&m.throughput),
            "ADD throughput 0.25 on 4 ALU ports, got {}",
            m.throughput
        );
        assert!((m.uops - 1.0).abs() < 0.05, "1 µop, got {}", m.uops);
        // Pressure spread over the four ALU ports p0156.
        for p in [0usize, 1, 5, 6] {
            assert!(m.ports[p] > 0.15, "port {p}: {:?}", m.ports);
        }
        assert!(m.ports[2] < 0.05);
    }

    #[test]
    fn imul_uses_port1_with_latency_3() {
        let spec = InstSpec::new(
            "IMUL (r64, r64)",
            Some("imul rax, rax"),
            "imul rax, rax; imul rbx, rbx; imul rcx, rcx; imul rdx, rdx",
            4,
        );
        let m = measure_instruction(MicroArch::Skylake, &spec).unwrap();
        assert_eq!(m.latency, Some(3.0));
        assert!(
            (m.throughput - 1.0).abs() < 0.1,
            "p1-bound: {}",
            m.throughput
        );
        assert!(m.ports[1] > 0.9, "{:?}", m.ports);
        assert_eq!(m.port_usage_string(), "1.00*p1");
    }

    #[test]
    fn load_latency_4_ports_23() {
        let spec = InstSpec::new(
            "MOV (r64, m64)",
            Some("mov r14, [r14]"),
            "mov rax, [r14]; mov rbx, [r14+8]; mov rcx, [r14+16]; mov rdx, [r14+24]",
            4,
        )
        .with_init("mov [r14], r14");
        let m = measure_instruction(MicroArch::Skylake, &spec).unwrap();
        assert_eq!(m.latency, Some(4.0), "L1 load-to-use latency");
        assert!(
            (m.throughput - 0.5).abs() < 0.1,
            "two load ports: {}",
            m.throughput
        );
        assert!((m.ports[2] - 0.5).abs() < 0.1, "{:?}", m.ports);
        assert!((m.ports[3] - 0.5).abs() < 0.1, "{:?}", m.ports);
    }

    #[test]
    fn session_reuse_matches_fresh_machines() {
        // One session measuring three variants back to back must give the
        // same numbers as three throwaway sessions (the pre-session path).
        let specs = [
            InstSpec::new(
                "ADD (r64, r64)",
                Some("add rax, rax"),
                "add rax, rax; add rbx, rbx; add rcx, rcx; add rdx, rdx",
                4,
            ),
            InstSpec::new(
                "IMUL (r64, r64)",
                Some("imul rax, rax"),
                "imul rax, rax; imul rbx, rbx; imul rcx, rcx; imul rdx, rdx",
                4,
            ),
            InstSpec::new("NOP", None, "nop; nop; nop; nop", 4),
        ];
        let mut session = Session::kernel(MicroArch::Skylake);
        for spec in &specs {
            let reused = measure_instruction_on(&mut session, spec).unwrap();
            let fresh = measure_instruction(MicroArch::Skylake, spec).unwrap();
            assert_eq!(reused, fresh, "{}", spec.name);
        }
    }

    #[test]
    fn byte_path_matches_asm_path_for_vector_variants() {
        // §III-E: a benchmark supplied as machine-code bytes must measure
        // exactly like the same benchmark supplied as assembly — including
        // SSE and VEX-coded forms.
        let specs = [
            InstSpec::new(
                "MULPS (xmm, xmm)",
                Some("mulps xmm0, xmm0"),
                "mulps xmm0, xmm1; mulps xmm2, xmm3; mulps xmm4, xmm5; mulps xmm6, xmm7",
                4,
            ),
            InstSpec::new(
                "VFMADD231PS (ymm)",
                Some("vfmadd231ps ymm0, ymm0, ymm1"),
                "vfmadd231ps ymm0, ymm1, ymm2; vfmadd231ps ymm3, ymm4, ymm5",
                2,
            ),
        ];
        let mut session = Session::kernel(MicroArch::Skylake);
        for spec in &specs {
            let asm = measure_instruction_on(&mut session, spec).unwrap();
            let bytes = measure_instruction_via_bytes_on(&mut session, spec).unwrap();
            assert_eq!(asm, bytes, "{}", spec.name);
        }
    }

    #[test]
    fn privileged_instruction_measurable_in_kernel_mode() {
        // §V: "Of particular use is nanoBench's ability to benchmark
        // privileged instructions."
        let spec =
            InstSpec::new("RDMSR (APERF)", None, "rdmsr", 1).with_init("mov rcx, 0xE8; mov rdx, 0");
        let m = measure_instruction(MicroArch::Skylake, &spec).unwrap();
        assert!(m.throughput > 50.0, "RDMSR is slow: {}", m.throughput);
    }
}
