//! Case study I: instruction latencies, throughputs and port usages (§V).
//!
//! "We developed an approach to automatically generate assembler code for
//! microbenchmarks that measure the latencies, throughputs, and port usages
//! of x86 instructions" — this crate generates those microbenchmarks
//! (dependency chains for latency, independent unrolled copies for
//! throughput, direct port-pressure counters for port usage), evaluates
//! them with nanoBench, and emits a uops.info-style table in both
//! human-readable and machine-readable (JSON) form.

#![warn(missing_docs)]

pub mod measure;
pub mod table;

pub use measure::{
    measure_instruction, measure_instruction_on, measure_instruction_via_bytes_on, InstMeasurement,
    InstSpec,
};
pub use table::{
    benchmark_suite, render_table, run_suite, run_suite_stored, run_suite_with, to_json, TableRow,
    TABLE_FORMAT_VERSION,
};
