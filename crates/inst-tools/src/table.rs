//! The uops.info-style result table (§V: results are published "both in
//! the form of a human-readable, interactive HTML table, and as a
//! machine-readable XML file" — we emit aligned text and JSON).

use crate::measure::{measure_instruction_on, InstMeasurement, InstSpec};
use nanobench_core::{Campaign, NbError};
use nanobench_store::{ResultStore, StoreKey};
use nanobench_uarch::port::MicroArch;
use serde::Serialize;

/// Version of [`TableRow`]'s persistent-store encoding
/// ([`TableRow::to_store_bytes`]). Bump whenever the encoding or the
/// measurement semantics behind the stored values change.
pub const TABLE_FORMAT_VERSION: u32 = 1;

/// One row of the instruction table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Variant name.
    pub name: String,
    /// Chain latency in cycles.
    pub latency: Option<f64>,
    /// Reciprocal throughput in cycles.
    pub throughput: f64,
    /// µops per instruction.
    pub uops: f64,
    /// Port usage string, e.g. `"1.00*p23"`.
    pub ports: String,
}

// Hand-written because the vendored serde shim has no derive macro; field
// order must match the struct declaration so JSON output stays stable.
impl Serialize for TableRow {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("name".to_owned(), self.name.to_value()),
            ("latency".to_owned(), self.latency.to_value()),
            ("throughput".to_owned(), self.throughput.to_value()),
            ("uops".to_owned(), self.uops.to_value()),
            ("ports".to_owned(), self.ports.to_value()),
        ])
    }
}

impl TableRow {
    /// Serializes the row for the persistent store (version
    /// [`TABLE_FORMAT_VERSION`]): length-prefixed strings and IEEE-754
    /// bits, all little-endian, bit-exact on round trip.
    pub fn to_store_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let put_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        put_str(&mut out, &self.name);
        match self.latency {
            Some(l) => {
                out.push(1);
                out.extend_from_slice(&l.to_bits().to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&self.throughput.to_bits().to_le_bytes());
        out.extend_from_slice(&self.uops.to_bits().to_le_bytes());
        put_str(&mut out, &self.ports);
        out
    }

    /// Decodes a row from its store encoding; `None` for any malformed
    /// input (the caller then re-measures).
    pub fn from_store_bytes(bytes: &[u8]) -> Option<TableRow> {
        fn take<'a>(rest: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            let (head, tail) = rest.split_at_checked(n)?;
            *rest = tail;
            Some(head)
        }
        fn take_f64(rest: &mut &[u8]) -> Option<f64> {
            Some(f64::from_bits(u64::from_le_bytes(
                take(rest, 8)?.try_into().ok()?,
            )))
        }
        fn take_str(rest: &mut &[u8]) -> Option<String> {
            let len = u32::from_le_bytes(take(rest, 4)?.try_into().ok()?) as usize;
            Some(std::str::from_utf8(take(rest, len)?).ok()?.to_string())
        }
        let mut rest = bytes;
        let name = take_str(&mut rest)?;
        let latency = match take(&mut rest, 1)?[0] {
            0 => None,
            1 => Some(take_f64(&mut rest)?),
            _ => return None,
        };
        let throughput = take_f64(&mut rest)?;
        let uops = take_f64(&mut rest)?;
        let ports = take_str(&mut rest)?;
        rest.is_empty().then_some(TableRow {
            name,
            latency,
            throughput,
            uops,
            ports,
        })
    }
}

impl From<InstMeasurement> for TableRow {
    fn from(m: InstMeasurement) -> TableRow {
        TableRow {
            ports: m.port_usage_string(),
            name: m.name,
            latency: m.latency,
            throughput: m.throughput,
            uops: m.uops,
        }
    }
}

fn alu_family() -> Vec<InstSpec> {
    let mut out = Vec::new();
    for mnem in ["add", "sub", "and", "or", "xor", "adc", "sbb"] {
        for (suffix, a, b, c, d) in [
            ("r64, r64", "rax", "rbx", "rcx", "rdx"),
            ("r32, r32", "eax", "ebx", "ecx", "edx"),
        ] {
            out.push(InstSpec::new(
                format!("{} ({})", mnem.to_uppercase(), suffix),
                Some(&format!("{mnem} {a}, {a}")),
                &format!("{mnem} {a}, {a}; {mnem} {b}, {b}; {mnem} {c}, {c}; {mnem} {d}, {d}"),
                4,
            ));
        }
        out.push(InstSpec::new(
            format!("{} (r64, imm8)", mnem.to_uppercase()),
            Some(&format!("{mnem} rax, 1")),
            &format!("{mnem} rax, 1; {mnem} rbx, 1; {mnem} rcx, 1; {mnem} rdx, 1"),
            4,
        ));
    }
    for mnem in ["inc", "dec", "neg", "not"] {
        out.push(InstSpec::new(
            format!("{} (r64)", mnem.to_uppercase()),
            Some(&format!("{mnem} rax")),
            &format!("{mnem} rax; {mnem} rbx; {mnem} rcx; {mnem} rdx"),
            4,
        ));
    }
    out
}

fn shift_bit_family() -> Vec<InstSpec> {
    let mut out = Vec::new();
    for mnem in ["shl", "shr", "sar", "rol", "ror"] {
        out.push(InstSpec::new(
            format!("{} (r64, imm8)", mnem.to_uppercase()),
            Some(&format!("{mnem} rax, 3")),
            &format!("{mnem} rax, 3; {mnem} rbx, 3; {mnem} rcx, 3; {mnem} rdx, 3"),
            4,
        ));
    }
    for mnem in ["popcnt", "lzcnt", "tzcnt", "bsf", "bsr"] {
        out.push(
            InstSpec::new(
                format!("{} (r64, r64)", mnem.to_uppercase()),
                Some(&format!("{mnem} rax, rax")),
                &format!("{mnem} rax, rax; {mnem} rbx, rbx; {mnem} rcx, rcx; {mnem} rdx, rdx"),
                4,
            )
            .with_init("mov rax, 0xF0; mov rbx, 0xF0; mov rcx, 0xF0; mov rdx, 0xF0"),
        );
    }
    out.push(InstSpec::new(
        "BSWAP (r64)",
        Some("bswap rax"),
        "bswap rax; bswap rbx; bswap rcx; bswap rdx",
        4,
    ));
    out.push(InstSpec::new(
        "IMUL (r64, r64)",
        Some("imul rax, rax"),
        "imul rax, rax; imul rbx, rbx; imul rcx, rcx; imul rdx, rdx",
        4,
    ));
    out.push(
        InstSpec::new("DIV (r64)", Some("div rbx"), "div rbx", 1)
            .with_init("mov rbx, 1; mov rdx, 0; mov rax, 100"),
    );
    out
}

fn mov_lea_family() -> Vec<InstSpec> {
    vec![
        InstSpec::new(
            "MOV (r64, r64)",
            Some("mov rax, rax"),
            "mov rax, rbx; mov rcx, rbx; mov rdx, rbx; mov rsi, rbx",
            4,
        ),
        InstSpec::new(
            "MOV (r64, imm32)",
            None,
            "mov rax, 1; mov rbx, 2; mov rcx, 3; mov rdx, 4",
            4,
        ),
        InstSpec::new(
            "MOV load (r64, m64)",
            Some("mov r14, [r14]"),
            "mov rax, [r14]; mov rbx, [r14+64]; mov rcx, [r14+128]; mov rdx, [r14+192]",
            4,
        )
        .with_init("mov [r14], r14"),
        InstSpec::new(
            "MOV store (m64, r64)",
            None,
            "mov [r14], rax; mov [r14+64], rbx; mov [r14+128], rcx; mov [r14+192], rdx",
            4,
        ),
        InstSpec::new(
            "LEA (r64, [r+r])",
            Some("lea rax, [rax+rax]"),
            "lea rax, [rbx+rbx]; lea rcx, [rbx+rbx]; lea rdx, [rbx+rbx]; lea rsi, [rbx+rbx]",
            4,
        ),
        InstSpec::new(
            "MOVZX (r64, r8)",
            Some("movzx rax, al"),
            "movzx rax, bl; movzx rcx, bl; movzx rdx, bl; movzx rsi, bl",
            4,
        ),
        InstSpec::new(
            "CMOVZ (r64, r64)",
            Some("cmovz rax, rax"),
            "cmovz rax, rbx; cmovz rcx, rbx; cmovz rdx, rbx; cmovz rsi, rbx",
            4,
        ),
        InstSpec::new(
            "XCHG (r64, r64)",
            Some("xchg rax, rax"),
            "xchg rax, rbx; xchg rcx, rdx; xchg rsi, rdi; xchg r8, r9",
            4,
        ),
        InstSpec::new("NOP", None, "nop; nop; nop; nop", 4),
    ]
}

/// `n` independent chains over xmm pairs (dest also reads, so distinct
/// destinations are required to avoid loop-carried dependencies).
fn sse_tp(mnem: &str, n: usize) -> String {
    (0..n)
        .map(|i| format!("{mnem} xmm{}, xmm{}", 2 * i, 2 * i + 1))
        .collect::<Vec<_>>()
        .join("; ")
}

fn sse_tp_imm(mnem: &str, n: usize) -> String {
    (0..n)
        .map(|i| format!("{mnem} xmm{}, xmm{}, 0", 2 * i, 2 * i + 1))
        .collect::<Vec<_>>()
        .join("; ")
}

fn sse_avx_family() -> Vec<InstSpec> {
    let mut out = Vec::new();
    for mnem in [
        "addps", "subps", "mulps", "addpd", "mulpd", "maxps", "minps",
    ] {
        out.push(InstSpec::new(
            format!("{} (xmm, xmm)", mnem.to_uppercase()),
            Some(&format!("{mnem} xmm0, xmm0")),
            &sse_tp(mnem, 8),
            8,
        ));
    }
    for mnem in ["pand", "por", "pxor", "paddd", "paddq", "psubd", "pcmpeqd"] {
        out.push(InstSpec::new(
            format!("{} (xmm, xmm)", mnem.to_uppercase()),
            Some(&format!("{mnem} xmm0, xmm0")),
            &sse_tp(mnem, 8),
            8,
        ));
    }
    for mnem in ["divps", "divpd", "sqrtps", "sqrtpd"] {
        out.push(InstSpec::new(
            format!("{} (xmm, xmm)", mnem.to_uppercase()),
            Some(&format!("{mnem} xmm0, xmm0")),
            &sse_tp(mnem, 4),
            4,
        ));
    }
    for mnem in [
        "pshufd",
        "shufps",
        "psadbw",
        "pmulld",
        "pmaddwd",
        "aesenc",
        "pclmulqdq",
    ] {
        let with_imm = matches!(mnem, "pshufd" | "shufps" | "pclmulqdq");
        let (chain, tp) = if with_imm {
            (format!("{mnem} xmm0, xmm0, 0"), sse_tp_imm(mnem, 8))
        } else {
            (format!("{mnem} xmm0, xmm0"), sse_tp(mnem, 8))
        };
        out.push(InstSpec::new(
            format!("{} (xmm, xmm)", mnem.to_uppercase()),
            Some(&chain),
            &tp,
            8,
        ));
    }
    for mnem in ["vaddps", "vmulps", "vfmadd231ps", "vpaddd", "vpxor"] {
        out.push(InstSpec::new(
            format!("{} (ymm, ymm, ymm)", mnem.to_uppercase()),
            Some(&format!("{mnem} ymm0, ymm0, ymm1")),
            &format!(
                "{mnem} ymm0, ymm1, ymm2; {mnem} ymm3, ymm4, ymm5; {mnem} ymm6, ymm7, ymm8; {mnem} ymm9, ymm10, ymm11"
            ),
            4,
        ));
    }
    out
}

fn privileged_family() -> Vec<InstSpec> {
    vec![
        InstSpec::new("RDMSR (APERF)", None, "rdmsr", 1).with_init("mov rcx, 0xE8; mov rdx, 0"),
        InstSpec::new("WRMSR (MISC_FEATURE_CONTROL)", None, "wrmsr", 1)
            .with_init("mov rcx, 0x1A4; mov rax, 0; mov rdx, 0"),
        InstSpec::new("CLI+STI", None, "cli; sti", 2),
        InstSpec::new("SWAPGS", None, "swapgs", 1),
        InstSpec::new("RDTSC", None, "rdtsc", 1),
        InstSpec::new("RDPMC (fixed 0)", None, "rdpmc", 1)
            .with_init("mov rcx, 0x40000000; mov rdx, 0"),
        InstSpec::new("CLFLUSH (m64)", None, "clflush [r14]", 1),
        InstSpec::new("PREFETCHT0 (m64)", None, "prefetcht0 [r14]", 1),
    ]
}

/// The full benchmark suite for case study I.
pub fn benchmark_suite() -> Vec<InstSpec> {
    let mut out = alu_family();
    out.extend(shift_bit_family());
    out.extend(mov_lea_family());
    out.extend(sse_avx_family());
    out.extend(privileged_family());
    out
}

/// Runs the whole suite on a microarchitecture, fanned out over a default
/// [`Campaign`] — one reusable session per worker instead of roughly 270
/// machine builds (two per variant).
///
/// # Errors
///
/// Propagates measurement errors.
pub fn run_suite(uarch: MicroArch) -> Result<Vec<TableRow>, NbError> {
    run_suite_with(&Campaign::kernel(uarch))
}

/// Runs the whole suite through a caller-configured campaign (worker
/// count, seed). Results are in suite order and bit-identical for any
/// worker count: variant *j* always measures on a session reseeded to
/// `base_seed ^ j`.
///
/// # Errors
///
/// Propagates measurement errors.
pub fn run_suite_with(campaign: &Campaign) -> Result<Vec<TableRow>, NbError> {
    let suite = benchmark_suite();
    campaign.run_map(&suite, |session, spec, _| {
        measure_instruction_on(session, spec).map(TableRow::from)
    })
}

/// Runs the suite through a campaign backed by a persistent store: each
/// variant is keyed by its [`InstSpec::fingerprint`], the campaign's
/// machine fingerprint, the variant's job seed and
/// [`TABLE_FORMAT_VERSION`]; variants whose identical measurement ran
/// before are answered from the store without simulating, and fresh
/// measurements are published for future runs. Output is bit-identical to
/// [`run_suite_with`] on the same campaign.
///
/// # Errors
///
/// Propagates measurement errors and store I/O failures.
pub fn run_suite_stored(
    campaign: &Campaign,
    store: &ResultStore,
) -> Result<Vec<TableRow>, NbError> {
    let suite = benchmark_suite();
    let machine_fp = campaign.machine_fingerprint();
    campaign.run_map(&suite, |session, spec, j| {
        let key = StoreKey {
            spec: spec.fingerprint(),
            uarch: machine_fp,
            seed: campaign.seed() ^ j as u64,
            version: TABLE_FORMAT_VERSION,
        };
        if let Some(row) = store.get(&key).and_then(|b| TableRow::from_store_bytes(&b)) {
            return Ok(row);
        }
        let row = measure_instruction_on(session, spec).map(TableRow::from)?;
        store.insert(key, &row.to_store_bytes())?;
        Ok(row)
    })
}

/// Renders rows as an aligned text table.
pub fn render_table(uarch: MicroArch, rows: &[TableRow]) -> String {
    let mut out = format!(
        "{:<28} {:>8} {:>8} {:>6}  {}\n",
        format!("Instruction ({})", uarch.name()),
        "Lat",
        "TP",
        "uops",
        "Ports"
    );
    out.push_str(&"-".repeat(76));
    out.push('\n');
    for r in rows {
        let lat = r
            .latency
            .map_or_else(|| "-".to_string(), |l| format!("{l:.2}"));
        out.push_str(&format!(
            "{:<28} {:>8} {:>8.2} {:>6.2}  {}\n",
            r.name, lat, r.throughput, r.uops, r.ports
        ));
    }
    out
}

/// Serializes rows as JSON (the machine-readable output of §V).
///
/// # Panics
///
/// Never panics: `TableRow` serialization is infallible.
pub fn to_json(rows: &[TableRow]) -> String {
    serde_json::to_string_pretty(rows).expect("TableRow serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure_instruction;

    #[test]
    fn suite_is_substantial() {
        let suite = benchmark_suite();
        assert!(suite.len() >= 70, "got {}", suite.len());
        // Name uniqueness.
        let mut names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len(), "duplicate variant names");
    }

    #[test]
    fn rows_render_and_serialize() {
        let rows = vec![TableRow {
            name: "ADD (r64, r64)".to_string(),
            latency: Some(1.0),
            throughput: 0.25,
            uops: 1.0,
            ports: "1.00*p0156".to_string(),
        }];
        let table = render_table(MicroArch::Skylake, &rows);
        assert!(table.contains("ADD (r64, r64)"));
        assert!(table.contains("0.25"));
        let json = to_json(&rows);
        assert!(json.contains("\"latency\": 1.0"));
    }

    #[test]
    fn store_codec_round_trips_rows() {
        for latency in [Some(4.5), None, Some(-0.0)] {
            let row = TableRow {
                name: "MULPS (xmm, xmm)".to_string(),
                latency,
                throughput: 0.5,
                uops: 1.0,
                ports: "1.00*p01".to_string(),
            };
            let bytes = row.to_store_bytes();
            assert_eq!(TableRow::from_store_bytes(&bytes), Some(row));
            assert!(TableRow::from_store_bytes(&bytes[..bytes.len() - 1]).is_none());
            let mut extended = bytes;
            extended.push(0);
            assert!(TableRow::from_store_bytes(&extended).is_none());
        }
        assert!(TableRow::from_store_bytes(&[]).is_none());
        // Suite fingerprints must be unique, or store keys would collide.
        let suite = benchmark_suite();
        let mut fps: Vec<u64> = suite.iter().map(InstSpec::fingerprint).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), suite.len());
    }

    #[test]
    fn stored_suite_matches_unstored_and_hits_on_rerun() {
        let path = std::env::temp_dir().join(format!("nbstore-table-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let store = ResultStore::open(&path).unwrap();
        let campaign = Campaign::kernel(MicroArch::Skylake);
        let cold = run_suite_with(&campaign).unwrap();
        let first = run_suite_stored(&campaign, &store).unwrap();
        assert_eq!(first, cold);
        let warm = run_suite_stored(&campaign, &store).unwrap();
        assert_eq!(warm, cold);
        let stats = store.stats();
        assert_eq!(stats.hits as usize, cold.len());
        assert_eq!(stats.inserts as usize, cold.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_few_suite_entries_measure_correctly() {
        // Full-suite runs live in the e5 bench binary; spot-check the
        // pipeline with three entries here.
        let suite = benchmark_suite();
        let spot: Vec<&InstSpec> = suite
            .iter()
            .filter(|s| {
                s.name == "XOR (r64, r64)" || s.name == "MULPS (xmm, xmm)" || s.name == "NOP"
            })
            .collect();
        assert_eq!(spot.len(), 3);
        for spec in spot {
            let m = measure_instruction(MicroArch::Skylake, spec).unwrap();
            match m.name.as_str() {
                "XOR (r64, r64)" => {
                    assert_eq!(m.latency, Some(1.0));
                    assert!((m.throughput - 0.25).abs() < 0.1);
                }
                "MULPS (xmm, xmm)" => {
                    assert_eq!(m.latency, Some(4.0));
                    assert!((m.throughput - 0.5).abs() < 0.1, "{}", m.throughput);
                }
                "NOP" => {
                    assert!((m.throughput - 0.25).abs() < 0.1, "{}", m.throughput);
                    assert!(m.ports.iter().all(|p| *p < 0.05), "NOP uses no port");
                }
                _ => unreachable!(),
            }
        }
    }
}
