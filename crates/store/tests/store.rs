//! Integration tests for the persistent result store: durability across
//! re-opens, corruption tolerance, and version invalidation.

use nanobench_store::{ResultStore, StoreKey};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nbstore-it-{}-{tag}", std::process::id()))
}

/// Runs `f` against a fresh store path, removing the file afterwards even
/// if the test body panics mid-way through a later case.
fn with_store_path<R>(tag: &str, f: impl FnOnce(&PathBuf) -> R) -> R {
    let path = temp_path(tag);
    let _ = std::fs::remove_file(&path);
    let result = f(&path);
    let _ = std::fs::remove_file(&path);
    result
}

/// Expands one random word into a record: a key drawn from a small space
/// (so re-inserts and overwrites actually happen) plus a value of 0-31
/// derived bytes.
fn record_from_word(x: u64) -> (StoreKey, Vec<u8>) {
    let key = StoreKey {
        spec: x & 7,
        uarch: (x >> 3) & 3,
        seed: (x >> 5) & 3,
        version: ((x >> 7) & 1) as u32,
    };
    let len = ((x >> 8) & 31) as usize;
    let value = (0..len)
        .map(|i| (x.rotate_left(i as u32 * 7) ^ i as u64) as u8)
        .collect();
    (key, value)
}

proptest! {
    /// The store agrees with an in-memory map under arbitrary interleaved
    /// inserts and lookups, and a re-open from disk reproduces the map
    /// exactly (last insert per key wins).
    #[test]
    fn round_trips_arbitrary_records_through_disk(
        ops in proptest::collection::vec(0u64..u64::MAX, 1..60),
        case in 0u64..u64::MAX,
    ) {
        let path = temp_path(&format!("prop-{case}"));
        let _ = std::fs::remove_file(&path);
        let mut model: HashMap<StoreKey, Vec<u8>> = HashMap::new();
        {
            let store = ResultStore::open(&path).unwrap();
            for (key, value) in ops.iter().map(|x| record_from_word(*x)) {
                prop_assert_eq!(store.get(&key), model.get(&key).cloned());
                store.insert(key, &value).unwrap();
                model.insert(key, value);
            }
            prop_assert_eq!(store.len(), model.len());
        }
        let reopened = ResultStore::open(&path).unwrap();
        prop_assert_eq!(reopened.len(), model.len());
        for (key, value) in &model {
            prop_assert_eq!(reopened.get(key).as_deref(), Some(value.as_slice()));
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn truncated_tail_loses_only_the_torn_record() {
    with_store_path("truncate", |path| {
        let keys: Vec<StoreKey> = (0..5)
            .map(|i| StoreKey {
                spec: i,
                uarch: 10,
                seed: i * 3,
                version: 1,
            })
            .collect();
        {
            let store = ResultStore::open(path).unwrap();
            for (i, key) in keys.iter().enumerate() {
                store.insert(*key, format!("value-{i}").as_bytes()).unwrap();
            }
        }
        // Tear the last record mid-payload, as an interrupted append would.
        let full = std::fs::read(path).unwrap();
        std::fs::write(path, &full[..full.len() - 5]).unwrap();

        let store = ResultStore::open(path).unwrap();
        assert_eq!(store.len(), 4, "only the torn record is lost");
        for (i, key) in keys.iter().take(4).enumerate() {
            assert_eq!(
                store.get(key).as_deref(),
                Some(format!("value-{i}").as_bytes()),
            );
        }
        // The lost job recomputes and re-publishes cleanly...
        assert_eq!(store.get(&keys[4]), None);
        store.insert(keys[4], b"recomputed").unwrap();
        drop(store);
        // ...and the truncated tail did not poison later appends.
        let store = ResultStore::open(path).unwrap();
        assert_eq!(store.len(), 5);
        assert_eq!(store.get(&keys[4]).as_deref(), Some(&b"recomputed"[..]));
    });
}

#[test]
fn garbled_tail_is_skipped_not_an_error() {
    with_store_path("garble", |path| {
        let key_a = StoreKey {
            spec: 1,
            uarch: 2,
            seed: 3,
            version: 1,
        };
        let key_b = StoreKey { spec: 9, ..key_a };
        {
            let store = ResultStore::open(path).unwrap();
            store.insert(key_a, b"intact").unwrap();
            store.insert(key_b, b"garbled soon").unwrap();
        }
        // Flip bytes inside the second record's payload: its checksum
        // fails, so loading must stop there — recompute, never a panic.
        let mut data = std::fs::read(path).unwrap();
        let n = data.len();
        for b in &mut data[n - 8..] {
            *b ^= 0xA5;
        }
        std::fs::write(path, &data).unwrap();

        let store = ResultStore::open(path).unwrap();
        assert_eq!(store.get(&key_a).as_deref(), Some(&b"intact"[..]));
        assert_eq!(store.get(&key_b), None, "garbled record is recomputed");
        assert_eq!(store.len(), 1);
    });
}

#[test]
fn stale_version_keys_never_answer_new_versions() {
    with_store_path("version", |path| {
        let v1 = StoreKey {
            spec: 7,
            uarch: 7,
            seed: 7,
            version: 1,
        };
        let v2 = StoreKey { version: 2, ..v1 };
        {
            let store = ResultStore::open(path).unwrap();
            store.insert(v1, b"old encoding").unwrap();
        }
        let store = ResultStore::open(path).unwrap();
        // A format bump looks up under the new version: the old record
        // must not be returned, and both versions coexist afterwards.
        assert_eq!(store.get(&v2), None);
        store.insert(v2, b"new encoding").unwrap();
        assert_eq!(store.get(&v1).as_deref(), Some(&b"old encoding"[..]));
        assert_eq!(store.get(&v2).as_deref(), Some(&b"new encoding"[..]));
        drop(store);
        let store = ResultStore::open(path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(&v2).as_deref(), Some(&b"new encoding"[..]));
    });
}

#[test]
fn stats_count_hits_misses_and_inserts_per_handle() {
    with_store_path("stats", |path| {
        let key = StoreKey {
            spec: 1,
            uarch: 1,
            seed: 1,
            version: 1,
        };
        let store = ResultStore::open(path).unwrap();
        assert_eq!(store.get(&key), None);
        store.insert(key, b"v").unwrap();
        store.insert(key, b"v").unwrap(); // idempotent: not a new insert
        assert!(store.get(&key).is_some());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        drop(store);
        // Counters are per handle, not persisted.
        let store = ResultStore::open(path).unwrap();
        assert_eq!(store.stats(), Default::default());
    });
}
