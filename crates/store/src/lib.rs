//! # nanobench-store — persistent content-addressed result store
//!
//! Campaigns (Table I inference, instruction-table sweeps) are
//! embarrassingly re-computable: every job is a pure function of its
//! benchmark spec, the simulated microarchitecture, and a seed. This crate
//! makes finished job results durable across processes so a re-run only
//! executes new or changed jobs, and an interrupted campaign resumes from
//! whatever already completed.
//!
//! * [`StoreKey`] is the content address: `(spec hash, uarch fingerprint,
//!   seed, result-format version)`. Changing any ingredient — the benchmark
//!   code, the machine configuration, the seed, or the serialization
//!   format of the cached value — changes the key, so stale results are
//!   never returned; they are simply recomputed under the new key.
//! * [`ResultStore`] is the store itself: an append-only record log on
//!   disk plus an in-memory index loaded at [`ResultStore::open`]. Writes
//!   are atomic at record granularity (one `write_all` of a fully
//!   serialized record); loading is corruption-tolerant — a truncated or
//!   garbled tail record is discarded and its jobs recompute, never a
//!   panic.
//! * [`Fnv1a`] is a stable [`Hasher`]: unlike `DefaultHasher`, its output
//!   is specified (FNV-1a over little-endian byte encodings), so keys
//!   derived from it stay valid across processes and toolchain versions.
//!
//! The store holds raw byte payloads; callers own the value encoding and
//! version it through [`StoreKey::version`] (see `BenchmarkResult`'s store
//! codec in `nanobench-core` and the policy-fit codec in
//! `nanobench-cache-tools`).

#![warn(missing_docs)]

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::hash::{Hash, Hasher};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic bytes opening every store file (the trailing `1` is the framing
/// version; bumping it orphans old files entirely).
const MAGIC: &[u8; 8] = b"NBSTORE1";

/// Fixed-size part of a record: three `u64` key fields, the `u32` format
/// version, and the `u32` payload length.
const RECORD_HEADER_LEN: usize = 8 + 8 + 8 + 4 + 4;

/// Trailing FNV-1a checksum over header + payload.
const CHECKSUM_LEN: usize = 8;

/// Upper bound on a single payload; anything larger in the log is treated
/// as corruption (real payloads are a few hundred bytes).
const MAX_VALUE_LEN: usize = 1 << 28;

/// A stable FNV-1a [`Hasher`].
///
/// `std::collections::hash_map::DefaultHasher` is only deterministic
/// within one process lifetime *by accident* and explicitly unspecified
/// across Rust versions — useless for keys that live on disk. `Fnv1a`
/// hashes the little-endian encoding of every integer write, so a key
/// derived from `value.hash(&mut Fnv1a::new())` is reproducible anywhere.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// FNV-1a offset basis.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a prime.
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(Self::OFFSET)
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 = (self.0 ^ u64::from(*b)).wrapping_mul(Self::PRIME);
        }
    }

    // Fix the integer encodings to little-endian: the default
    // implementations use native-endian bytes, which would silently
    // derive different keys on a big-endian host.
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }
    fn write_usize(&mut self, i: usize) {
        self.write(&(i as u64).to_le_bytes());
    }
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

/// Hashes any [`Hash`] value with the stable [`Fnv1a`] hasher.
pub fn fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv1a::new();
    value.hash(&mut h);
    h.finish()
}

/// The content address of one stored result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// Hash of the job specification (benchmark code, events, measurement
    /// settings — everything the job computes *from*).
    pub spec: u64,
    /// Fingerprint of the simulated machine configuration (uarch, mode,
    /// core count, cache geometry and policies — everything the job
    /// computes *on*).
    pub uarch: u64,
    /// The job's machine seed.
    pub seed: u64,
    /// Version of the value encoding. Bumping it invalidates every record
    /// written under the old version — old records stay in the log but are
    /// never returned for new-version keys.
    pub version: u32,
}

/// Hit/miss/insert counters of one open store handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found nothing (the caller recomputes).
    pub misses: u64,
    /// Records appended to the log by this handle.
    pub inserts: u64,
}

/// Errors opening or appending to a store.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed.
    Io(std::io::Error),
    /// The file exists but does not start with the store magic — refusing
    /// to treat (and eventually truncate) a foreign file as a store.
    NotAStore(PathBuf),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::NotAStore(p) => {
                write!(f, "{} is not a nanobench result store", p.display())
            }
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::NotAStore(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Mutable store state behind the handle's mutex: the index, the open
/// append handle, and the counters.
#[derive(Debug)]
struct Inner {
    index: HashMap<StoreKey, Vec<u8>>,
    file: File,
    stats: StoreStats,
}

/// A file-backed, content-addressed result store.
///
/// One handle is safely shared across campaign worker threads (`&self`
/// methods, internal mutex). Multiple *processes* appending to the same
/// file concurrently are not coordinated — the intended cross-process use
/// is sequential re-runs, where each run opens the log left by the last.
///
/// # Examples
///
/// ```
/// use nanobench_store::{ResultStore, StoreKey};
///
/// let path = std::env::temp_dir().join(format!("nbstore-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_file(&path);
/// let key = StoreKey { spec: 1, uarch: 2, seed: 3, version: 1 };
/// {
///     let store = ResultStore::open(&path).unwrap();
///     assert_eq!(store.get(&key), None);
///     store.insert(key, b"result bytes").unwrap();
/// }
/// // A later process finds the record again.
/// let store = ResultStore::open(&path).unwrap();
/// assert_eq!(store.get(&key).as_deref(), Some(&b"result bytes"[..]));
/// # std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Debug)]
pub struct ResultStore {
    inner: Mutex<Inner>,
    path: PathBuf,
}

impl ResultStore {
    /// Opens (or creates) the store at `path`, loading every intact record
    /// into the in-memory index.
    ///
    /// Loading is corruption-tolerant: records are validated in log order
    /// and the scan stops at the first truncated or checksum-failing
    /// record; the bad tail is cut off so subsequent appends keep the log
    /// parseable. The jobs behind discarded records simply recompute.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures, [`StoreError::NotAStore`]
    /// if `path` holds data that does not begin with the store magic (a
    /// foreign file is never truncated).
    pub fn open(path: impl AsRef<Path>) -> Result<ResultStore, StoreError> {
        let path = path.as_ref().to_path_buf();
        let data = match std::fs::read(&path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StoreError::Io(e)),
        };

        // A partially written header (crash during creation) counts as an
        // empty store; any other non-magic prefix is a foreign file.
        let header_ok = data.len() >= MAGIC.len() && data[..MAGIC.len()] == MAGIC[..];
        if !header_ok && !MAGIC.starts_with(&data[..data.len().min(MAGIC.len())]) {
            return Err(StoreError::NotAStore(path));
        }

        let mut index = HashMap::new();
        let mut good_end = if header_ok { MAGIC.len() } else { 0 };
        if header_ok {
            while let Some((key, payload)) = read_record(&data, good_end) {
                good_end += RECORD_HEADER_LEN + payload.len() + CHECKSUM_LEN;
                index.insert(key, payload);
            }
        }

        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        if good_end == 0 {
            file.set_len(0)?;
            file.write_all(MAGIC)?;
        } else if (good_end as u64) < data.len() as u64 {
            // Cut off the corrupt tail so the records appended below land
            // on a clean boundary.
            file.set_len(good_end as u64)?;
        }
        file.seek(SeekFrom::End(0))?;

        Ok(ResultStore {
            inner: Mutex::new(Inner {
                index,
                file,
                stats: StoreStats::default(),
            }),
            path,
        })
    }

    /// Looks up a result, counting a hit or a miss.
    pub fn get(&self, key: &StoreKey) -> Option<Vec<u8>> {
        let mut inner = self.lock();
        match inner.index.get(key).cloned() {
            Some(value) => {
                inner.stats.hits += 1;
                Some(value)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Publishes a result: appends one record to the log (a single write
    /// of the fully serialized record) and indexes it. Re-inserting a key
    /// with its already-stored value is a no-op, so warm re-runs that
    /// publish unconditionally do not grow the log.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the append fails; the index is only updated
    /// after the record is on its way to disk.
    pub fn insert(&self, key: StoreKey, value: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.lock();
        if inner.index.get(&key).is_some_and(|v| v == value) {
            return Ok(());
        }
        let record = encode_record(&key, value);
        inner.file.write_all(&record)?;
        inner.file.flush()?;
        inner.index.insert(key, value.to_vec());
        inner.stats.inserts += 1;
        Ok(())
    }

    /// Looks up `key`, computing and publishing the value on a miss. The
    /// computation returns the encoded payload; errors pass through and
    /// nothing is stored.
    ///
    /// # Errors
    ///
    /// The compute error `E` (which must absorb [`StoreError`] for the
    /// publish step).
    pub fn get_or_insert_with<E: From<StoreError>>(
        &self,
        key: StoreKey,
        compute: impl FnOnce() -> Result<Vec<u8>, E>,
    ) -> Result<Vec<u8>, E> {
        if let Some(hit) = self.get(&key) {
            return Ok(hit);
        }
        let value = compute()?;
        self.insert(key, &value)?;
        Ok(value)
    }

    /// This handle's hit/miss/insert counters.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats
    }

    /// Number of distinct keys in the index.
    pub fn len(&self) -> usize {
        self.lock().index.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The store's backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Locks the inner state; a poisoned lock (a panicking worker thread)
    /// still yields the data — the store itself never panics over it.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Serializes one record: key fields, payload length, payload, and a
/// trailing FNV-1a checksum over everything before it.
fn encode_record(key: &StoreKey, value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + value.len() + CHECKSUM_LEN);
    out.extend_from_slice(&key.spec.to_le_bytes());
    out.extend_from_slice(&key.uarch.to_le_bytes());
    out.extend_from_slice(&key.seed.to_le_bytes());
    out.extend_from_slice(&key.version.to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value);
    let mut h = Fnv1a::new();
    h.write(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// Parses the record at `offset`, returning `None` for a clean end of log
/// *or* any inconsistency (truncation, oversized length, bad checksum) —
/// the caller treats both as "the log ends here".
fn read_record(data: &[u8], offset: usize) -> Option<(StoreKey, Vec<u8>)> {
    let rest = data.get(offset..)?;
    if rest.len() < RECORD_HEADER_LEN + CHECKSUM_LEN {
        return None;
    }
    let u64_at = |i: usize| u64::from_le_bytes(rest[i..i + 8].try_into().expect("8 bytes"));
    let u32_at = |i: usize| u32::from_le_bytes(rest[i..i + 4].try_into().expect("4 bytes"));
    let len = u32_at(28) as usize;
    if len > MAX_VALUE_LEN || rest.len() < RECORD_HEADER_LEN + len + CHECKSUM_LEN {
        return None;
    }
    let body = &rest[..RECORD_HEADER_LEN + len];
    let mut h = Fnv1a::new();
    h.write(body);
    let stored = u64_at(RECORD_HEADER_LEN + len);
    if h.finish() != stored {
        return None;
    }
    let key = StoreKey {
        spec: u64_at(0),
        uarch: u64_at(8),
        seed: u64_at(16),
        version: u32_at(24),
    };
    Some((key, body[RECORD_HEADER_LEN..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("nbstore-unit-{}-{tag}", std::process::id()))
    }

    fn key(n: u64) -> StoreKey {
        StoreKey {
            spec: n,
            uarch: n ^ 0xABCD,
            seed: n.wrapping_mul(7),
            version: 1,
        }
    }

    #[test]
    fn fnv1a_is_stable() {
        // Pinned values: these must never change, or every store on disk
        // silently invalidates.
        assert_eq!(fingerprint(&42u64), {
            let mut h = Fnv1a::new();
            h.write(&42u64.to_le_bytes());
            h.finish()
        });
        let mut h = Fnv1a::new();
        h.write(b"nanobench");
        assert_eq!(h.finish(), 0xee71_689e_3016_35db);
    }

    #[test]
    fn insert_get_and_reopen() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let store = ResultStore::open(&path).unwrap();
            assert!(store.is_empty());
            store.insert(key(1), b"one").unwrap();
            store.insert(key(2), b"two").unwrap();
            assert_eq!(store.get(&key(1)).as_deref(), Some(&b"one"[..]));
            assert_eq!(store.get(&key(3)), None);
            let stats = store.stats();
            assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 2));
        }
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(&key(2)).as_deref(), Some(&b"two"[..]));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_insert_is_idempotent_and_last_value_wins() {
        let path = temp_path("dup");
        let _ = std::fs::remove_file(&path);
        let store = ResultStore::open(&path).unwrap();
        store.insert(key(1), b"a").unwrap();
        let len_after_first = std::fs::metadata(&path).unwrap().len();
        store.insert(key(1), b"a").unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            len_after_first,
            "same-value re-insert must not grow the log"
        );
        store.insert(key(1), b"b").unwrap();
        assert_eq!(store.get(&key(1)).as_deref(), Some(&b"b"[..]));
        drop(store);
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 1, "one key despite two log records");
        assert_eq!(
            store.get(&key(1)).as_deref(),
            Some(&b"b"[..]),
            "replay keeps the last record"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_file_is_refused() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely not a store file").unwrap();
        match ResultStore::open(&path) {
            Err(StoreError::NotAStore(p)) => assert_eq!(p, path),
            other => panic!("expected NotAStore, got {other:?}"),
        }
        // And the foreign file is untouched.
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"definitely not a store file"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_and_partial_header_files_become_stores() {
        for (tag, content) in [("empty", &b""[..]), ("partial", &b"NBST"[..])] {
            let path = temp_path(tag);
            std::fs::write(&path, content).unwrap();
            let store = ResultStore::open(&path).unwrap();
            assert!(store.is_empty());
            store.insert(key(9), b"v").unwrap();
            drop(store);
            let store = ResultStore::open(&path).unwrap();
            assert_eq!(store.get(&key(9)).as_deref(), Some(&b"v"[..]));
            std::fs::remove_file(&path).unwrap();
        }
    }
}
