//! Plan-vs-legacy equivalence over the full corpus.
//!
//! The decode-once plan layer must be a pure performance change: for every
//! program in `x86::corpus` — in kernel mode and in user mode with
//! interrupt injection enabled — the legacy instruction-slice path
//! (`Engine::run`) and the cached-plan path (`Engine::decode` +
//! `Engine::run_plan`, one plan replayed for every dynamic run) produce
//! bit-identical `RunStats`, PMU readings, and architectural state,
//! including identical faults for the lines that fault.

use nanobench_cache::hierarchy::CacheHierarchy;
use nanobench_cache::presets::table1_cpus;
use nanobench_pmu::event::events;
use nanobench_pmu::Pmu;
use nanobench_uarch::bus::{Bus, CpuFault, InterruptEvent};
use nanobench_uarch::engine::Engine;
use nanobench_uarch::port::MicroArch;
use nanobench_uarch::state::CpuState;
use nanobench_x86::asm::parse_asm;
use nanobench_x86::corpus::ROUNDTRIP_CORPUS;
use nanobench_x86::inst::{Instruction, Mnemonic};
use nanobench_x86::reg::{Flag, Gpr};
use std::collections::HashMap;

/// A deterministic test environment: flat byte-addressed memory, a real
/// cache hierarchy (Skylake geometry), and — in user mode — interrupt
/// injection at fixed intervals. Two instances fed the same call sequence
/// evolve identically, so any divergence between the two engine paths
/// shows up as a state mismatch.
struct TestBus {
    mem: HashMap<u64, u8>,
    hierarchy: CacheHierarchy,
    kernel: bool,
    interrupts_enabled: bool,
    next_interrupt: u64,
    interrupts_taken: u64,
    uncore_seen: Vec<u64>,
}

impl TestBus {
    fn new(kernel: bool, seed: u64) -> TestBus {
        let cpu = table1_cpus()
            .into_iter()
            .find(|c| c.microarch == "Skylake")
            .expect("Skylake preset exists");
        let cfg = cpu.hierarchy_config();
        let slices = cfg.slice_count();
        TestBus {
            mem: HashMap::new(),
            hierarchy: CacheHierarchy::new(&cfg, seed),
            kernel,
            interrupts_enabled: !kernel,
            next_interrupt: 2_000,
            interrupts_taken: 0,
            uncore_seen: vec![0; slices],
        }
    }
}

impl Bus for TestBus {
    fn read(&mut self, vaddr: u64, len: u8) -> Result<u64, CpuFault> {
        let mut v = 0u64;
        for i in (0..len as u64).rev() {
            v = (v << 8) | u64::from(*self.mem.get(&(vaddr + i)).unwrap_or(&0));
        }
        Ok(v)
    }

    fn write(&mut self, vaddr: u64, len: u8, value: u64) -> Result<(), CpuFault> {
        for i in 0..len as u64 {
            self.mem.insert(vaddr + i, (value >> (8 * i)) as u8);
        }
        Ok(())
    }

    fn access(
        &mut self,
        vaddr: u64,
        _is_write: bool,
    ) -> Result<nanobench_cache::hierarchy::MemAccessResult, CpuFault> {
        Ok(self.hierarchy.access(vaddr))
    }

    fn is_kernel(&self) -> bool {
        self.kernel
    }

    fn rdpmc_allowed(&self) -> bool {
        true
    }

    fn rdmsr(&mut self, addr: u32) -> Result<u64, CpuFault> {
        Err(CpuFault::BadMsr { addr })
    }

    fn wrmsr(&mut self, addr: u32, _value: u64) -> Result<(), CpuFault> {
        Err(CpuFault::BadMsr { addr })
    }

    fn wbinvd(&mut self) {
        self.hierarchy.wbinvd();
    }

    fn clflush(&mut self, vaddr: u64) {
        self.hierarchy.clflush(vaddr);
    }

    fn prefetch(&mut self, vaddr: u64) {
        self.hierarchy.access(vaddr);
    }

    fn poll_interrupt(&mut self, cycle: u64) -> Option<InterruptEvent> {
        if !self.interrupts_enabled || cycle < self.next_interrupt {
            return None;
        }
        self.next_interrupt = cycle + 2_500;
        self.interrupts_taken += 1;
        // The handler perturbs the cache deterministically.
        for k in 0..4u64 {
            self.hierarchy
                .access(0x9_0000 + (self.interrupts_taken * 4 + k) * 64);
        }
        Some(InterruptEvent {
            cycles: 777,
            instructions: 100,
            uops: 150,
        })
    }

    fn set_interrupt_flag(&mut self, enabled: bool) {
        self.interrupts_enabled = enabled;
    }

    fn drain_uncore_lookups(&mut self, out: &mut Vec<u64>) {
        let current = self.hierarchy.uncore_lookups();
        out.extend(
            current
                .iter()
                .zip(self.uncore_seen.iter())
                .map(|(c, s)| c - s),
        );
        self.uncore_seen.copy_from_slice(current);
    }
}

/// One side of the comparison: engine + state + PMU + bus + cycle cursor.
struct Side {
    engine: Engine,
    state: CpuState,
    pmu: Pmu,
    bus: TestBus,
    cycle: u64,
}

const SEED: u64 = 0x517A;

impl Side {
    fn new(kernel: bool) -> Side {
        let bus = TestBus::new(kernel, SEED);
        let mut pmu = Pmu::new(4, bus.uncore_seen.len());
        for (i, code) in [
            events::UOPS_ISSUED_ANY,
            events::MEM_LOAD_L1_HIT,
            events::BR_INST_RETIRED,
            events::BR_MISP_RETIRED,
        ]
        .into_iter()
        .enumerate()
        {
            pmu.configure(i, Some(code));
        }
        let mut state = CpuState::new();
        // Point the address-forming registers somewhere harmless so the
        // corpus's memory operands land in a small, cacheable region.
        state.set_gpr(Gpr::R14, 0x5000);
        state.set_gpr(Gpr::Rbp, 0x6000);
        state.set_gpr(Gpr::Rsp, 0x7000);
        Side {
            engine: Engine::new(MicroArch::Skylake, SEED),
            state,
            pmu,
            bus,
            cycle: 0,
        }
    }

    fn pmu_readings(&self) -> Vec<Option<u64>> {
        let mut out = Vec::new();
        for fixed in 0..3u32 {
            out.push(self.pmu.rdpmc((1 << 30) | fixed));
        }
        for prog in 0..4u32 {
            out.push(self.pmu.rdpmc(prog));
        }
        out
    }

    fn arch_state(&self) -> (Vec<u64>, Vec<bool>, Vec<u64>) {
        (
            Gpr::ALL.iter().map(|g| self.state.gpr(*g)).collect(),
            Flag::ALL.iter().map(|f| self.state.flag(*f)).collect(),
            (0..32).map(|v| self.state.vreg_digest(v)).collect(),
        )
    }
}

/// Runs every corpus line (as its own program, three dynamic runs each —
/// the warm-up/counter-half shape that exercises plan reuse) plus a
/// branchy looped program, on the legacy path and the cached-plan path,
/// asserting bit-identical results after every run.
fn corpus_equivalence(kernel: bool) {
    let mut legacy = Side::new(kernel);
    let mut planned = Side::new(kernel);

    let mut programs: Vec<(String, Vec<Instruction>)> = ROUNDTRIP_CORPUS
        .iter()
        .map(|line| ((*line).to_string(), parse_asm(line).unwrap()))
        .collect();
    // A looped, branchy, memory-touching program: long enough for the
    // user-mode interrupt injection to fire mid-run, with magic
    // pause/resume markers (§III-I) in the body.
    let mut looped = parse_asm(
        "mov r15, 200; mov rax, 0; l: add rax, 1; mov [r14+8], rax; \
         mov rbx, [r14+8]; imul rbx, rbx; dec r15; jnz l",
    )
    .unwrap();
    looped.insert(2, Instruction::new(Mnemonic::NbResume));
    looped.push(Instruction::new(Mnemonic::NbPause));
    programs.push(("looped body".to_string(), looped));

    for (name, program) in &programs {
        let plan = planned.engine.decode(program);
        assert_eq!(plan.len(), program.len());
        for round in 0..3 {
            let a = legacy.engine.run(
                program,
                &mut legacy.state,
                &mut legacy.pmu,
                &mut legacy.bus,
                legacy.cycle,
            );
            let b = planned.engine.run_plan(
                &plan,
                &mut planned.state,
                &mut planned.pmu,
                &mut planned.bus,
                planned.cycle,
            );
            assert_eq!(a, b, "{name} (round {round}): RunStats/fault diverged");
            if let Ok(stats) = a {
                legacy.cycle = stats.end_cycle;
                planned.cycle = b.unwrap().end_cycle;
            }
            assert_eq!(
                legacy.pmu_readings(),
                planned.pmu_readings(),
                "{name} (round {round}): PMU diverged"
            );
            assert_eq!(
                legacy.arch_state(),
                planned.arch_state(),
                "{name} (round {round}): architectural state diverged"
            );
        }
    }
    assert_eq!(legacy.cycle, planned.cycle);
    assert_eq!(legacy.bus.interrupts_taken, planned.bus.interrupts_taken);
    if !kernel {
        assert!(
            legacy.bus.interrupts_taken > 0,
            "user-mode sweep must actually exercise interrupt injection"
        );
    }
}

#[test]
fn corpus_kernel_mode() {
    corpus_equivalence(true);
}

#[test]
fn corpus_user_mode_with_interrupts() {
    corpus_equivalence(false);
}

/// The public stepping API (`begin_plan` / `step_plan` / `finish_plan`)
/// — what the multi-core scheduler interleaves — is bit-identical to a
/// monolithic `run_plan`, including the mid-run interrupt injection that
/// `poll_interrupt` drives off the context's local cycle.
#[test]
fn stepped_execution_equals_monolithic_run() {
    for kernel in [true, false] {
        let mut mono = Side::new(kernel);
        let mut stepped = Side::new(kernel);
        let program = parse_asm(
            "mov r15, 300; l: add rax, 1; mov [r14+8], rax; \
             mov rbx, [r14+8]; dec r15; jnz l",
        )
        .unwrap();
        let plan_a = mono.engine.decode(&program);
        let plan_b = stepped.engine.decode(&program);
        for _ in 0..2 {
            let a = mono
                .engine
                .run_plan(
                    &plan_a,
                    &mut mono.state,
                    &mut mono.pmu,
                    &mut mono.bus,
                    mono.cycle,
                )
                .unwrap();
            let mut ctx = stepped.engine.begin_plan(stepped.cycle);
            let mut steps = 0u64;
            while stepped
                .engine
                .step_plan(
                    &mut ctx,
                    &plan_b,
                    &mut stepped.state,
                    &mut stepped.pmu,
                    &mut stepped.bus,
                )
                .unwrap()
            {
                steps += 1;
            }
            let b = stepped.engine.finish_plan(&mut ctx, &mut stepped.pmu);
            assert_eq!(a, b, "kernel={kernel}: RunStats diverged");
            // A step dispatches one instruction or one fused ALU
            // superblock, so there are at most as many steps as
            // instructions (and strictly fewer when runs fuse).
            assert!(steps <= a.instructions, "kernel={kernel}");
            assert_eq!(ctx.instructions(), a.instructions);
            assert_eq!(ctx.now(), a.end_cycle);
            mono.cycle = a.end_cycle;
            stepped.cycle = b.end_cycle;
            assert_eq!(mono.pmu_readings(), stepped.pmu_readings());
            assert_eq!(mono.arch_state(), stepped.arch_state());
        }
    }
}

/// A single decoded plan replayed across engine resets stays valid: plans
/// are pure static decode and hold no machine state.
#[test]
fn plan_survives_engine_reset() {
    let program = parse_asm("add rax, rax; mulps xmm0, xmm1; mov rbx, [r14]").unwrap();
    let mut side = Side::new(true);
    let plan = side.engine.decode(&program);

    let first = side
        .engine
        .run_plan(&plan, &mut side.state, &mut side.pmu, &mut side.bus, 0)
        .unwrap();
    let first_state = side.arch_state();

    // Fresh everything except the plan object.
    let mut fresh = Side::new(true);
    let again = fresh
        .engine
        .run_plan(&plan, &mut fresh.state, &mut fresh.pmu, &mut fresh.bus, 0)
        .unwrap();
    assert_eq!(first, again);
    assert_eq!(first_state, fresh.arch_state());
}
