//! Batched PMU delivery must preserve 48-bit wraparound (regression).
//!
//! The plan interpreter accumulates event counts in a per-run batch and
//! delivers them to the [`Pmu`] in bulk. The PMU masks to the 48-bit
//! counter width only at architectural reads and writes, so batched
//! addition commutes with per-µop addition — including when a counter
//! crosses 2^48 *inside* one batch. These tests park counters just below
//! the boundary, run a looped program whose single batch carries them
//! past it, and check both the absolute wrapped values and bit-identity
//! with the unbatched legacy path, in kernel and user mode.

use nanobench_cache::hierarchy::CacheHierarchy;
use nanobench_cache::presets::table1_cpus;
use nanobench_pmu::event::events;
use nanobench_pmu::{msr, Pmu, COUNTER_WIDTH};
use nanobench_uarch::bus::{Bus, CpuFault, InterruptEvent};
use nanobench_uarch::engine::Engine;
use nanobench_uarch::port::MicroArch;
use nanobench_uarch::state::CpuState;
use nanobench_x86::asm::parse_asm;
use nanobench_x86::reg::Gpr;
use std::collections::HashMap;

const CTR_MASK: u64 = (1 << COUNTER_WIDTH) - 1;

/// Flat-memory bus with a real cache hierarchy; user mode injects
/// interrupts so the wrap also survives interrupt-event accounting.
struct TestBus {
    mem: HashMap<u64, u8>,
    hierarchy: CacheHierarchy,
    kernel: bool,
    interrupts_enabled: bool,
    next_interrupt: u64,
    uncore_seen: Vec<u64>,
}

impl TestBus {
    fn new(kernel: bool) -> TestBus {
        let cpu = table1_cpus()
            .into_iter()
            .find(|c| c.microarch == "Skylake")
            .expect("Skylake preset exists");
        let cfg = cpu.hierarchy_config();
        let slices = cfg.slice_count();
        TestBus {
            mem: HashMap::new(),
            hierarchy: CacheHierarchy::new(&cfg, 3),
            kernel,
            interrupts_enabled: !kernel,
            next_interrupt: 1_500,
            uncore_seen: vec![0; slices],
        }
    }
}

impl Bus for TestBus {
    fn read(&mut self, vaddr: u64, len: u8) -> Result<u64, CpuFault> {
        let mut v = 0u64;
        for i in (0..len as u64).rev() {
            v = (v << 8) | u64::from(*self.mem.get(&(vaddr + i)).unwrap_or(&0));
        }
        Ok(v)
    }

    fn write(&mut self, vaddr: u64, len: u8, value: u64) -> Result<(), CpuFault> {
        for i in 0..len as u64 {
            self.mem.insert(vaddr + i, (value >> (8 * i)) as u8);
        }
        Ok(())
    }

    fn access(
        &mut self,
        vaddr: u64,
        _is_write: bool,
    ) -> Result<nanobench_cache::hierarchy::MemAccessResult, CpuFault> {
        Ok(self.hierarchy.access(vaddr))
    }

    fn is_kernel(&self) -> bool {
        self.kernel
    }

    fn rdpmc_allowed(&self) -> bool {
        true
    }

    fn rdmsr(&mut self, addr: u32) -> Result<u64, CpuFault> {
        Err(CpuFault::BadMsr { addr })
    }

    fn wrmsr(&mut self, addr: u32, _value: u64) -> Result<(), CpuFault> {
        Err(CpuFault::BadMsr { addr })
    }

    fn wbinvd(&mut self) {
        self.hierarchy.wbinvd();
    }

    fn clflush(&mut self, vaddr: u64) {
        self.hierarchy.clflush(vaddr);
    }

    fn prefetch(&mut self, vaddr: u64) {
        self.hierarchy.access(vaddr);
    }

    fn poll_interrupt(&mut self, cycle: u64) -> Option<InterruptEvent> {
        if !self.interrupts_enabled || cycle < self.next_interrupt {
            return None;
        }
        self.next_interrupt = cycle + 2_000;
        Some(InterruptEvent {
            cycles: 500,
            instructions: 40,
            uops: 60,
        })
    }

    fn set_interrupt_flag(&mut self, enabled: bool) {
        self.interrupts_enabled = enabled;
    }

    fn drain_uncore_lookups(&mut self, out: &mut Vec<u64>) {
        let current = self.hierarchy.uncore_lookups();
        out.extend(
            current
                .iter()
                .zip(self.uncore_seen.iter())
                .map(|(c, s)| c - s),
        );
        self.uncore_seen.copy_from_slice(current);
    }
}

struct Side {
    engine: Engine,
    state: CpuState,
    pmu: Pmu,
    bus: TestBus,
}

impl Side {
    fn new(kernel: bool) -> Side {
        let bus = TestBus::new(kernel);
        let mut pmu = Pmu::new(4, bus.uncore_seen.len());
        pmu.configure(0, Some(events::UOPS_ISSUED_ANY));
        pmu.configure(1, Some(events::MEM_LOAD_L1_HIT));
        let mut state = CpuState::new();
        state.set_gpr(Gpr::R14, 0x5000);
        Side {
            engine: Engine::new(MicroArch::Skylake, 3),
            state,
            pmu,
            bus,
        }
    }

    /// Parks the instruction, µop, and L1-hit counters `headroom` short of
    /// the 2^48 boundary, as nanoBench's WRMSR preloading would. The
    /// L1-hit counter sees only ~200 increments per run, so its headroom
    /// is capped to keep the crossing guaranteed.
    fn park_counters(&mut self, headroom: u64) -> [u64; 3] {
        let parks = [
            (1u64 << COUNTER_WIDTH) - headroom,
            (1u64 << COUNTER_WIDTH) - headroom,
            (1u64 << COUNTER_WIDTH) - headroom.min(100),
        ];
        assert!(self.pmu.wrmsr(msr::IA32_FIXED_CTR0, parks[0]));
        assert!(self.pmu.wrmsr(msr::IA32_PMC0, parks[1]));
        assert!(self.pmu.wrmsr(msr::IA32_PMC0 + 1, parks[2]));
        parks
    }

    fn readings(&self) -> [u64; 3] {
        [
            self.pmu.rdpmc(1 << 30).unwrap(),
            self.pmu.rdpmc(0).unwrap(),
            self.pmu.rdpmc(1).unwrap(),
        ]
    }
}

/// ~1000 retired instructions and ~400 L1 hits per run: far more than the
/// preload headroom, so the boundary crossing happens inside one batch.
const LOOPED: &str = "mov r15, 200; l: add rax, 1; mov [r14+8], rax; \
                      mov rbx, [r14+8]; sub r9, rbx; dec r15; jnz l";

fn wrap_mid_batch(kernel: bool) {
    // Headroom 1: the very first increment of the batch crosses.
    // Headroom 500: the crossing lands mid-batch.
    for headroom in [1u64, 500] {
        let mut legacy = Side::new(kernel);
        let mut planned = Side::new(kernel);
        let program = parse_asm(LOOPED).unwrap();
        let plan = planned.engine.decode(&program);

        let parks = legacy.park_counters(headroom);
        planned.park_counters(headroom);
        let park = parks[0];

        let a = legacy
            .engine
            .run(
                &program,
                &mut legacy.state,
                &mut legacy.pmu,
                &mut legacy.bus,
                0,
            )
            .unwrap();
        let b = planned
            .engine
            .run_plan(
                &plan,
                &mut planned.state,
                &mut planned.pmu,
                &mut planned.bus,
                0,
            )
            .unwrap();
        assert_eq!(
            a, b,
            "kernel={kernel} headroom={headroom}: RunStats diverged"
        );

        // The batched path must agree with the unbatched legacy path...
        assert_eq!(
            legacy.readings(),
            planned.readings(),
            "kernel={kernel} headroom={headroom}: wrapped readings diverged"
        );
        // ...and the counters must have wrapped to small values rather
        // than saturating or staying near 2^48.
        assert!(
            park + a.instructions > CTR_MASK,
            "kernel={kernel} headroom={headroom}: run must actually cross 2^48"
        );
        for (i, v) in planned.readings().into_iter().enumerate() {
            assert!(
                v < parks[i],
                "kernel={kernel} headroom={headroom}: counter {i} read {v:#x}, did not wrap"
            );
        }
        if kernel {
            // No interrupt noise: the exact arithmetic truth holds,
            // (park + total) mod 2^48. Injected interrupts (user mode)
            // add their own retired instructions to the same batch; the
            // differential check above covers that case.
            let expected_inst = (park + a.instructions) & CTR_MASK;
            assert_eq!(
                planned.readings()[0],
                expected_inst,
                "headroom={headroom}: instructions must wrap modulo 2^48"
            );
            // RDMSR sees the same wrapped value as RDPMC.
            assert_eq!(planned.pmu.rdmsr(msr::IA32_FIXED_CTR0), Some(expected_inst));
        }
    }
}

#[test]
fn counters_wrap_mid_batch_kernel_mode() {
    wrap_mid_batch(true);
}

#[test]
fn counters_wrap_mid_batch_user_mode_with_interrupts() {
    wrap_mid_batch(false);
}

/// A mid-run RDPMC forces a batch flush at the observation point; the
/// value read into RAX must be the wrapped one even though the batch that
/// delivered it crossed 2^48.
#[test]
fn mid_run_rdpmc_observes_wrapped_value() {
    for kernel in [true, false] {
        let mut side = Side::new(kernel);
        // Interrupt injection would add its own retired instructions to
        // the batch; disable it so the expected value is exact (the
        // with-interrupts crossing is covered differentially above).
        side.bus.interrupts_enabled = false;
        // 2^30 selects fixed counter 0 (instructions retired).
        let program = parse_asm(&format!(
            "mov r15, 100; l: add rax, 1; dec r15; jnz l; \
             mov rcx, {}; rdpmc",
            1u64 << 30
        ))
        .unwrap();
        let plan = side.engine.decode(&program);
        side.park_counters(10);
        let park = (1u64 << COUNTER_WIDTH) - 10;

        let stats = side
            .engine
            .run_plan(&plan, &mut side.state, &mut side.pmu, &mut side.bus, 0)
            .unwrap();
        // RDPMC returns EDX:EAX; the instructions retired *before* the
        // rdpmc itself are the loop's 302 plus the mov rcx.
        let retired_before_rdpmc = stats.instructions - 1;
        let expected = (park + retired_before_rdpmc) & CTR_MASK;
        let read = (side.state.gpr(Gpr::Rdx) << 32) | (side.state.gpr(Gpr::Rax) & 0xFFFF_FFFF);
        assert_eq!(read, expected, "kernel={kernel}");
        assert!(park + retired_before_rdpmc > CTR_MASK, "must cross 2^48");
    }
}
