//! Functional (semantic) execution of instructions.
//!
//! The engine is *functional-first, timing-directed*: every instruction is
//! executed architecturally in program order here, while `engine` computes
//! cycle timing separately. Microbenchmarks really compute — pointer
//! chasing (`mov R14,[R14]`, §III-A), loop counters in R15 (§III-B), and
//! the counter arithmetic of the generated measurement code all depend on
//! real values.

use crate::bus::{Bus, CpuFault};
use crate::plan::{FastAlu, FastOp, FastSrc};
use crate::state::CpuState;
use nanobench_x86::inst::{Instruction, Mnemonic};
use nanobench_x86::operand::{MemRef, Operand};
use nanobench_x86::reg::{Flag, Gpr, GprPart, Width};

/// Control-flow outcome of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Next {
    /// Fall through to the next instruction.
    Seq,
    /// Jump to an instruction index.
    Jump(usize),
}

/// Computes the virtual address of a memory operand.
pub fn mem_vaddr(state: &CpuState, m: &MemRef) -> u64 {
    let mut addr = m.disp as u64;
    if let Some(base) = m.base {
        addr = addr.wrapping_add(state.gpr(base));
    }
    if let Some((index, scale)) = m.index {
        addr = addr.wrapping_add(state.gpr(index).wrapping_mul(scale as u64));
    }
    addr
}

fn read_operand<B: Bus + ?Sized>(
    state: &mut CpuState,
    bus: &mut B,
    op: &Operand,
) -> Result<u64, CpuFault> {
    match op {
        Operand::Gpr(g) => Ok(state.gpr_part(*g)),
        Operand::Imm(v) => Ok(*v as u64),
        Operand::Mem(m) => bus.read(mem_vaddr(state, m), m.width.bytes()),
        Operand::Vec(v) => Ok(state.vreg_digest(v.index)),
        Operand::Label(i) => Ok(*i as u64),
    }
}

fn write_operand<B: Bus + ?Sized>(
    state: &mut CpuState,
    bus: &mut B,
    op: &Operand,
    value: u64,
) -> Result<(), CpuFault> {
    match op {
        Operand::Gpr(g) => {
            state.set_gpr_part(*g, value);
            Ok(())
        }
        Operand::Mem(m) => bus.write(mem_vaddr(state, m), m.width.bytes(), value),
        Operand::Vec(v) => {
            state.set_vreg_digest(v.index, value);
            Ok(())
        }
        _ => Ok(()), // immediates/labels are never written
    }
}

fn op_width(inst: &Instruction) -> Width {
    inst.operands
        .iter()
        .find_map(|o| o.width())
        .unwrap_or(Width::Q)
}

fn sign_bit(value: u64, w: Width) -> bool {
    value & (1 << (w.bits() - 1)) != 0
}

fn parity_even(value: u64) -> bool {
    (value as u8).count_ones().is_multiple_of(2)
}

fn set_logic_flags(state: &mut CpuState, result: u64, w: Width) {
    let r = result & w.mask();
    state.set_flag(Flag::Cf, false);
    state.set_flag(Flag::Of, false);
    state.set_flag(Flag::Zf, r == 0);
    state.set_flag(Flag::Sf, sign_bit(r, w));
    state.set_flag(Flag::Pf, parity_even(r));
    state.set_flag(Flag::Af, false);
}

fn set_add_flags(state: &mut CpuState, a: u64, b: u64, carry_in: u64, w: Width) -> u64 {
    let mask = w.mask();
    let (a, b) = (a & mask, b & mask);
    let full = (a as u128) + (b as u128) + (carry_in as u128);
    let result = (full as u64) & mask;
    state.set_flag(Flag::Cf, full > mask as u128);
    let sa = sign_bit(a, w);
    let sb = sign_bit(b, w);
    let sr = sign_bit(result, w);
    state.set_flag(Flag::Of, sa == sb && sr != sa);
    state.set_flag(Flag::Zf, result == 0);
    state.set_flag(Flag::Sf, sr);
    state.set_flag(Flag::Pf, parity_even(result));
    state.set_flag(Flag::Af, ((a ^ b ^ result) & 0x10) != 0);
    result
}

fn set_sub_flags(state: &mut CpuState, a: u64, b: u64, borrow_in: u64, w: Width) -> u64 {
    let mask = w.mask();
    let (a, b) = (a & mask, b & mask);
    let result = a.wrapping_sub(b).wrapping_sub(borrow_in) & mask;
    state.set_flag(Flag::Cf, (b as u128 + borrow_in as u128) > a as u128);
    let sa = sign_bit(a, w);
    let sb = sign_bit(b, w);
    let sr = sign_bit(result, w);
    state.set_flag(Flag::Of, sa != sb && sr != sa);
    state.set_flag(Flag::Zf, result == 0);
    state.set_flag(Flag::Sf, sr);
    state.set_flag(Flag::Pf, parity_even(result));
    state.set_flag(Flag::Af, ((a ^ b ^ result) & 0x10) != 0);
    result
}

/// Executes a pre-decoded [`FastOp`] semantically. Must be bit-identical
/// to running the corresponding instruction through [`execute`]: same
/// result value and the exact same flag updates (pinned by the
/// `plan_equivalence` and differential suites). Fast ops never touch the
/// bus, so they cannot fault and always fall through sequentially.
pub(crate) fn execute_fast(op: &FastOp, state: &mut CpuState) {
    let src_val = |state: &CpuState, src: FastSrc| match src {
        FastSrc::Reg(r) => state.gpr(r),
        FastSrc::Imm(v) => v,
    };
    match *op {
        FastOp::Mov { dst, src } => {
            let v = src_val(state, src);
            state.set_gpr(dst, v);
        }
        FastOp::Add { dst, src } => {
            let a = state.gpr(dst);
            let b = src_val(state, src);
            let r = set_add_flags(state, a, b, 0, Width::Q);
            state.set_gpr(dst, r);
        }
        FastOp::Sub { dst, src } => {
            let a = state.gpr(dst);
            let b = src_val(state, src);
            let r = set_sub_flags(state, a, b, 0, Width::Q);
            state.set_gpr(dst, r);
        }
        FastOp::And { dst, src } | FastOp::Or { dst, src } | FastOp::Xor { dst, src } => {
            let a = state.gpr(dst);
            let b = src_val(state, src);
            let r = match op {
                FastOp::And { .. } => a & b,
                FastOp::Or { .. } => a | b,
                _ => a ^ b,
            };
            set_logic_flags(state, r, Width::Q);
            state.set_gpr(dst, r);
        }
        FastOp::Imul { dst, src } => {
            let a = state.gpr(dst) as i64;
            let b = src_val(state, src) as i64;
            let r = a.wrapping_mul(b) as u64;
            let overflow = a.checked_mul(b).is_none();
            state.set_flag(Flag::Cf, overflow);
            state.set_flag(Flag::Of, overflow);
            state.set_gpr(dst, r);
        }
        FastOp::Inc { dst } | FastOp::Dec { dst } => {
            let a = state.gpr(dst);
            let cf = state.flag(Flag::Cf); // INC/DEC preserve CF
            let r = match op {
                FastOp::Inc { .. } => set_add_flags(state, a, 1, 0, Width::Q),
                _ => set_sub_flags(state, a, 1, 0, Width::Q),
            };
            state.set_flag(Flag::Cf, cf);
            state.set_gpr(dst, r);
        }
        FastOp::Lea { dst, mem } => {
            let addr = mem_vaddr(state, &mem);
            state.set_gpr(dst, addr);
        }
        _ => unreachable!("register-only fast ops only (the engine fuses memory shapes)"),
    }
}

/// Resolves a [`FastSrc`] operand against register state.
pub(crate) fn fast_src_val(state: &CpuState, src: FastSrc) -> u64 {
    match src {
        FastSrc::Reg(r) => state.gpr(r),
        FastSrc::Imm(v) => v,
    }
}

/// Applies a 64-bit [`FastAlu`] operation with the exact flag updates of
/// the corresponding instruction through [`execute`] (pinned by the
/// `plan_equivalence` and differential suites). Used by the engine to
/// complete memory-shape fast ops whose data access already went through
/// the fused bus path.
pub(crate) fn fast_mem_alu(state: &mut CpuState, op: FastAlu, a: u64, b: u64) -> u64 {
    match op {
        FastAlu::Add => set_add_flags(state, a, b, 0, Width::Q),
        FastAlu::Sub => set_sub_flags(state, a, b, 0, Width::Q),
        FastAlu::And | FastAlu::Or | FastAlu::Xor => {
            let r = match op {
                FastAlu::And => a & b,
                FastAlu::Or => a | b,
                _ => a ^ b,
            };
            set_logic_flags(state, r, Width::Q);
            r
        }
    }
}

/// Executes one "ordinary" instruction semantically (the engine handles
/// fences, counter reads, privileged and cache-control instructions before
/// calling this).
///
/// # Errors
///
/// Propagates memory faults and raises [`CpuFault::DivideError`].
pub fn execute<B: Bus + ?Sized>(
    inst: &Instruction,
    state: &mut CpuState,
    bus: &mut B,
) -> Result<Next, CpuFault> {
    use Mnemonic::*;
    let w = op_width(inst);
    let m = inst.mnemonic;
    match m {
        Nop | Pause => {}
        Mov | Movaps | Movups | Movapd | Movdqa | Movdqu | Movd | Movq => {
            let v = read_operand(state, bus, inst.src().expect("mov has 2 operands"))?;
            write_operand(state, bus, inst.dst().expect("mov has 2 operands"), v)?;
        }
        Movzx => {
            let v = read_operand(state, bus, inst.src().expect("movzx src"))?;
            write_operand(state, bus, inst.dst().expect("movzx dst"), v)?;
        }
        Movsx => {
            let src = inst.src().expect("movsx src");
            let sw = src.width().unwrap_or(Width::B);
            let v = read_operand(state, bus, src)?;
            let sign_extended = if sign_bit(v, sw) { v | !sw.mask() } else { v };
            write_operand(state, bus, inst.dst().expect("movsx dst"), sign_extended)?;
        }
        Lea => {
            let mem = inst
                .src()
                .and_then(|o| o.as_mem())
                .expect("lea src is memory");
            let addr = mem_vaddr(state, &mem);
            write_operand(state, bus, inst.dst().expect("lea dst"), addr)?;
        }
        Add | Adc => {
            let dst = *inst.dst().expect("alu dst");
            let a = read_operand(state, bus, &dst)?;
            let b = read_operand(state, bus, inst.src().expect("alu src"))?;
            let carry = if m == Adc && state.flag(Flag::Cf) {
                1
            } else {
                0
            };
            let r = set_add_flags(state, a, b, carry, w);
            write_operand(state, bus, &dst, r)?;
        }
        Sub | Sbb => {
            let dst = *inst.dst().expect("alu dst");
            let a = read_operand(state, bus, &dst)?;
            let b = read_operand(state, bus, inst.src().expect("alu src"))?;
            let borrow = if m == Sbb && state.flag(Flag::Cf) {
                1
            } else {
                0
            };
            let r = set_sub_flags(state, a, b, borrow, w);
            write_operand(state, bus, &dst, r)?;
        }
        Cmp => {
            let a = read_operand(state, bus, inst.dst().expect("cmp dst"))?;
            let b = read_operand(state, bus, inst.src().expect("cmp src"))?;
            set_sub_flags(state, a, b, 0, w);
        }
        And | Or | Xor => {
            let dst = *inst.dst().expect("alu dst");
            let a = read_operand(state, bus, &dst)?;
            let b = read_operand(state, bus, inst.src().expect("alu src"))?;
            let r = match m {
                And => a & b,
                Or => a | b,
                _ => a ^ b,
            } & w.mask();
            set_logic_flags(state, r, w);
            write_operand(state, bus, &dst, r)?;
        }
        Test => {
            let a = read_operand(state, bus, inst.dst().expect("test dst"))?;
            let b = read_operand(state, bus, inst.src().expect("test src"))?;
            set_logic_flags(state, a & b, w);
        }
        Inc | Dec => {
            let dst = *inst.dst().expect("inc dst");
            let a = read_operand(state, bus, &dst)?;
            // INC/DEC preserve CF.
            let cf = state.flag(Flag::Cf);
            let r = if m == Inc {
                set_add_flags(state, a, 1, 0, w)
            } else {
                set_sub_flags(state, a, 1, 0, w)
            };
            state.set_flag(Flag::Cf, cf);
            write_operand(state, bus, &dst, r)?;
        }
        Neg => {
            let dst = *inst.dst().expect("neg dst");
            let a = read_operand(state, bus, &dst)?;
            let r = set_sub_flags(state, 0, a, 0, w);
            write_operand(state, bus, &dst, r)?;
        }
        Not => {
            let dst = *inst.dst().expect("not dst");
            let a = read_operand(state, bus, &dst)?;
            write_operand(state, bus, &dst, !a & w.mask())?;
        }
        Imul => {
            if inst.operands.len() >= 2 {
                let dst = *inst.dst().expect("imul dst");
                let a = read_operand(state, bus, &dst)? as i64;
                let b = read_operand(state, bus, inst.src().expect("imul src"))? as i64;
                let r = a.wrapping_mul(b) as u64 & w.mask();
                let overflow = a.checked_mul(b).is_none();
                state.set_flag(Flag::Cf, overflow);
                state.set_flag(Flag::Of, overflow);
                write_operand(state, bus, &dst, r)?;
            } else {
                let src = read_operand(state, bus, inst.dst().expect("imul src"))? as i64;
                let a = state.gpr(Gpr::Rax) as i64;
                let full = (a as i128).wrapping_mul(src as i128);
                state.set_gpr(Gpr::Rax, full as u64);
                state.set_gpr(Gpr::Rdx, (full >> 64) as u64);
            }
        }
        Mul => {
            let src = read_operand(state, bus, inst.dst().expect("mul src"))?;
            let a = state.gpr(Gpr::Rax);
            let full = (a as u128).wrapping_mul(src as u128);
            state.set_gpr(Gpr::Rax, full as u64);
            state.set_gpr(Gpr::Rdx, (full >> 64) as u64);
            state.set_flag(Flag::Cf, (full >> 64) != 0);
            state.set_flag(Flag::Of, (full >> 64) != 0);
        }
        Div | Idiv => {
            let divisor = read_operand(state, bus, inst.dst().expect("div src"))?;
            if divisor == 0 {
                return Err(CpuFault::DivideError);
            }
            let lo = state.gpr(Gpr::Rax);
            let hi = state.gpr(Gpr::Rdx);
            if m == Div {
                let dividend = ((hi as u128) << 64) | lo as u128;
                let q = dividend / divisor as u128;
                state.set_gpr(Gpr::Rax, q as u64);
                state.set_gpr(Gpr::Rdx, (dividend % divisor as u128) as u64);
            } else {
                let dividend = (((hi as u128) << 64) | lo as u128) as i128;
                let q = dividend.wrapping_div(divisor as i64 as i128);
                state.set_gpr(Gpr::Rax, q as u64);
                state.set_gpr(
                    Gpr::Rdx,
                    dividend.wrapping_rem(divisor as i64 as i128) as u64,
                );
            }
        }
        Shl | Shr | Sar | Rol | Ror => {
            let dst = *inst.dst().expect("shift dst");
            let a = read_operand(state, bus, &dst)? & w.mask();
            let amount_op = inst.src().expect("shift amount");
            let amount = (read_operand(state, bus, amount_op)? & 0x3F) as u32 % w.bits() as u32;
            let bits = w.bits() as u32;
            let r = match m {
                Shl => a.wrapping_shl(amount),
                Shr => a.wrapping_shr(amount),
                Sar => {
                    let signed = if sign_bit(a, w) { a | !w.mask() } else { a };
                    ((signed as i64) >> amount) as u64
                }
                Rol => a.wrapping_shl(amount) | a.wrapping_shr(bits - amount.max(1)),
                _ => a.wrapping_shr(amount) | a.wrapping_shl(bits - amount.max(1)),
            } & w.mask();
            if amount != 0 && matches!(m, Shl | Shr | Sar) {
                set_logic_flags(state, r, w);
            }
            write_operand(state, bus, &dst, r)?;
        }
        Popcnt => {
            let v = read_operand(state, bus, inst.src().expect("popcnt src"))? & w.mask();
            write_operand(
                state,
                bus,
                inst.dst().expect("popcnt dst"),
                v.count_ones() as u64,
            )?;
            state.set_flag(Flag::Zf, v == 0);
        }
        Lzcnt => {
            let v = read_operand(state, bus, inst.src().expect("lzcnt src"))? & w.mask();
            let r = v.leading_zeros().saturating_sub(64 - w.bits() as u32) as u64;
            write_operand(state, bus, inst.dst().expect("lzcnt dst"), r)?;
        }
        Tzcnt => {
            let v = read_operand(state, bus, inst.src().expect("tzcnt src"))? & w.mask();
            let r = (v.trailing_zeros() as u64).min(w.bits() as u64);
            write_operand(state, bus, inst.dst().expect("tzcnt dst"), r)?;
        }
        Bsf | Bsr => {
            let v = read_operand(state, bus, inst.src().expect("bsf src"))? & w.mask();
            state.set_flag(Flag::Zf, v == 0);
            if v != 0 {
                let r = if m == Bsf {
                    v.trailing_zeros() as u64
                } else {
                    63 - v.leading_zeros() as u64
                };
                write_operand(state, bus, inst.dst().expect("bsf dst"), r)?;
            }
        }
        Crc32 => {
            let a = read_operand(state, bus, inst.dst().expect("crc dst"))?;
            let b = read_operand(state, bus, inst.src().expect("crc src"))?;
            let mut crc = a as u32;
            for byte in b.to_le_bytes() {
                crc ^= byte as u32;
                for _ in 0..8 {
                    crc = (crc >> 1) ^ (0x82F6_3B78 & (0u32.wrapping_sub(crc & 1)));
                }
            }
            write_operand(state, bus, inst.dst().expect("crc dst"), crc as u64)?;
        }
        Bswap => {
            let dst = *inst.dst().expect("bswap dst");
            let a = read_operand(state, bus, &dst)?;
            let r = match w {
                Width::Q => a.swap_bytes(),
                Width::D => (a as u32).swap_bytes() as u64,
                _ => a,
            };
            write_operand(state, bus, &dst, r)?;
        }
        Cmovz | Cmovnz => {
            let take = state.flag(Flag::Zf) == (m == Cmovz);
            if take {
                let v = read_operand(state, bus, inst.src().expect("cmov src"))?;
                write_operand(state, bus, inst.dst().expect("cmov dst"), v)?;
            }
        }
        Setz | Setnz => {
            let v = (state.flag(Flag::Zf) == (m == Setz)) as u64;
            write_operand(state, bus, inst.dst().expect("set dst"), v)?;
        }
        Xchg => {
            let a_op = *inst.dst().expect("xchg dst");
            let b_op = *inst.src().expect("xchg src");
            let a = read_operand(state, bus, &a_op)?;
            let b = read_operand(state, bus, &b_op)?;
            write_operand(state, bus, &a_op, b)?;
            write_operand(state, bus, &b_op, a)?;
        }
        Xadd => {
            let a_op = *inst.dst().expect("xadd dst");
            let b_op = *inst.src().expect("xadd src");
            let a = read_operand(state, bus, &a_op)?;
            let b = read_operand(state, bus, &b_op)?;
            let sum = set_add_flags(state, a, b, 0, w);
            write_operand(state, bus, &b_op, a)?;
            write_operand(state, bus, &a_op, sum)?;
        }
        Push => {
            let v = read_operand(state, bus, inst.dst().expect("push src"))?;
            let rsp = state.gpr(Gpr::Rsp).wrapping_sub(8);
            state.set_gpr(Gpr::Rsp, rsp);
            bus.write(rsp, 8, v)?;
        }
        Pop => {
            let rsp = state.gpr(Gpr::Rsp);
            let v = bus.read(rsp, 8)?;
            state.set_gpr(Gpr::Rsp, rsp.wrapping_add(8));
            write_operand(state, bus, inst.dst().expect("pop dst"), v)?;
        }
        Jmp => {
            if let Some(Operand::Label(t)) = inst.dst() {
                return Ok(Next::Jump(*t));
            }
        }
        Jz | Jnz | Jc | Jnc => {
            let taken = match m {
                Jz => state.flag(Flag::Zf),
                Jnz => !state.flag(Flag::Zf),
                Jc => state.flag(Flag::Cf),
                _ => !state.flag(Flag::Cf),
            };
            if taken {
                if let Some(Operand::Label(t)) = inst.dst() {
                    return Ok(Next::Jump(*t));
                }
            }
        }
        Call => {
            if let Some(Operand::Label(t)) = inst.dst() {
                let rsp = state.gpr(Gpr::Rsp).wrapping_sub(8);
                state.set_gpr(Gpr::Rsp, rsp);
                // The return "address" is the instruction index.
                bus.write(rsp, 8, u64::MAX)?; // placeholder written by engine
                return Ok(Next::Jump(*t));
            }
        }
        Ret => {
            let rsp = state.gpr(Gpr::Rsp);
            let target = bus.read(rsp, 8)?;
            state.set_gpr(Gpr::Rsp, rsp.wrapping_add(8));
            return Ok(Next::Jump(target as usize));
        }
        // Compare instructions write flags only; compare the digests so a
        // following branch sees deterministic flag state.
        Comiss | Comisd => {
            let a = read_operand(state, bus, inst.dst().expect("comis dst"))?;
            let b = read_operand(state, bus, inst.src().expect("comis src"))?;
            state.set_flag(Flag::Cf, a < b);
            state.set_flag(Flag::Zf, a == b);
            state.set_flag(Flag::Pf, false);
            state.set_flag(Flag::Sf, false);
            state.set_flag(Flag::Of, false);
            state.set_flag(Flag::Af, false);
        }
        // Upper-half zeroing is invisible to the digest model.
        Vzeroupper | Vzeroall => {}
        // Vector arithmetic: opaque dependency-preserving semantics. The
        // destination digest mixes all source digests with a per-mnemonic
        // constant, so chains propagate and distinct ops differ.
        _ if m.is_vector() => {
            let tag = m as u64;
            let mut digest = 0xA076_1D64_78BD_642Fu64 ^ tag.wrapping_mul(0x1000_0000_01B3);
            for op in inst.operands.iter().skip(1) {
                digest = digest
                    .rotate_left(13)
                    .wrapping_add(read_operand(state, bus, op)?);
            }
            // Read-modify: include the old destination for 2-operand SSE.
            if let Some(dst) = inst.dst() {
                if inst.operands.len() == 2 && !matches!(dst, Operand::Mem(_)) {
                    digest = digest
                        .rotate_left(7)
                        .wrapping_add(read_operand(state, bus, dst)?);
                }
                write_operand(state, bus, dst, digest)?;
            }
        }
        Prefetcht0 | Prefetcht1 | Prefetcht2 | Prefetchnta | Clflush | Clflushopt | Invlpg => {
            // Cache-control semantics are applied by the engine.
        }
        other => {
            debug_assert!(
                false,
                "mnemonic {other} must be handled by the engine specials"
            );
        }
    }
    Ok(Next::Seq)
}

/// Evaluates a conditional branch's direction without executing it (used
/// by the engine for prediction bookkeeping).
pub fn branch_taken(inst: &Instruction, state: &CpuState) -> bool {
    match inst.mnemonic {
        Mnemonic::Jmp | Mnemonic::Call | Mnemonic::Ret => true,
        Mnemonic::Jz => state.flag(Flag::Zf),
        Mnemonic::Jnz => !state.flag(Flag::Zf),
        Mnemonic::Jc => state.flag(Flag::Cf),
        Mnemonic::Jnc => !state.flag(Flag::Cf),
        _ => false,
    }
}

/// The GPRs an instruction reads (for dependency tracking), including
/// address registers of memory operands.
///
/// Delegates to [`nanobench_x86::defuse`], the single source of truth for
/// per-instruction read/write sets.
pub fn input_gprs(inst: &Instruction) -> Vec<GprPart> {
    nanobench_x86::defuse::input_gprs(inst)
}

/// The GPRs an instruction writes (see [`nanobench_x86::defuse`]).
pub fn output_gprs(inst: &Instruction) -> Vec<GprPart> {
    nanobench_x86::defuse::output_gprs(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::InterruptEvent;
    use nanobench_cache::hierarchy::{HitLevel, MemAccessResult};
    use nanobench_x86::asm::parse_asm;
    use std::collections::HashMap;

    /// A trivial flat-memory bus for semantic tests.
    #[derive(Default)]
    struct FlatBus {
        mem: HashMap<u64, u8>,
    }

    impl Bus for FlatBus {
        fn read(&mut self, vaddr: u64, len: u8) -> Result<u64, CpuFault> {
            let mut v = 0u64;
            for i in (0..len as u64).rev() {
                v = (v << 8) | *self.mem.get(&(vaddr + i)).unwrap_or(&0) as u64;
            }
            Ok(v)
        }
        fn write(&mut self, vaddr: u64, len: u8, value: u64) -> Result<(), CpuFault> {
            for i in 0..len as u64 {
                self.mem.insert(vaddr + i, (value >> (8 * i)) as u8);
            }
            Ok(())
        }
        fn access(&mut self, _vaddr: u64, _w: bool) -> Result<MemAccessResult, CpuFault> {
            Ok(MemAccessResult {
                level: HitLevel::L1,
                latency: 4,
                slice: None,
                snoop: nanobench_cache::hierarchy::SnoopResult::Miss,
                invalidated: 0,
            })
        }
        fn is_kernel(&self) -> bool {
            true
        }
        fn rdpmc_allowed(&self) -> bool {
            true
        }
        fn rdmsr(&mut self, addr: u32) -> Result<u64, CpuFault> {
            Err(CpuFault::BadMsr { addr })
        }
        fn wrmsr(&mut self, addr: u32, _value: u64) -> Result<(), CpuFault> {
            Err(CpuFault::BadMsr { addr })
        }
        fn wbinvd(&mut self) {}
        fn clflush(&mut self, _vaddr: u64) {}
        fn prefetch(&mut self, _vaddr: u64) {}
        fn poll_interrupt(&mut self, _cycle: u64) -> Option<InterruptEvent> {
            None
        }
        fn set_interrupt_flag(&mut self, _enabled: bool) {}
        fn drain_uncore_lookups(&mut self, _out: &mut Vec<u64>) {}
    }

    fn run_seq(text: &str, state: &mut CpuState) {
        let bus = &mut FlatBus::default();
        let insts = parse_asm(text).unwrap();
        let mut pc = 0usize;
        let mut steps = 0;
        while pc < insts.len() {
            steps += 1;
            assert!(steps < 10_000, "runaway test loop");
            match execute(&insts[pc], state, bus).unwrap() {
                Next::Seq => pc += 1,
                Next::Jump(t) => pc = t,
            }
        }
    }

    #[test]
    fn arithmetic_and_flags() {
        let mut s = CpuState::new();
        run_seq("mov rax, 5; add rax, 7; sub rax, 2", &mut s);
        assert_eq!(s.gpr(Gpr::Rax), 10);
        run_seq("mov rbx, 1; sub rbx, 1", &mut s);
        assert!(s.flag(Flag::Zf));
        run_seq("mov rcx, 0; dec rcx", &mut s);
        assert_eq!(s.gpr(Gpr::Rcx), u64::MAX);
        assert!(s.flag(Flag::Sf));
    }

    #[test]
    fn pointer_chase_example() {
        // The §III-A microbenchmark: init writes R14's value to [R14];
        // the main part loads it back — R14 is unchanged.
        let mut s = CpuState::new();
        s.set_gpr(Gpr::R14, 0x5000);
        run_seq("mov [R14], R14; mov R14, [R14]", &mut s);
        assert_eq!(s.gpr(Gpr::R14), 0x5000);
    }

    #[test]
    fn loops_terminate_with_counter() {
        let mut s = CpuState::new();
        run_seq(
            "mov r15, 10; mov rax, 0; l: add rax, 2; dec r15; jnz l",
            &mut s,
        );
        assert_eq!(s.gpr(Gpr::Rax), 20);
        assert_eq!(s.gpr(Gpr::R15), 0);
    }

    #[test]
    fn adc_carry_chain() {
        let mut s = CpuState::new();
        run_seq("mov rax, -1; mov rbx, 0; add rax, 1; adc rbx, 0", &mut s);
        assert_eq!(s.gpr(Gpr::Rax), 0);
        assert_eq!(s.gpr(Gpr::Rbx), 1);
    }

    #[test]
    fn shifts_and_or_build_rdpmc_value() {
        // The exact pattern nanoBench's generated code uses to combine
        // EDX:EAX into a 64-bit counter value.
        let mut s = CpuState::new();
        run_seq(
            "mov rax, 0x12345678; mov rdx, 0xABCD; shl rdx, 32; or rax, rdx",
            &mut s,
        );
        assert_eq!(s.gpr(Gpr::Rax), 0xABCD_1234_5678);
    }

    #[test]
    fn push_pop_stack() {
        let mut s = CpuState::new();
        s.set_gpr(Gpr::Rsp, 0x8000);
        run_seq("mov rax, 42; push rax; mov rax, 0; pop rbx", &mut s);
        assert_eq!(s.gpr(Gpr::Rbx), 42);
        assert_eq!(s.gpr(Gpr::Rsp), 0x8000);
    }

    #[test]
    fn bit_instructions() {
        let mut s = CpuState::new();
        run_seq(
            "mov rax, 0xF0; popcnt rbx, rax; tzcnt rcx, rax; bsr rdx, rax",
            &mut s,
        );
        assert_eq!(s.gpr(Gpr::Rbx), 4);
        assert_eq!(s.gpr(Gpr::Rcx), 4);
        assert_eq!(s.gpr(Gpr::Rdx), 7);
    }

    #[test]
    fn cmov_and_setcc() {
        let mut s = CpuState::new();
        run_seq(
            "mov rax, 1; mov rbx, 9; cmp rax, 1; cmovz rcx, rbx; setz dl",
            &mut s,
        );
        assert_eq!(s.gpr(Gpr::Rcx), 9);
        assert_eq!(s.gpr(Gpr::Rdx) & 0xFF, 1);
    }

    #[test]
    fn vector_dependency_digest() {
        let mut s = CpuState::new();
        let bus = &mut FlatBus::default();
        let insts = parse_asm("pxor xmm0, xmm0; paddd xmm1, xmm0; paddd xmm2, xmm0").unwrap();
        for inst in &insts {
            execute(inst, &mut s, bus).unwrap();
        }
        // Same inputs but different destinations started differently.
        assert_ne!(s.vreg_digest(0), 0);
    }

    #[test]
    fn divide_by_zero_faults() {
        let mut s = CpuState::new();
        let bus = &mut FlatBus::default();
        let insts = parse_asm("mov rbx, 0; div rbx").unwrap();
        execute(&insts[0], &mut s, bus).unwrap();
        assert_eq!(execute(&insts[1], &mut s, bus), Err(CpuFault::DivideError));
    }

    #[test]
    fn io_dependency_metadata() {
        let insts = parse_asm("add rax, [r14+rcx*8]").unwrap();
        let ins = input_gprs(&insts[0]);
        let regs: Vec<Gpr> = ins.iter().map(|g| g.reg).collect();
        assert!(regs.contains(&Gpr::Rax)); // RMW reads dst
        assert!(regs.contains(&Gpr::R14));
        assert!(regs.contains(&Gpr::Rcx));
        let outs = output_gprs(&insts[0]);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].reg, Gpr::Rax);

        let mov = parse_asm("mov rax, rbx").unwrap();
        assert!(!input_gprs(&mov[0]).iter().any(|g| g.reg == Gpr::Rax));
    }
}
