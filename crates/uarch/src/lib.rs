//! The simulated out-of-order x86 core for the nanoBench reproduction.
//!
//! This crate provides the microarchitectural substrate of case study I
//! (§V of the paper): execution ports and per-microarchitecture port
//! assignments ([`port`]), instruction descriptors with µop decomposition
//! and latencies ([`descriptor`]), architectural state ([`state`]),
//! functional execution ([`exec`]), a persistent branch predictor
//! ([`bpred`]), decode-once execution plans ([`plan`]), and the dataflow
//! timing engine ([`engine`]) that ties them together with LFENCE/CPUID
//! serialization semantics (§IV-A1), AVX warm-up, and user-mode interrupt
//! injection. The engine interprets pre-decoded plans so its steady-state
//! loop performs no per-instruction analysis or allocation.
//!
//! The environment (memory, caches, privilege, MSRs) is abstracted by the
//! [`bus::Bus`] trait and implemented by `nanobench-machine`.

#![warn(missing_docs)]

pub mod bpred;
pub mod bus;
pub mod descriptor;
pub mod engine;
pub mod exec;
pub mod plan;
pub mod port;
pub mod state;

pub use bpred::BranchPredictor;
pub use bus::{Bus, CpuFault, InterruptEvent};
pub use descriptor::{DescriptorTable, InstrDesc, PortClass, UopSpec};
pub use engine::{Engine, EngineConfig, RunContext, RunStats};
pub use plan::{verify_plan, DecodedProgram, PlanRule, PlanViolation};
pub use port::{MicroArch, PortConfig, PortSet};
pub use state::CpuState;
