//! Architectural state: general-purpose registers, vector registers and
//! status flags.

use nanobench_x86::reg::{Flag, Gpr, GprPart, Width};

/// The architectural register state of one logical core.
///
/// nanoBench microbenchmarks "may use and modify any general-purpose and
/// vector registers, including the stack pointer" (§I); the generated code
/// saves and restores this state around the benchmark (Algorithm 1 line 2
/// and 11), which the save/restore code does through ordinary loads and
/// stores against this state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuState {
    gprs: [u64; 16],
    /// Vector registers, 64 bytes each (ZMM width); XMM/YMM alias the low
    /// lanes.
    vregs: [[u64; 8]; 32],
    flags: u8,
}

impl Default for CpuState {
    fn default() -> CpuState {
        CpuState::new()
    }
}

impl CpuState {
    /// Creates zeroed state.
    pub fn new() -> CpuState {
        CpuState {
            gprs: [0; 16],
            vregs: [[0; 8]; 32],
            flags: 0,
        }
    }

    /// Reads a full 64-bit GPR.
    pub fn gpr(&self, reg: Gpr) -> u64 {
        self.gprs[reg.number() as usize]
    }

    /// Writes a full 64-bit GPR.
    pub fn set_gpr(&mut self, reg: Gpr, value: u64) {
        self.gprs[reg.number() as usize] = value;
    }

    /// Reads a GPR at a given width (zero-extended).
    pub fn gpr_part(&self, part: GprPart) -> u64 {
        self.gpr(part.reg) & part.width.mask()
    }

    /// Writes a GPR at a given width with x86 semantics: 32-bit writes
    /// zero-extend to 64 bits; 8/16-bit writes merge.
    pub fn set_gpr_part(&mut self, part: GprPart, value: u64) {
        let full = self.gpr(part.reg);
        let new = match part.width {
            Width::Q => value,
            Width::D => value & 0xFFFF_FFFF,
            w => (full & !w.mask()) | (value & w.mask()),
        };
        self.set_gpr(part.reg, new);
    }

    /// Reads a status flag.
    pub fn flag(&self, f: Flag) -> bool {
        self.flags & (1 << flag_index(f)) != 0
    }

    /// Writes a status flag.
    pub fn set_flag(&mut self, f: Flag, value: bool) {
        if value {
            self.flags |= 1 << flag_index(f);
        } else {
            self.flags &= !(1 << flag_index(f));
        }
    }

    /// Reads the low 64 bits of a vector register lane.
    pub fn vreg_lane(&self, index: u8, lane: usize) -> u64 {
        self.vregs[index as usize][lane]
    }

    /// Writes one 64-bit lane of a vector register.
    pub fn set_vreg_lane(&mut self, index: u8, lane: usize, value: u64) {
        self.vregs[index as usize][lane] = value;
    }

    /// A 64-bit digest of a vector register (for dependency-preserving
    /// opaque vector semantics).
    pub fn vreg_digest(&self, index: u8) -> u64 {
        self.vregs[index as usize]
            .iter()
            .fold(0u64, |acc, l| acc.rotate_left(7) ^ l)
    }

    /// Fills a vector register from a digest (opaque mixing).
    pub fn set_vreg_digest(&mut self, index: u8, digest: u64) {
        for (lane, slot) in self.vregs[index as usize].iter_mut().enumerate() {
            *slot = digest.wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ lane as u64);
        }
    }

    /// Snapshot of all GPRs (register order).
    pub fn gprs(&self) -> [u64; 16] {
        self.gprs
    }
}

fn flag_index(f: Flag) -> u8 {
    match f {
        Flag::Cf => 0,
        Flag::Pf => 1,
        Flag::Af => 2,
        Flag::Zf => 3,
        Flag::Sf => 4,
        Flag::Of => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_writes_follow_x86_rules() {
        let mut s = CpuState::new();
        s.set_gpr(Gpr::Rax, 0xFFFF_FFFF_FFFF_FFFF);
        // 32-bit write zero-extends.
        s.set_gpr_part(
            GprPart {
                reg: Gpr::Rax,
                width: Width::D,
            },
            0x1234_5678,
        );
        assert_eq!(s.gpr(Gpr::Rax), 0x1234_5678);
        // 8-bit write merges.
        s.set_gpr_part(
            GprPart {
                reg: Gpr::Rax,
                width: Width::B,
            },
            0xAB,
        );
        assert_eq!(s.gpr(Gpr::Rax), 0x1234_56AB);
        // 16-bit write merges.
        s.set_gpr_part(
            GprPart {
                reg: Gpr::Rax,
                width: Width::W,
            },
            0xCDEF,
        );
        assert_eq!(s.gpr(Gpr::Rax), 0x1234_CDEF);
    }

    #[test]
    fn flags_round_trip() {
        let mut s = CpuState::new();
        for f in Flag::ALL {
            assert!(!s.flag(f));
            s.set_flag(f, true);
            assert!(s.flag(f));
        }
        s.set_flag(Flag::Zf, false);
        assert!(!s.flag(Flag::Zf));
        assert!(s.flag(Flag::Cf));
    }

    #[test]
    fn vreg_digest_tracks_changes() {
        let mut s = CpuState::new();
        let d0 = s.vreg_digest(0);
        s.set_vreg_lane(0, 3, 42);
        assert_ne!(s.vreg_digest(0), d0);
        s.set_vreg_digest(1, 7);
        assert_ne!(s.vreg_digest(1), 0);
    }
}
