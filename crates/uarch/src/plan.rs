//! Decode-once execution plans.
//!
//! nanoBench's methodology runs the *same* static program tens of
//! thousands of dynamic times (`loop_count` × `unroll_count`, warm-up
//! runs, both unroll versions of §III-C). The legacy interpreter
//! re-derived everything about an instruction on every dynamic execution:
//! descriptor lookups allocated a form key and cloned the µop list, the
//! memory-operand scans built fresh vectors, and port dispatch collected a
//! candidate list per µop. A [`DecodedProgram`] hoists all of that into a
//! one-shot analysis pass: each static instruction maps to a flat
//! [`PlanEntry`] whose variable-length data (resolved µops, register
//! dependencies, memory operands) lives in contiguous arenas addressed by
//! spans — so the engine's steady-state loop performs no heap allocation
//! and no hashing.
//!
//! Invariants:
//!
//! * A plan is **pure static decode**: it holds no machine state, so one
//!   plan can be replayed any number of times (warm-up runs, both counter
//!   halves, campaign re-runs) and shared across resets of the session
//!   that decoded it.
//! * A plan is specific to a [`MicroArch`]: port classes are resolved to
//!   concrete [`PortSet`]s at decode time. [`crate::engine::Engine::run_plan`]
//!   debug-asserts the match.
//! * The interpreter over a plan is **bit-identical** to the legacy
//!   instruction-slice path ([`crate::engine::Engine::run`], which now
//!   builds a transient plan): same PMU counts, cycles, and architectural
//!   state, pinned by the `plan_equivalence` suite over the full corpus.

use crate::descriptor::{is_move, DescriptorTable, PortClass, UopSpec};
use crate::exec;
use crate::port::{MicroArch, PortSet};
use nanobench_x86::inst::{Instruction, Mnemonic};
use nanobench_x86::operand::{MemRef, Operand};

/// A µop with its port class resolved to the concrete ports of the
/// microarchitecture the plan was decoded for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedUop {
    /// Ports the µop may dispatch to.
    pub ports: PortSet,
    /// Latency in cycles.
    pub latency: u64,
    /// Reciprocal throughput on its port.
    pub recip: u64,
}

/// How the interpreter steps one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepKind {
    /// The generic dataflow path, fully described by the plan entry.
    Generic,
    /// One of the engine's special-cased mnemonics (fences, counter
    /// reads, privileged operations, push/pop, magic markers).
    Special,
}

/// A store operand plus whether this instruction's load µop already
/// touched the line (RMW forms skip the second cache access).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlannedStore {
    pub mem: MemRef,
    pub covered_by_read: bool,
}

/// A `[start, start+len)` range into one of the plan arenas.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Span {
    start: u32,
    len: u32,
}

impl Span {
    fn push<T>(arena: &mut Vec<T>, items: impl IntoIterator<Item = T>) -> Span {
        let start = arena.len() as u32;
        arena.extend(items);
        Span {
            start,
            len: arena.len() as u32 - start,
        }
    }

    pub(crate) fn slice<T>(self, arena: &[T]) -> &[T] {
        &arena[self.start as usize..(self.start + self.len) as usize]
    }
}

/// Everything the interpreter needs to step one static instruction,
/// precomputed. Fixed-size; variable-length data lives in the
/// [`PlanBody`] arenas.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanEntry {
    pub kind: StepKind,
    /// `check_kernel` outcome precomputed (the bus side stays dynamic).
    pub privileged: bool,
    /// Drives the AVX warm-up bookkeeping (§III-H).
    pub is_avx: bool,
    pub flags_read: bool,
    pub flags_written: bool,
    pub is_branch: bool,
    /// Conditional branches feed the predictor; unconditional ones only
    /// count as retired branches.
    pub conditional: bool,
    /// Magic pause/resume markers do not retire (§III-I).
    pub retires: bool,
    /// Resolved compute µops (also carries the RDRAND/RDSEED descriptor
    /// for that special, so its arm needs no table lookup either).
    pub uops: Span,
    /// Input GPR numbers (operand and implicit, address registers
    /// included).
    pub in_regs: Span,
    /// Input vector-register indices.
    pub in_vregs: Span,
    /// Output GPR numbers.
    pub out_regs: Span,
    /// Output vector register, if any.
    pub out_vreg: Option<u8>,
    /// Memory operands read.
    pub reads: Span,
    /// Memory operands written.
    pub writes: Span,
}

/// The flat, index-addressed decode of a program: one [`PlanEntry`] per
/// static instruction plus the shared arenas their spans point into.
#[derive(Debug, Clone)]
pub(crate) struct PlanBody {
    pub entries: Vec<PlanEntry>,
    pub uops: Vec<ResolvedUop>,
    /// Shared arena for `in_regs` / `in_vregs` / `out_regs`.
    pub regs: Vec<u8>,
    pub reads: Vec<MemRef>,
    pub writes: Vec<PlannedStore>,
}

/// Whether the engine handles the mnemonic in a special-cased arm rather
/// than the generic dataflow path. Must mirror the interpreter's match.
fn is_special(m: Mnemonic) -> bool {
    use Mnemonic::*;
    matches!(
        m,
        Nop | Lfence
            | Mfence
            | Sfence
            | Cpuid
            | Rdtsc
            | Rdtscp
            | Rdpmc
            | Rdmsr
            | Wrmsr
            | Wbinvd
            | Invd
            | Clflush
            | Clflushopt
            | Prefetcht0
            | Prefetcht1
            | Prefetcht2
            | Prefetchnta
            | Cli
            | Sti
            | Hlt
            | Swapgs
            | MovCr3
            | Invlpg
            | Rdrand
            | Rdseed
            | NbPause
            | NbResume
            | Push
            | Pop
    )
}

fn flags_read(m: Mnemonic) -> bool {
    use Mnemonic::*;
    matches!(
        m,
        Adc | Sbb | Cmovz | Cmovnz | Setz | Setnz | Jz | Jnz | Jc | Jnc
    )
}

fn flags_written(m: Mnemonic) -> bool {
    use Mnemonic::*;
    matches!(
        m,
        Add | Adc
            | Sub
            | Sbb
            | And
            | Or
            | Xor
            | Cmp
            | Test
            | Inc
            | Dec
            | Neg
            | Imul
            | Mul
            | Shl
            | Shr
            | Sar
            | Rol
            | Ror
            | Popcnt
            | Lzcnt
            | Tzcnt
            | Bsf
            | Bsr
            | Xadd
            | Comiss
            | Comisd
            | Ptest
    )
}

/// Memory operands an instruction reads.
fn mem_reads(inst: &Instruction, out: &mut Vec<MemRef>) {
    use Mnemonic::*;
    let m = inst.mnemonic;
    out.clear();
    if matches!(
        m,
        Lea | Clflush | Clflushopt | Prefetcht0 | Prefetcht1 | Prefetcht2 | Prefetchnta | Invlpg
    ) {
        return;
    }
    for (i, op) in inst.operands.iter().enumerate() {
        if let Operand::Mem(mem) = op {
            let is_dst = i == 0;
            let reads = if is_dst { dst_mem_is_read(m) } else { true };
            if reads {
                out.push(*mem);
            }
        }
    }
}

/// Memory operands an instruction writes.
fn mem_writes(inst: &Instruction) -> Option<MemRef> {
    if let Some(Operand::Mem(mem)) = inst.dst() {
        if dst_mem_is_written(inst.mnemonic) {
            return Some(*mem);
        }
    }
    None
}

fn dst_mem_is_read(m: Mnemonic) -> bool {
    use Mnemonic::*;
    // Pure stores and SETcc only write; CMP/TEST only read; RMW both.
    !matches!(
        m,
        Mov | Movaps | Movups | Movapd | Movdqa | Movdqu | Movd | Movq | Setz | Setnz
    )
}

fn dst_mem_is_written(m: Mnemonic) -> bool {
    use Mnemonic::*;
    !matches!(m, Cmp | Test | Ptest | Comiss | Comisd | Push)
}

impl PlanBody {
    /// Analyzes every instruction of `program` against the descriptor
    /// table (whose [`crate::port::PortConfig`] resolves port classes).
    pub(crate) fn build(program: &[Instruction], table: &DescriptorTable) -> PlanBody {
        let ports = table.ports();
        let mut body = PlanBody {
            entries: Vec::with_capacity(program.len()),
            uops: Vec::new(),
            regs: Vec::new(),
            reads: Vec::new(),
            writes: Vec::new(),
        };
        let mut reads_buf: Vec<MemRef> = Vec::new();
        for inst in program {
            let m = inst.mnemonic;
            let special = is_special(m);
            let mut entry = PlanEntry {
                kind: if special {
                    StepKind::Special
                } else {
                    StepKind::Generic
                },
                privileged: m.is_privileged(),
                is_avx: m.is_avx(),
                flags_read: flags_read(m),
                flags_written: flags_written(m),
                is_branch: m.is_branch(),
                conditional: matches!(
                    m,
                    Mnemonic::Jz | Mnemonic::Jnz | Mnemonic::Jc | Mnemonic::Jnc
                ),
                retires: !matches!(m, Mnemonic::NbPause | Mnemonic::NbResume),
                uops: Span::default(),
                in_regs: Span::default(),
                in_vregs: Span::default(),
                out_regs: Span::default(),
                out_vreg: None,
                reads: Span::default(),
                writes: Span::default(),
            };

            if special {
                // RDRAND/RDSEED are the only specials whose arm consults
                // the descriptor table; resolve theirs here too.
                if matches!(m, Mnemonic::Rdrand | Mnemonic::Rdseed) {
                    let desc = table.lookup(inst).expect("rdrand has a descriptor");
                    entry.uops = Span::push(
                        &mut body.uops,
                        desc.uops.iter().map(|u| ResolvedUop {
                            ports: u.class.resolve(ports),
                            latency: u.latency,
                            recip: u.recip,
                        }),
                    );
                }
                body.entries.push(entry);
                continue;
            }

            // Compute µops: table entry, or the single-ALU-µop default the
            // legacy path synthesized for unknown mnemonics.
            let desc = table
                .lookup(inst)
                .unwrap_or_else(|| crate::descriptor::InstrDesc {
                    uops: vec![UopSpec {
                        class: PortClass::Alu,
                        latency: 1,
                        recip: 1,
                    }],
                });
            entry.uops = Span::push(
                &mut body.uops,
                desc.uops.iter().map(|u| ResolvedUop {
                    ports: u.class.resolve(ports),
                    latency: u.latency,
                    recip: u.recip,
                }),
            );

            // Register dependencies (input order is irrelevant: readiness
            // is a max over the set).
            entry.in_regs = Span::push(
                &mut body.regs,
                exec::input_gprs(inst).iter().map(|g| g.reg.number()),
            );
            entry.in_vregs = Span::push(
                &mut body.regs,
                inst.operands.iter().enumerate().filter_map(|(i, op)| {
                    if let Operand::Vec(v) = op {
                        if i > 0 || !is_move(m) || inst.operands.len() > 2 {
                            return Some(v.index);
                        }
                    }
                    None
                }),
            );
            entry.out_regs = Span::push(
                &mut body.regs,
                exec::output_gprs(inst).iter().map(|g| g.reg.number()),
            );
            if let Some(Operand::Vec(v)) = inst.dst() {
                entry.out_vreg = Some(v.index);
            }

            // Memory operands.
            mem_reads(inst, &mut reads_buf);
            entry.reads = Span::push(&mut body.reads, reads_buf.iter().copied());
            if let Some(mem) = mem_writes(inst) {
                entry.writes = Span::push(
                    &mut body.writes,
                    std::iter::once(PlannedStore {
                        mem,
                        covered_by_read: reads_buf.contains(&mem),
                    }),
                );
            }

            body.entries.push(entry);
        }
        body
    }
}

/// A program decoded once into an execution plan, ready to be replayed by
/// [`crate::engine::Engine::run_plan`] any number of times.
///
/// Owns a copy of the instruction sequence (semantic execution still
/// interprets operands) next to the flat timing metadata. Decode via
/// [`crate::engine::Engine::decode`].
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    insts: Vec<Instruction>,
    body: PlanBody,
    uarch: MicroArch,
}

impl DecodedProgram {
    pub(crate) fn new(program: &[Instruction], table: &DescriptorTable) -> DecodedProgram {
        DecodedProgram {
            insts: program.to_vec(),
            body: PlanBody::build(program, table),
            uarch: table.uarch(),
        }
    }

    /// The instruction sequence the plan was decoded from (cache layers
    /// use this to verify key collisions).
    pub fn instructions(&self) -> &[Instruction] {
        &self.insts
    }

    /// The microarchitecture the plan's port sets were resolved for.
    pub fn uarch(&self) -> MicroArch {
        self.uarch
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    pub(crate) fn body(&self) -> &PlanBody {
        &self.body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanobench_x86::asm::parse_asm;

    fn plan(text: &str) -> DecodedProgram {
        let table = DescriptorTable::for_uarch(MicroArch::Skylake);
        DecodedProgram::new(&parse_asm(text).unwrap(), &table)
    }

    #[test]
    fn generic_entry_precomputes_everything() {
        let p = plan("add [r14+8], rax");
        let e = &p.body().entries[0];
        assert_eq!(e.kind, StepKind::Generic);
        assert!(e.flags_written && !e.flags_read);
        // RMW: one read, one write covered by the read.
        assert_eq!(e.reads.slice(&p.body().reads).len(), 1);
        let stores = e.writes.slice(&p.body().writes);
        assert_eq!(stores.len(), 1);
        assert!(stores[0].covered_by_read);
        // One ALU µop resolved to Skylake's four ALU ports.
        let uops = e.uops.slice(&p.body().uops);
        assert_eq!(uops.len(), 1);
        assert_eq!(uops[0].ports.len(), 4);
        // Inputs: rax and the address register r14.
        let ins = e.in_regs.slice(&p.body().regs);
        assert_eq!(ins.len(), 2);
    }

    #[test]
    fn pure_store_is_not_covered_by_read() {
        let p = plan("mov [r14], rax");
        let e = &p.body().entries[0];
        assert_eq!(e.reads.slice(&p.body().reads).len(), 0);
        let stores = e.writes.slice(&p.body().writes);
        assert_eq!(stores.len(), 1);
        assert!(!stores[0].covered_by_read);
        // Pure move with memory operand: no compute µops.
        assert_eq!(e.uops.slice(&p.body().uops).len(), 0);
    }

    #[test]
    fn specials_are_classified_and_rdrand_resolved() {
        let p = plan("lfence; rdpmc; push rax; rdrand rbx");
        let body = p.body();
        for e in &body.entries {
            assert_eq!(e.kind, StepKind::Special);
        }
        // RDRAND carries its resolved descriptor µop.
        let rdrand = &body.entries[3];
        let uops = rdrand.uops.slice(&body.uops);
        assert_eq!(uops.len(), 1);
        assert_eq!(uops[0].recip, 300);
    }

    #[test]
    fn branch_entries_distinguish_conditional() {
        let p = plan("jmp 0; jnz 0");
        let body = p.body();
        assert!(body.entries[0].is_branch && !body.entries[0].conditional);
        assert!(body.entries[1].is_branch && body.entries[1].conditional);
    }

    #[test]
    fn plans_are_uarch_specific() {
        let skl = plan("addps xmm0, xmm1");
        let table = DescriptorTable::for_uarch(MicroArch::Nehalem);
        let nhm = DecodedProgram::new(&parse_asm("addps xmm0, xmm1").unwrap(), &table);
        let u_skl = skl.body().entries[0].uops.slice(&skl.body().uops)[0];
        let u_nhm = nhm.body().entries[0].uops.slice(&nhm.body().uops)[0];
        assert_eq!(u_skl.latency, 4);
        assert_eq!(u_nhm.latency, 3);
        assert_eq!(skl.uarch(), MicroArch::Skylake);
    }
}
