//! Decode-once execution plans.
//!
//! nanoBench's methodology runs the *same* static program tens of
//! thousands of dynamic times (`loop_count` × `unroll_count`, warm-up
//! runs, both unroll versions of §III-C). The legacy interpreter
//! re-derived everything about an instruction on every dynamic execution:
//! descriptor lookups allocated a form key and cloned the µop list, the
//! memory-operand scans built fresh vectors, and port dispatch collected a
//! candidate list per µop. A [`DecodedProgram`] hoists all of that into a
//! one-shot analysis pass: each static instruction maps to a flat
//! [`HotEntry`] whose variable-length data (resolved µops, register
//! dependencies, memory operands) lives in contiguous arenas addressed by
//! spans — so the engine's steady-state loop performs no heap allocation
//! and no hashing.
//!
//! On top of the arena layout, decode resolves *how* each instruction is
//! stepped:
//!
//! * Every entry carries a [`handler`] index into the engine's static
//!   dispatch table, so the steady-state loop is an indirect call with no
//!   branching on step kind — specials get one handler per mnemonic
//!   family, and the dominant ALU / load / store / read-modify-write
//!   shapes get specialized fast handlers.
//! * Entries are split struct-of-arrays: the hot loop touches only
//!   [`HotEntry`] (handler index, µop/register/memory spans, packed meta
//!   bits); rarely-needed metadata (vector-register dependencies) lives in
//!   a parallel [`ColdEntry`] arena only the generic handler reads.
//! * Adjacent ALU-only entries are fused into superblock steps:
//!   `fuse_len` is the run length of consecutive ALU entries starting at
//!   each position (a suffix computation, so branches into the middle of
//!   a block land on a correct shorter block), and the ALU handler steps
//!   the whole run in one dispatch.
//!
//! Invariants:
//!
//! * A plan is **pure static decode**: it holds no machine state, so one
//!   plan can be replayed any number of times (warm-up runs, both counter
//!   halves, campaign re-runs) and shared across resets of the session
//!   that decoded it.
//! * A plan is specific to a [`MicroArch`]: port classes are resolved to
//!   concrete [`PortSet`]s at decode time. [`crate::engine::Engine::run_plan`]
//!   debug-asserts the match.
//! * The interpreter over a plan is **bit-identical** to the legacy
//!   instruction-slice path ([`crate::engine::Engine::run`], which now
//!   builds a transient plan): same PMU counts, cycles, and architectural
//!   state, pinned by the `plan_equivalence` suite over the full corpus.

use crate::descriptor::{is_move, DescriptorTable, PortClass, UopSpec};
use crate::exec;
use crate::port::{MicroArch, PortSet};
use nanobench_x86::defuse;
use nanobench_x86::inst::{Instruction, Mnemonic};
use nanobench_x86::operand::{MemRef, Operand};
use nanobench_x86::reg::{Gpr, Width};

/// A µop with its port class resolved to the concrete ports of the
/// microarchitecture the plan was decoded for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedUop {
    /// Ports the µop may dispatch to.
    pub ports: PortSet,
    /// Latency in cycles.
    pub latency: u64,
    /// Reciprocal throughput on its port.
    pub recip: u64,
}

/// Indices into the engine's step-handler dispatch table. Resolved once at
/// plan-build time; the interpreter's steady state is
/// `TABLE[entry.handler](engine, ...)` with no per-step branching on kind.
pub(crate) mod handler {
    /// Full dataflow path: AVX, vector registers, privilege, any operand
    /// shape. Correct for every non-special instruction.
    pub const GENERIC: u8 = 0;
    /// Fused superblock of register-only ALU entries (`fuse_len` ≥ 1).
    pub const ALU_BLOCK: u8 = 1;
    /// Memory reads, no writes, GPR outputs only.
    pub const LOAD: u8 = 2;
    /// Memory write, no reads (pure store).
    pub const STORE: u8 = 3;
    /// Read-modify-write: a load that covers the store's line.
    pub const RMW: u8 = 4;
    /// Conditional branch (feeds the predictor).
    pub const COND_BRANCH: u8 = 5;
    /// Unconditional branch.
    pub const JUMP: u8 = 6;
    // One handler per special-cased mnemonic family (the former
    // `step_special` match arms).
    pub const NOP: u8 = 7;
    pub const LFENCE: u8 = 8;
    /// MFENCE / SFENCE.
    pub const FENCE: u8 = 9;
    pub const CPUID: u8 = 10;
    /// RDTSC / RDTSCP.
    pub const RDTSC: u8 = 11;
    pub const RDPMC: u8 = 12;
    pub const RDMSR: u8 = 13;
    pub const WRMSR: u8 = 14;
    /// WBINVD / INVD.
    pub const WBINVD: u8 = 15;
    /// CLFLUSH / CLFLUSHOPT.
    pub const CLFLUSH: u8 = 16;
    /// The PREFETCHhx family.
    pub const PREFETCH: u8 = 17;
    pub const CLI: u8 = 18;
    pub const STI: u8 = 19;
    /// HLT / SWAPGS / MOV CR3 / INVLPG: serializing fixed-cost kernel ops.
    pub const SERIALIZE: u8 = 20;
    /// RDRAND / RDSEED.
    pub const RDRAND: u8 = 21;
    pub const NB_PAUSE: u8 = 22;
    pub const NB_RESUME: u8 = 23;
    pub const PUSH: u8 = 24;
    pub const POP: u8 = 25;
    /// Number of handlers (dispatch-table length).
    pub const COUNT: usize = 26;

    /// Whether the index is one of the special-mnemonic handlers.
    #[cfg(test)]
    pub(crate) fn is_special(h: u8) -> bool {
        h >= NOP
    }

    /// Whether entries with this handler can be fused into a superblock:
    /// the straight-line ALU / load / store / RMW shapes, whose control
    /// flow is always sequential and whose in-block stepping the block
    /// handler implements inline.
    pub(crate) fn is_fusable(h: u8) -> bool {
        matches!(h, ALU_BLOCK | LOAD | STORE | RMW)
    }
}

/// Packed per-entry boolean metadata ([`HotEntry::meta`]).
pub(crate) mod meta {
    pub const FLAGS_READ: u8 = 1 << 0;
    pub const FLAGS_WRITTEN: u8 = 1 << 1;
    /// Conditional branches feed the predictor; unconditional ones only
    /// count as retired branches.
    pub const CONDITIONAL: u8 = 1 << 2;
    /// Magic pause/resume markers do not retire (§III-I).
    pub const RETIRES: u8 = 1 << 3;
    pub const IS_BRANCH: u8 = 1 << 4;
    /// Drives the AVX warm-up bookkeeping (§III-H).
    pub const IS_AVX: u8 = 1 << 5;
    /// `check_kernel` outcome precomputed (the bus side stays dynamic).
    pub const PRIVILEGED: u8 = 1 << 6;
}

/// Maximum number of ALU entries fused into one superblock. Bounds how far
/// a fused step can run ahead of interrupt polling and the instruction
/// limit check (both happen once per dispatched block).
pub(crate) const FUSE_CAP: u8 = 16;

/// A store operand plus whether this instruction's load µop already
/// touched the line (RMW forms skip the second cache access).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlannedStore {
    pub mem: MemRef,
    pub covered_by_read: bool,
}

/// A `[start, start+len)` range into one of the plan arenas.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Span {
    start: u32,
    len: u32,
}

impl Span {
    fn push<T>(arena: &mut Vec<T>, items: impl IntoIterator<Item = T>) -> Span {
        let start = arena.len() as u32;
        arena.extend(items);
        Span {
            start,
            len: arena.len() as u32 - start,
        }
    }

    pub(crate) fn slice<T>(self, arena: &[T]) -> &[T] {
        &arena[self.start as usize..(self.start + self.len) as usize]
    }

    pub(crate) fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// The hot half of one static instruction's decode: everything the
/// steady-state interpreter loop touches, and nothing it does not.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotEntry {
    /// Index into the engine's dispatch table ([`handler`]).
    pub handler: u8,
    /// Number of consecutive entries (≥ 1) this dispatch consumes; > 1
    /// only for [`handler::ALU_BLOCK`] superblocks.
    pub fuse_len: u8,
    /// Packed [`meta`] bits.
    pub meta: u8,
    /// Resolved compute µops (also carries the RDRAND/RDSEED descriptor
    /// for that special, so its handler needs no table lookup either).
    pub uops: Span,
    /// Input GPR numbers (operand and implicit, address registers
    /// included).
    pub in_regs: Span,
    /// Output GPR numbers.
    pub out_regs: Span,
    /// Memory operands read.
    pub reads: Span,
    /// Memory operands written.
    pub writes: Span,
}

impl HotEntry {
    pub(crate) fn has(&self, bit: u8) -> bool {
        self.meta & bit != 0
    }
}

/// The cold half: metadata only the generic handler consults (vector
/// dependencies). Lives in a side arena so the fast handlers' cache
/// footprint stays minimal.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColdEntry {
    /// Input vector-register indices.
    pub in_vregs: Span,
    /// Output vector register, if any.
    pub out_vreg: Option<u8>,
}

/// A pre-resolved ALU source operand.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FastSrc {
    /// A full-width GPR.
    Reg(Gpr),
    /// An immediate, already sign-extended to 64 bits.
    Imm(u64),
}

/// The ALU operation of a pre-decoded memory-operand instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FastAlu {
    Add,
    Sub,
    And,
    Or,
    Xor,
}

/// The condition of a pre-decoded conditional branch.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FastCc {
    Z,
    Nz,
    C,
    Nc,
}

/// Pre-decoded semantics for the dominant 64-bit ALU and memory shapes.
/// Decode resolves the operand pattern once so the fused block handler
/// executes these without re-matching mnemonic and operands on
/// every dynamic instruction ([`exec::execute_fast`] for register-only
/// ops; the memory shapes run through the engine's fused bus path);
/// anything not covered falls back to the generic interpreter via
/// [`FastOp::None`].
/// Register-only fast ops never touch the bus, so they cannot fault; the
/// memory shapes fault exactly where [`exec::execute`] would (the data
/// access).
#[derive(Debug, Clone, Copy)]
pub(crate) enum FastOp {
    /// Not pre-decoded: execute through [`exec::execute`].
    None,
    /// `mov r64, r64/imm` (no flags).
    Mov { dst: Gpr, src: FastSrc },
    /// `add r64, r64/imm`.
    Add { dst: Gpr, src: FastSrc },
    /// `sub r64, r64/imm`.
    Sub { dst: Gpr, src: FastSrc },
    /// `and r64, r64/imm`.
    And { dst: Gpr, src: FastSrc },
    /// `or r64, r64/imm`.
    Or { dst: Gpr, src: FastSrc },
    /// `xor r64, r64/imm`.
    Xor { dst: Gpr, src: FastSrc },
    /// Two-operand `imul r64, r64/imm`.
    Imul { dst: Gpr, src: FastSrc },
    /// `inc r64` (preserves CF).
    Inc { dst: Gpr },
    /// `dec r64` (preserves CF).
    Dec { dst: Gpr },
    /// `lea r64, [mem]` (address computation, no flags).
    Lea { dst: Gpr, mem: MemRef },
    /// `mov r64, [mem64]` (no flags). The address comes from the entry's
    /// read slice, which the engine's fused load path walks.
    LoadQ { dst: Gpr },
    /// `op r64, [mem64]` — ALU with a memory source.
    LoadAlu { op: FastAlu, dst: Gpr },
    /// `mov [mem64], r64/imm` (no flags). The address comes from the
    /// entry's write slice.
    StoreQ { src: FastSrc },
    /// `op [mem64], r64/imm` — read-modify-write ALU. Keeps its own
    /// [`MemRef`] for the write-back after the fused covering load.
    RmwAlu {
        op: FastAlu,
        mem: MemRef,
        src: FastSrc,
    },
    /// `jcc label` with a resolved instruction-index target — the
    /// loop-close shape. The block handler fuses this behind a trailing
    /// superblock so a benchmark loop iteration costs a single dispatch.
    CondJump { target: u32, cc: FastCc },
}

/// Pre-decodes `inst` into a [`FastOp`] if its shape is covered. Only
/// meaningful for entries classified [`handler::ALU_BLOCK`] (register-only,
/// non-vector, unprivileged); the width gate keeps partial-register merge
/// semantics on the generic path.
fn fast_op(inst: &Instruction) -> FastOp {
    use Mnemonic::*;
    let dst = match inst.dst() {
        Some(Operand::Gpr(g)) if g.width == Width::Q => g.reg,
        _ => return FastOp::None,
    };
    if matches!(inst.mnemonic, Inc | Dec) && inst.operands.len() == 1 {
        return match inst.mnemonic {
            Inc => FastOp::Inc { dst },
            _ => FastOp::Dec { dst },
        };
    }
    if inst.operands.len() != 2 {
        return FastOp::None;
    }
    if inst.mnemonic == Lea {
        return match inst.src() {
            Some(Operand::Mem(m)) => FastOp::Lea { dst, mem: *m },
            _ => FastOp::None,
        };
    }
    let src = match inst.src() {
        Some(Operand::Gpr(g)) if g.width == Width::Q => FastSrc::Reg(g.reg),
        Some(Operand::Imm(v)) => FastSrc::Imm(*v as u64),
        _ => return FastOp::None,
    };
    match inst.mnemonic {
        Mov => FastOp::Mov { dst, src },
        Add => FastOp::Add { dst, src },
        Sub => FastOp::Sub { dst, src },
        And => FastOp::And { dst, src },
        Or => FastOp::Or { dst, src },
        Xor => FastOp::Xor { dst, src },
        Imul => FastOp::Imul { dst, src },
        _ => FastOp::None,
    }
}

/// Pre-decodes the dominant 64-bit memory shapes (`mov`/ALU with one
/// qword memory operand) for entries classified LOAD / STORE / RMW. The
/// width gates keep partial-width loads, stores, and merges on the
/// generic path.
fn fast_mem_op(inst: &Instruction) -> FastOp {
    use Mnemonic::*;
    if inst.operands.len() != 2 {
        return FastOp::None;
    }
    let alu = |m: Mnemonic| match m {
        Add => Some(FastAlu::Add),
        Sub => Some(FastAlu::Sub),
        And => Some(FastAlu::And),
        Or => Some(FastAlu::Or),
        Xor => Some(FastAlu::Xor),
        _ => None,
    };
    match (inst.dst(), inst.src()) {
        // Loads: r64 <- [mem64].
        (Some(Operand::Gpr(g)), Some(Operand::Mem(m)))
            if g.width == Width::Q && m.width == Width::Q =>
        {
            let dst = g.reg;
            if inst.mnemonic == Mov {
                FastOp::LoadQ { dst }
            } else if let Some(op) = alu(inst.mnemonic) {
                FastOp::LoadAlu { op, dst }
            } else {
                FastOp::None
            }
        }
        // Stores and RMW: [mem64] <- r64/imm.
        (Some(Operand::Mem(m)), Some(src_op)) if m.width == Width::Q => {
            let src = match src_op {
                Operand::Gpr(g) if g.width == Width::Q => FastSrc::Reg(g.reg),
                Operand::Imm(v) => FastSrc::Imm(*v as u64),
                _ => return FastOp::None,
            };
            if inst.mnemonic == Mov {
                FastOp::StoreQ { src }
            } else if let Some(op) = alu(inst.mnemonic) {
                FastOp::RmwAlu { op, mem: *m, src }
            } else {
                FastOp::None
            }
        }
        _ => FastOp::None,
    }
}

/// Pre-decodes a conditional branch whose target is a resolved label and
/// whose decoded entry writes nothing (no GPR outputs, no flags) — the
/// statics the engine's fused loop-close path assumes. Anything else
/// stays on the generic `step_branch` path.
fn fast_branch_op(inst: &Instruction, hot: &HotEntry, body: &PlanBody) -> FastOp {
    use Mnemonic::*;
    let cc = match inst.mnemonic {
        Jz => FastCc::Z,
        Jnz => FastCc::Nz,
        Jc => FastCc::C,
        Jnc => FastCc::Nc,
        _ => return FastOp::None,
    };
    match inst.dst() {
        Some(Operand::Label(t))
            if u32::try_from(*t).is_ok()
                && hot.out_regs.slice(&body.regs).is_empty()
                && !hot.has(meta::FLAGS_WRITTEN)
                && hot.has(meta::RETIRES) =>
        {
            FastOp::CondJump {
                target: *t as u32,
                cc,
            }
        }
        _ => FastOp::None,
    }
}

/// Demotes a pre-decoded quadword load/store shape back to the generic
/// path unless the decoded entry matches the statics the engine's
/// specialized entries assume: no compute µops, exactly one memory
/// operand, and exactly the register/flag outputs the shape implies. No
/// shipping descriptor table violates these for `mov`, but a custom table
/// may — the demotion keeps the specialized entries trivially correct.
fn certify_fast_mem(fast: FastOp, hot: &HotEntry, body: &PlanBody) -> FastOp {
    let ok = match fast {
        FastOp::LoadQ { dst } => {
            hot.uops.is_empty()
                && hot.reads.slice(&body.reads).len() == 1
                && hot.out_regs.slice(&body.regs) == [dst.number()]
                && !hot.has(meta::FLAGS_WRITTEN)
        }
        FastOp::StoreQ { .. } => {
            let writes = hot.writes.slice(&body.writes);
            hot.uops.is_empty()
                && writes.len() == 1
                && !writes[0].covered_by_read
                && hot.out_regs.is_empty()
                && !hot.has(meta::FLAGS_WRITTEN)
        }
        _ => return fast,
    };
    if ok {
        fast
    } else {
        FastOp::None
    }
}

/// The flat, index-addressed decode of a program: parallel hot/cold entry
/// arrays plus the shared arenas their spans point into.
#[derive(Debug, Clone)]
pub(crate) struct PlanBody {
    pub hot: Vec<HotEntry>,
    pub cold: Vec<ColdEntry>,
    /// Pre-decoded semantics, parallel to `hot`; consulted by the fused
    /// block handler (ALU, load, store, RMW entries) only.
    pub fast: Vec<FastOp>,
    pub uops: Vec<ResolvedUop>,
    /// Shared arena for `in_regs` / `in_vregs` / `out_regs`.
    pub regs: Vec<u8>,
    pub reads: Vec<MemRef>,
    pub writes: Vec<PlannedStore>,
}

/// Whether the engine handles the mnemonic in a special-cased handler
/// rather than the generic dataflow path.
fn is_special(m: Mnemonic) -> bool {
    use Mnemonic::*;
    matches!(
        m,
        Nop | Lfence
            | Mfence
            | Sfence
            | Cpuid
            | Rdtsc
            | Rdtscp
            | Rdpmc
            | Rdmsr
            | Wrmsr
            | Wbinvd
            | Invd
            | Clflush
            | Clflushopt
            | Prefetcht0
            | Prefetcht1
            | Prefetcht2
            | Prefetchnta
            | Cli
            | Sti
            | Hlt
            | Swapgs
            | MovCr3
            | Invlpg
            | Rdrand
            | Rdseed
            | NbPause
            | NbResume
            | Push
            | Pop
    )
}

/// Dispatch-table index for a special mnemonic. Must cover exactly the
/// mnemonics [`is_special`] accepts.
fn special_handler(m: Mnemonic) -> u8 {
    use Mnemonic::*;
    match m {
        Nop => handler::NOP,
        Lfence => handler::LFENCE,
        Mfence | Sfence => handler::FENCE,
        Cpuid => handler::CPUID,
        Rdtsc | Rdtscp => handler::RDTSC,
        Rdpmc => handler::RDPMC,
        Rdmsr => handler::RDMSR,
        Wrmsr => handler::WRMSR,
        Wbinvd | Invd => handler::WBINVD,
        Clflush | Clflushopt => handler::CLFLUSH,
        Prefetcht0 | Prefetcht1 | Prefetcht2 | Prefetchnta => handler::PREFETCH,
        Cli => handler::CLI,
        Sti => handler::STI,
        Hlt | Swapgs | MovCr3 | Invlpg => handler::SERIALIZE,
        Rdrand | Rdseed => handler::RDRAND,
        NbPause => handler::NB_PAUSE,
        NbResume => handler::NB_RESUME,
        Push => handler::PUSH,
        Pop => handler::POP,
        other => unreachable!("mnemonic {other} is not an engine special"),
    }
}

// Flag and memory read/write classification lives in
// [`nanobench_x86::defuse`] (shared with the semantic interpreter and the
// static analyzer); the plan only needs the boolean projections.

fn flags_read(m: Mnemonic) -> bool {
    !defuse::flags_read(m).is_empty()
}

fn flags_written(m: Mnemonic) -> bool {
    !defuse::flags_written(m).is_empty()
}

/// Memory operands an instruction reads.
fn mem_reads(inst: &Instruction, out: &mut Vec<MemRef>) {
    defuse::mem_reads(inst, out);
}

/// Memory operands an instruction writes.
fn mem_writes(inst: &Instruction) -> Option<MemRef> {
    defuse::mem_writes(inst)
}

impl PlanBody {
    /// Analyzes every instruction of `program` against the descriptor
    /// table (whose [`crate::port::PortConfig`] resolves port classes).
    pub(crate) fn build(program: &[Instruction], table: &DescriptorTable) -> PlanBody {
        let ports = table.ports();
        let mut body = PlanBody {
            hot: Vec::with_capacity(program.len()),
            cold: Vec::with_capacity(program.len()),
            fast: Vec::with_capacity(program.len()),
            uops: Vec::new(),
            regs: Vec::new(),
            reads: Vec::new(),
            writes: Vec::new(),
        };
        let mut reads_buf: Vec<MemRef> = Vec::new();
        for inst in program {
            let m = inst.mnemonic;
            let special = is_special(m);
            let mut mbits = 0u8;
            if flags_read(m) {
                mbits |= meta::FLAGS_READ;
            }
            if flags_written(m) {
                mbits |= meta::FLAGS_WRITTEN;
            }
            if matches!(
                m,
                Mnemonic::Jz | Mnemonic::Jnz | Mnemonic::Jc | Mnemonic::Jnc
            ) {
                mbits |= meta::CONDITIONAL;
            }
            if !matches!(m, Mnemonic::NbPause | Mnemonic::NbResume) {
                mbits |= meta::RETIRES;
            }
            if m.is_branch() {
                mbits |= meta::IS_BRANCH;
            }
            if m.is_avx() {
                mbits |= meta::IS_AVX;
            }
            if m.is_privileged() {
                mbits |= meta::PRIVILEGED;
            }

            let mut hot = HotEntry {
                handler: handler::GENERIC,
                fuse_len: 1,
                meta: mbits,
                uops: Span::default(),
                in_regs: Span::default(),
                out_regs: Span::default(),
                reads: Span::default(),
                writes: Span::default(),
            };
            let mut cold = ColdEntry {
                in_vregs: Span::default(),
                out_vreg: None,
            };

            if special {
                hot.handler = special_handler(m);
                // RDRAND/RDSEED are the only specials whose handler
                // consults the descriptor table; resolve theirs here too.
                if matches!(m, Mnemonic::Rdrand | Mnemonic::Rdseed) {
                    let desc = table.lookup(inst).expect("rdrand has a descriptor");
                    hot.uops = Span::push(
                        &mut body.uops,
                        desc.uops.iter().map(|u| ResolvedUop {
                            ports: u.class.resolve(ports),
                            latency: u.latency,
                            recip: u.recip,
                        }),
                    );
                }
                body.hot.push(hot);
                body.cold.push(cold);
                body.fast.push(FastOp::None);
                continue;
            }

            // Compute µops: table entry, or the single-ALU-µop default the
            // legacy path synthesized for unknown mnemonics.
            let desc = table
                .lookup(inst)
                .unwrap_or_else(|| crate::descriptor::InstrDesc {
                    uops: vec![UopSpec {
                        class: PortClass::Alu,
                        latency: 1,
                        recip: 1,
                    }],
                });
            hot.uops = Span::push(
                &mut body.uops,
                desc.uops.iter().map(|u| ResolvedUop {
                    ports: u.class.resolve(ports),
                    latency: u.latency,
                    recip: u.recip,
                }),
            );

            // Register dependencies (input order is irrelevant: readiness
            // is a max over the set).
            hot.in_regs = Span::push(
                &mut body.regs,
                exec::input_gprs(inst).iter().map(|g| g.reg.number()),
            );
            cold.in_vregs = Span::push(
                &mut body.regs,
                inst.operands.iter().enumerate().filter_map(|(i, op)| {
                    if let Operand::Vec(v) = op {
                        if i > 0 || !is_move(m) || inst.operands.len() > 2 {
                            return Some(v.index);
                        }
                    }
                    None
                }),
            );
            hot.out_regs = Span::push(
                &mut body.regs,
                exec::output_gprs(inst).iter().map(|g| g.reg.number()),
            );
            if let Some(Operand::Vec(v)) = inst.dst() {
                cold.out_vreg = Some(v.index);
            }

            // Memory operands.
            mem_reads(inst, &mut reads_buf);
            hot.reads = Span::push(&mut body.reads, reads_buf.iter().copied());
            let mut covered = false;
            if let Some(mem) = mem_writes(inst) {
                covered = reads_buf.contains(&mem);
                hot.writes = Span::push(
                    &mut body.writes,
                    std::iter::once(PlannedStore {
                        mem,
                        covered_by_read: covered,
                    }),
                );
            }

            // Fast-handler selection. Anything touching vector registers,
            // AVX warm-up, or privilege stays on the generic path, as does
            // any operand shape the fast handlers do not model.
            let needs_generic = mbits & (meta::IS_AVX | meta::PRIVILEGED) != 0
                || !cold.in_vregs.is_empty()
                || cold.out_vreg.is_some();
            hot.handler = if needs_generic {
                handler::GENERIC
            } else if mbits & meta::IS_BRANCH != 0 {
                if hot.reads.is_empty() && hot.writes.is_empty() {
                    if mbits & meta::CONDITIONAL != 0 {
                        handler::COND_BRANCH
                    } else {
                        handler::JUMP
                    }
                } else {
                    handler::GENERIC
                }
            } else if !hot.writes.is_empty() {
                if covered {
                    handler::RMW
                } else if hot.reads.is_empty() {
                    handler::STORE
                } else {
                    handler::GENERIC
                }
            } else if !hot.reads.is_empty() {
                handler::LOAD
            } else {
                handler::ALU_BLOCK
            };

            let fast = match hot.handler {
                handler::ALU_BLOCK => fast_op(inst),
                handler::LOAD | handler::STORE | handler::RMW => {
                    certify_fast_mem(fast_mem_op(inst), &hot, &body)
                }
                handler::COND_BRANCH => fast_branch_op(inst, &hot, &body),
                _ => FastOp::None,
            };
            body.hot.push(hot);
            body.cold.push(cold);
            body.fast.push(fast);
        }

        // Superblock fusion: fuse_len[i] is the (capped) length of the run
        // of consecutive fusable entries (ALU, load, store, RMW — the
        // straight-line shapes whose control flow is always sequential)
        // starting at i. Computed as a suffix pass so a branch into the
        // middle of a block lands on a correct, shorter block.
        for i in (0..body.hot.len()).rev() {
            if !handler::is_fusable(body.hot[i].handler) {
                continue;
            }
            let next = body
                .hot
                .get(i + 1)
                .filter(|n| handler::is_fusable(n.handler))
                .map_or(0, |n| n.fuse_len);
            body.hot[i].fuse_len = next.saturating_add(1).min(FUSE_CAP);
        }

        // Debug builds certify every invariant the interpreter assumes
        // right where the plan is born; release builds stay lean (the
        // checked-interpreter debug asserts re-check the per-step facts).
        #[cfg(debug_assertions)]
        {
            let violations = verify_body(&body, program);
            debug_assert!(
                violations.is_empty(),
                "plan verifier found violations: {violations:?}"
            );
        }

        body
    }
}

/// A program decoded once into an execution plan, ready to be replayed by
/// [`crate::engine::Engine::run_plan`] any number of times.
///
/// Owns a copy of the instruction sequence (semantic execution still
/// interprets operands) next to the flat timing metadata. Decode via
/// [`crate::engine::Engine::decode`].
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    insts: Vec<Instruction>,
    body: PlanBody,
    uarch: MicroArch,
}

impl DecodedProgram {
    pub(crate) fn new(program: &[Instruction], table: &DescriptorTable) -> DecodedProgram {
        DecodedProgram {
            insts: program.to_vec(),
            body: PlanBody::build(program, table),
            uarch: table.uarch(),
        }
    }

    /// The instruction sequence the plan was decoded from (cache layers
    /// use this to verify key collisions).
    pub fn instructions(&self) -> &[Instruction] {
        &self.insts
    }

    /// The microarchitecture the plan's port sets were resolved for.
    pub fn uarch(&self) -> MicroArch {
        self.uarch
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    pub(crate) fn body(&self) -> &PlanBody {
        &self.body
    }
}

/// The invariant class a [`PlanViolation`] reports against. One variant
/// per assumption the dispatch-table interpreter makes about a decoded
/// plan (DESIGN.md §3g lists them with the rationale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanRule {
    /// Every entry's handler index addresses the dispatch table
    /// (`handler < COUNT` for any `Bus` instantiation).
    HandlerRange,
    /// Every span lies within its arena (`start + len <= arena.len()`).
    SpanBounds,
    /// Spans into one arena never overlap: each entry owns its slice.
    SpanOverlap,
    /// Every resolved µop has at least one dispatch port.
    EmptyPortSet,
    /// Superblock fusion legality: blocks only cover consecutive fusable
    /// entries (ALU/load/store/RMW), never a branch, fault source,
    /// privileged, or vector entry mid-block, and never exceed the cap.
    FusionLegality,
    /// PMU-batch flush coverage: every counter observation site (RDPMC,
    /// RDMSR, WRMSR, pause/resume markers) is its own dispatch boundary,
    /// where the interpreter flushes the deferred batch.
    FlushPoint,
    /// Plan metadata agrees with the instruction it was decoded from
    /// (e.g. the precomputed privilege bit).
    MetaConsistency,
}

impl std::fmt::Display for PlanRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PlanRule::HandlerRange => "handler-range",
            PlanRule::SpanBounds => "span-bounds",
            PlanRule::SpanOverlap => "span-overlap",
            PlanRule::EmptyPortSet => "empty-port-set",
            PlanRule::FusionLegality => "fusion-legality",
            PlanRule::FlushPoint => "flush-point",
            PlanRule::MetaConsistency => "meta-consistency",
        };
        f.write_str(s)
    }
}

/// One violated invariant of a decoded execution plan, anchored to the
/// static instruction index it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanViolation {
    /// Static instruction index the violation anchors to.
    pub index: usize,
    /// The invariant class.
    pub rule: PlanRule,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] at {}: {}", self.rule, self.index, self.detail)
    }
}

/// Statically checks every invariant the dispatch-table interpreter
/// assumes about a decoded plan. Returns the full violation list (empty
/// for every plan `PlanBody::build` produces — the build hooks this under
/// `debug_assertions`, and the checked interpreter re-asserts the per-step
/// facts it relies on).
pub fn verify_plan(program: &DecodedProgram) -> Vec<PlanViolation> {
    verify_body(program.body(), program.instructions())
}

pub(crate) fn verify_body(body: &PlanBody, insts: &[Instruction]) -> Vec<PlanViolation> {
    let mut out = Vec::new();
    let n = insts.len();
    let mut push = |index: usize, rule: PlanRule, detail: String| {
        out.push(PlanViolation {
            index,
            rule,
            detail,
        });
    };
    if body.hot.len() != n || body.cold.len() != n || body.fast.len() != n {
        push(
            0,
            PlanRule::SpanBounds,
            format!(
                "entry arenas have {}/{}/{} entries for {n} instructions",
                body.hot.len(),
                body.cold.len(),
                body.fast.len()
            ),
        );
        return out;
    }

    let span_ok = |s: Span, arena_len: usize| (s.start as usize + s.len as usize) <= arena_len;
    // (arena id, start, len, entry index) for the overlap check.
    let mut spans: Vec<(u8, u32, u32, usize)> = Vec::new();

    for (i, (hot, cold)) in body.hot.iter().zip(&body.cold).enumerate() {
        if (hot.handler as usize) >= handler::COUNT {
            push(
                i,
                PlanRule::HandlerRange,
                format!(
                    "handler index {} out of range (table has {} entries)",
                    hot.handler,
                    handler::COUNT
                ),
            );
        }
        for (name, span, arena_len, arena_id) in [
            ("uops", hot.uops, body.uops.len(), 0u8),
            ("in_regs", hot.in_regs, body.regs.len(), 1),
            ("out_regs", hot.out_regs, body.regs.len(), 1),
            ("in_vregs", cold.in_vregs, body.regs.len(), 1),
            ("reads", hot.reads, body.reads.len(), 2),
            ("writes", hot.writes, body.writes.len(), 3),
        ] {
            if !span_ok(span, arena_len) {
                push(
                    i,
                    PlanRule::SpanBounds,
                    format!(
                        "{name} span [{}, {}) exceeds arena of {arena_len}",
                        span.start,
                        span.start + span.len
                    ),
                );
            } else if span.len > 0 {
                spans.push((arena_id, span.start, span.len, i));
            }
        }
        if span_ok(hot.uops, body.uops.len()) {
            for (k, uop) in hot.uops.slice(&body.uops).iter().enumerate() {
                // Zero-port µops are legal only when declared free: the
                // interpreter completes them at their ready cycle without
                // dispatching (vzeroupper, pause padding). A µop with
                // latency or a reciprocal-throughput cost but nowhere to
                // execute is a descriptor-resolution bug.
                if uop.ports.is_empty() && (uop.latency > 0 || uop.recip > 1) {
                    push(
                        i,
                        PlanRule::EmptyPortSet,
                        format!(
                            "resolved µop {k} has latency {} / recip {} but an empty port set",
                            uop.latency, uop.recip
                        ),
                    );
                }
            }
        }
        if hot.has(meta::PRIVILEGED) != insts[i].mnemonic.is_privileged() {
            push(
                i,
                PlanRule::MetaConsistency,
                format!(
                    "privilege bit {} disagrees with mnemonic {}",
                    hot.has(meta::PRIVILEGED),
                    insts[i].mnemonic.name()
                ),
            );
        }

        // Fusion legality.
        if hot.fuse_len == 0 {
            push(i, PlanRule::FusionLegality, "fuse_len of 0".to_string());
        }
        if !handler::is_fusable(hot.handler) {
            if hot.fuse_len > 1 {
                push(
                    i,
                    PlanRule::FusionLegality,
                    format!(
                        "non-fusable handler {} carries fuse_len {}",
                        hot.handler, hot.fuse_len
                    ),
                );
            }
        } else {
            if hot.fuse_len > FUSE_CAP {
                push(
                    i,
                    PlanRule::FusionLegality,
                    format!("fuse_len {} exceeds cap {FUSE_CAP}", hot.fuse_len),
                );
            }
            let end = i + hot.fuse_len as usize;
            if end > n {
                push(
                    i,
                    PlanRule::FusionLegality,
                    format!("superblock [{i}, {end}) runs past the program end {n}"),
                );
            } else {
                for j in i..end {
                    let member = &body.hot[j];
                    if !handler::is_fusable(member.handler) {
                        push(
                            i,
                            PlanRule::FusionLegality,
                            format!(
                                "non-fusable handler {} fused at offset {}",
                                member.handler,
                                j - i
                            ),
                        );
                    }
                    if member.has(meta::IS_BRANCH)
                        || member.has(meta::PRIVILEGED)
                        || member.has(meta::IS_AVX)
                    {
                        push(
                            i,
                            PlanRule::FusionLegality,
                            format!(
                                "branch/privileged/AVX entry {} inside superblock [{i}, {end})",
                                j
                            ),
                        );
                    }
                    if !body.cold[j].in_vregs.is_empty() || body.cold[j].out_vreg.is_some() {
                        push(
                            i,
                            PlanRule::FusionLegality,
                            format!("vector-dependent entry {j} inside superblock [{i}, {end})"),
                        );
                    }
                }
            }
        }

        // Flush-point coverage: batch observation sites are their own
        // dispatch boundaries.
        let observes_counters = matches!(
            hot.handler,
            handler::RDPMC
                | handler::RDMSR
                | handler::WRMSR
                | handler::NB_PAUSE
                | handler::NB_RESUME
        );
        if observes_counters {
            if handler::is_fusable(hot.handler) || hot.fuse_len != 1 {
                push(
                    i,
                    PlanRule::FlushPoint,
                    "counter observation site is not a lone dispatch".to_string(),
                );
            }
            for j in 0..i {
                let prior = &body.hot[j];
                if handler::is_fusable(prior.handler) && j + prior.fuse_len as usize > i {
                    push(
                        i,
                        PlanRule::FlushPoint,
                        format!(
                            "superblock at {j} (len {}) spans the observation site",
                            prior.fuse_len
                        ),
                    );
                }
            }
        }
    }

    // Overlap: within one arena, every nonempty span owns its slice.
    spans.sort_unstable();
    for w in spans.windows(2) {
        let (a_arena, a_start, a_len, a_idx) = w[0];
        let (b_arena, b_start, _, b_idx) = w[1];
        if a_arena == b_arena && a_start + a_len > b_start {
            push(
                b_idx.max(a_idx),
                PlanRule::SpanOverlap,
                format!(
                    "spans [{a_start}, {}) (entry {a_idx}) and starting {b_start} (entry {b_idx}) overlap",
                    a_start + a_len
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanobench_x86::asm::parse_asm;

    fn plan(text: &str) -> DecodedProgram {
        let table = DescriptorTable::for_uarch(MicroArch::Skylake);
        DecodedProgram::new(&parse_asm(text).unwrap(), &table)
    }

    #[test]
    fn generic_entry_precomputes_everything() {
        let p = plan("add [r14+8], rax");
        let e = &p.body().hot[0];
        assert_eq!(e.handler, handler::RMW);
        assert!(e.has(meta::FLAGS_WRITTEN) && !e.has(meta::FLAGS_READ));
        // RMW: one read, one write covered by the read.
        assert_eq!(e.reads.slice(&p.body().reads).len(), 1);
        let stores = e.writes.slice(&p.body().writes);
        assert_eq!(stores.len(), 1);
        assert!(stores[0].covered_by_read);
        // One ALU µop resolved to Skylake's four ALU ports.
        let uops = e.uops.slice(&p.body().uops);
        assert_eq!(uops.len(), 1);
        assert_eq!(uops[0].ports.len(), 4);
        // Inputs: rax and the address register r14.
        let ins = e.in_regs.slice(&p.body().regs);
        assert_eq!(ins.len(), 2);
    }

    #[test]
    fn pure_store_is_not_covered_by_read() {
        let p = plan("mov [r14], rax");
        let e = &p.body().hot[0];
        assert_eq!(e.handler, handler::STORE);
        assert_eq!(e.reads.slice(&p.body().reads).len(), 0);
        let stores = e.writes.slice(&p.body().writes);
        assert_eq!(stores.len(), 1);
        assert!(!stores[0].covered_by_read);
        // Pure move with memory operand: no compute µops.
        assert_eq!(e.uops.slice(&p.body().uops).len(), 0);
    }

    #[test]
    fn specials_are_classified_and_rdrand_resolved() {
        let p = plan("lfence; rdpmc; push rax; rdrand rbx");
        let body = p.body();
        for e in &body.hot {
            assert!(handler::is_special(e.handler), "handler {}", e.handler);
        }
        assert_eq!(body.hot[0].handler, handler::LFENCE);
        assert_eq!(body.hot[1].handler, handler::RDPMC);
        assert_eq!(body.hot[2].handler, handler::PUSH);
        // RDRAND carries its resolved descriptor µop.
        let rdrand = &body.hot[3];
        assert_eq!(rdrand.handler, handler::RDRAND);
        let uops = rdrand.uops.slice(&body.uops);
        assert_eq!(uops.len(), 1);
        assert_eq!(uops[0].recip, 300);
    }

    #[test]
    fn branch_entries_distinguish_conditional() {
        let p = plan("jmp 0; jnz 0");
        let body = p.body();
        assert_eq!(body.hot[0].handler, handler::JUMP);
        assert!(body.hot[0].has(meta::IS_BRANCH) && !body.hot[0].has(meta::CONDITIONAL));
        assert_eq!(body.hot[1].handler, handler::COND_BRANCH);
        assert!(body.hot[1].has(meta::IS_BRANCH) && body.hot[1].has(meta::CONDITIONAL));
    }

    #[test]
    fn fast_handlers_cover_the_dominant_shapes() {
        let p = plan("add rax, 1; mov [r14], rax; mov rbx, [r14]; add [r14+64], rbx");
        let h: Vec<u8> = p.body().hot.iter().map(|e| e.handler).collect();
        assert_eq!(
            h,
            vec![
                handler::ALU_BLOCK,
                handler::STORE,
                handler::LOAD,
                handler::RMW
            ]
        );
    }

    #[test]
    fn avx_and_vector_shapes_stay_generic() {
        let p = plan("addps xmm0, xmm1; vaddps ymm0, ymm1, ymm2");
        for e in &p.body().hot {
            assert_eq!(e.handler, handler::GENERIC);
        }
    }

    #[test]
    fn alu_runs_fuse_with_suffix_lengths() {
        // Memory shapes fuse too: four ALU entries then a store form one
        // straight-line run, so the suffix lengths count all five. The
        // trailing branch stays unfused and breaks the run.
        let p = plan(
            "add rax, 1; xor rcx, rcx; lea rdx, [rcx+rax]; sub r9, rdx; mov [r14], rax; jnz l; l:",
        );
        let lens: Vec<u8> = p.body().hot.iter().map(|e| e.fuse_len).collect();
        assert_eq!(lens[..5], [5, 4, 3, 2, 1]);
        assert_eq!(p.body().hot[5].fuse_len, 1, "branches never fuse");
    }

    #[test]
    fn fusion_respects_the_cap() {
        let long = "add rax, 1; ".repeat(40);
        let p = plan(&long);
        assert_eq!(p.body().hot[0].fuse_len, FUSE_CAP);
        assert_eq!(p.body().hot[39].fuse_len, 1);
        // Every suffix length is consistent: len[i] <= len[i+1] + 1.
        for i in 0..39 {
            assert!(p.body().hot[i].fuse_len <= p.body().hot[i + 1].fuse_len + 1);
        }
    }

    #[test]
    fn verifier_accepts_representative_programs() {
        for src in [
            "add rax, 1; mov [r14], rax; mov rbx, [r14]; add [r14+64], rbx",
            "lfence; rdpmc; push rax; rdrand rbx; pop rax",
            "addps xmm0, xmm1; vaddps ymm0, ymm1, ymm2; vzeroupper",
            "cmp rax, rbx; jnz l; cpuid; l: wbinvd; pause",
            "nop; rdtsc; rdmsr; wrmsr; clflush [r14]",
        ] {
            let v = verify_plan(&plan(src));
            assert!(v.is_empty(), "{src}: {v:?}");
        }
    }

    #[test]
    fn verifier_rejects_mid_block_branch_fusion() {
        // Corrupt a built plan so a superblock spans the branch: both the
        // non-fusable handler and the IS_BRANCH bit must be caught.
        let mut p = plan("add rax, 1; add rbx, 1; jnz l; l: nop");
        assert_eq!(p.body.hot[0].fuse_len, 2);
        p.body.hot[0].fuse_len = 3;
        let v = verify_plan(&p);
        assert!(
            v.iter()
                .any(|v| v.rule == PlanRule::FusionLegality && v.index == 0),
            "{v:?}"
        );
    }

    #[test]
    fn verifier_rejects_handler_out_of_range() {
        let mut p = plan("nop");
        p.body.hot[0].handler = handler::COUNT as u8;
        let v = verify_plan(&p);
        assert!(
            v.iter()
                .any(|v| v.rule == PlanRule::HandlerRange && v.index == 0),
            "{v:?}"
        );
    }

    #[test]
    fn verifier_rejects_out_of_bounds_span() {
        let mut p = plan("add rax, rbx");
        p.body.hot[0].in_regs = Span {
            start: 1000,
            len: 4,
        };
        let v = verify_plan(&p);
        assert!(v.iter().any(|v| v.rule == PlanRule::SpanBounds), "{v:?}");
    }

    #[test]
    fn verifier_rejects_overlapping_spans() {
        // Two entries claiming the same regs-arena slice: the plan writer
        // must give every nonempty span its own storage.
        let mut p = plan("add rax, rbx; add rcx, rdx");
        p.body.hot[1].in_regs = p.body.hot[0].in_regs;
        let v = verify_plan(&p);
        assert!(v.iter().any(|v| v.rule == PlanRule::SpanOverlap), "{v:?}");
    }

    #[test]
    fn verifier_rejects_corrupted_privilege_bit() {
        let mut p = plan("wbinvd");
        p.body.hot[0].meta &= !meta::PRIVILEGED;
        let v = verify_plan(&p);
        assert!(
            v.iter().any(|v| v.rule == PlanRule::MetaConsistency),
            "{v:?}"
        );
    }

    #[test]
    fn verifier_rejects_superblock_spanning_a_flush_point() {
        // A fused block running over an RDPMC would observe counters with
        // an unflushed PMU batch.
        let mut p = plan("add rax, 1; rdpmc");
        p.body.hot[0].fuse_len = 2;
        let v = verify_plan(&p);
        assert!(
            v.iter()
                .any(|v| v.rule == PlanRule::FlushPoint && v.index == 1),
            "{v:?}"
        );
    }

    #[test]
    fn verifier_rejects_costly_uop_with_no_ports() {
        let mut p = plan("add rax, rbx");
        let span = p.body.hot[0].uops;
        p.body.uops[span.start as usize].ports = PortSet::NONE;
        let v = verify_plan(&p);
        assert!(v.iter().any(|v| v.rule == PlanRule::EmptyPortSet), "{v:?}");
    }

    #[test]
    fn plans_are_uarch_specific() {
        let skl = plan("addps xmm0, xmm1");
        let table = DescriptorTable::for_uarch(MicroArch::Nehalem);
        let nhm = DecodedProgram::new(&parse_asm("addps xmm0, xmm1").unwrap(), &table);
        let u_skl = skl.body().hot[0].uops.slice(&skl.body().uops)[0];
        let u_nhm = nhm.body().hot[0].uops.slice(&nhm.body().uops)[0];
        assert_eq!(u_skl.latency, 4);
        assert_eq!(u_nhm.latency, 3);
        assert_eq!(skl.uarch(), MicroArch::Skylake);
    }
}
