//! The out-of-order timing engine.
//!
//! Functional-first, timing-directed: instructions execute architecturally
//! in program order (via [`crate::exec`]) while a dataflow model computes
//! cycle timing — operand-ready times per register/flag, per-port
//! availability, a four-wide front end, LFENCE dispatch serialization
//! (§IV-A1), branch prediction with persistent state (§III-H), AVX warm-up
//! (§III-H), and user-mode interrupt injection (§III-D / §IV-A2).
//!
//! The interpreter runs over a [`DecodedProgram`] (see [`crate::plan`]):
//! all per-instruction analysis — descriptor lookups, port-class
//! resolution, memory-operand classification, dependency extraction — is
//! hoisted into a one-shot decode pass, so the steady-state loop performs
//! zero heap allocations. [`Engine::run`] keeps the legacy
//! instruction-slice signature by building a transient plan.

use crate::bpred::BranchPredictor;
use crate::bus::{Bus, CpuFault};
use crate::exec::{self, Next};
use crate::plan::{DecodedProgram, PlanBody, PlanEntry, StepKind};
use crate::port::{MicroArch, PortConfig, PortSet};
use crate::state::CpuState;
use nanobench_cache::hierarchy::{HitLevel, MemAccessResult, SnoopResult};
use nanobench_pmu::event::events;
use nanobench_pmu::Pmu;
use nanobench_x86::inst::{Instruction, Mnemonic};
use nanobench_x86::operand::{MemRef, Operand};
use nanobench_x86::reg::Gpr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::descriptor::DescriptorTable;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Front-end bubble after a mispredicted branch.
    pub mispredict_penalty: u64,
    /// Safety limit on retired instructions per run.
    pub max_instructions: u64,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            mispredict_penalty: 15,
            max_instructions: 200_000_000,
        }
    }
}

/// Result of one program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions retired.
    pub instructions: u64,
    /// µops issued.
    pub uops: u64,
    /// Cycles elapsed in this run.
    pub cycles: u64,
    /// Absolute end cycle (feed as `start_cycle` of the next run so the
    /// PMU's cycle counters stay monotonic).
    pub end_cycle: u64,
}

/// Per-run dataflow timing state.
#[derive(Debug)]
struct Timing {
    reg: [u64; 16],
    vreg: [u64; 32],
    flags: u64,
    port_free: [u64; 8],
    alloc_cycle: u64,
    alloc_slots: u64,
    issue_width: u64,
    barrier: u64,
    max_complete: u64,
    rr: usize,
}

impl Timing {
    fn new(start: u64, issue_width: u64) -> Timing {
        Timing {
            reg: [start; 16],
            vreg: [start; 32],
            flags: start,
            port_free: [start; 8],
            alloc_cycle: start,
            alloc_slots: 0,
            issue_width,
            barrier: start,
            max_complete: start,
            rr: 0,
        }
    }

    fn now(&self) -> u64 {
        self.max_complete.max(self.alloc_cycle)
    }

    fn alloc_uop(&mut self) -> u64 {
        if self.alloc_slots >= self.issue_width {
            self.alloc_cycle += 1;
            self.alloc_slots = 0;
        }
        self.alloc_slots += 1;
        self.alloc_cycle
    }

    /// Issues and dispatches one µop; returns its dispatch cycle.
    fn dispatch(&mut self, ports: PortSet, ready: u64, recip: u64, pmu: &mut Pmu) -> u64 {
        let alloc = self.alloc_uop();
        let ready = ready.max(self.barrier).max(alloc);
        pmu.count(events::UOPS_ISSUED_ANY, 1);
        if ports.is_empty() {
            self.max_complete = self.max_complete.max(ready);
            return ready;
        }
        // Scan the candidate ports in round-robin order starting at
        // position `rr % n` without materializing a list: the ports at
        // positions `start..n` are considered before those at `0..start`,
        // and the first port with the minimal free time wins — port
        // selection is identical to rotating an explicit candidate list.
        let n = ports.len();
        let start = self.rr % n;
        let mut tail = (0u8, u64::MAX);
        let mut head = (0u8, u64::MAX);
        let mut pos = 0usize;
        for p in 0..8u8 {
            if !ports.contains(p) {
                continue;
            }
            let t = self.port_free[p as usize].max(ready);
            if pos >= start {
                if t < tail.1 {
                    tail = (p, t);
                }
            } else if t < head.1 {
                head = (p, t);
            }
            pos += 1;
        }
        let (best_port, best_time) = if head.1 < tail.1 { head } else { tail };
        self.rr = self.rr.wrapping_add(1);
        self.port_free[best_port as usize] = best_time + recip.max(1);
        pmu.count(events::uops_dispatched_port(best_port), 1);
        best_time
    }

    fn complete(&mut self, cycle: u64) {
        self.max_complete = self.max_complete.max(cycle);
    }

    /// Serialization point: no later µop dispatches before `cycle`, and the
    /// front end resumes allocation there (a stalled allocator cannot run
    /// arbitrarily far behind execution).
    fn set_barrier(&mut self, cycle: u64) {
        self.barrier = cycle;
        self.complete(cycle);
        if self.alloc_cycle < cycle {
            self.alloc_cycle = cycle;
            self.alloc_slots = 0;
        }
    }
}

/// The in-flight execution state of one program on one core.
///
/// A context is created by [`Engine::begin_plan`], advanced one
/// instruction at a time by [`Engine::step_plan`], and turned into
/// [`RunStats`] by [`Engine::finish_plan`]. Keeping it outside the engine
/// lets a multi-core machine interleave several cores deterministically:
/// the scheduler steps whichever core's context has the smallest local
/// cycle. [`Engine::run_plan`] is exactly a loop over these three calls,
/// so stepped execution is bit-identical to a monolithic run.
#[derive(Debug)]
pub struct RunContext {
    t: Timing,
    pc: usize,
    instructions: u64,
    uops: u64,
    start_cycle: u64,
}

impl RunContext {
    /// The context's current local cycle (the scheduling key for
    /// round-robin interleaving).
    pub fn now(&self) -> u64 {
        self.t.now()
    }

    /// Instructions retired so far in this run.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Rewinds the program counter so the plan restarts from its first
    /// instruction; timing and counters carry over. This is how co-runner
    /// programs loop for as long as the measured core runs.
    pub fn restart(&mut self) {
        self.pc = 0;
    }
}

/// The simulated core's execution engine.
///
/// Branch-predictor and AVX warm-up state persist across runs, which is
/// what gives nanoBench's warm-up runs (§III-H) their effect.
#[derive(Debug)]
pub struct Engine {
    uarch: MicroArch,
    table: DescriptorTable,
    ports: PortConfig,
    config: EngineConfig,
    /// Branch predictor (persistent; public so tools can reset it).
    pub bpred: BranchPredictor,
    rng: SmallRng,
    avx_cold: bool,
    non_avx_streak: u64,
    avx_penalty_uops: u64,
    /// Scratch for uncore-lookup drains (reused so the hot loop does not
    /// allocate).
    uncore_buf: Vec<u64>,
}

/// Instructions executed since the last AVX µop before the upper vector
/// unit powers down.
const AVX_IDLE_LIMIT: u64 = 50_000;
/// Number of AVX µops that run slowly after a cold start.
const AVX_WARMUP_UOPS: u64 = 150;
/// Latency multiplier for cold AVX µops.
const AVX_COLD_FACTOR: u64 = 4;

impl Engine {
    /// Creates an engine for a microarchitecture. `seed` drives the
    /// CPUID-latency jitter and RDRAND values.
    pub fn new(uarch: MicroArch, seed: u64) -> Engine {
        Engine {
            uarch,
            table: DescriptorTable::for_uarch(uarch),
            ports: PortConfig::for_uarch(uarch),
            config: EngineConfig::default(),
            bpred: BranchPredictor::new(),
            rng: SmallRng::seed_from_u64(seed),
            avx_cold: true,
            non_avx_streak: 0,
            avx_penalty_uops: 0,
            uncore_buf: Vec::new(),
        }
    }

    /// Creates an engine with custom tuning.
    pub fn with_config(uarch: MicroArch, seed: u64, config: EngineConfig) -> Engine {
        Engine {
            config,
            ..Engine::new(uarch, seed)
        }
    }

    /// The microarchitecture being simulated.
    pub fn uarch(&self) -> MicroArch {
        self.uarch
    }

    /// The descriptor table (ground truth for case study I).
    pub fn table(&self) -> &DescriptorTable {
        &self.table
    }

    /// Restores the just-constructed state for `seed` without touching the
    /// descriptor table or port configuration: forgets all branch-predictor
    /// history, rewinds the jitter/RDRAND random stream, and powers the
    /// upper vector unit back down (AVX warm-up state, §III-H).
    pub fn reset_with_seed(&mut self, seed: u64) {
        self.bpred.reset();
        self.rng = SmallRng::seed_from_u64(seed);
        self.avx_cold = true;
        self.non_avx_streak = 0;
        self.avx_penalty_uops = 0;
    }

    /// Decodes `program` into a reusable execution plan for this engine's
    /// microarchitecture (descriptor table and port configuration). The
    /// plan holds no machine state and can be replayed any number of
    /// times via [`Engine::run_plan`].
    pub fn decode(&self, program: &[Instruction]) -> DecodedProgram {
        DecodedProgram::new(program, &self.table)
    }

    /// Runs `program` to completion.
    ///
    /// Compatibility wrapper over the plan interpreter: decodes a
    /// transient plan and discards it. Callers that run the same program
    /// repeatedly should [`Engine::decode`] once and use
    /// [`Engine::run_plan`].
    ///
    /// `start_cycle` is the absolute cycle the run begins at; pass the
    /// previous run's [`RunStats::end_cycle`] to keep PMU time monotonic.
    ///
    /// # Errors
    ///
    /// Returns [`CpuFault`] on privilege violations, page faults, divide
    /// errors, or when the instruction limit is exceeded.
    pub fn run(
        &mut self,
        program: &[Instruction],
        state: &mut CpuState,
        pmu: &mut Pmu,
        bus: &mut dyn Bus,
        start_cycle: u64,
    ) -> Result<RunStats, CpuFault> {
        let body = PlanBody::build(program, &self.table);
        self.run_decoded(&body, program, state, pmu, bus, start_cycle)
    }

    /// Runs a pre-decoded plan to completion. Bit-identical to
    /// [`Engine::run`] on the plan's program, without the per-run decode.
    ///
    /// # Errors
    ///
    /// Returns [`CpuFault`] on privilege violations, page faults, divide
    /// errors, or when the instruction limit is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if the plan was decoded for a different microarchitecture —
    /// its port sets and latencies would be silently wrong on this
    /// engine. (One enum compare per run, not per instruction.)
    pub fn run_plan(
        &mut self,
        plan: &DecodedProgram,
        state: &mut CpuState,
        pmu: &mut Pmu,
        bus: &mut dyn Bus,
        start_cycle: u64,
    ) -> Result<RunStats, CpuFault> {
        assert_eq!(
            plan.uarch(),
            self.uarch,
            "plan decoded for a different microarchitecture"
        );
        self.run_decoded(
            plan.body(),
            plan.instructions(),
            state,
            pmu,
            bus,
            start_cycle,
        )
    }

    /// Creates a fresh execution context for a run beginning at
    /// `start_cycle` (pass the previous run's [`RunStats::end_cycle`]).
    pub fn begin_plan(&self, start_cycle: u64) -> RunContext {
        RunContext {
            t: Timing::new(start_cycle, self.uarch.issue_width()),
            pc: 0,
            instructions: 0,
            uops: 0,
            start_cycle,
        }
    }

    /// Advances a context by one instruction. Returns `Ok(true)` if an
    /// instruction was executed and `Ok(false)` if the program had already
    /// completed (the context is unchanged in that case).
    ///
    /// # Errors
    ///
    /// Returns [`CpuFault`] exactly as [`Engine::run_plan`] would at the
    /// same point in the program.
    pub fn step_plan(
        &mut self,
        ctx: &mut RunContext,
        plan: &DecodedProgram,
        state: &mut CpuState,
        pmu: &mut Pmu,
        bus: &mut dyn Bus,
    ) -> Result<bool, CpuFault> {
        debug_assert_eq!(
            plan.uarch(),
            self.uarch,
            "plan decoded for a different microarchitecture"
        );
        self.step_decoded(ctx, plan.body(), plan.instructions(), state, pmu, bus)
    }

    /// Converts a completed (or abandoned) context into [`RunStats`],
    /// syncing the PMU's cycle counters to the context's end cycle.
    pub fn finish_plan(&self, ctx: &RunContext, pmu: &mut Pmu) -> RunStats {
        let end = ctx.t.now();
        pmu.sync_cycles(end);
        RunStats {
            instructions: ctx.instructions,
            uops: ctx.uops,
            cycles: end - ctx.start_cycle,
            end_cycle: end,
        }
    }

    fn step_decoded(
        &mut self,
        ctx: &mut RunContext,
        body: &PlanBody,
        insts: &[Instruction],
        state: &mut CpuState,
        pmu: &mut Pmu,
        bus: &mut dyn Bus,
    ) -> Result<bool, CpuFault> {
        if ctx.pc >= insts.len() {
            return Ok(false);
        }
        if ctx.instructions >= self.config.max_instructions {
            return Err(CpuFault::RunawayExecution);
        }
        if let Some(intr) = bus.poll_interrupt(ctx.t.now()) {
            // The handler runs in the middle of the benchmark: it
            // consumes cycles, retires instructions, and perturbs the
            // counters (§IV-A2; the kernel version avoids this).
            let resume = ctx.t.now() + intr.cycles;
            ctx.t.alloc_cycle = resume;
            ctx.t.barrier = resume;
            ctx.t.complete(resume);
            pmu.retire_instructions(intr.instructions);
            pmu.count(events::UOPS_ISSUED_ANY, intr.uops);
        }
        let inst = &insts[ctx.pc];
        let entry = &body.entries[ctx.pc];
        let next = self.step(body, entry, inst, ctx.pc, &mut ctx.t, state, pmu, bus)?;
        ctx.instructions += 1;
        // The magic pause/resume markers are byte sequences consumed by
        // the tool, not instructions the benchmark retires (§III-I).
        if entry.retires {
            pmu.retire_instructions(1);
        }
        ctx.uops += 1; // approximate per-instruction accounting for stats
        ctx.pc = match next {
            Next::Seq => ctx.pc + 1,
            Next::Jump(target) => target,
        };
        Ok(true)
    }

    fn run_decoded(
        &mut self,
        body: &PlanBody,
        insts: &[Instruction],
        state: &mut CpuState,
        pmu: &mut Pmu,
        bus: &mut dyn Bus,
        start_cycle: u64,
    ) -> Result<RunStats, CpuFault> {
        let mut ctx = self.begin_plan(start_cycle);
        while self.step_decoded(&mut ctx, body, insts, state, pmu, bus)? {}
        Ok(self.finish_plan(&ctx, pmu))
    }

    /// AVX warm-up bookkeeping; returns the latency multiplier for this
    /// instruction's µops.
    fn avx_factor(&mut self, is_avx: bool) -> u64 {
        if is_avx {
            self.non_avx_streak = 0;
            if self.avx_cold {
                self.avx_cold = false;
                self.avx_penalty_uops = AVX_WARMUP_UOPS;
            }
            if self.avx_penalty_uops > 0 {
                self.avx_penalty_uops -= 1;
                return AVX_COLD_FACTOR;
            }
        } else {
            self.non_avx_streak += 1;
            if self.non_avx_streak > AVX_IDLE_LIMIT {
                self.avx_cold = true;
            }
        }
        1
    }

    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        body: &PlanBody,
        entry: &PlanEntry,
        inst: &Instruction,
        pc: usize,
        t: &mut Timing,
        state: &mut CpuState,
        pmu: &mut Pmu,
        bus: &mut dyn Bus,
    ) -> Result<Next, CpuFault> {
        if entry.privileged && !bus.is_kernel() {
            return Err(CpuFault::PrivilegedInstruction(inst.mnemonic));
        }
        if entry.kind == StepKind::Special {
            return self.step_special(body, entry, inst, t, state, pmu, bus);
        }

        // ---- generic path -------------------------------------------------
        let factor = self.avx_factor(entry.is_avx);

        // Input readiness (registers, vector registers, flags).
        let mut input_ready = start_of(t);
        for &r in entry.in_regs.slice(&body.regs) {
            input_ready = input_ready.max(t.reg[r as usize]);
        }
        for &v in entry.in_vregs.slice(&body.regs) {
            input_ready = input_ready.max(t.vreg[v as usize]);
        }
        if entry.flags_read {
            input_ready = input_ready.max(t.flags);
        }

        // Loads. A load that covers an RMW store is the instruction's only
        // cache access (the store below skips the bus), so it must perform
        // the write side of the coherence protocol — read-for-ownership —
        // or read-modify-writes would never invalidate remote copies.
        let writes = entry.writes.slice(&body.writes);
        let mut load_done = 0u64;
        for mem in entry.reads.slice(&body.reads) {
            let a_ready = addr_ready(t, mem);
            let vaddr = exec::mem_vaddr(state, mem);
            let rmw = writes.iter().any(|w| w.covered_by_read && w.mem == *mem);
            let done = self.timed_load(t, vaddr, a_ready, rmw, pmu, bus)?;
            load_done = load_done.max(done);
        }
        let compute_ready = input_ready.max(load_done);

        // Compute µops.
        let uops = entry.uops.slice(&body.uops);
        let mut result_ready = if uops.is_empty() {
            if load_done > 0 {
                load_done
            } else {
                compute_ready
            }
        } else {
            compute_ready
        };
        for (i, u) in uops.iter().enumerate() {
            let dispatch = t.dispatch(u.ports, compute_ready, u.recip, pmu);
            let done = dispatch + u.latency * factor;
            t.complete(done);
            if i == 0 {
                result_ready = done.max(load_done);
            }
        }

        // Stores.
        for store in writes {
            let a_ready = addr_ready(t, &store.mem);
            t.dispatch(self.ports.store_addr, a_ready, 1, pmu);
            t.dispatch(self.ports.store_data, result_ready, 1, pmu);
            // RMW accesses already touched the line via the load.
            if !store.covered_by_read {
                let vaddr = exec::mem_vaddr(state, &store.mem);
                let res = bus.access(vaddr, true)?;
                Engine::count_store_coherence(pmu, &res);
                self.drain_uncore(pmu, bus);
            }
        }

        // Branches: prediction bookkeeping before the semantic jump.
        if entry.is_branch {
            let taken = exec::branch_taken(inst, state);
            let dispatch = t.dispatch(self.ports.branch, compute_ready, 1, pmu);
            let done = dispatch + 1;
            t.complete(done);
            pmu.count(events::BR_INST_RETIRED, 1);
            if entry.conditional && self.bpred.update(pc, taken) {
                pmu.count(events::BR_MISP_RETIRED, 1);
                t.alloc_cycle = t.alloc_cycle.max(done + self.config.mispredict_penalty);
                t.alloc_slots = 0;
            }
        }

        // Output readiness.
        for &r in entry.out_regs.slice(&body.regs) {
            t.reg[r as usize] = result_ready;
        }
        if let Some(v) = entry.out_vreg {
            t.vreg[v as usize] = result_ready;
        }
        if entry.flags_written {
            t.flags = result_ready;
        }

        exec::execute(inst, state, bus)
    }

    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn step_special(
        &mut self,
        body: &PlanBody,
        entry: &PlanEntry,
        inst: &Instruction,
        t: &mut Timing,
        state: &mut CpuState,
        pmu: &mut Pmu,
        bus: &mut dyn Bus,
    ) -> Result<Next, CpuFault> {
        use Mnemonic::*;
        let m = inst.mnemonic;
        match m {
            Nop => {
                t.dispatch(PortSet::NONE, start_of(t), 1, pmu);
                Ok(Next::Seq)
            }
            Lfence => {
                // "LFENCE does not execute until all prior instructions
                // have completed locally, and no later instruction begins
                // execution until LFENCE completes" (§IV-A1).
                let done = t.max_complete.max(t.alloc_uop());
                pmu.count(events::UOPS_ISSUED_ANY, 1);
                t.set_barrier(done);
                Ok(Next::Seq)
            }
            Mfence | Sfence => {
                let extra = if m == Mfence { 33 } else { 2 };
                let done = t.max_complete.max(t.alloc_uop()) + extra;
                pmu.count(events::UOPS_ISSUED_ANY, 1);
                t.set_barrier(done);
                Ok(Next::Seq)
            }
            Cpuid => {
                // Fully serializing but with variable latency and µop
                // count, both depending on RAX and run-to-run jitter
                // (Paoloni's observation, §IV-A1).
                let rax = state.gpr(Gpr::Rax);
                let latency = 95 + (rax & 0xF) * 23 + self.rng.gen_range(0..=50);
                let n_uops = 20 + (rax & 0x3) * 10;
                for _ in 0..n_uops {
                    t.dispatch(self.ports.alu, t.max_complete, 1, pmu);
                }
                let done = t.max_complete.max(t.alloc_cycle) + latency;
                t.set_barrier(done);
                // Leaf outputs (model identification values).
                state.set_gpr(Gpr::Rax, 0x0005_06E3);
                state.set_gpr(Gpr::Rbx, u64::from_le_bytes(*b"nanoBen\0"));
                state.set_gpr(Gpr::Rcx, 0x7FFA_FBBF);
                state.set_gpr(Gpr::Rdx, 0xBFEB_FBFF);
                for r in [Gpr::Rax, Gpr::Rbx, Gpr::Rcx, Gpr::Rdx] {
                    t.reg[r.number() as usize] = done;
                }
                Ok(Next::Seq)
            }
            Rdtsc | Rdtscp => {
                let ready = start_of(t);
                let dispatch = t.dispatch(self.ports.int_mul, ready, 25, pmu);
                let done = dispatch + 25;
                t.complete(done);
                let tsc = dispatch;
                state.set_gpr(Gpr::Rax, tsc & 0xFFFF_FFFF);
                state.set_gpr(Gpr::Rdx, tsc >> 32);
                t.reg[Gpr::Rax.number() as usize] = done;
                t.reg[Gpr::Rdx.number() as usize] = done;
                if m == Rdtscp {
                    state.set_gpr(Gpr::Rcx, 0);
                    t.reg[Gpr::Rcx.number() as usize] = done;
                }
                Ok(Next::Seq)
            }
            Rdpmc => {
                if !bus.is_kernel() && !bus.rdpmc_allowed() {
                    return Err(CpuFault::RdpmcNotAllowed);
                }
                let ready = t.reg[Gpr::Rcx.number() as usize];
                // ~10 µops; the dependency-carrying one reads the counter.
                for _ in 0..9 {
                    t.dispatch(self.ports.alu, ready, 1, pmu);
                }
                let dispatch = t.dispatch(self.ports.int_mul, ready, 20, pmu);
                let done = dispatch + 25;
                t.complete(done);
                self.drain_uncore(pmu, bus);
                pmu.sync_cycles(dispatch);
                let ecx = state.gpr(Gpr::Rcx) as u32;
                let value = pmu.rdpmc(ecx).ok_or(CpuFault::BadMsr { addr: ecx })?;
                state.set_gpr(Gpr::Rax, value & 0xFFFF_FFFF);
                state.set_gpr(Gpr::Rdx, value >> 32);
                t.reg[Gpr::Rax.number() as usize] = done;
                t.reg[Gpr::Rdx.number() as usize] = done;
                Ok(Next::Seq)
            }
            Rdmsr => {
                let ready = t.reg[Gpr::Rcx.number() as usize];
                let dispatch = t.dispatch(self.ports.int_mul, ready, 100, pmu);
                let done = dispatch + 100;
                t.complete(done);
                self.drain_uncore(pmu, bus);
                pmu.sync_cycles(dispatch);
                let addr = state.gpr(Gpr::Rcx) as u32;
                let value = match pmu.rdmsr(addr) {
                    Some(v) => v,
                    None => bus.rdmsr(addr)?,
                };
                state.set_gpr(Gpr::Rax, value & 0xFFFF_FFFF);
                state.set_gpr(Gpr::Rdx, value >> 32);
                t.reg[Gpr::Rax.number() as usize] = done;
                t.reg[Gpr::Rdx.number() as usize] = done;
                Ok(Next::Seq)
            }
            Wrmsr => {
                let ready = t.reg[Gpr::Rcx.number() as usize]
                    .max(t.reg[Gpr::Rax.number() as usize])
                    .max(t.reg[Gpr::Rdx.number() as usize]);
                // WRMSR is serializing.
                let done = t.max_complete.max(ready).max(t.alloc_uop()) + 150;
                pmu.count(events::UOPS_ISSUED_ANY, 1);
                t.set_barrier(done);
                let addr = state.gpr(Gpr::Rcx) as u32;
                let value = (state.gpr(Gpr::Rdx) << 32) | (state.gpr(Gpr::Rax) & 0xFFFF_FFFF);
                pmu.sync_cycles(done);
                if !pmu.wrmsr(addr, value) {
                    bus.wrmsr(addr, value)?;
                }
                Ok(Next::Seq)
            }
            Wbinvd | Invd => {
                let done = t.max_complete.max(t.alloc_uop()) + 5000;
                pmu.count(events::UOPS_ISSUED_ANY, 1);
                t.set_barrier(done);
                bus.wbinvd();
                Ok(Next::Seq)
            }
            Clflush | Clflushopt => {
                let mem = inst
                    .dst()
                    .and_then(|o| o.as_mem())
                    .expect("clflush takes a memory operand");
                let addr_ready = addr_ready(t, &mem);
                let dispatch = t.dispatch(self.ports.store_addr, addr_ready, 6, pmu);
                t.dispatch(self.ports.store_data, addr_ready, 1, pmu);
                t.complete(dispatch + 2);
                let vaddr = exec::mem_vaddr(state, &mem);
                bus.clflush(vaddr);
                Ok(Next::Seq)
            }
            Prefetcht0 | Prefetcht1 | Prefetcht2 | Prefetchnta => {
                let mem = inst
                    .dst()
                    .and_then(|o| o.as_mem())
                    .expect("prefetch takes a memory operand");
                let ready = addr_ready(t, &mem);
                let dispatch = t.dispatch(self.ports.load, ready, 1, pmu);
                t.complete(dispatch + 1);
                let vaddr = exec::mem_vaddr(state, &mem);
                bus.prefetch(vaddr);
                Ok(Next::Seq)
            }
            Cli => {
                bus.set_interrupt_flag(false);
                t.dispatch(self.ports.alu, start_of(t), 1, pmu);
                Ok(Next::Seq)
            }
            Sti => {
                bus.set_interrupt_flag(true);
                t.dispatch(self.ports.alu, start_of(t), 1, pmu);
                Ok(Next::Seq)
            }
            Hlt | Swapgs | MovCr3 | Invlpg => {
                // Modeled as serializing, fixed-cost kernel operations.
                let done = t.max_complete.max(t.alloc_uop()) + 100;
                pmu.count(events::UOPS_ISSUED_ANY, 1);
                t.set_barrier(done);
                if m == Invlpg {
                    // TLBs are not modeled; the flush is a timing event only.
                }
                Ok(Next::Seq)
            }
            Rdrand | Rdseed => {
                let u = entry.uops.slice(&body.uops)[0];
                let dispatch = t.dispatch(u.ports, start_of(t), u.recip, pmu);
                let done = dispatch + u.latency;
                t.complete(done);
                let value: u64 = self.rng.gen();
                if let Some(Operand::Gpr(g)) = inst.dst() {
                    state.set_gpr_part(*g, value);
                    t.reg[g.reg.number() as usize] = done;
                }
                state.set_flag(nanobench_x86::reg::Flag::Cf, true);
                Ok(Next::Seq)
            }
            NbPause => {
                // Magic marker: pause counting (§III-I). Zero architectural
                // cost beyond the sync point.
                pmu.sync_cycles(t.now());
                pmu.set_counting(false);
                Ok(Next::Seq)
            }
            NbResume => {
                pmu.sync_cycles(t.now());
                pmu.set_counting(true);
                Ok(Next::Seq)
            }
            Push => {
                let data_ready = match inst.dst() {
                    Some(Operand::Gpr(g)) => t.reg[g.reg.number() as usize],
                    _ => start_of(t),
                };
                let rsp_ready = t.reg[Gpr::Rsp.number() as usize];
                let rsp_done = t.dispatch(self.ports.alu, rsp_ready, 1, pmu) + 1;
                t.reg[Gpr::Rsp.number() as usize] = rsp_done;
                t.dispatch(self.ports.store_addr, rsp_done, 1, pmu);
                t.dispatch(self.ports.store_data, data_ready, 1, pmu);
                t.complete(rsp_done);
                let vaddr = state.gpr(Gpr::Rsp).wrapping_sub(8);
                let res = bus.access(vaddr, true)?;
                Engine::count_store_coherence(pmu, &res);
                exec::execute(inst, state, bus)
            }
            Pop => {
                let rsp_ready = t.reg[Gpr::Rsp.number() as usize];
                let vaddr = state.gpr(Gpr::Rsp);
                let load_done = self.timed_load(t, vaddr, rsp_ready, false, pmu, bus)?;
                let rsp_done = t.dispatch(self.ports.alu, rsp_ready, 1, pmu) + 1;
                t.reg[Gpr::Rsp.number() as usize] = rsp_done;
                if let Some(Operand::Gpr(g)) = inst.dst() {
                    t.reg[g.reg.number() as usize] = load_done;
                }
                t.complete(load_done);
                exec::execute(inst, state, bus)
            }
            other => unreachable!("mnemonic {other} is not an engine special"),
        }
    }

    /// `is_write` marks the load half of an RMW access: the cache walk
    /// runs write coherence (RFO) and the RFO is counted here, since the
    /// covered store never touches the bus.
    fn timed_load(
        &mut self,
        t: &mut Timing,
        vaddr: u64,
        addr_ready: u64,
        is_write: bool,
        pmu: &mut Pmu,
        bus: &mut dyn Bus,
    ) -> Result<u64, CpuFault> {
        let res = bus.access(vaddr, is_write)?;
        if is_write {
            Engine::count_store_coherence(pmu, &res);
        }
        self.drain_uncore(pmu, bus);
        match res.level {
            HitLevel::L1 => pmu.count(events::MEM_LOAD_L1_HIT, 1),
            HitLevel::L2 => {
                pmu.count(events::MEM_LOAD_L1_MISS, 1);
                pmu.count(events::MEM_LOAD_L2_HIT, 1);
                pmu.count(events::L2_RQSTS_REFERENCES, 1);
            }
            HitLevel::L3 => {
                pmu.count(events::MEM_LOAD_L1_MISS, 1);
                pmu.count(events::MEM_LOAD_L2_MISS, 1);
                pmu.count(events::MEM_LOAD_L3_HIT, 1);
                pmu.count(events::L2_RQSTS_REFERENCES, 1);
            }
            HitLevel::Memory => {
                pmu.count(events::MEM_LOAD_L1_MISS, 1);
                pmu.count(events::MEM_LOAD_L2_MISS, 1);
                pmu.count(events::MEM_LOAD_L3_MISS, 1);
                pmu.count(events::L2_RQSTS_REFERENCES, 1);
            }
        }
        match res.snoop {
            SnoopResult::Miss => {}
            SnoopResult::Hit => pmu.count(events::MEM_LOAD_XSNP_HIT, 1),
            SnoopResult::HitM => pmu.count(events::MEM_LOAD_XSNP_HITM, 1),
        }
        let dispatch = t.dispatch(self.ports.load, addr_ready, 1, pmu);
        let done = dispatch + res.latency;
        t.complete(done);
        Ok(done)
    }

    /// PMU accounting for a store's coherence side effects: a store whose
    /// access had to snoop other cores (invalidate their copies or upgrade
    /// a shared line) is a demand RFO through the uncore. On a 1-core
    /// machine the snoop is always `Miss` and nothing is counted.
    fn count_store_coherence(pmu: &mut Pmu, res: &MemAccessResult) {
        if res.snoop != SnoopResult::Miss || res.invalidated > 0 {
            pmu.count(events::OFFCORE_DEMAND_RFO, 1);
        }
    }

    fn drain_uncore(&mut self, pmu: &mut Pmu, bus: &mut dyn Bus) {
        self.uncore_buf.clear();
        bus.drain_uncore_lookups(&mut self.uncore_buf);
        for (slice, n) in self.uncore_buf.iter().enumerate() {
            if *n > 0 {
                pmu.count_uncore(slice, *n);
            }
        }
    }
}

fn start_of(t: &Timing) -> u64 {
    t.barrier
}

fn addr_ready(t: &Timing, mem: &MemRef) -> u64 {
    let mut ready = t.barrier;
    if let Some(b) = mem.base {
        ready = ready.max(t.reg[b.number() as usize]);
    }
    if let Some((i, _)) = mem.index {
        ready = ready.max(t.reg[i.number() as usize]);
    }
    ready
}
