//! The out-of-order timing engine.
//!
//! Functional-first, timing-directed: instructions execute architecturally
//! in program order (via [`crate::exec`]) while a dataflow model computes
//! cycle timing — operand-ready times per register/flag, per-port
//! availability, a four-wide front end, LFENCE dispatch serialization
//! (§IV-A1), branch prediction with persistent state (§III-H), AVX warm-up
//! (§III-H), and user-mode interrupt injection (§III-D / §IV-A2).
//!
//! The interpreter runs over a [`DecodedProgram`] (see [`crate::plan`]):
//! all per-instruction analysis — descriptor lookups, port-class
//! resolution, memory-operand classification, dependency extraction,
//! *and* step-kind dispatch — is hoisted into a one-shot decode pass. The
//! steady-state loop is an indirect call through a per-bus-type dispatch
//! table ([`Handlers`]) indexed by the plan's precomputed handler byte:
//! no branching on instruction kind, no heap allocation, and (for a
//! concrete [`Bus`] implementation) no virtual calls — the whole
//! interpreter monomorphizes over the bus type. PMU increments accumulate
//! in a per-context [`PmuBatch`] and flush only at architectural
//! observation points, and runs of register-only ALU instructions step as
//! fused superblocks (see [`crate::plan`] for the fusion rules).
//! [`Engine::run`] keeps the legacy instruction-slice signature by
//! building a transient plan.

use crate::bpred::BranchPredictor;
use crate::bus::{Bus, CpuFault};
use crate::exec::{self, Next};
use crate::plan::{handler, meta, DecodedProgram, FastCc, FastOp, FastSrc, PlanBody};
use crate::port::{MicroArch, PortConfig, PortSet};
use crate::state::CpuState;
use nanobench_cache::hierarchy::{HitLevel, MemAccessResult, SnoopResult};
use nanobench_pmu::event::events;
use nanobench_pmu::Pmu;
use nanobench_x86::inst::{Instruction, Mnemonic};
use nanobench_x86::operand::{MemRef, Operand};
use nanobench_x86::reg::{Flag, Gpr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;

use crate::descriptor::DescriptorTable;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Front-end bubble after a mispredicted branch.
    pub mispredict_penalty: u64,
    /// Safety limit on retired instructions per run.
    pub max_instructions: u64,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            mispredict_penalty: 15,
            max_instructions: 200_000_000,
        }
    }
}

/// Result of one program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions retired.
    pub instructions: u64,
    /// µops issued.
    pub uops: u64,
    /// Cycles elapsed in this run.
    pub cycles: u64,
    /// Absolute end cycle (feed as `start_cycle` of the next run so the
    /// PMU's cycle counters stay monotonic).
    pub end_cycle: u64,
}

/// Per-run dataflow timing state.
#[derive(Debug)]
struct Timing {
    reg: [u64; 16],
    vreg: [u64; 32],
    flags: u64,
    port_free: [u64; 8],
    alloc_cycle: u64,
    alloc_slots: u64,
    issue_width: u64,
    barrier: u64,
    max_complete: u64,
    rr: usize,
}

impl Timing {
    fn new(start: u64, issue_width: u64) -> Timing {
        Timing {
            reg: [start; 16],
            vreg: [start; 32],
            flags: start,
            port_free: [start; 8],
            alloc_cycle: start,
            alloc_slots: 0,
            issue_width,
            barrier: start,
            max_complete: start,
            rr: 0,
        }
    }

    fn now(&self) -> u64 {
        self.max_complete.max(self.alloc_cycle)
    }

    fn alloc_uop(&mut self) -> u64 {
        if self.alloc_slots >= self.issue_width {
            self.alloc_cycle += 1;
            self.alloc_slots = 0;
        }
        self.alloc_slots += 1;
        self.alloc_cycle
    }

    /// Issues and dispatches one µop; returns its dispatch cycle.
    fn dispatch(&mut self, ports: PortSet, ready: u64, recip: u64, batch: &mut PmuBatch) -> u64 {
        let alloc = self.alloc_uop();
        let ready = ready.max(self.barrier).max(alloc);
        batch.uops_issued += 1;
        if ports.is_empty() {
            self.max_complete = self.max_complete.max(ready);
            return ready;
        }
        let n = ports.len();
        if n == 1 {
            // Single-candidate port (e.g. the store-data port): the
            // round-robin scan below degenerates to this.
            let p = ports.0.trailing_zeros() as usize;
            let t = self.port_free[p].max(ready);
            self.rr = self.rr.wrapping_add(1);
            self.port_free[p] = t + recip.max(1);
            batch.port[p] += 1;
            return t;
        }
        // Scan the candidate ports in round-robin order starting at
        // position `rr % n` without materializing a list: the ports at
        // positions `start..n` are considered before those at `0..start`,
        // and the first port with the minimal free time wins — port
        // selection is identical to rotating an explicit candidate list.
        // Every real port set has a power-of-two candidate count, so the
        // rotation mask avoids a hardware divide on the dispatch path.
        let start = if n.is_power_of_two() {
            self.rr & (n - 1)
        } else {
            self.rr % n
        };
        let mut tail = (0u8, u64::MAX);
        let mut head = (0u8, u64::MAX);
        let mut pos = 0usize;
        let mut bits = ports.0;
        while bits != 0 {
            let p = bits.trailing_zeros() as u8;
            bits &= bits - 1;
            let t = self.port_free[p as usize].max(ready);
            if pos >= start {
                if t < tail.1 {
                    tail = (p, t);
                }
            } else if t < head.1 {
                head = (p, t);
            }
            pos += 1;
        }
        let (best_port, best_time) = if head.1 < tail.1 { head } else { tail };
        self.rr = self.rr.wrapping_add(1);
        self.port_free[best_port as usize] = best_time + recip.max(1);
        batch.port[best_port as usize] += 1;
        best_time
    }

    fn complete(&mut self, cycle: u64) {
        self.max_complete = self.max_complete.max(cycle);
    }

    /// Serialization point: no later µop dispatches before `cycle`, and the
    /// front end resumes allocation there (a stalled allocator cannot run
    /// arbitrarily far behind execution).
    fn set_barrier(&mut self, cycle: u64) {
        self.barrier = cycle;
        self.complete(cycle);
        if self.alloc_cycle < cycle {
            self.alloc_cycle = cycle;
            self.alloc_slots = 0;
        }
    }
}

/// Deferred PMU increments.
///
/// The hot loop accumulates event counts here and flushes them in bulk at
/// architectural observation points: counter reads/writes (`RDPMC`,
/// `RDMSR`, `WRMSR`), counting toggles (the magic pause/resume markers),
/// the public [`Engine::step_plan`] boundary, and run completion. Counter
/// addition commutes and [`Pmu`] masks to the 48-bit width only at
/// reads/writes, so batched delivery is bit-identical to per-µop delivery
/// — including wraparound past 2^48 mid-batch — *provided* the PMU's
/// counting gate does not change while a batch is open. Every
/// `set_counting` toggle is therefore preceded by a flush.
#[derive(Debug, Default)]
struct PmuBatch {
    retired: u64,
    uops_issued: u64,
    port: [u64; 8],
    l1_hit: u64,
    l1_miss: u64,
    l2_hit: u64,
    l2_miss: u64,
    l3_hit: u64,
    l3_miss: u64,
    l2_refs: u64,
    xsnp_hit: u64,
    xsnp_hitm: u64,
    br_retired: u64,
    br_misp: u64,
    rfo: u64,
}

impl PmuBatch {
    /// Delivers all accumulated counts to the PMU and empties the batch.
    fn flush(&mut self, pmu: &mut Pmu) {
        if self.retired > 0 {
            pmu.retire_instructions(self.retired);
        }
        if self.uops_issued > 0 {
            pmu.count(events::UOPS_ISSUED_ANY, self.uops_issued);
        }
        for p in 0..8u8 {
            let n = self.port[p as usize];
            if n > 0 {
                pmu.count(events::uops_dispatched_port(p), n);
            }
        }
        if self.l1_hit > 0 {
            pmu.count(events::MEM_LOAD_L1_HIT, self.l1_hit);
        }
        if self.l1_miss > 0 {
            pmu.count(events::MEM_LOAD_L1_MISS, self.l1_miss);
        }
        if self.l2_hit > 0 {
            pmu.count(events::MEM_LOAD_L2_HIT, self.l2_hit);
        }
        if self.l2_miss > 0 {
            pmu.count(events::MEM_LOAD_L2_MISS, self.l2_miss);
        }
        if self.l3_hit > 0 {
            pmu.count(events::MEM_LOAD_L3_HIT, self.l3_hit);
        }
        if self.l3_miss > 0 {
            pmu.count(events::MEM_LOAD_L3_MISS, self.l3_miss);
        }
        if self.l2_refs > 0 {
            pmu.count(events::L2_RQSTS_REFERENCES, self.l2_refs);
        }
        if self.xsnp_hit > 0 {
            pmu.count(events::MEM_LOAD_XSNP_HIT, self.xsnp_hit);
        }
        if self.xsnp_hitm > 0 {
            pmu.count(events::MEM_LOAD_XSNP_HITM, self.xsnp_hitm);
        }
        if self.br_retired > 0 {
            pmu.count(events::BR_INST_RETIRED, self.br_retired);
        }
        if self.br_misp > 0 {
            pmu.count(events::BR_MISP_RETIRED, self.br_misp);
        }
        if self.rfo > 0 {
            pmu.count(events::OFFCORE_DEMAND_RFO, self.rfo);
        }
        *self = PmuBatch::default();
    }

    /// Accounting for a store's coherence side effects: a store whose
    /// access had to snoop other cores (invalidate their copies or upgrade
    /// a shared line) is a demand RFO through the uncore. On a 1-core
    /// machine the snoop is always `Miss` and nothing is counted.
    fn count_store_coherence(&mut self, res: &MemAccessResult) {
        if res.snoop != SnoopResult::Miss || res.invalidated > 0 {
            self.rfo += 1;
        }
    }

    /// Cache-level and snoop accounting for one load.
    fn record_load(&mut self, res: &MemAccessResult) {
        match res.level {
            HitLevel::L1 => self.l1_hit += 1,
            HitLevel::L2 => {
                self.l1_miss += 1;
                self.l2_hit += 1;
                self.l2_refs += 1;
            }
            HitLevel::L3 => {
                self.l1_miss += 1;
                self.l2_miss += 1;
                self.l3_hit += 1;
                self.l2_refs += 1;
            }
            HitLevel::Memory => {
                self.l1_miss += 1;
                self.l2_miss += 1;
                self.l3_miss += 1;
                self.l2_refs += 1;
            }
        }
        match res.snoop {
            SnoopResult::Miss => {}
            SnoopResult::Hit => self.xsnp_hit += 1,
            SnoopResult::HitM => self.xsnp_hitm += 1,
        }
    }
}

/// The in-flight execution state of one program on one core.
///
/// A context is created by [`Engine::begin_plan`], advanced one
/// instruction (or fused superblock) at a time by [`Engine::step_plan`],
/// and turned into [`RunStats`] by [`Engine::finish_plan`]. Keeping it
/// outside the engine lets a multi-core machine interleave several cores
/// deterministically: the scheduler steps whichever core's context has the
/// smallest local cycle. [`Engine::run_plan`] is exactly a loop over these
/// three calls, so stepped execution is bit-identical to a monolithic run.
#[derive(Debug)]
pub struct RunContext {
    t: Timing,
    pc: usize,
    instructions: u64,
    uops: u64,
    start_cycle: u64,
    batch: PmuBatch,
    fuse: bool,
}

impl RunContext {
    /// The context's current local cycle (the scheduling key for
    /// round-robin interleaving).
    pub fn now(&self) -> u64 {
        self.t.now()
    }

    /// Instructions retired so far in this run.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Rewinds the program counter so the plan restarts from its first
    /// instruction; timing and counters carry over. This is how co-runner
    /// programs loop for as long as the measured core runs.
    pub fn restart(&mut self) {
        self.pc = 0;
    }

    /// Turns off superblock fusion for this context: every dispatched step
    /// executes exactly one instruction. Multi-core interleaving relies on
    /// this — the scheduler alternates cores between steps, so a fused
    /// burst of loads/stores would let one core's memory traffic skip past
    /// the other cores' coherence responses instead of contending with
    /// them instruction by instruction.
    pub fn disable_fusion(&mut self) {
        self.fuse = false;
    }
}

/// Everything a step handler touches besides the engine itself: the plan,
/// its instructions, the current program counter, and mutable views of the
/// timing state, architectural state, PMU (plus its batch), and bus.
struct StepArgs<'a, B: Bus + ?Sized> {
    body: &'a PlanBody,
    insts: &'a [Instruction],
    pc: usize,
    /// Whether superblock fusion is active for this context (see
    /// [`RunContext::disable_fusion`]).
    fuse: bool,
    t: &'a mut Timing,
    state: &'a mut CpuState,
    pmu: &'a mut Pmu,
    batch: &'a mut PmuBatch,
    bus: &'a mut B,
}

/// What one dispatched step did: where control flows next, how many
/// consecutive plan entries it consumed (> 1 only for fused ALU
/// superblocks), how many of those retire architecturally, and — for a
/// fault in the middle of a superblock — the fault to raise *after* the
/// completed prefix is accounted.
struct StepOutcome {
    next: Next,
    consumed: u32,
    retired: u32,
    fault: Option<CpuFault>,
}

impl StepOutcome {
    /// A single-entry step.
    fn one(next: Next, retires: bool) -> StepOutcome {
        StepOutcome {
            next,
            consumed: 1,
            retired: u32::from(retires),
            fault: None,
        }
    }
}

type StepFn<B> = fn(&mut Engine, &mut StepArgs<'_, B>) -> Result<StepOutcome, CpuFault>;

/// The dispatch table, monomorphized per bus type.
///
/// Generic statics are not a thing in Rust, but an associated `const` on a
/// generic carrier struct is: `Handlers::<B>::TABLE` materializes one
/// table of concrete function pointers per bus type the engine runs
/// against, so the steady-state loop is `TABLE[entry.handler](...)` with
/// every handler fully monomorphized over `B`.
struct Handlers<B: Bus + ?Sized>(PhantomData<fn(&mut B)>);

impl<B: Bus + ?Sized> Handlers<B> {
    /// Order must match the index constants in [`handler`].
    const TABLE: [StepFn<B>; handler::COUNT] = [
        step_generic::<B>,
        step_block::<B>,         // ALU_BLOCK
        step_block::<B>,         // LOAD
        step_block::<B>,         // STORE
        step_block::<B>,         // RMW
        step_branch::<B, true>,  // COND_BRANCH
        step_branch::<B, false>, // JUMP
        step_nop::<B>,
        step_lfence::<B>,
        step_fence::<B>,
        step_cpuid::<B>,
        step_rdtsc::<B>,
        step_rdpmc::<B>,
        step_rdmsr::<B>,
        step_wrmsr::<B>,
        step_wbinvd::<B>,
        step_clflush::<B>,
        step_prefetch::<B>,
        step_cli::<B>,
        step_sti::<B>,
        step_serialize::<B>,
        step_rdrand::<B>,
        step_nb_pause::<B>,
        step_nb_resume::<B>,
        step_push::<B>,
        step_pop::<B>,
    ];
}

/// The simulated core's execution engine.
///
/// Branch-predictor and AVX warm-up state persist across runs, which is
/// what gives nanoBench's warm-up runs (§III-H) their effect.
#[derive(Debug)]
pub struct Engine {
    uarch: MicroArch,
    table: DescriptorTable,
    ports: PortConfig,
    config: EngineConfig,
    /// Branch predictor (persistent; public so tools can reset it).
    pub bpred: BranchPredictor,
    rng: SmallRng,
    avx_cold: bool,
    non_avx_streak: u64,
    avx_penalty_uops: u64,
    /// Scratch for uncore-lookup drains (reused so the hot loop does not
    /// allocate).
    uncore_buf: Vec<u64>,
}

/// Instructions executed since the last AVX µop before the upper vector
/// unit powers down.
const AVX_IDLE_LIMIT: u64 = 50_000;
/// Number of AVX µops that run slowly after a cold start.
const AVX_WARMUP_UOPS: u64 = 150;
/// Latency multiplier for cold AVX µops.
const AVX_COLD_FACTOR: u64 = 4;

impl Engine {
    /// Creates an engine for a microarchitecture. `seed` drives the
    /// CPUID-latency jitter and RDRAND values.
    pub fn new(uarch: MicroArch, seed: u64) -> Engine {
        Engine {
            uarch,
            table: DescriptorTable::for_uarch(uarch),
            ports: PortConfig::for_uarch(uarch),
            config: EngineConfig::default(),
            bpred: BranchPredictor::new(),
            rng: SmallRng::seed_from_u64(seed),
            avx_cold: true,
            non_avx_streak: 0,
            avx_penalty_uops: 0,
            uncore_buf: Vec::new(),
        }
    }

    /// Creates an engine with custom tuning.
    pub fn with_config(uarch: MicroArch, seed: u64, config: EngineConfig) -> Engine {
        Engine {
            config,
            ..Engine::new(uarch, seed)
        }
    }

    /// The microarchitecture being simulated.
    pub fn uarch(&self) -> MicroArch {
        self.uarch
    }

    /// The descriptor table (ground truth for case study I).
    pub fn table(&self) -> &DescriptorTable {
        &self.table
    }

    /// Restores the just-constructed state for `seed` without touching the
    /// descriptor table or port configuration: forgets all branch-predictor
    /// history, rewinds the jitter/RDRAND random stream, and powers the
    /// upper vector unit back down (AVX warm-up state, §III-H).
    pub fn reset_with_seed(&mut self, seed: u64) {
        self.bpred.reset();
        self.rng = SmallRng::seed_from_u64(seed);
        self.avx_cold = true;
        self.non_avx_streak = 0;
        self.avx_penalty_uops = 0;
    }

    /// Decodes `program` into a reusable execution plan for this engine's
    /// microarchitecture (descriptor table and port configuration). The
    /// plan holds no machine state and can be replayed any number of
    /// times via [`Engine::run_plan`].
    pub fn decode(&self, program: &[Instruction]) -> DecodedProgram {
        DecodedProgram::new(program, &self.table)
    }

    /// Runs `program` to completion.
    ///
    /// Compatibility wrapper over the plan interpreter: decodes a
    /// transient plan and discards it. Callers that run the same program
    /// repeatedly should [`Engine::decode`] once and use
    /// [`Engine::run_plan`].
    ///
    /// `start_cycle` is the absolute cycle the run begins at; pass the
    /// previous run's [`RunStats::end_cycle`] to keep PMU time monotonic.
    ///
    /// # Errors
    ///
    /// Returns [`CpuFault`] on privilege violations, page faults, divide
    /// errors, or when the instruction limit is exceeded.
    pub fn run<B: Bus + ?Sized>(
        &mut self,
        program: &[Instruction],
        state: &mut CpuState,
        pmu: &mut Pmu,
        bus: &mut B,
        start_cycle: u64,
    ) -> Result<RunStats, CpuFault> {
        let body = PlanBody::build(program, &self.table);
        self.run_decoded(&body, program, state, pmu, bus, start_cycle)
    }

    /// Runs a pre-decoded plan to completion. Bit-identical to
    /// [`Engine::run`] on the plan's program, without the per-run decode.
    ///
    /// # Errors
    ///
    /// Returns [`CpuFault`] on privilege violations, page faults, divide
    /// errors, or when the instruction limit is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if the plan was decoded for a different microarchitecture —
    /// its port sets and latencies would be silently wrong on this
    /// engine. (One enum compare per run, not per instruction.)
    pub fn run_plan<B: Bus + ?Sized>(
        &mut self,
        plan: &DecodedProgram,
        state: &mut CpuState,
        pmu: &mut Pmu,
        bus: &mut B,
        start_cycle: u64,
    ) -> Result<RunStats, CpuFault> {
        assert_eq!(
            plan.uarch(),
            self.uarch,
            "plan decoded for a different microarchitecture"
        );
        self.run_decoded(
            plan.body(),
            plan.instructions(),
            state,
            pmu,
            bus,
            start_cycle,
        )
    }

    /// Creates a fresh execution context for a run beginning at
    /// `start_cycle` (pass the previous run's [`RunStats::end_cycle`]).
    pub fn begin_plan(&self, start_cycle: u64) -> RunContext {
        RunContext {
            t: Timing::new(start_cycle, self.uarch.issue_width()),
            pc: 0,
            instructions: 0,
            uops: 0,
            start_cycle,
            batch: PmuBatch::default(),
            fuse: true,
        }
    }

    /// Advances a context by one dispatched step — one instruction, or one
    /// fused run of register-only ALU instructions. Returns `Ok(true)` if
    /// anything was executed and `Ok(false)` if the program had already
    /// completed (the context is unchanged in that case).
    ///
    /// The context's pending PMU batch is flushed before returning, so the
    /// PMU is architecturally up to date between steps (the multi-core
    /// interleave loop reads it).
    ///
    /// # Errors
    ///
    /// Returns [`CpuFault`] exactly as [`Engine::run_plan`] would at the
    /// same point in the program.
    pub fn step_plan<B: Bus + ?Sized>(
        &mut self,
        ctx: &mut RunContext,
        plan: &DecodedProgram,
        state: &mut CpuState,
        pmu: &mut Pmu,
        bus: &mut B,
    ) -> Result<bool, CpuFault> {
        debug_assert_eq!(
            plan.uarch(),
            self.uarch,
            "plan decoded for a different microarchitecture"
        );
        let r = self.step_decoded(ctx, plan.body(), plan.instructions(), state, pmu, bus);
        ctx.batch.flush(pmu);
        r
    }

    /// Converts a completed (or abandoned) context into [`RunStats`],
    /// flushing its pending PMU batch and syncing the PMU's cycle counters
    /// to the context's end cycle.
    pub fn finish_plan(&self, ctx: &mut RunContext, pmu: &mut Pmu) -> RunStats {
        ctx.batch.flush(pmu);
        let end = ctx.t.now();
        pmu.sync_cycles(end);
        RunStats {
            instructions: ctx.instructions,
            uops: ctx.uops,
            cycles: end - ctx.start_cycle,
            end_cycle: end,
        }
    }

    fn step_decoded<B: Bus + ?Sized>(
        &mut self,
        ctx: &mut RunContext,
        body: &PlanBody,
        insts: &[Instruction],
        state: &mut CpuState,
        pmu: &mut Pmu,
        bus: &mut B,
    ) -> Result<bool, CpuFault> {
        if ctx.pc >= insts.len() {
            return Ok(false);
        }
        if ctx.instructions >= self.config.max_instructions {
            return Err(CpuFault::RunawayExecution);
        }
        if let Some(intr) = bus.poll_interrupt(ctx.t.now()) {
            // The handler runs in the middle of the benchmark: it
            // consumes cycles, retires instructions, and perturbs the
            // counters (§IV-A2; the kernel version avoids this).
            let resume = ctx.t.now() + intr.cycles;
            ctx.t.alloc_cycle = resume;
            ctx.t.barrier = resume;
            ctx.t.complete(resume);
            ctx.batch.retired += intr.instructions;
            ctx.batch.uops_issued += intr.uops;
        }
        let hot = &body.hot[ctx.pc];
        if hot.has(meta::PRIVILEGED) && !bus.is_kernel() {
            return Err(CpuFault::PrivilegedInstruction(insts[ctx.pc].mnemonic));
        }
        // Checked-interpreter mode: debug builds re-assert the verifier's
        // facts at the dispatch site (release trusts the verified plan).
        debug_assert!(
            (hot.handler as usize) < Handlers::<B>::TABLE.len(),
            "plan handler index {} out of dispatch-table range",
            hot.handler
        );
        debug_assert_eq!(
            hot.has(meta::PRIVILEGED),
            insts[ctx.pc].mnemonic.is_privileged(),
            "plan privilege bit disagrees with the instruction at {}",
            ctx.pc
        );
        let step = Handlers::<B>::TABLE[hot.handler as usize];
        let mut args = StepArgs {
            body,
            insts,
            pc: ctx.pc,
            fuse: ctx.fuse,
            t: &mut ctx.t,
            state,
            pmu,
            batch: &mut ctx.batch,
            bus,
        };
        let out = step(self, &mut args)?;
        ctx.instructions += u64::from(out.consumed);
        // Approximate per-instruction accounting for stats; the magic
        // pause/resume markers are byte sequences consumed by the tool,
        // not instructions the benchmark retires (§III-I), so `retired`
        // may be smaller.
        ctx.uops += u64::from(out.consumed);
        ctx.batch.retired += u64::from(out.retired);
        if let Some(f) = out.fault {
            return Err(f);
        }
        ctx.pc = match out.next {
            Next::Seq => ctx.pc + out.consumed as usize,
            Next::Jump(target) => target,
        };
        Ok(true)
    }

    fn run_decoded<B: Bus + ?Sized>(
        &mut self,
        body: &PlanBody,
        insts: &[Instruction],
        state: &mut CpuState,
        pmu: &mut Pmu,
        bus: &mut B,
        start_cycle: u64,
    ) -> Result<RunStats, CpuFault> {
        let mut ctx = self.begin_plan(start_cycle);
        loop {
            match self.step_decoded(&mut ctx, body, insts, state, pmu, bus) {
                Ok(true) => {}
                Ok(false) => return Ok(self.finish_plan(&mut ctx, pmu)),
                Err(f) => {
                    ctx.batch.flush(pmu);
                    return Err(f);
                }
            }
        }
    }

    /// AVX warm-up bookkeeping; returns the latency multiplier for this
    /// instruction's µops.
    fn avx_factor(&mut self, is_avx: bool) -> u64 {
        if is_avx {
            self.non_avx_streak = 0;
            if self.avx_cold {
                self.avx_cold = false;
                self.avx_penalty_uops = AVX_WARMUP_UOPS;
            }
            if self.avx_penalty_uops > 0 {
                self.avx_penalty_uops -= 1;
                return AVX_COLD_FACTOR;
            }
        } else {
            self.non_avx_streak += 1;
            if self.non_avx_streak > AVX_IDLE_LIMIT {
                self.avx_cold = true;
            }
        }
        1
    }

    /// The non-AVX half of [`Engine::avx_factor`], for fast handlers whose
    /// shapes are never AVX (the latency factor is statically 1).
    #[inline]
    fn note_non_avx(&mut self) {
        self.note_non_avx_n(1);
    }

    /// Batched [`Engine::note_non_avx`] for a fused superblock: `n`
    /// consecutive non-AVX instructions. Equivalent to `n` single calls —
    /// the streak only grows within a block and nothing reads `avx_cold`
    /// until the next AVX instruction, which can never be inside a block.
    #[inline]
    fn note_non_avx_n(&mut self, n: u64) {
        self.non_avx_streak += n;
        if self.non_avx_streak > AVX_IDLE_LIMIT {
            self.avx_cold = true;
        }
    }

    /// `is_write` marks the load half of an RMW access: the cache walk
    /// runs write coherence (RFO) and the RFO is counted here, since the
    /// covered store never touches the bus.
    #[allow(clippy::too_many_arguments)] // timing + batch + bus is the full hot-path context
    fn timed_load<B: Bus + ?Sized>(
        &mut self,
        t: &mut Timing,
        vaddr: u64,
        addr_ready: u64,
        is_write: bool,
        batch: &mut PmuBatch,
        pmu: &mut Pmu,
        bus: &mut B,
    ) -> Result<u64, CpuFault> {
        let res = bus.access(vaddr, is_write)?;
        if is_write {
            batch.count_store_coherence(&res);
        }
        if res.slice.is_some() {
            // Only accesses that reached the L3 generate uncore lookups;
            // private-cache hits leave the C-Box counters untouched, and
            // the architectural read points (RDPMC/RDMSR) drain anyway.
            self.drain_uncore(pmu, bus);
        }
        batch.record_load(&res);
        let dispatch = t.dispatch(self.ports.load, addr_ready, 1, batch);
        let done = dispatch + res.latency;
        t.complete(done);
        Ok(done)
    }

    /// [`Engine::timed_load`] fused with the semantic quadword read of the
    /// same address: one translation and one hierarchy walk per load on
    /// buses that override [`Bus::load_fused`]. Returns the completion
    /// cycle and the loaded value.
    #[allow(clippy::too_many_arguments)] // timing + batch + bus is the full hot-path context
    #[inline]
    fn timed_load_fused<B: Bus + ?Sized>(
        &mut self,
        t: &mut Timing,
        vaddr: u64,
        addr_ready: u64,
        is_write: bool,
        batch: &mut PmuBatch,
        pmu: &mut Pmu,
        bus: &mut B,
    ) -> Result<(u64, u64), CpuFault> {
        let (res, value) = bus.load_fused(vaddr, 8, is_write)?;
        if is_write {
            batch.count_store_coherence(&res);
        }
        if res.slice.is_some() {
            self.drain_uncore(pmu, bus);
        }
        batch.record_load(&res);
        let dispatch = t.dispatch(self.ports.load, addr_ready, 1, batch);
        let done = dispatch + res.latency;
        t.complete(done);
        Ok((done, value))
    }

    fn drain_uncore<B: Bus + ?Sized>(&mut self, pmu: &mut Pmu, bus: &mut B) {
        self.uncore_buf.clear();
        bus.drain_uncore_lookups(&mut self.uncore_buf);
        for (slice, n) in self.uncore_buf.iter().enumerate() {
            if *n > 0 {
                // The hierarchy and the PMU are built from the same
                // slice count, so a mismatch is a machine-construction
                // bug; fail loudly in every profile rather than
                // misattribute or drop slice counts.
                pmu.count_uncore(slice, *n)
                    .expect("hierarchy slice count matches the PMU's uncore counters");
            }
        }
    }
}

fn start_of(t: &Timing) -> u64 {
    t.barrier
}

fn addr_ready(t: &Timing, mem: &MemRef) -> u64 {
    let mut ready = t.barrier;
    if let Some(b) = mem.base {
        ready = ready.max(t.reg[b.number() as usize]);
    }
    if let Some((i, _)) = mem.index {
        ready = ready.max(t.reg[i.number() as usize]);
    }
    ready
}

// ---- step handlers --------------------------------------------------------
//
// One function per dispatch-table slot (see `plan::handler` for the index
// assignment). Each advances the timing model and then executes the
// instruction architecturally; the caller accounts `StepOutcome`.

/// Full dataflow path: correct for every non-special instruction. The only
/// handler that reads the cold entry arena (vector dependencies) or the
/// AVX warm-up factor.
fn step_generic<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    let body = a.body;
    let hot = &body.hot[a.pc];
    let cold = &body.cold[a.pc];
    let inst = &a.insts[a.pc];
    let factor = eng.avx_factor(hot.has(meta::IS_AVX));

    // Input readiness (registers, vector registers, flags).
    let mut input_ready = start_of(a.t);
    for &r in hot.in_regs.slice(&body.regs) {
        input_ready = input_ready.max(a.t.reg[r as usize]);
    }
    for &v in cold.in_vregs.slice(&body.regs) {
        input_ready = input_ready.max(a.t.vreg[v as usize]);
    }
    if hot.has(meta::FLAGS_READ) {
        input_ready = input_ready.max(a.t.flags);
    }

    // Loads. A load that covers an RMW store is the instruction's only
    // cache access (the store below skips the bus), so it must perform
    // the write side of the coherence protocol — read-for-ownership —
    // or read-modify-writes would never invalidate remote copies.
    let writes = hot.writes.slice(&body.writes);
    let mut load_done = 0u64;
    for mem in hot.reads.slice(&body.reads) {
        let a_ready = addr_ready(a.t, mem);
        let vaddr = exec::mem_vaddr(a.state, mem);
        let rmw = writes.iter().any(|w| w.covered_by_read && w.mem == *mem);
        let done = eng.timed_load(a.t, vaddr, a_ready, rmw, a.batch, a.pmu, a.bus)?;
        load_done = load_done.max(done);
    }
    let compute_ready = input_ready.max(load_done);

    // Compute µops.
    let uops = hot.uops.slice(&body.uops);
    let mut result_ready = if uops.is_empty() {
        if load_done > 0 {
            load_done
        } else {
            compute_ready
        }
    } else {
        compute_ready
    };
    for (i, u) in uops.iter().enumerate() {
        let dispatch = a.t.dispatch(u.ports, compute_ready, u.recip, a.batch);
        let done = dispatch + u.latency * factor;
        a.t.complete(done);
        if i == 0 {
            result_ready = done.max(load_done);
        }
    }

    // Stores.
    for store in writes {
        let a_ready = addr_ready(a.t, &store.mem);
        a.t.dispatch(eng.ports.store_addr, a_ready, 1, a.batch);
        a.t.dispatch(eng.ports.store_data, result_ready, 1, a.batch);
        // RMW accesses already touched the line via the load.
        if !store.covered_by_read {
            let vaddr = exec::mem_vaddr(a.state, &store.mem);
            let res = a.bus.access(vaddr, true)?;
            a.batch.count_store_coherence(&res);
            if res.slice.is_some() {
                eng.drain_uncore(a.pmu, a.bus);
            }
        }
    }

    // Branches: prediction bookkeeping before the semantic jump.
    if hot.has(meta::IS_BRANCH) {
        let taken = exec::branch_taken(inst, a.state);
        let dispatch = a.t.dispatch(eng.ports.branch, compute_ready, 1, a.batch);
        let done = dispatch + 1;
        a.t.complete(done);
        a.batch.br_retired += 1;
        if hot.has(meta::CONDITIONAL) && eng.bpred.update(a.pc, taken) {
            a.batch.br_misp += 1;
            a.t.alloc_cycle = a.t.alloc_cycle.max(done + eng.config.mispredict_penalty);
            a.t.alloc_slots = 0;
        }
    }

    // Output readiness.
    for &r in hot.out_regs.slice(&body.regs) {
        a.t.reg[r as usize] = result_ready;
    }
    if let Some(v) = cold.out_vreg {
        a.t.vreg[v as usize] = result_ready;
    }
    if hot.has(meta::FLAGS_WRITTEN) {
        a.t.flags = result_ready;
    }

    let next = exec::execute(inst, a.state, a.bus)?;
    Ok(StepOutcome::one(next, hot.has(meta::RETIRES)))
}

/// Fused superblock of straight-line entries (ALU, load, store, RMW):
/// `fuse_len` consecutive instructions with no branch, vector register, or
/// privilege, stepped in one dispatch. Interrupt polling and the
/// instruction-limit check run once per dispatched block. A fault from any
/// entry ends the block after the completed prefix
/// (`StepOutcome::consumed`), matching the per-instruction path's
/// accounting exactly.
fn step_block<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    let n = if a.fuse {
        a.body.hot[a.pc].fuse_len as usize
    } else {
        1
    };
    // Checked-interpreter mode: the superblock about to run inline must
    // satisfy the fusion-legality invariants `plan::verify_plan` certifies
    // (fusable members only, no branch/privileged/AVX entry, cap obeyed).
    #[cfg(debug_assertions)]
    {
        debug_assert!(
            (1..=crate::plan::FUSE_CAP as usize).contains(&n) && a.pc + n <= a.body.hot.len(),
            "superblock [{}, {}) violates the fusion cap or program bounds",
            a.pc,
            a.pc + n
        );
        for h in &a.body.hot[a.pc..a.pc + n] {
            debug_assert!(
                handler::is_fusable(h.handler)
                    && !h.has(meta::IS_BRANCH)
                    && !h.has(meta::PRIVILEGED)
                    && !h.has(meta::IS_AVX),
                "illegal superblock member (handler {})",
                h.handler
            );
        }
    }
    for i in 0..n {
        let pc = a.pc + i;
        let r = match a.body.hot[pc].handler {
            handler::ALU_BLOCK => alu_entry(eng, a, pc),
            handler::LOAD => match &a.body.fast[pc] {
                FastOp::LoadQ { dst } => load_q_entry(eng, a, pc, *dst),
                _ => mem_entry::<B, true, false>(eng, a, pc),
            },
            handler::STORE => match &a.body.fast[pc] {
                FastOp::StoreQ { src } => store_q_entry(eng, a, pc, *src),
                _ => mem_entry::<B, false, true>(eng, a, pc),
            },
            _ => mem_entry::<B, true, true>(eng, a, pc), // RMW
        };
        if let Err(f) = r {
            // The faulting entry counts toward the non-AVX streak, just
            // as on the per-instruction path.
            eng.note_non_avx_n(i as u64 + 1);
            return Ok(StepOutcome {
                next: Next::Seq,
                consumed: i as u32,
                retired: i as u32,
                fault: Some(f),
            });
        }
    }
    // Loop-close fusion: a certified conditional branch directly behind
    // the block runs in the same dispatch, so a benchmark loop iteration
    // costs one step instead of two. The branch math below replicates
    // `step_branch` exactly; the pre-decoded condition and target make the
    // generic executor redundant.
    if a.fuse {
        let bpc = a.pc + n;
        if let Some(&FastOp::CondJump { target, cc }) = a.body.fast.get(bpc) {
            let body = a.body;
            let hot = &body.hot[bpc];
            // Checked-interpreter mode: `fast_branch_op` certified these.
            debug_assert!(
                hot.has(meta::IS_BRANCH)
                    && hot.has(meta::CONDITIONAL)
                    && hot.has(meta::RETIRES)
                    && !hot.has(meta::PRIVILEGED)
                    && !hot.has(meta::FLAGS_WRITTEN)
                    && hot.out_regs.slice(&body.regs).is_empty()
                    && hot.reads.is_empty()
                    && hot.writes.is_empty(),
                "CondJump entry violates the certified loop-close shape"
            );
            let mut input_ready = a.t.barrier;
            for &r in hot.in_regs.slice(&body.regs) {
                input_ready = input_ready.max(a.t.reg[r as usize]);
            }
            if hot.has(meta::FLAGS_READ) {
                input_ready = input_ready.max(a.t.flags);
            }
            for u in hot.uops.slice(&body.uops) {
                let dispatch = a.t.dispatch(u.ports, input_ready, u.recip, a.batch);
                a.t.complete(dispatch + u.latency);
            }
            let taken = match cc {
                FastCc::Z => a.state.flag(Flag::Zf),
                FastCc::Nz => !a.state.flag(Flag::Zf),
                FastCc::C => a.state.flag(Flag::Cf),
                FastCc::Nc => !a.state.flag(Flag::Cf),
            };
            let dispatch = a.t.dispatch(eng.ports.branch, input_ready, 1, a.batch);
            let done = dispatch + 1;
            a.t.complete(done);
            a.batch.br_retired += 1;
            if eng.bpred.update(bpc, taken) {
                a.batch.br_misp += 1;
                a.t.alloc_cycle = a.t.alloc_cycle.max(done + eng.config.mispredict_penalty);
                a.t.alloc_slots = 0;
            }
            eng.note_non_avx_n(n as u64 + 1);
            let next = if taken {
                Next::Jump(target as usize)
            } else {
                Next::Seq
            };
            return Ok(StepOutcome {
                next,
                consumed: n as u32 + 1,
                retired: n as u32 + 1,
                fault: None,
            });
        }
    }
    eng.note_non_avx_n(n as u64);
    Ok(StepOutcome {
        next: Next::Seq,
        consumed: n as u32,
        retired: n as u32,
        fault: None,
    })
}

/// One register-only ALU entry inside a superblock.
fn alu_entry<B: Bus + ?Sized>(
    _eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
    pc: usize,
) -> Result<(), CpuFault> {
    let body = a.body;
    let hot = &body.hot[pc];
    let mut input_ready = a.t.barrier;
    for &r in hot.in_regs.slice(&body.regs) {
        input_ready = input_ready.max(a.t.reg[r as usize]);
    }
    if hot.has(meta::FLAGS_READ) {
        input_ready = input_ready.max(a.t.flags);
    }
    let uops = hot.uops.slice(&body.uops);
    let mut result_ready = input_ready;
    for (j, u) in uops.iter().enumerate() {
        let dispatch = a.t.dispatch(u.ports, input_ready, u.recip, a.batch);
        let done = dispatch + u.latency;
        a.t.complete(done);
        if j == 0 {
            result_ready = done;
        }
    }
    for &r in hot.out_regs.slice(&body.regs) {
        a.t.reg[r as usize] = result_ready;
    }
    if hot.has(meta::FLAGS_WRITTEN) {
        a.t.flags = result_ready;
    }
    let fast = &body.fast[pc];
    if matches!(fast, FastOp::None) {
        exec::execute(&a.insts[pc], a.state, a.bus)?;
    } else {
        // Pre-decoded register-only semantics: cannot fault.
        exec::execute_fast(fast, a.state);
    }
    Ok(())
}

/// One LOAD / STORE / RMW entry inside a superblock: the generic path
/// specialized to "no vector registers, no AVX, no branch", with the
/// memory sides selected by const generics (`READS`/`WRITES`; both set is
/// the covered read-modify-write shape). These shapes always fall through
/// (`Next::Seq`) and always retire, so the block loop accounts for them
/// uniformly.
fn mem_entry<B: Bus + ?Sized, const READS: bool, const WRITES: bool>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
    pc: usize,
) -> Result<(), CpuFault> {
    let body = a.body;
    let hot = &body.hot[pc];

    let mut input_ready = a.t.barrier;
    for &r in hot.in_regs.slice(&body.regs) {
        input_ready = input_ready.max(a.t.reg[r as usize]);
    }
    if hot.has(meta::FLAGS_READ) {
        input_ready = input_ready.max(a.t.flags);
    }

    // Pre-decoded shapes fuse timing and data into one bus operation, so
    // a translating environment resolves each memory µop's address once.
    let fast = body.fast[pc];
    let fast_load = matches!(
        fast,
        FastOp::LoadQ { .. } | FastOp::LoadAlu { .. } | FastOp::RmwAlu { .. }
    );

    let mut load_done = 0u64;
    let mut loaded = 0u64;
    if READS {
        for mem in hot.reads.slice(&body.reads) {
            let a_ready = addr_ready(a.t, mem);
            let vaddr = exec::mem_vaddr(a.state, mem);
            // In the RMW shape the (single) write is covered by this read.
            let done = if fast_load {
                let (done, value) =
                    eng.timed_load_fused(a.t, vaddr, a_ready, WRITES, a.batch, a.pmu, a.bus)?;
                loaded = value;
                done
            } else {
                eng.timed_load(a.t, vaddr, a_ready, WRITES, a.batch, a.pmu, a.bus)?
            };
            load_done = load_done.max(done);
        }
    }
    let compute_ready = input_ready.max(load_done);

    let uops = hot.uops.slice(&body.uops);
    let mut result_ready = if uops.is_empty() {
        if load_done > 0 {
            load_done
        } else {
            compute_ready
        }
    } else {
        compute_ready
    };
    for (i, u) in uops.iter().enumerate() {
        let dispatch = a.t.dispatch(u.ports, compute_ready, u.recip, a.batch);
        let done = dispatch + u.latency;
        a.t.complete(done);
        if i == 0 {
            result_ready = done.max(load_done);
        }
    }

    if WRITES {
        for store in hot.writes.slice(&body.writes) {
            let a_ready = addr_ready(a.t, &store.mem);
            a.t.dispatch(eng.ports.store_addr, a_ready, 1, a.batch);
            a.t.dispatch(eng.ports.store_data, result_ready, 1, a.batch);
            if !store.covered_by_read {
                let vaddr = exec::mem_vaddr(a.state, &store.mem);
                let res = if let FastOp::StoreQ { src, .. } = fast {
                    a.bus
                        .store_fused(vaddr, 8, exec::fast_src_val(a.state, src))?
                } else {
                    a.bus.access(vaddr, true)?
                };
                a.batch.count_store_coherence(&res);
                if res.slice.is_some() {
                    eng.drain_uncore(a.pmu, a.bus);
                }
            }
        }
    }

    for &r in hot.out_regs.slice(&body.regs) {
        a.t.reg[r as usize] = result_ready;
    }
    if hot.has(meta::FLAGS_WRITTEN) {
        a.t.flags = result_ready;
    }

    // Semantic completion. The data side of every pre-decoded shape went
    // through the fused bus operations above; only the register/flag
    // effects (and the RMW write-back) remain. Must stay bit-identical to
    // [`exec::execute`] on the same instruction (pinned by
    // `plan_equivalence` and the differential suites).
    match fast {
        FastOp::None => {
            let next = exec::execute(&a.insts[pc], a.state, a.bus)?;
            debug_assert!(matches!(next, Next::Seq), "mem shapes never branch");
        }
        FastOp::LoadQ { dst, .. } => a.state.set_gpr(dst, loaded),
        FastOp::LoadAlu { op, dst, .. } => {
            let acc = a.state.gpr(dst);
            let r = exec::fast_mem_alu(a.state, op, acc, loaded);
            a.state.set_gpr(dst, r);
        }
        FastOp::StoreQ { .. } => {} // written via the fused store above
        FastOp::RmwAlu { op, mem, src } => {
            let b = exec::fast_src_val(a.state, src);
            let r = exec::fast_mem_alu(a.state, op, loaded, b);
            // The address registers are untouched by the ALU step, so this
            // recomputes the exact vaddr the covering load walked.
            a.bus.write(exec::mem_vaddr(a.state, &mem), 8, r)?;
        }
        _ => unreachable!("mem entries carry memory-shape fast ops or None"),
    }
    debug_assert!(hot.has(meta::RETIRES), "mem shapes always retire");
    Ok(())
}

/// One pre-decoded quadword load (`FastOp::LoadQ`, i.e. `mov r64, [m64]`)
/// inside a superblock: [`mem_entry`] specialized to the shape's statics —
/// one fused load, no stores, no flag effects, the destination register as
/// the only timing output — so the per-entry arena scans the generic entry
/// pays disappear. An entry whose decode carries compute µops or more than
/// one memory read (no shipping descriptor does for this shape) takes the
/// generic entry unchanged.
#[inline]
fn load_q_entry<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
    pc: usize,
    dst: Gpr,
) -> Result<(), CpuFault> {
    let body = a.body;
    let hot = &body.hot[pc];
    let reads = hot.reads.slice(&body.reads);
    // Checked-interpreter mode: `certify_fast_mem` demoted any entry that
    // does not satisfy these statics back to the generic path.
    debug_assert!(
        hot.uops.is_empty()
            && reads.len() == 1
            && hot.out_regs.slice(&body.regs) == [dst.number()]
            && !hot.has(meta::FLAGS_WRITTEN),
        "LoadQ entry violates the certified fast-load shape"
    );
    let mem = &reads[0];
    let a_ready = addr_ready(a.t, mem);
    let vaddr = exec::mem_vaddr(a.state, mem);
    let (done, value) = eng.timed_load_fused(a.t, vaddr, a_ready, false, a.batch, a.pmu, a.bus)?;
    let result_ready = if done > 0 {
        done
    } else {
        // Zero-latency corner (configurable latencies can be 0 at cycle
        // 0): the generic entry falls back to input readiness.
        let mut input_ready = a.t.barrier;
        for &r in hot.in_regs.slice(&body.regs) {
            input_ready = input_ready.max(a.t.reg[r as usize]);
        }
        if hot.has(meta::FLAGS_READ) {
            input_ready = input_ready.max(a.t.flags);
        }
        input_ready
    };
    a.t.reg[dst.number() as usize] = result_ready;
    a.state.set_gpr(dst, value);
    debug_assert!(hot.has(meta::RETIRES), "mem shapes always retire");
    Ok(())
}

/// One pre-decoded quadword store (`FastOp::StoreQ`, i.e. `mov [m64],
/// r64/imm64`) inside a superblock: [`mem_entry`] specialized the same way
/// as [`load_q_entry`] — one uncovered fused store, no loads, no compute
/// µops, no register or flag outputs.
#[inline]
fn store_q_entry<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
    pc: usize,
    src: FastSrc,
) -> Result<(), CpuFault> {
    let body = a.body;
    let hot = &body.hot[pc];
    let writes = hot.writes.slice(&body.writes);
    // Checked-interpreter mode: `certify_fast_mem` demoted any entry that
    // does not satisfy these statics back to the generic path.
    debug_assert!(
        hot.uops.is_empty()
            && writes.len() == 1
            && !writes[0].covered_by_read
            && hot.out_regs.is_empty()
            && !hot.has(meta::FLAGS_WRITTEN),
        "StoreQ entry violates the certified fast-store shape"
    );
    let mut input_ready = a.t.barrier;
    for &r in hot.in_regs.slice(&body.regs) {
        input_ready = input_ready.max(a.t.reg[r as usize]);
    }
    if hot.has(meta::FLAGS_READ) {
        input_ready = input_ready.max(a.t.flags);
    }
    let store = &writes[0];
    let a_ready = addr_ready(a.t, &store.mem);
    a.t.dispatch(eng.ports.store_addr, a_ready, 1, a.batch);
    a.t.dispatch(eng.ports.store_data, input_ready, 1, a.batch);
    let vaddr = exec::mem_vaddr(a.state, &store.mem);
    let res = a
        .bus
        .store_fused(vaddr, 8, exec::fast_src_val(a.state, src))?;
    a.batch.count_store_coherence(&res);
    if res.slice.is_some() {
        eng.drain_uncore(a.pmu, a.bus);
    }
    debug_assert!(hot.has(meta::RETIRES), "mem shapes always retire");
    Ok(())
}

/// Register-only branches (`COND` selects the predictor-feeding
/// conditional shape; unconditional jumps only count as retired).
fn step_branch<B: Bus + ?Sized, const COND: bool>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    let body = a.body;
    let hot = &body.hot[a.pc];
    let inst = &a.insts[a.pc];
    eng.note_non_avx();

    let mut input_ready = a.t.barrier;
    for &r in hot.in_regs.slice(&body.regs) {
        input_ready = input_ready.max(a.t.reg[r as usize]);
    }
    if hot.has(meta::FLAGS_READ) {
        input_ready = input_ready.max(a.t.flags);
    }

    let uops = hot.uops.slice(&body.uops);
    let mut result_ready = input_ready;
    for (i, u) in uops.iter().enumerate() {
        let dispatch = a.t.dispatch(u.ports, input_ready, u.recip, a.batch);
        let done = dispatch + u.latency;
        a.t.complete(done);
        if i == 0 {
            result_ready = done;
        }
    }

    let taken = exec::branch_taken(inst, a.state);
    let dispatch = a.t.dispatch(eng.ports.branch, input_ready, 1, a.batch);
    let done = dispatch + 1;
    a.t.complete(done);
    a.batch.br_retired += 1;
    if COND && eng.bpred.update(a.pc, taken) {
        a.batch.br_misp += 1;
        a.t.alloc_cycle = a.t.alloc_cycle.max(done + eng.config.mispredict_penalty);
        a.t.alloc_slots = 0;
    }

    for &r in hot.out_regs.slice(&body.regs) {
        a.t.reg[r as usize] = result_ready;
    }
    if hot.has(meta::FLAGS_WRITTEN) {
        a.t.flags = result_ready;
    }

    let next = exec::execute(inst, a.state, a.bus)?;
    Ok(StepOutcome::one(next, hot.has(meta::RETIRES)))
}

// ---- special-mnemonic handlers (the former `step_special` match arms) ----

fn step_nop<B: Bus + ?Sized>(
    _eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    let ready = start_of(a.t);
    a.t.dispatch(PortSet::NONE, ready, 1, a.batch);
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_lfence<B: Bus + ?Sized>(
    _eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    // "LFENCE does not execute until all prior instructions have completed
    // locally, and no later instruction begins execution until LFENCE
    // completes" (§IV-A1).
    let done = a.t.max_complete.max(a.t.alloc_uop());
    a.batch.uops_issued += 1;
    a.t.set_barrier(done);
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_fence<B: Bus + ?Sized>(
    _eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    let extra = if a.insts[a.pc].mnemonic == Mnemonic::Mfence {
        33
    } else {
        2
    };
    let done = a.t.max_complete.max(a.t.alloc_uop()) + extra;
    a.batch.uops_issued += 1;
    a.t.set_barrier(done);
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_cpuid<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    // Fully serializing but with variable latency and µop count, both
    // depending on RAX and run-to-run jitter (Paoloni's observation,
    // §IV-A1).
    let rax = a.state.gpr(Gpr::Rax);
    let latency = 95 + (rax & 0xF) * 23 + eng.rng.gen_range(0..=50);
    let n_uops = 20 + (rax & 0x3) * 10;
    for _ in 0..n_uops {
        let ready = a.t.max_complete;
        a.t.dispatch(eng.ports.alu, ready, 1, a.batch);
    }
    let done = a.t.max_complete.max(a.t.alloc_cycle) + latency;
    a.t.set_barrier(done);
    // Leaf outputs (model identification values).
    a.state.set_gpr(Gpr::Rax, 0x0005_06E3);
    a.state.set_gpr(Gpr::Rbx, u64::from_le_bytes(*b"nanoBen\0"));
    a.state.set_gpr(Gpr::Rcx, 0x7FFA_FBBF);
    a.state.set_gpr(Gpr::Rdx, 0xBFEB_FBFF);
    for r in [Gpr::Rax, Gpr::Rbx, Gpr::Rcx, Gpr::Rdx] {
        a.t.reg[r.number() as usize] = done;
    }
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_rdtsc<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    let ready = start_of(a.t);
    let dispatch = a.t.dispatch(eng.ports.int_mul, ready, 25, a.batch);
    let done = dispatch + 25;
    a.t.complete(done);
    let tsc = dispatch;
    a.state.set_gpr(Gpr::Rax, tsc & 0xFFFF_FFFF);
    a.state.set_gpr(Gpr::Rdx, tsc >> 32);
    a.t.reg[Gpr::Rax.number() as usize] = done;
    a.t.reg[Gpr::Rdx.number() as usize] = done;
    if a.insts[a.pc].mnemonic == Mnemonic::Rdtscp {
        a.state.set_gpr(Gpr::Rcx, 0);
        a.t.reg[Gpr::Rcx.number() as usize] = done;
    }
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_rdpmc<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    if !a.bus.is_kernel() && !a.bus.rdpmc_allowed() {
        return Err(CpuFault::RdpmcNotAllowed);
    }
    let ready = a.t.reg[Gpr::Rcx.number() as usize];
    // ~10 µops; the dependency-carrying one reads the counter.
    for _ in 0..9 {
        a.t.dispatch(eng.ports.alu, ready, 1, a.batch);
    }
    let dispatch = a.t.dispatch(eng.ports.int_mul, ready, 20, a.batch);
    let done = dispatch + 25;
    a.t.complete(done);
    eng.drain_uncore(a.pmu, a.bus);
    // Architectural counter read: pending batched counts must land first.
    a.batch.flush(a.pmu);
    a.pmu.sync_cycles(dispatch);
    let ecx = a.state.gpr(Gpr::Rcx) as u32;
    let value = a.pmu.rdpmc(ecx).ok_or(CpuFault::BadMsr { addr: ecx })?;
    a.state.set_gpr(Gpr::Rax, value & 0xFFFF_FFFF);
    a.state.set_gpr(Gpr::Rdx, value >> 32);
    a.t.reg[Gpr::Rax.number() as usize] = done;
    a.t.reg[Gpr::Rdx.number() as usize] = done;
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_rdmsr<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    let ready = a.t.reg[Gpr::Rcx.number() as usize];
    let dispatch = a.t.dispatch(eng.ports.int_mul, ready, 100, a.batch);
    let done = dispatch + 100;
    a.t.complete(done);
    eng.drain_uncore(a.pmu, a.bus);
    a.batch.flush(a.pmu);
    a.pmu.sync_cycles(dispatch);
    let addr = a.state.gpr(Gpr::Rcx) as u32;
    let value = match a.pmu.rdmsr(addr) {
        Some(v) => v,
        None => a.bus.rdmsr(addr)?,
    };
    a.state.set_gpr(Gpr::Rax, value & 0xFFFF_FFFF);
    a.state.set_gpr(Gpr::Rdx, value >> 32);
    a.t.reg[Gpr::Rax.number() as usize] = done;
    a.t.reg[Gpr::Rdx.number() as usize] = done;
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_wrmsr<B: Bus + ?Sized>(
    _eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    let ready = a.t.reg[Gpr::Rcx.number() as usize]
        .max(a.t.reg[Gpr::Rax.number() as usize])
        .max(a.t.reg[Gpr::Rdx.number() as usize]);
    // WRMSR is serializing.
    let done = a.t.max_complete.max(ready).max(a.t.alloc_uop()) + 150;
    a.batch.uops_issued += 1;
    a.t.set_barrier(done);
    let addr = a.state.gpr(Gpr::Rcx) as u32;
    let value = (a.state.gpr(Gpr::Rdx) << 32) | (a.state.gpr(Gpr::Rax) & 0xFFFF_FFFF);
    // Architectural counter write: pending counts must land before the
    // write replaces the counter value.
    a.batch.flush(a.pmu);
    a.pmu.sync_cycles(done);
    if !a.pmu.wrmsr(addr, value) {
        a.bus.wrmsr(addr, value)?;
    }
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_wbinvd<B: Bus + ?Sized>(
    _eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    let done = a.t.max_complete.max(a.t.alloc_uop()) + 5000;
    a.batch.uops_issued += 1;
    a.t.set_barrier(done);
    a.bus.wbinvd();
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_clflush<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    let mem = a.insts[a.pc]
        .dst()
        .and_then(|o| o.as_mem())
        .expect("clflush takes a memory operand");
    let ready = addr_ready(a.t, &mem);
    let dispatch = a.t.dispatch(eng.ports.store_addr, ready, 6, a.batch);
    a.t.dispatch(eng.ports.store_data, ready, 1, a.batch);
    a.t.complete(dispatch + 2);
    let vaddr = exec::mem_vaddr(a.state, &mem);
    a.bus.clflush(vaddr);
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_prefetch<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    let mem = a.insts[a.pc]
        .dst()
        .and_then(|o| o.as_mem())
        .expect("prefetch takes a memory operand");
    let ready = addr_ready(a.t, &mem);
    let dispatch = a.t.dispatch(eng.ports.load, ready, 1, a.batch);
    a.t.complete(dispatch + 1);
    let vaddr = exec::mem_vaddr(a.state, &mem);
    a.bus.prefetch(vaddr);
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_cli<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    a.bus.set_interrupt_flag(false);
    let ready = start_of(a.t);
    a.t.dispatch(eng.ports.alu, ready, 1, a.batch);
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_sti<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    a.bus.set_interrupt_flag(true);
    let ready = start_of(a.t);
    a.t.dispatch(eng.ports.alu, ready, 1, a.batch);
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_serialize<B: Bus + ?Sized>(
    _eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    // HLT / SWAPGS / MOV CR3 / INVLPG: modeled as serializing, fixed-cost
    // kernel operations. (TLBs are not modeled; an INVLPG flush is a
    // timing event only.)
    let done = a.t.max_complete.max(a.t.alloc_uop()) + 100;
    a.batch.uops_issued += 1;
    a.t.set_barrier(done);
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_rdrand<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    let u = a.body.hot[a.pc].uops.slice(&a.body.uops)[0];
    let ready = start_of(a.t);
    let dispatch = a.t.dispatch(u.ports, ready, u.recip, a.batch);
    let done = dispatch + u.latency;
    a.t.complete(done);
    let value: u64 = eng.rng.gen();
    if let Some(Operand::Gpr(g)) = a.insts[a.pc].dst() {
        a.state.set_gpr_part(*g, value);
        a.t.reg[g.reg.number() as usize] = done;
    }
    a.state.set_flag(nanobench_x86::reg::Flag::Cf, true);
    Ok(StepOutcome::one(Next::Seq, true))
}

fn step_nb_pause<B: Bus + ?Sized>(
    _eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    // Magic marker: pause counting (§III-I). Zero architectural cost
    // beyond the sync point. The batch accumulated while counting was on
    // must land before the gate closes.
    a.batch.flush(a.pmu);
    a.pmu.sync_cycles(a.t.now());
    a.pmu.set_counting(false);
    Ok(StepOutcome::one(Next::Seq, false))
}

fn step_nb_resume<B: Bus + ?Sized>(
    _eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    // Counts accumulated while paused are dropped by the closed gate at
    // flush time — exactly as per-µop delivery would have dropped them.
    a.batch.flush(a.pmu);
    a.pmu.sync_cycles(a.t.now());
    a.pmu.set_counting(true);
    Ok(StepOutcome::one(Next::Seq, false))
}

fn step_push<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    let inst = &a.insts[a.pc];
    let data_ready = match inst.dst() {
        Some(Operand::Gpr(g)) => a.t.reg[g.reg.number() as usize],
        _ => start_of(a.t),
    };
    let rsp_ready = a.t.reg[Gpr::Rsp.number() as usize];
    let rsp_done = a.t.dispatch(eng.ports.alu, rsp_ready, 1, a.batch) + 1;
    a.t.reg[Gpr::Rsp.number() as usize] = rsp_done;
    a.t.dispatch(eng.ports.store_addr, rsp_done, 1, a.batch);
    a.t.dispatch(eng.ports.store_data, data_ready, 1, a.batch);
    a.t.complete(rsp_done);
    let vaddr = a.state.gpr(Gpr::Rsp).wrapping_sub(8);
    // Register and immediate sources never touch the bus, so their pushes
    // fuse timing and data into one store operation (one translation);
    // memory-source pushes keep the generic access + execute path.
    let fused_value = match inst.dst() {
        Some(Operand::Gpr(g)) => Some(a.state.gpr_part(*g)),
        Some(Operand::Imm(v)) => Some(*v as u64),
        _ => None,
    };
    if let Some(value) = fused_value {
        let res = a.bus.store_fused(vaddr, 8, value)?;
        a.batch.count_store_coherence(&res);
        a.state.set_gpr(Gpr::Rsp, vaddr);
        Ok(StepOutcome::one(Next::Seq, true))
    } else {
        let res = a.bus.access(vaddr, true)?;
        a.batch.count_store_coherence(&res);
        let next = exec::execute(inst, a.state, a.bus)?;
        Ok(StepOutcome::one(next, true))
    }
}

fn step_pop<B: Bus + ?Sized>(
    eng: &mut Engine,
    a: &mut StepArgs<'_, B>,
) -> Result<StepOutcome, CpuFault> {
    let inst = &a.insts[a.pc];
    let rsp_ready = a.t.reg[Gpr::Rsp.number() as usize];
    let vaddr = a.state.gpr(Gpr::Rsp);
    // Register destinations fuse the timing walk with the data read (one
    // translation); memory destinations keep the generic path.
    if let Some(Operand::Gpr(g)) = inst.dst() {
        let (load_done, value) =
            eng.timed_load_fused(a.t, vaddr, rsp_ready, false, a.batch, a.pmu, a.bus)?;
        let rsp_done = a.t.dispatch(eng.ports.alu, rsp_ready, 1, a.batch) + 1;
        a.t.reg[Gpr::Rsp.number() as usize] = rsp_done;
        a.t.reg[g.reg.number() as usize] = load_done;
        a.t.complete(load_done);
        // RSP before the destination, so `pop rsp` keeps the loaded value.
        a.state.set_gpr(Gpr::Rsp, vaddr.wrapping_add(8));
        a.state.set_gpr_part(*g, value);
        Ok(StepOutcome::one(Next::Seq, true))
    } else {
        let load_done = eng.timed_load(a.t, vaddr, rsp_ready, false, a.batch, a.pmu, a.bus)?;
        let rsp_done = a.t.dispatch(eng.ports.alu, rsp_ready, 1, a.batch) + 1;
        a.t.reg[Gpr::Rsp.number() as usize] = rsp_done;
        a.t.complete(load_done);
        let next = exec::execute(inst, a.state, a.bus)?;
        Ok(StepOutcome::one(next, true))
    }
}
