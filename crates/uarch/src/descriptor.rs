//! Per-microarchitecture instruction descriptors: µop decomposition,
//! latencies and port classes.
//!
//! This table is the simulated ground truth that case study I (§V) measures
//! back out through nanoBench: an instruction variant's *latency* is the
//! dependency-carrying µop's latency (plus memory latency for memory
//! forms), its *throughput* emerges from port contention and the issue
//! width, and its *port usage* from the port classes resolved through
//! [`PortConfig`](crate::port::PortConfig).

use crate::port::{MicroArch, PortConfig, PortSet};
use nanobench_x86::inst::{Instruction, Mnemonic};
use nanobench_x86::operand::Operand;
use std::collections::HashMap;

/// Port class of a µop; resolved to a [`PortSet`] per microarchitecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names mirror PortConfig fields
pub enum PortClass {
    Alu,
    IntMul,
    Div,
    Shift,
    Branch,
    VecAdd,
    VecMul,
    VecLogic,
    Shuffle,
    Load,
    StoreAddr,
    StoreData,
    Lea,
    /// Issued but never dispatched to a port (NOP and friends).
    None,
}

impl PortClass {
    /// Resolves the class to concrete ports.
    pub fn resolve(self, cfg: &PortConfig) -> PortSet {
        match self {
            PortClass::Alu => cfg.alu,
            PortClass::IntMul => cfg.int_mul,
            PortClass::Div => cfg.div,
            PortClass::Shift => cfg.shift,
            PortClass::Branch => cfg.branch,
            PortClass::VecAdd => cfg.vec_add,
            PortClass::VecMul => cfg.vec_mul,
            PortClass::VecLogic => cfg.vec_logic,
            PortClass::Shuffle => cfg.shuffle,
            PortClass::Load => cfg.load,
            PortClass::StoreAddr => cfg.store_addr,
            PortClass::StoreData => cfg.store_data,
            PortClass::Lea => cfg.lea,
            PortClass::None => PortSet::NONE,
        }
    }
}

/// One µop of an instruction's decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UopSpec {
    /// Port class.
    pub class: PortClass,
    /// Latency in cycles (dependency-carrying µops only; auxiliary µops
    /// use latency for port occupancy bookkeeping).
    pub latency: u64,
    /// Reciprocal throughput of the µop on its port (1 = fully pipelined;
    /// >1 for the divider and other unpipelined units).
    pub recip: u64,
}

impl UopSpec {
    const fn new(class: PortClass, latency: u64) -> UopSpec {
        UopSpec {
            class,
            latency,
            recip: 1,
        }
    }

    const fn unpipelined(class: PortClass, latency: u64, recip: u64) -> UopSpec {
        UopSpec {
            class,
            latency,
            recip,
        }
    }
}

/// An instruction descriptor: the *compute* µops (the engine adds load and
/// store µops for memory operands automatically).
///
/// The first µop carries the register-to-register dependency latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrDesc {
    /// Compute µops.
    pub uops: Vec<UopSpec>,
}

impl InstrDesc {
    /// The dependency-carrying latency (0 for pure moves/loads).
    pub fn latency(&self) -> u64 {
        self.uops.first().map_or(0, |u| u.latency)
    }
}

/// Operand-kind signature used to key descriptor forms. Memory operands
/// are normalized to registers for the compute-µop lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum OpKind {
    R,
    I,
    V,
}

fn normalized_form(inst: &Instruction) -> Vec<OpKind> {
    inst.operands
        .iter()
        .map(|op| match op {
            Operand::Gpr(_) | Operand::Mem(_) | Operand::Label(_) => OpKind::R,
            Operand::Imm(_) => OpKind::I,
            Operand::Vec(_) => OpKind::V,
        })
        .collect()
}

/// Whether the mnemonic is a pure data move: with a memory operand it has
/// no compute µop (the load/store µop is everything). Delegates to the
/// shared def/use metadata in [`nanobench_x86::defuse`].
pub fn is_move(m: Mnemonic) -> bool {
    nanobench_x86::defuse::is_move(m)
}

/// Per-microarchitecture descriptor table.
#[derive(Debug, Clone)]
pub struct DescriptorTable {
    uarch: MicroArch,
    ports: PortConfig,
    exact: HashMap<(Mnemonic, Vec<OpKind>), InstrDesc>,
    default: HashMap<Mnemonic, InstrDesc>,
}

impl DescriptorTable {
    /// Builds the table for a microarchitecture.
    pub fn for_uarch(uarch: MicroArch) -> DescriptorTable {
        let mut t = DescriptorTable {
            uarch,
            ports: PortConfig::for_uarch(uarch),
            exact: HashMap::new(),
            default: HashMap::new(),
        };
        t.populate();
        t
    }

    /// The microarchitecture this table describes.
    pub fn uarch(&self) -> MicroArch {
        self.uarch
    }

    /// The port configuration.
    pub fn ports(&self) -> &PortConfig {
        &self.ports
    }

    /// Looks up the descriptor for an instruction (compute µops only).
    ///
    /// Pure moves with memory operands yield an empty descriptor. Returns
    /// `None` for instructions the engine handles specially (fences,
    /// counter reads, privileged instructions).
    pub fn lookup(&self, inst: &Instruction) -> Option<InstrDesc> {
        let m = inst.mnemonic;
        if is_move(m) && inst.operands.iter().any(|o| matches!(o, Operand::Mem(_))) {
            return Some(InstrDesc { uops: Vec::new() });
        }
        let form = normalized_form(inst);
        if let Some(d) = self.exact.get(&(m, form)) {
            return Some(d.clone());
        }
        self.default.get(&m).cloned()
    }

    /// All (mnemonic, form) pairs with explicit entries — the instruction
    /// variants case study I sweeps over.
    pub fn variants(&self) -> Vec<(Mnemonic, Vec<OpKind>)> {
        let mut v: Vec<_> = self.exact.keys().cloned().collect();
        // The key strings are built once per entry, not once per
        // comparison as a plain sort_by_key closure would.
        v.sort_by_cached_key(|(m, f)| (format!("{m}"), f.len(), format!("{f:?}")));
        v
    }

    fn def(&mut self, m: Mnemonic, uops: Vec<UopSpec>) {
        self.default.insert(m, InstrDesc { uops });
    }

    fn form(&mut self, m: Mnemonic, form: &[OpKind], uops: Vec<UopSpec>) {
        self.exact.insert((m, form.to_vec()), InstrDesc { uops });
    }

    /// Latency tweaks for older parts, applied to vector arithmetic.
    fn vec_lat(&self, skylake_lat: u64, kind: PortClass) -> u64 {
        use MicroArch::*;
        match (self.uarch, kind) {
            // FP add was 3 cycles before Skylake moved it to the FMA units.
            (
                Nehalem | Westmere | SandyBridge | IvyBridge | Haswell | Broadwell,
                PortClass::VecAdd,
            ) if skylake_lat == 4 => 3,
            // FMA/multiply was 5 cycles on Haswell/Broadwell.
            (Haswell | Broadwell, PortClass::VecMul) if skylake_lat == 4 => 5,
            (Nehalem | Westmere | SandyBridge | IvyBridge, PortClass::VecMul)
                if skylake_lat == 4 =>
            {
                5
            }
            _ => skylake_lat,
        }
    }

    fn populate(&mut self) {
        use Mnemonic::*;
        use OpKind::*;
        let alu1 = vec![UopSpec::new(PortClass::Alu, 1)];

        // -- moves ---------------------------------------------------------
        self.form(Mov, &[R, R], alu1.clone());
        self.form(Mov, &[R, I], alu1.clone());
        self.form(Movzx, &[R, R], alu1.clone());
        self.form(Movsx, &[R, R], alu1.clone());
        self.def(Lea, vec![UopSpec::new(PortClass::Lea, 1)]);
        self.form(
            Xchg,
            &[R, R],
            vec![
                UopSpec::new(PortClass::Alu, 2),
                UopSpec::new(PortClass::Alu, 1),
                UopSpec::new(PortClass::Alu, 1),
            ],
        );
        self.def(
            Xadd,
            vec![
                UopSpec::new(PortClass::Alu, 2),
                UopSpec::new(PortClass::Alu, 1),
                UopSpec::new(PortClass::Alu, 1),
            ],
        );
        self.def(Bswap, vec![UopSpec::new(PortClass::Shift, 1)]);
        self.def(Cmovz, vec![UopSpec::new(PortClass::Shift, 1)]);
        self.def(Cmovnz, vec![UopSpec::new(PortClass::Shift, 1)]);
        self.def(Setz, vec![UopSpec::new(PortClass::Shift, 1)]);
        self.def(Setnz, vec![UopSpec::new(PortClass::Shift, 1)]);

        // -- integer ALU -----------------------------------------------------
        for m in [
            Add, Adc, Sub, Sbb, And, Or, Xor, Cmp, Test, Inc, Dec, Neg, Not,
        ] {
            self.def(m, alu1.clone());
        }
        self.form(Imul, &[R, R], vec![UopSpec::new(PortClass::IntMul, 3)]);
        self.form(
            Imul,
            &[R],
            vec![
                UopSpec::new(PortClass::IntMul, 3),
                UopSpec::new(PortClass::Alu, 1),
            ],
        );
        self.form(
            Mul,
            &[R],
            vec![
                UopSpec::new(PortClass::IntMul, 3),
                UopSpec::new(PortClass::Alu, 1),
            ],
        );
        for m in [Div, Idiv] {
            self.form(m, &[R], vec![UopSpec::unpipelined(PortClass::Div, 36, 21)]);
        }
        for m in [Shl, Shr, Sar, Rol, Ror] {
            self.def(m, vec![UopSpec::new(PortClass::Shift, 1)]);
        }
        for m in [Popcnt, Lzcnt, Tzcnt, Bsf, Bsr, Crc32] {
            self.def(m, vec![UopSpec::new(PortClass::IntMul, 3)]);
        }

        // -- SSE scalar float -------------------------------------------------
        for m in [Addss, Addsd, Subss, Subsd] {
            let lat = self.vec_lat(4, PortClass::VecAdd);
            self.def(m, vec![UopSpec::new(PortClass::VecAdd, lat)]);
        }
        for m in [Mulss, Mulsd] {
            let lat = self.vec_lat(4, PortClass::VecMul);
            self.def(m, vec![UopSpec::new(PortClass::VecMul, lat)]);
        }
        self.def(Divss, vec![UopSpec::unpipelined(PortClass::Div, 11, 3)]);
        self.def(Divsd, vec![UopSpec::unpipelined(PortClass::Div, 14, 4)]);
        self.def(Sqrtss, vec![UopSpec::unpipelined(PortClass::Div, 12, 3)]);
        self.def(Sqrtsd, vec![UopSpec::unpipelined(PortClass::Div, 18, 6)]);
        for m in [Comiss, Comisd] {
            self.def(
                m,
                vec![
                    UopSpec::new(PortClass::VecAdd, 2),
                    UopSpec::new(PortClass::Shuffle, 1),
                ],
            );
        }
        for m in [Cvtsi2sd, Cvtsd2si, Cvtss2sd, Cvtsd2ss] {
            self.def(
                m,
                vec![
                    UopSpec::new(PortClass::VecAdd, 6),
                    UopSpec::new(PortClass::Shuffle, 1),
                ],
            );
        }

        // -- SSE/AVX register-to-register moves --------------------------------
        for m in [Movaps, Movups, Movapd, Movdqa, Movdqu] {
            self.form(m, &[V, V], vec![UopSpec::new(PortClass::VecLogic, 1)]);
        }
        self.form(Movd, &[R, V], vec![UopSpec::new(PortClass::VecAdd, 2)]);
        self.form(Movd, &[V, R], vec![UopSpec::new(PortClass::VecAdd, 2)]);
        self.form(Movq, &[R, V], vec![UopSpec::new(PortClass::VecAdd, 2)]);
        self.form(Movq, &[V, R], vec![UopSpec::new(PortClass::VecAdd, 2)]);
        self.form(Movq, &[V, V], vec![UopSpec::new(PortClass::VecLogic, 1)]);

        // -- packed float -------------------------------------------------------
        for m in [Addps, Addpd, Subps, Subpd, Maxps, Minps] {
            let lat = self.vec_lat(4, PortClass::VecAdd);
            self.def(m, vec![UopSpec::new(PortClass::VecAdd, lat)]);
        }
        for m in [Mulps, Mulpd] {
            let lat = self.vec_lat(4, PortClass::VecMul);
            self.def(m, vec![UopSpec::new(PortClass::VecMul, lat)]);
        }
        self.def(Divps, vec![UopSpec::unpipelined(PortClass::Div, 11, 3)]);
        self.def(Divpd, vec![UopSpec::unpipelined(PortClass::Div, 14, 8)]);
        self.def(Sqrtps, vec![UopSpec::unpipelined(PortClass::Div, 12, 3)]);
        self.def(Sqrtpd, vec![UopSpec::unpipelined(PortClass::Div, 18, 9)]);
        for m in [Andps, Orps, Xorps] {
            self.def(m, vec![UopSpec::new(PortClass::VecLogic, 1)]);
        }
        self.def(Shufps, vec![UopSpec::new(PortClass::Shuffle, 1)]);
        self.def(Blendps, vec![UopSpec::new(PortClass::VecLogic, 1)]);
        self.def(
            Dpps,
            vec![
                UopSpec::new(PortClass::VecMul, 13),
                UopSpec::new(PortClass::VecAdd, 1),
                UopSpec::new(PortClass::Shuffle, 1),
                UopSpec::new(PortClass::VecAdd, 1),
            ],
        );
        self.def(
            Haddps,
            vec![
                UopSpec::new(PortClass::VecAdd, 6),
                UopSpec::new(PortClass::Shuffle, 1),
                UopSpec::new(PortClass::Shuffle, 1),
            ],
        );
        self.def(
            Roundps,
            vec![
                UopSpec::new(PortClass::VecAdd, 8),
                UopSpec::new(PortClass::VecAdd, 1),
            ],
        );

        // -- packed integer --------------------------------------------------------
        for m in [
            Paddb, Paddw, Paddd, Paddq, Psubb, Psubd, Psubq, Pabsd, Pminsd, Pmaxsd,
        ] {
            self.def(m, vec![UopSpec::new(PortClass::VecLogic, 1)]);
        }
        self.def(
            Pmulld,
            vec![
                UopSpec::new(PortClass::VecMul, 10),
                UopSpec::new(PortClass::VecMul, 1),
            ],
        );
        for m in [Pmullw, Pmuludq, Pmaddwd] {
            let lat = self.vec_lat(4, PortClass::VecMul) + 1;
            self.def(m, vec![UopSpec::new(PortClass::VecMul, lat)]);
        }
        for m in [Pand, Por, Pxor, Pcmpeqb, Pcmpeqd, Pcmpgtd] {
            self.def(m, vec![UopSpec::new(PortClass::VecLogic, 1)]);
        }
        for m in [Pshufb, Pshufd, Punpcklbw, Punpckldq, Packsswb] {
            self.def(m, vec![UopSpec::new(PortClass::Shuffle, 1)]);
        }
        for m in [Psllw, Pslld, Psllq] {
            self.def(m, vec![UopSpec::new(PortClass::VecAdd, 1)]);
        }
        self.def(Pmovmskb, vec![UopSpec::new(PortClass::VecMul, 3)]);
        self.def(
            Ptest,
            vec![
                UopSpec::new(PortClass::VecAdd, 3),
                UopSpec::new(PortClass::Shuffle, 1),
            ],
        );
        self.def(
            Phaddd,
            vec![
                UopSpec::new(PortClass::VecLogic, 3),
                UopSpec::new(PortClass::Shuffle, 1),
                UopSpec::new(PortClass::Shuffle, 1),
            ],
        );
        self.def(Psadbw, vec![UopSpec::new(PortClass::Shuffle, 3)]);

        // -- AVX / FMA ----------------------------------------------------------------
        for m in [Vaddps, Vaddpd] {
            let lat = self.vec_lat(4, PortClass::VecAdd);
            self.def(m, vec![UopSpec::new(PortClass::VecAdd, lat)]);
        }
        for m in [Vmulps, Vmulpd] {
            let lat = self.vec_lat(4, PortClass::VecMul);
            self.def(m, vec![UopSpec::new(PortClass::VecMul, lat)]);
        }
        self.def(Vdivps, vec![UopSpec::unpipelined(PortClass::Div, 11, 5)]);
        self.def(Vdivpd, vec![UopSpec::unpipelined(PortClass::Div, 14, 8)]);
        self.def(Vsqrtps, vec![UopSpec::unpipelined(PortClass::Div, 12, 6)]);
        for m in [Vfmadd132ps, Vfmadd213ps, Vfmadd231ps, Vfmadd231pd] {
            let lat = self.vec_lat(4, PortClass::VecMul);
            self.def(m, vec![UopSpec::new(PortClass::VecMul, lat)]);
        }
        for m in [Vpaddd, Vpaddq, Vpand, Vpor, Vpxor] {
            self.def(m, vec![UopSpec::new(PortClass::VecLogic, 1)]);
        }
        self.def(
            Vpmulld,
            vec![
                UopSpec::new(PortClass::VecMul, 10),
                UopSpec::new(PortClass::VecMul, 1),
            ],
        );
        self.def(Vpermilps, vec![UopSpec::new(PortClass::Shuffle, 1)]);
        self.def(Vperm2f128, vec![UopSpec::new(PortClass::Shuffle, 3)]);
        self.def(Vbroadcastss, vec![UopSpec::new(PortClass::Shuffle, 1)]);
        self.def(Vextractf128, vec![UopSpec::new(PortClass::Shuffle, 3)]);
        self.def(Vinsertf128, vec![UopSpec::new(PortClass::Shuffle, 3)]);
        self.def(
            Vzeroupper,
            vec![
                UopSpec::new(PortClass::None, 0),
                UopSpec::new(PortClass::None, 0),
                UopSpec::new(PortClass::None, 0),
                UopSpec::new(PortClass::None, 0),
            ],
        );
        self.def(Vzeroall, vec![UopSpec::new(PortClass::None, 0); 12]);
        self.def(
            Vgatherdps,
            vec![
                UopSpec::new(PortClass::VecAdd, 20),
                UopSpec::new(PortClass::Load, 1),
                UopSpec::new(PortClass::Load, 1),
                UopSpec::new(PortClass::VecAdd, 1),
            ],
        );

        // -- crypto ------------------------------------------------------------------------
        for m in [Aesenc, Aesenclast, Aesdec] {
            self.def(m, vec![UopSpec::new(PortClass::VecMul, 4)]);
        }
        self.def(Pclmulqdq, vec![UopSpec::new(PortClass::Shuffle, 6)]);
        self.def(
            Sha256rnds2,
            vec![UopSpec::unpipelined(PortClass::VecMul, 6, 3)],
        );
        for m in [Rdrand, Rdseed] {
            self.def(m, vec![UopSpec::unpipelined(PortClass::IntMul, 300, 300)]);
        }

        // -- misc --------------------------------------------------------------------------
        self.def(
            Pause,
            vec![
                UopSpec::unpipelined(PortClass::None, 0, 1),
                UopSpec::new(PortClass::None, 0),
                UopSpec::new(PortClass::None, 0),
                UopSpec::new(PortClass::None, 0),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanobench_x86::asm::parse_asm;

    fn desc(table: &DescriptorTable, text: &str) -> InstrDesc {
        let insts = parse_asm(text).unwrap();
        table.lookup(&insts[0]).expect("descriptor exists")
    }

    #[test]
    fn known_skylake_latencies() {
        let t = DescriptorTable::for_uarch(MicroArch::Skylake);
        assert_eq!(desc(&t, "add rax, rbx").latency(), 1);
        assert_eq!(desc(&t, "imul rax, rbx").latency(), 3);
        assert_eq!(desc(&t, "popcnt rax, rbx").latency(), 3);
        assert_eq!(desc(&t, "mulps xmm0, xmm1").latency(), 4);
        assert_eq!(desc(&t, "vfmadd231ps ymm0, ymm1, ymm2").latency(), 4);
        // A pure load has no compute µops: the load µop carries everything.
        assert!(desc(&t, "mov rax, [r14]").uops.is_empty());
        assert!(desc(&t, "mov [r14], rax").uops.is_empty());
        // But a reg-reg move does.
        assert_eq!(desc(&t, "mov rax, rbx").uops.len(), 1);
    }

    #[test]
    fn haswell_fma_latency_differs() {
        let hsw = DescriptorTable::for_uarch(MicroArch::Haswell);
        let skl = DescriptorTable::for_uarch(MicroArch::Skylake);
        assert_eq!(desc(&hsw, "vfmadd231ps ymm0, ymm1, ymm2").latency(), 5);
        assert_eq!(desc(&skl, "vfmadd231ps ymm0, ymm1, ymm2").latency(), 4);
        assert_eq!(desc(&hsw, "addps xmm0, xmm1").latency(), 3);
        assert_eq!(desc(&skl, "addps xmm0, xmm1").latency(), 4);
    }

    #[test]
    fn divider_is_unpipelined() {
        let t = DescriptorTable::for_uarch(MicroArch::Skylake);
        let d = desc(&t, "div rbx");
        assert!(d.uops[0].recip > 1);
        assert_eq!(d.uops[0].class, PortClass::Div);
    }

    #[test]
    fn rmw_alu_form_shares_compute_entry() {
        let t = DescriptorTable::for_uarch(MicroArch::Skylake);
        // `add [r14], rax` normalizes to (Add, [R, R]).
        assert_eq!(desc(&t, "add [r14], rax").latency(), 1);
        assert_eq!(desc(&t, "add rax, [r14]").latency(), 1);
    }

    #[test]
    fn unsupported_mnemonics_yield_none() {
        let t = DescriptorTable::for_uarch(MicroArch::Skylake);
        // CPUID and fences are engine specials, not table entries.
        let insts = parse_asm("cpuid; lfence; rdpmc").unwrap();
        for inst in &insts {
            assert!(t.lookup(inst).is_none(), "{inst}");
        }
    }

    #[test]
    fn variant_count_is_substantial() {
        // Case study I sweeps the explicit variants plus per-mnemonic
        // defaults across operand forms; the explicit table alone should
        // cover a meaningful set.
        let t = DescriptorTable::for_uarch(MicroArch::Skylake);
        assert!(t.variants().len() >= 15);
        assert!(t.default.len() >= 100, "got {}", t.default.len());
    }
}
