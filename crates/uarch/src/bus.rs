//! The bus trait connecting the core to its environment (memory, caches,
//! MSRs, interrupts) and the CPU fault model.
//!
//! The environment is implemented by `nanobench-machine`, which provides
//! the user-space and kernel-space variants (§III-D of the paper): address
//! translation, privilege checks, interrupt injection and MSR dispatch all
//! live behind this trait.

use nanobench_cache::hierarchy::MemAccessResult;
use nanobench_x86::inst::Mnemonic;
use std::error::Error;
use std::fmt;

/// A fault raised by the simulated CPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuFault {
    /// A privileged instruction was executed outside kernel mode (#GP).
    PrivilegedInstruction(Mnemonic),
    /// `RDPMC` executed in user mode with `CR4.PCE` clear (#GP).
    RdpmcNotAllowed,
    /// Access to an unmapped virtual address (#PF).
    PageFault {
        /// The faulting virtual address.
        vaddr: u64,
    },
    /// `RDMSR`/`WRMSR` on an unknown MSR (#GP).
    BadMsr {
        /// The MSR address in `ECX`.
        addr: u32,
    },
    /// Integer division by zero (#DE).
    DivideError,
    /// The instruction-count safety limit was exceeded (runaway loop).
    RunawayExecution,
}

impl fmt::Display for CpuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuFault::PrivilegedInstruction(m) => {
                write!(f, "privileged instruction `{m}` in user mode (#GP)")
            }
            CpuFault::RdpmcNotAllowed => {
                write!(f, "rdpmc in user mode without CR4.PCE (#GP)")
            }
            CpuFault::PageFault { vaddr } => write!(f, "page fault at {vaddr:#x}"),
            CpuFault::BadMsr { addr } => write!(f, "access to unknown MSR {addr:#x} (#GP)"),
            CpuFault::DivideError => write!(f, "divide error (#DE)"),
            CpuFault::RunawayExecution => write!(f, "instruction limit exceeded"),
        }
    }
}

impl Error for CpuFault {}

/// An asynchronous interruption of the benchmark (timer interrupt or
/// preemption), possible only in user mode (§IV-A2: the kernel version
/// disables interrupts and preemptions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptEvent {
    /// Cycles consumed by the handler.
    pub cycles: u64,
    /// Instructions retired by the handler (perturbs the counters).
    pub instructions: u64,
    /// µops issued by the handler.
    pub uops: u64,
}

/// The environment of the simulated core.
pub trait Bus {
    /// Semantically reads `len` bytes (1/2/4/8) at a virtual address.
    ///
    /// # Errors
    ///
    /// Returns [`CpuFault::PageFault`] for unmapped addresses.
    fn read(&mut self, vaddr: u64, len: u8) -> Result<u64, CpuFault>;

    /// Semantically writes `len` bytes at a virtual address.
    ///
    /// # Errors
    ///
    /// Returns [`CpuFault::PageFault`] for unmapped addresses.
    fn write(&mut self, vaddr: u64, len: u8, value: u64) -> Result<(), CpuFault>;

    /// Performs the *timing* access for a load or store: walks the cache
    /// hierarchy, updates replacement state, and reports where the data
    /// was found.
    ///
    /// # Errors
    ///
    /// Returns [`CpuFault::PageFault`] for unmapped addresses.
    fn access(&mut self, vaddr: u64, is_write: bool) -> Result<MemAccessResult, CpuFault>;

    /// Fused timing + data load: one hierarchy walk plus the semantic
    /// read of the same address, in that order. The default composes
    /// [`Bus::access`] and [`Bus::read`]; environments that translate
    /// addresses override it to translate once per memory µop.
    /// `is_write` marks the covering load of a read-modify-write, which
    /// runs the write side of the coherence protocol.
    ///
    /// # Errors
    ///
    /// Returns [`CpuFault::PageFault`] for unmapped addresses.
    fn load_fused(
        &mut self,
        vaddr: u64,
        len: u8,
        is_write: bool,
    ) -> Result<(MemAccessResult, u64), CpuFault> {
        let res = self.access(vaddr, is_write)?;
        let value = self.read(vaddr, len)?;
        Ok((res, value))
    }

    /// Fused timing + data store: one hierarchy walk (as a write) plus
    /// the semantic write of the same address, in that order. The default
    /// composes [`Bus::access`] and [`Bus::write`]; environments that
    /// translate addresses override it to translate once per memory µop.
    ///
    /// # Errors
    ///
    /// Returns [`CpuFault::PageFault`] for unmapped addresses.
    fn store_fused(
        &mut self,
        vaddr: u64,
        len: u8,
        value: u64,
    ) -> Result<MemAccessResult, CpuFault> {
        let res = self.access(vaddr, true)?;
        self.write(vaddr, len, value)?;
        Ok(res)
    }

    /// Whether the core runs at CPL 0 (the kernel-space version, §III-D).
    fn is_kernel(&self) -> bool;

    /// Whether `RDPMC` is allowed from user space (`CR4.PCE`, §II).
    fn rdpmc_allowed(&self) -> bool;

    /// `RDMSR` dispatch (PMU MSRs, prefetch control, ...).
    ///
    /// # Errors
    ///
    /// Returns [`CpuFault::BadMsr`] for unknown MSRs.
    fn rdmsr(&mut self, addr: u32) -> Result<u64, CpuFault>;

    /// `WRMSR` dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`CpuFault::BadMsr`] for unknown MSRs.
    fn wrmsr(&mut self, addr: u32, value: u64) -> Result<(), CpuFault>;

    /// Flushes all caches (`WBINVD`).
    fn wbinvd(&mut self);

    /// Invalidates one cache line (`CLFLUSH`).
    fn clflush(&mut self, vaddr: u64);

    /// Prefetches a line into the hierarchy (PREFETCHhx instructions).
    fn prefetch(&mut self, vaddr: u64);

    /// Polls for an asynchronous interrupt at the given absolute cycle.
    /// Returns `None` when interrupts are disabled (kernel mode with IF=0)
    /// or no interrupt is due.
    fn poll_interrupt(&mut self, cycle: u64) -> Option<InterruptEvent>;

    /// Sets the interrupt flag (`CLI`/`STI`).
    fn set_interrupt_flag(&mut self, enabled: bool);

    /// Appends the per-slice C-Box lookup deltas since the last call to
    /// `out` (drained into the PMU's uncore counters by the engine). The
    /// caller clears and reuses `out`, so the engine's hot loop performs
    /// no allocation; implementations push one delta per slice.
    fn drain_uncore_lookups(&mut self, out: &mut Vec<u64>);
}
