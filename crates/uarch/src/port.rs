//! Execution ports and per-microarchitecture port assignments.

use std::fmt;

/// A set of execution ports, as a bitmask (bit *i* = port *i*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PortSet(pub u8);

impl PortSet {
    /// The empty set (µops that never dispatch to a port, e.g. NOP).
    pub const NONE: PortSet = PortSet(0);

    /// Creates a set from port numbers.
    pub fn of(ports: &[u8]) -> PortSet {
        let mut mask = 0u8;
        for &p in ports {
            assert!(p < 8, "port numbers are 0..7");
            mask |= 1 << p;
        }
        PortSet(mask)
    }

    /// Whether the set contains port `p`.
    pub fn contains(self, p: u8) -> bool {
        self.0 & (1 << p) != 0
    }

    /// Iterates over the contained port numbers.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0..8).filter(move |p| self.contains(*p))
    }

    /// Number of ports in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for PortSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("-");
        }
        f.write_str("p")?;
        for p in self.iter() {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// The microarchitectures modeled by the simulator (the ten Intel Core
/// generations of Table I plus AMD Zen for the §III-L claim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variant names are the microarchitecture names
pub enum MicroArch {
    Nehalem,
    Westmere,
    SandyBridge,
    IvyBridge,
    Haswell,
    Broadwell,
    Skylake,
    KabyLake,
    CoffeeLake,
    CannonLake,
    Zen,
}

impl MicroArch {
    /// All modeled microarchitectures.
    pub const ALL: [MicroArch; 11] = [
        MicroArch::Nehalem,
        MicroArch::Westmere,
        MicroArch::SandyBridge,
        MicroArch::IvyBridge,
        MicroArch::Haswell,
        MicroArch::Broadwell,
        MicroArch::Skylake,
        MicroArch::KabyLake,
        MicroArch::CoffeeLake,
        MicroArch::CannonLake,
        MicroArch::Zen,
    ];

    /// Display name matching Table I.
    pub fn name(self) -> &'static str {
        match self {
            MicroArch::Nehalem => "Nehalem",
            MicroArch::Westmere => "Westmere",
            MicroArch::SandyBridge => "Sandy Bridge",
            MicroArch::IvyBridge => "Ivy Bridge",
            MicroArch::Haswell => "Haswell",
            MicroArch::Broadwell => "Broadwell",
            MicroArch::Skylake => "Skylake",
            MicroArch::KabyLake => "Kaby Lake",
            MicroArch::CoffeeLake => "Coffee Lake",
            MicroArch::CannonLake => "Cannon Lake",
            MicroArch::Zen => "Zen",
        }
    }

    /// Parses a microarchitecture name (case-insensitive, spaces optional).
    pub fn parse(name: &str) -> Option<MicroArch> {
        let norm: String = name
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect::<String>()
            .to_ascii_lowercase();
        MicroArch::ALL.into_iter().find(|m| {
            m.name()
                .chars()
                .filter(|c| !c.is_whitespace())
                .collect::<String>()
                .to_ascii_lowercase()
                == norm
        })
    }

    /// Number of programmable performance counters (§II-A2: 2–8 on Intel,
    /// 6 on AMD family 17h).
    pub fn n_prog_counters(self) -> usize {
        match self {
            MicroArch::Nehalem | MicroArch::Westmere => 4,
            MicroArch::Zen => 6,
            _ => 4,
        }
    }

    /// Whether the front end sustains four µops per cycle (all modeled
    /// parts; Ice Lake's five-wide allocation is out of scope).
    pub fn issue_width(self) -> u64 {
        4
    }
}

impl fmt::Display for MicroArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Port-class assignments of one microarchitecture.
///
/// The descriptor table speaks in *classes* (ALU, vector multiply, load,
/// ...); this structure resolves a class to the concrete port set of the
/// part, so one instruction table serves all microarchitectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortConfig {
    /// Number of execution ports (6 before Haswell, 8 after).
    pub n_ports: u8,
    /// Simple integer ALU.
    pub alu: PortSet,
    /// Integer multiply.
    pub int_mul: PortSet,
    /// Divider.
    pub div: PortSet,
    /// Shifts and rotates.
    pub shift: PortSet,
    /// Branch execution.
    pub branch: PortSet,
    /// Vector add / FP add.
    pub vec_add: PortSet,
    /// Vector multiply / FMA.
    pub vec_mul: PortSet,
    /// Vector logic (bitwise).
    pub vec_logic: PortSet,
    /// Shuffles / permutes.
    pub shuffle: PortSet,
    /// Load ports.
    pub load: PortSet,
    /// Store-address generation.
    pub store_addr: PortSet,
    /// Store-data.
    pub store_data: PortSet,
    /// LEA.
    pub lea: PortSet,
}

impl PortConfig {
    /// The port configuration of a microarchitecture.
    pub fn for_uarch(uarch: MicroArch) -> PortConfig {
        use MicroArch::*;
        match uarch {
            Nehalem | Westmere => PortConfig {
                n_ports: 6,
                alu: PortSet::of(&[0, 1, 5]),
                int_mul: PortSet::of(&[1]),
                div: PortSet::of(&[0]),
                shift: PortSet::of(&[0, 5]),
                branch: PortSet::of(&[5]),
                vec_add: PortSet::of(&[1]),
                vec_mul: PortSet::of(&[0]),
                vec_logic: PortSet::of(&[0, 1, 5]),
                shuffle: PortSet::of(&[5]),
                load: PortSet::of(&[2]),
                store_addr: PortSet::of(&[3]),
                store_data: PortSet::of(&[4]),
                lea: PortSet::of(&[1]),
            },
            SandyBridge | IvyBridge => PortConfig {
                n_ports: 6,
                alu: PortSet::of(&[0, 1, 5]),
                int_mul: PortSet::of(&[1]),
                div: PortSet::of(&[0]),
                shift: PortSet::of(&[0, 5]),
                branch: PortSet::of(&[5]),
                vec_add: PortSet::of(&[1]),
                vec_mul: PortSet::of(&[0]),
                vec_logic: PortSet::of(&[0, 1, 5]),
                shuffle: PortSet::of(&[5]),
                load: PortSet::of(&[2, 3]),
                store_addr: PortSet::of(&[2, 3]),
                store_data: PortSet::of(&[4]),
                lea: PortSet::of(&[1, 5]),
            },
            Haswell | Broadwell => PortConfig {
                n_ports: 8,
                alu: PortSet::of(&[0, 1, 5, 6]),
                int_mul: PortSet::of(&[1]),
                div: PortSet::of(&[0]),
                shift: PortSet::of(&[0, 6]),
                branch: PortSet::of(&[0, 6]),
                vec_add: PortSet::of(&[1]),
                vec_mul: PortSet::of(&[0, 1]),
                vec_logic: PortSet::of(&[0, 1, 5]),
                shuffle: PortSet::of(&[5]),
                load: PortSet::of(&[2, 3]),
                store_addr: PortSet::of(&[2, 3, 7]),
                store_data: PortSet::of(&[4]),
                lea: PortSet::of(&[1, 5]),
            },
            Skylake | KabyLake | CoffeeLake | CannonLake => PortConfig {
                n_ports: 8,
                alu: PortSet::of(&[0, 1, 5, 6]),
                int_mul: PortSet::of(&[1]),
                div: PortSet::of(&[0]),
                shift: PortSet::of(&[0, 6]),
                branch: PortSet::of(&[0, 6]),
                vec_add: PortSet::of(&[0, 1]),
                vec_mul: PortSet::of(&[0, 1]),
                vec_logic: PortSet::of(&[0, 1, 5]),
                shuffle: PortSet::of(&[5]),
                load: PortSet::of(&[2, 3]),
                store_addr: PortSet::of(&[2, 3, 7]),
                store_data: PortSet::of(&[4]),
                lea: PortSet::of(&[1, 5]),
            },
            Zen => PortConfig {
                n_ports: 8,
                alu: PortSet::of(&[0, 1, 2, 3]),
                int_mul: PortSet::of(&[1]),
                div: PortSet::of(&[2]),
                shift: PortSet::of(&[0, 1, 2, 3]),
                branch: PortSet::of(&[3]),
                vec_add: PortSet::of(&[4, 5]),
                vec_mul: PortSet::of(&[4, 5]),
                vec_logic: PortSet::of(&[4, 5, 6]),
                shuffle: PortSet::of(&[6]),
                load: PortSet::of(&[7]),
                store_addr: PortSet::of(&[7]),
                store_data: PortSet::of(&[7]),
                lea: PortSet::of(&[0, 1, 2, 3]),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_set_basics() {
        let s = PortSet::of(&[2, 3]);
        assert!(s.contains(2));
        assert!(s.contains(3));
        assert!(!s.contains(0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_string(), "p23");
        assert_eq!(PortSet::NONE.to_string(), "-");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn uarch_parse_round_trip() {
        for m in MicroArch::ALL {
            assert_eq!(MicroArch::parse(m.name()), Some(m));
        }
        assert_eq!(MicroArch::parse("skylake"), Some(MicroArch::Skylake));
        assert_eq!(
            MicroArch::parse("sandy bridge"),
            Some(MicroArch::SandyBridge)
        );
        assert_eq!(
            MicroArch::parse("SANDYBRIDGE"),
            Some(MicroArch::SandyBridge)
        );
        assert_eq!(MicroArch::parse("P6"), None);
    }

    #[test]
    fn skylake_ports_match_documentation() {
        // §III-A's example output shows loads split across ports 2 and 3.
        let cfg = PortConfig::for_uarch(MicroArch::Skylake);
        assert_eq!(cfg.load, PortSet::of(&[2, 3]));
        assert_eq!(cfg.n_ports, 8);
        assert_eq!(cfg.alu.len(), 4);
        // Nehalem has a single load port.
        let nhm = PortConfig::for_uarch(MicroArch::Nehalem);
        assert_eq!(nhm.load.len(), 1);
        assert_eq!(nhm.n_ports, 6);
    }

    #[test]
    #[should_panic(expected = "port numbers")]
    fn port_out_of_range_panics() {
        let _ = PortSet::of(&[8]);
    }
}
