//! A small branch predictor: per-branch two-bit saturating counters.
//!
//! The predictor state persists across benchmark runs, so nanoBench's
//! warm-up runs (§III-H: "train the branch predictor to reduce the number
//! of mispredicted branches") have their documented effect.

/// Two-bit-counter branch predictor keyed by instruction index.
///
/// Counters live in a dense array indexed by the branch's instruction
/// index, grown on demand; an absent entry reads as the weakly-not-taken
/// initial state. The table is consulted on every conditional branch the
/// interpreter retires, so lookups must not hash.
#[derive(Debug, Default, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
}

/// Initial counter value: weakly predicted not-taken.
const WEAK_NOT_TAKEN: u8 = 1;

impl BranchPredictor {
    /// Creates an empty predictor (all branches weakly predicted
    /// not-taken).
    pub fn new() -> BranchPredictor {
        BranchPredictor::default()
    }

    /// Predicts whether the branch at `index` is taken.
    pub fn predict(&self, index: usize) -> bool {
        self.counters.get(index).copied().unwrap_or(WEAK_NOT_TAKEN) >= 2
    }

    /// Updates the predictor with the actual outcome; returns `true` if
    /// the branch was mispredicted.
    pub fn update(&mut self, index: usize, taken: bool) -> bool {
        if index >= self.counters.len() {
            self.counters.resize(index + 1, WEAK_NOT_TAKEN);
        }
        let counter = &mut self.counters[index];
        let predicted = *counter >= 2;
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        predicted != taken
    }

    /// Forgets all history.
    pub fn reset(&mut self) {
        self.counters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_loop_branch() {
        let mut bp = BranchPredictor::new();
        // First taken occurrence: predicted not-taken -> mispredict.
        assert!(bp.update(5, true));
        // Second: counter reached 2 -> predicted taken.
        assert!(!bp.update(5, true));
        assert!(!bp.update(5, true));
        // Loop exit: predicted taken, actually not -> mispredict.
        assert!(bp.update(5, false));
        // Re-entering the loop next run: still predicted taken (counter 2).
        assert!(!bp.update(5, true));
    }

    #[test]
    fn distinct_branches_are_independent() {
        let mut bp = BranchPredictor::new();
        bp.update(1, true);
        bp.update(1, true);
        assert!(bp.predict(1));
        assert!(!bp.predict(2));
    }

    #[test]
    fn reset_forgets() {
        let mut bp = BranchPredictor::new();
        bp.update(1, true);
        bp.update(1, true);
        bp.reset();
        assert!(!bp.predict(1));
    }
}
