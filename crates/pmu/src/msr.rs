//! Model-specific register addresses used by the simulated machine.
//!
//! Only the MSRs nanoBench itself touches are modeled: the PMU counter and
//! control registers, `APERF`/`MPERF` (§II-A1), and the prefetcher-control
//! register `MSR_MISC_FEATURE_CONTROL` (§IV-A2, owned by the cache crate).

/// `IA32_MPERF`: reference ("maximum") frequency clock count.
pub const IA32_MPERF: u32 = 0xE7;
/// `IA32_APERF`: actual frequency clock count.
pub const IA32_APERF: u32 = 0xE8;
/// First programmable counter (`IA32_PMC0`); PMC*i* is `IA32_PMC0 + i`.
pub const IA32_PMC0: u32 = 0xC1;
/// First event-select register; PERFEVTSEL*i* is `IA32_PERFEVTSEL0 + i`.
pub const IA32_PERFEVTSEL0: u32 = 0x186;
/// Fixed counter 0: instructions retired.
pub const IA32_FIXED_CTR0: u32 = 0x309;
/// Fixed counter 1: core cycles.
pub const IA32_FIXED_CTR1: u32 = 0x30A;
/// Fixed counter 2: reference cycles.
pub const IA32_FIXED_CTR2: u32 = 0x30B;
/// Fixed-counter control register.
pub const IA32_FIXED_CTR_CTRL: u32 = 0x38D;
/// Global performance counter control.
pub const IA32_PERF_GLOBAL_CTRL: u32 = 0x38F;
/// Prefetcher control (set bits disable prefetchers; §IV-A2).
pub const MSR_MISC_FEATURE_CONTROL: u32 = 0x1A4;
/// First C-Box uncore counter (simplified flat numbering; one per slice).
pub const MSR_UNC_CBO_PERFCTR0: u32 = 0x706;
