//! The simulated performance monitoring unit.
//!
//! Models the counter architecture described in §II of the paper: three
//! fixed-function counters (instructions retired, core cycles, reference
//! cycles) readable with `RDPMC`, between two and eight programmable
//! counters, the `APERF`/`MPERF` pair readable only with `RDMSR` (kernel
//! space), and per-C-Box uncore counters for the L3 slices.
//!
//! Counting can be paused and resumed, which backs nanoBench's magic byte
//! sequence feature (§III-I).

use crate::event::EventCode;
use crate::msr;

/// Ratio of reference cycles to core cycles, as a rational number.
///
/// Chosen to reproduce the §III-A example output (4.00 core cycles ↦ 3.52
/// reference cycles): 22/25 = 0.88.
pub const REF_CYCLE_RATIO: (u64, u64) = (22, 25);

/// Width of the fixed, programmable, and C-Box counters: 48 bits on the
/// CPUs the paper considers. Counters accumulate internally in 64 bits but
/// every architectural read (`RDPMC`, `RDMSR`) and write (`WRMSR`) is
/// reduced modulo 2^48, so a counter that runs past 2^48 wraps exactly as
/// the hardware's does. `APERF`/`MPERF` are full-width 64-bit MSRs and are
/// not masked.
pub const COUNTER_WIDTH: u32 = 48;

/// Mask applied to counter reads/writes (low [`COUNTER_WIDTH`] bits).
const CTR_MASK: u64 = (1 << COUNTER_WIDTH) - 1;

#[derive(Debug, Clone, Copy, Default)]
struct ProgCounter {
    sel: Option<EventCode>,
    enabled: bool,
    value: u64,
}

/// An uncore count was addressed to a C-Box slice the PMU does not have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UncoreSliceError {
    /// The out-of-range slice index.
    pub slice: usize,
    /// How many uncore counters this PMU was built with.
    pub slices: usize,
}

impl std::fmt::Display for UncoreSliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "C-Box index {} out of range: PMU has {} uncore counters",
            self.slice, self.slices
        )
    }
}

impl std::error::Error for UncoreSliceError {}

/// The per-core PMU plus the package's uncore (C-Box) counters.
#[derive(Debug, Clone)]
pub struct Pmu {
    prog: Vec<ProgCounter>,
    /// Fixed counters: [instructions retired, core cycles, reference cycles].
    fixed: [u64; 3],
    ref_remainder: u64,
    aperf: u64,
    mperf: u64,
    mperf_remainder: u64,
    counting: bool,
    last_sync_cycle: u64,
    uncore: Vec<u64>,
}

impl Pmu {
    /// Creates a PMU with `n_prog` programmable counters (2–8 on the CPUs
    /// the paper considers) and `n_slices` C-Box counters.
    pub fn new(n_prog: usize, n_slices: usize) -> Pmu {
        Pmu {
            prog: vec![ProgCounter::default(); n_prog],
            fixed: [0; 3],
            ref_remainder: 0,
            aperf: 0,
            mperf: 0,
            mperf_remainder: 0,
            counting: true,
            last_sync_cycle: 0,
            uncore: vec![0; n_slices],
        }
    }

    /// Number of programmable counters.
    pub fn n_programmable(&self) -> usize {
        self.prog.len()
    }

    /// Programs counter `idx` with an event (or disables it with `None`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn configure(&mut self, idx: usize, sel: Option<EventCode>) {
        let ctr = &mut self.prog[idx];
        ctr.sel = sel;
        ctr.enabled = sel.is_some();
        ctr.value = 0;
    }

    /// Whether counting is currently enabled (magic pause/resume, §III-I).
    pub fn counting(&self) -> bool {
        self.counting
    }

    /// Pauses or resumes counting. The caller must sync cycles first so the
    /// pause boundary is accurate.
    pub fn set_counting(&mut self, on: bool) {
        self.counting = on;
    }

    /// Records `n` occurrences of an event.
    pub fn count(&mut self, occurrence: EventCode, n: u64) {
        if !self.counting || n == 0 {
            return;
        }
        for ctr in &mut self.prog {
            if let Some(sel) = ctr.sel {
                if ctr.enabled && occurrence.matches(sel) {
                    ctr.value += n;
                }
            }
        }
    }

    /// Records `n` retired instructions (fixed counter 0).
    pub fn retire_instructions(&mut self, n: u64) {
        if self.counting {
            self.fixed[0] += n;
        }
    }

    /// Advances the cycle-based counters to absolute cycle `now`.
    ///
    /// The engine calls this before every counter read and before toggling
    /// counting, so paused intervals contribute nothing.
    pub fn sync_cycles(&mut self, now: u64) {
        let delta = now.saturating_sub(self.last_sync_cycle);
        self.last_sync_cycle = now;
        if !self.counting || delta == 0 {
            return;
        }
        self.fixed[1] += delta;
        self.aperf += delta;
        let (num, den) = REF_CYCLE_RATIO;
        let ref_total = delta * num + self.ref_remainder;
        self.fixed[2] += ref_total / den;
        self.ref_remainder = ref_total % den;
        let mperf_total = delta * num + self.mperf_remainder;
        self.mperf += mperf_total / den;
        self.mperf_remainder = mperf_total % den;
    }

    /// Restores power-on state — all counters zeroed and deprogrammed,
    /// counting enabled, cycle bookkeeping rewound — without reallocating
    /// the counter arrays.
    pub fn reset(&mut self) {
        for ctr in &mut self.prog {
            *ctr = ProgCounter::default();
        }
        self.fixed = [0; 3];
        self.ref_remainder = 0;
        self.aperf = 0;
        self.mperf = 0;
        self.mperf_remainder = 0;
        self.counting = true;
        self.last_sync_cycle = 0;
        self.uncore.fill(0);
    }

    /// Records `n` lookups on C-Box `slice`.
    ///
    /// # Errors
    ///
    /// Returns [`UncoreSliceError`] when `slice` is out of range — a PMU
    /// built for a different slice count than the hierarchy feeding it
    /// (the slice count must come from `HierarchyConfig::slice_count`).
    /// Nothing is counted in that case, in any build profile: the caller
    /// decides whether a misattributed slice is fatal, instead of release
    /// builds silently dropping the counts behind a `debug_assert`.
    pub fn count_uncore(&mut self, slice: usize, n: u64) -> Result<(), UncoreSliceError> {
        let Some(c) = self.uncore.get_mut(slice) else {
            return Err(UncoreSliceError {
                slice,
                slices: self.uncore.len(),
            });
        };
        if self.counting {
            *c += n;
        }
        Ok(())
    }

    /// `RDPMC` semantics: `ecx` selects a programmable counter (0..N) or,
    /// with bit 30 set, a fixed counter (0..2). Values are truncated to
    /// the 48-bit counter width ([`COUNTER_WIDTH`]). Returns `None` for
    /// invalid selectors (hardware would fault with #GP).
    pub fn rdpmc(&self, ecx: u32) -> Option<u64> {
        if ecx & (1 << 30) != 0 {
            self.fixed.get((ecx & 0x3FFF_FFFF) as usize).copied()
        } else {
            self.prog.get(ecx as usize).map(|c| c.value)
        }
        .map(|v| v & CTR_MASK)
    }

    /// `RDMSR` for PMU-owned MSRs; `None` if the address is not ours.
    /// Counter MSRs read truncated to 48 bits; `APERF`/`MPERF` are
    /// full-width.
    pub fn rdmsr(&self, addr: u32) -> Option<u64> {
        match addr {
            msr::IA32_APERF => Some(self.aperf),
            msr::IA32_MPERF => Some(self.mperf),
            msr::IA32_FIXED_CTR0 => Some(self.fixed[0] & CTR_MASK),
            msr::IA32_FIXED_CTR1 => Some(self.fixed[1] & CTR_MASK),
            msr::IA32_FIXED_CTR2 => Some(self.fixed[2] & CTR_MASK),
            a if (msr::IA32_PMC0..msr::IA32_PMC0 + 8).contains(&a) => self
                .prog
                .get((a - msr::IA32_PMC0) as usize)
                .map(|c| c.value & CTR_MASK),
            a if (msr::IA32_PERFEVTSEL0..msr::IA32_PERFEVTSEL0 + 8).contains(&a) => self
                .prog
                .get((a - msr::IA32_PERFEVTSEL0) as usize)
                .map(|c| match c.sel {
                    Some(sel) => {
                        (sel.code as u64 & 0xFF)
                            | ((sel.umask as u64) << 8)
                            | ((c.enabled as u64) << 22)
                    }
                    None => 0,
                }),
            a if (msr::MSR_UNC_CBO_PERFCTR0..msr::MSR_UNC_CBO_PERFCTR0 + 8).contains(&a) => self
                .uncore
                .get((a - msr::MSR_UNC_CBO_PERFCTR0) as usize)
                .map(|v| v & CTR_MASK),
            _ => None,
        }
    }

    /// `WRMSR` for PMU-owned MSRs; returns `false` if the address is not
    /// ours. Counter MSRs store only their 48 writable bits.
    pub fn wrmsr(&mut self, addr: u32, value: u64) -> bool {
        match addr {
            msr::IA32_APERF => self.aperf = value,
            msr::IA32_MPERF => self.mperf = value,
            msr::IA32_FIXED_CTR0 => self.fixed[0] = value & CTR_MASK,
            msr::IA32_FIXED_CTR1 => self.fixed[1] = value & CTR_MASK,
            msr::IA32_FIXED_CTR2 => self.fixed[2] = value & CTR_MASK,
            a if (msr::IA32_PMC0..msr::IA32_PMC0 + 8).contains(&a) => {
                if let Some(c) = self.prog.get_mut((a - msr::IA32_PMC0) as usize) {
                    c.value = value & CTR_MASK;
                }
            }
            a if (msr::IA32_PERFEVTSEL0..msr::IA32_PERFEVTSEL0 + 8).contains(&a) => {
                if let Some(c) = self.prog.get_mut((a - msr::IA32_PERFEVTSEL0) as usize) {
                    let code = (value & 0xFF) as u16;
                    let umask = ((value >> 8) & 0xFF) as u8;
                    let enabled = value & (1 << 22) != 0;
                    c.sel = if code == 0 && umask == 0 {
                        None
                    } else {
                        Some(EventCode::new(code, umask))
                    };
                    c.enabled = enabled;
                }
            }
            a if (msr::MSR_UNC_CBO_PERFCTR0..msr::MSR_UNC_CBO_PERFCTR0 + 8).contains(&a) => {
                if let Some(c) = self
                    .uncore
                    .get_mut((a - msr::MSR_UNC_CBO_PERFCTR0) as usize)
                {
                    *c = value & CTR_MASK;
                }
            }
            _ => return false,
        }
        true
    }

    /// Zeroes all counters (configuration is kept).
    pub fn reset_counts(&mut self) {
        for c in &mut self.prog {
            c.value = 0;
        }
        self.fixed = [0; 3];
        self.ref_remainder = 0;
        self.aperf = 0;
        self.mperf = 0;
        self.mperf_remainder = 0;
        self.uncore.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::events;

    #[test]
    fn programmable_counting_respects_selector() {
        let mut pmu = Pmu::new(4, 0);
        pmu.configure(0, Some(events::MEM_LOAD_L1_HIT));
        pmu.configure(1, Some(events::uops_dispatched_port(2)));
        pmu.count(events::MEM_LOAD_L1_HIT, 3);
        pmu.count(events::uops_dispatched_port(3), 5);
        assert_eq!(pmu.rdpmc(0), Some(3));
        assert_eq!(pmu.rdpmc(1), Some(0));
        assert_eq!(pmu.rdpmc(2), Some(0)); // unconfigured
        assert_eq!(pmu.rdpmc(9), None);
    }

    #[test]
    fn fixed_counters_and_ratio() {
        let mut pmu = Pmu::new(2, 0);
        pmu.retire_instructions(10);
        pmu.sync_cycles(100);
        assert_eq!(pmu.rdpmc(1 << 30), Some(10)); // instructions
        assert_eq!(pmu.rdpmc((1 << 30) | 1), Some(100)); // core cycles
        assert_eq!(pmu.rdpmc((1 << 30) | 2), Some(88)); // 100 * 0.88
    }

    #[test]
    fn pausing_freezes_everything() {
        let mut pmu = Pmu::new(2, 1);
        pmu.configure(0, Some(events::UOPS_ISSUED_ANY));
        pmu.sync_cycles(10);
        pmu.set_counting(false);
        pmu.count(events::UOPS_ISSUED_ANY, 7);
        pmu.retire_instructions(7);
        pmu.count_uncore(0, 2).unwrap();
        pmu.sync_cycles(50); // 40 paused cycles contribute nothing
        pmu.set_counting(true);
        pmu.sync_cycles(60);
        assert_eq!(pmu.rdpmc(0), Some(0));
        assert_eq!(pmu.rdpmc(1 << 30), Some(0));
        assert_eq!(pmu.rdpmc((1 << 30) | 1), Some(20)); // 10 + 10 counted
        assert_eq!(pmu.rdmsr(msr::MSR_UNC_CBO_PERFCTR0), Some(0));
    }

    #[test]
    fn msr_round_trip() {
        let mut pmu = Pmu::new(4, 2);
        // Program counter 1 with D1.01 via WRMSR, as the kernel would.
        let evtsel = 0xD1u64 | (0x01 << 8) | (1 << 22);
        assert!(pmu.wrmsr(msr::IA32_PERFEVTSEL0 + 1, evtsel));
        assert_eq!(pmu.rdmsr(msr::IA32_PERFEVTSEL0 + 1), Some(evtsel));
        pmu.count(events::MEM_LOAD_L1_HIT, 4);
        assert_eq!(pmu.rdmsr(msr::IA32_PMC0 + 1), Some(4));
        assert!(!pmu.wrmsr(0x1234, 0));
        assert_eq!(pmu.rdmsr(0x1234), None);
    }

    #[test]
    fn aperf_mperf_only_via_msr() {
        let mut pmu = Pmu::new(2, 0);
        pmu.sync_cycles(50);
        assert_eq!(pmu.rdmsr(msr::IA32_APERF), Some(50));
        assert_eq!(pmu.rdmsr(msr::IA32_MPERF), Some(44));
    }

    #[test]
    fn counters_are_48_bits_and_wrap() {
        let mut pmu = Pmu::new(2, 1);
        pmu.configure(0, Some(events::UOPS_ISSUED_ANY));

        // Programmable counter: park it just below 2^48, count past it.
        assert!(pmu.wrmsr(msr::IA32_PMC0, (1 << 48) - 5));
        pmu.count(events::UOPS_ISSUED_ANY, 5);
        assert_eq!(pmu.rdpmc(0), Some(0), "exactly 2^48 wraps to zero");
        pmu.count(events::UOPS_ISSUED_ANY, 7);
        assert_eq!(pmu.rdpmc(0), Some(7));
        assert_eq!(pmu.rdmsr(msr::IA32_PMC0), Some(7));

        // Fixed cycle counter: the same, driven by sync_cycles.
        assert!(pmu.wrmsr(msr::IA32_FIXED_CTR1, (1 << 48) - 3));
        pmu.sync_cycles(10);
        assert_eq!(pmu.rdpmc((1 << 30) | 1), Some(7));
        assert_eq!(pmu.rdmsr(msr::IA32_FIXED_CTR1), Some(7));

        // Fixed instruction counter past 2^48 via retirement.
        assert!(pmu.wrmsr(msr::IA32_FIXED_CTR0, (1 << 48) - 1));
        pmu.retire_instructions(2);
        assert_eq!(pmu.rdpmc(1 << 30), Some(1));

        // Uncore counter wraps too.
        assert!(pmu.wrmsr(msr::MSR_UNC_CBO_PERFCTR0, (1 << 48) - 2));
        pmu.count_uncore(0, 6).unwrap();
        assert_eq!(pmu.rdmsr(msr::MSR_UNC_CBO_PERFCTR0), Some(4));

        // Writes themselves only keep the writable 48 bits.
        assert!(pmu.wrmsr(msr::IA32_PMC0, u64::MAX));
        assert_eq!(pmu.rdpmc(0), Some((1 << 48) - 1));
    }

    #[test]
    fn aperf_is_full_width() {
        // APERF/MPERF are 64-bit MSRs; they must not be truncated.
        let mut pmu = Pmu::new(2, 0);
        assert!(pmu.wrmsr(msr::IA32_APERF, 1 << 60));
        pmu.sync_cycles(5);
        assert_eq!(pmu.rdmsr(msr::IA32_APERF), Some((1 << 60) + 5));
    }

    #[test]
    fn reset_keeps_configuration() {
        let mut pmu = Pmu::new(2, 0);
        pmu.configure(0, Some(events::UOPS_ISSUED_ANY));
        pmu.count(events::UOPS_ISSUED_ANY, 5);
        pmu.reset_counts();
        assert_eq!(pmu.rdpmc(0), Some(0));
        pmu.count(events::UOPS_ISSUED_ANY, 2);
        assert_eq!(pmu.rdpmc(0), Some(2), "selector must survive reset");
    }
}
