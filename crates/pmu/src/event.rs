//! Performance events: (event code, unit mask) pairs with names.

use std::fmt;

/// A performance event selector: event code plus unit mask.
///
/// This mirrors the `IA32_PERFEVTSELx` encoding that both the RDPMC-visible
/// programmable counters and nanoBench's configuration files use (§III-J).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventCode {
    /// The event select field (e.g. `0xD1` for `MEM_LOAD_RETIRED`).
    pub code: u16,
    /// The unit mask (e.g. `0x02` for `.L2_HIT`).
    pub umask: u8,
}

impl EventCode {
    /// Creates an event code.
    pub const fn new(code: u16, umask: u8) -> EventCode {
        EventCode { code, umask }
    }

    /// Whether an *occurrence* with this code/umask is counted by a counter
    /// programmed with `sel`: codes must match and the occurrence's umask
    /// bits must be within the programmed umask.
    pub fn matches(self, sel: EventCode) -> bool {
        self.code == sel.code && (self.umask & sel.umask) != 0
    }
}

impl fmt::Display for EventCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02X}.{:02X}", self.code, self.umask)
    }
}

/// A named event (as listed in a performance counter configuration file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfEvent {
    /// Selector.
    pub code: EventCode,
    /// Canonical name, e.g. `"MEM_LOAD_RETIRED.L1_HIT"`.
    pub name: String,
}

impl PerfEvent {
    /// Creates a named event.
    pub fn new(code: u16, umask: u8, name: impl Into<String>) -> PerfEvent {
        PerfEvent {
            code: EventCode::new(code, umask),
            name: name.into(),
        }
    }
}

impl fmt::Display for PerfEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.name)
    }
}

/// Canonical event selectors emitted by the simulated core.
///
/// The codes follow Intel's Skylake event tables so that configuration
/// files written for real hardware parse meaningfully.
pub mod events {
    use super::EventCode;

    /// One µop issued (`UOPS_ISSUED.ANY`).
    pub const UOPS_ISSUED_ANY: EventCode = EventCode::new(0x0E, 0x01);
    /// µop dispatched to port N (`UOPS_DISPATCHED_PORT.PORT_N`): umask 1<<N.
    pub const fn uops_dispatched_port(port: u8) -> EventCode {
        EventCode::new(0xA1, 1 << port)
    }
    /// Retired load that hit the L1 (`MEM_LOAD_RETIRED.L1_HIT`).
    pub const MEM_LOAD_L1_HIT: EventCode = EventCode::new(0xD1, 0x01);
    /// Retired load that hit the L2.
    pub const MEM_LOAD_L2_HIT: EventCode = EventCode::new(0xD1, 0x02);
    /// Retired load that hit the L3.
    pub const MEM_LOAD_L3_HIT: EventCode = EventCode::new(0xD1, 0x04);
    /// Retired load that missed the L1.
    pub const MEM_LOAD_L1_MISS: EventCode = EventCode::new(0xD1, 0x08);
    /// Retired load that missed the L2.
    pub const MEM_LOAD_L2_MISS: EventCode = EventCode::new(0xD1, 0x10);
    /// Retired load that missed the L3.
    pub const MEM_LOAD_L3_MISS: EventCode = EventCode::new(0xD1, 0x20);
    /// Mispredicted retired branch (`BR_MISP_RETIRED.ALL_BRANCHES`).
    pub const BR_MISP_RETIRED: EventCode = EventCode::new(0xC5, 0x01);
    /// Retired branch (`BR_INST_RETIRED.ALL_BRANCHES`).
    pub const BR_INST_RETIRED: EventCode = EventCode::new(0xC4, 0x01);
    /// L2 demand request (`L2_RQSTS.REFERENCES`).
    pub const L2_RQSTS_REFERENCES: EventCode = EventCode::new(0x24, 0xFF);
    /// Retired load whose L3 lookup snoop-hit a clean copy in another
    /// core's private caches (`MEM_LOAD_L3_HIT_RETIRED.XSNP_HIT`).
    pub const MEM_LOAD_XSNP_HIT: EventCode = EventCode::new(0xD2, 0x02);
    /// Retired load whose L3 lookup snoop-hit a *modified* copy in another
    /// core's private caches (`MEM_LOAD_L3_HIT_RETIRED.XSNP_HITM`) — the
    /// cross-core forwarding case, the expensive half of false sharing.
    pub const MEM_LOAD_XSNP_HITM: EventCode = EventCode::new(0xD2, 0x04);
    /// Demand read-for-ownership sent to the uncore — a store that had to
    /// invalidate remote copies or upgrade a shared line
    /// (`OFFCORE_REQUESTS.DEMAND_RFO`).
    pub const OFFCORE_DEMAND_RFO: EventCode = EventCode::new(0xB0, 0x04);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_respects_umask_bits() {
        let sel = EventCode::new(0xA1, 0x0C); // ports 2 and 3
        assert!(events::uops_dispatched_port(2).matches(sel));
        assert!(events::uops_dispatched_port(3).matches(sel));
        assert!(!events::uops_dispatched_port(0).matches(sel));
        assert!(!EventCode::new(0xA2, 0x04).matches(sel));
    }

    #[test]
    fn display_format() {
        assert_eq!(EventCode::new(0xD1, 0x01).to_string(), "D1.01");
        assert_eq!(
            PerfEvent::new(0x0E, 0x01, "UOPS_ISSUED.ANY").to_string(),
            "0E.01 UOPS_ISSUED.ANY"
        );
    }
}
