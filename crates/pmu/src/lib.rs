//! Simulated performance monitoring unit for the nanoBench reproduction.
//!
//! Implements the counter architecture of §II of the paper: fixed-function
//! counters, programmable counters, `APERF`/`MPERF`, and uncore (C-Box)
//! counters, together with the `RDPMC`/`RDMSR` access interface and the
//! configuration-file format of §III-J.
//!
//! # Examples
//!
//! ```
//! use nanobench_pmu::{Pmu, config::parse_config};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let events = parse_config("D1.01 MEM_LOAD_RETIRED.L1_HIT")?;
//! let mut pmu = Pmu::new(4, 0);
//! pmu.configure(0, Some(events[0].code));
//! pmu.count(events[0].code, 1);
//! assert_eq!(pmu.rdpmc(0), Some(1));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod counters;
pub mod event;
pub mod msr;

pub use config::{parse_config, ParseConfigError};
pub use counters::{Pmu, UncoreSliceError, COUNTER_WIDTH, REF_CYCLE_RATIO};
pub use event::{EventCode, PerfEvent};
