//! Performance-counter configuration files (§III-J).
//!
//! nanoBench specifies the events to measure in a configuration file with a
//! simple line-based syntax (`<EvtSel>.<UMask>[.<modifiers>] <Name>`), so
//! that adapting the tool to a new CPU only requires a new file rather than
//! a code change. This module parses that format and ships the built-in
//! configurations used by the paper's examples.

use crate::event::PerfEvent;
use std::error::Error;
use std::fmt;

/// An error produced while parsing a configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl Error for ParseConfigError {}

/// Parses a nanoBench counter configuration.
///
/// Lines have the form `EvtSel.UMask[.modifier...] Name`, with `#`
/// comments; hex digits without `0x` prefixes, as in the original tool.
/// Modifiers (`CMSK=n`, `EDG`, `INV`, ...) are accepted and ignored by the
/// simulated PMU.
///
/// # Errors
///
/// Returns [`ParseConfigError`] on malformed lines.
///
/// # Examples
///
/// ```
/// use nanobench_pmu::config::parse_config;
/// let events = parse_config("D1.01 MEM_LOAD_RETIRED.L1_HIT\n# comment\n").unwrap();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].name, "MEM_LOAD_RETIRED.L1_HIT");
/// ```
pub fn parse_config(text: &str) -> Result<Vec<PerfEvent>, ParseConfigError> {
    let mut events = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let (selector, name) =
            line.split_once(char::is_whitespace)
                .ok_or_else(|| ParseConfigError {
                    line: line_no,
                    message: "expected `<EvtSel>.<UMask> <Name>`".to_string(),
                })?;
        let mut parts = selector.split('.');
        let code_str = parts.next().unwrap_or("");
        let umask_str = parts.next().ok_or_else(|| ParseConfigError {
            line: line_no,
            message: format!("selector `{selector}` has no umask"),
        })?;
        // Remaining dot-separated parts are modifiers (CMSK=..., EDG, ...):
        // accepted and ignored.
        let code = u16::from_str_radix(code_str, 16).map_err(|_| ParseConfigError {
            line: line_no,
            message: format!("bad event select `{code_str}`"),
        })?;
        let umask = u8::from_str_radix(umask_str, 16).map_err(|_| ParseConfigError {
            line: line_no,
            message: format!("bad umask `{umask_str}`"),
        })?;
        events.push(PerfEvent::new(code, umask, name.trim()));
    }
    Ok(events)
}

/// The built-in Skylake configuration used by the paper's §III-A example.
///
/// The first ten lines reproduce the events whose values the example output
/// lists; the rest cover the events the case studies need.
pub fn cfg_skylake() -> &'static str {
    "\
# Skylake core events (subset; see §III-J of the paper)
0E.01 UOPS_ISSUED.ANY
A1.01 UOPS_DISPATCHED_PORT.PORT_0
A1.02 UOPS_DISPATCHED_PORT.PORT_1
A1.04 UOPS_DISPATCHED_PORT.PORT_2
A1.08 UOPS_DISPATCHED_PORT.PORT_3
A1.10 UOPS_DISPATCHED_PORT.PORT_4
A1.20 UOPS_DISPATCHED_PORT.PORT_5
A1.40 UOPS_DISPATCHED_PORT.PORT_6
A1.80 UOPS_DISPATCHED_PORT.PORT_7
D1.01 MEM_LOAD_RETIRED.L1_HIT
D1.08 MEM_LOAD_RETIRED.L1_MISS
D1.02 MEM_LOAD_RETIRED.L2_HIT
D1.10 MEM_LOAD_RETIRED.L2_MISS
D1.04 MEM_LOAD_RETIRED.L3_HIT
D1.20 MEM_LOAD_RETIRED.L3_MISS
C4.01 BR_INST_RETIRED.ALL_BRANCHES
C5.01 BR_MISP_RETIRED.ALL_BRANCHES
24.FF L2_RQSTS.REFERENCES
"
}

/// A minimal configuration with the events of the §III-A example output.
pub fn cfg_example() -> &'static str {
    "\
0E.01 UOPS_ISSUED.ANY
A1.01 UOPS_DISPATCHED_PORT.PORT_0
A1.02 UOPS_DISPATCHED_PORT.PORT_1
A1.04 UOPS_DISPATCHED_PORT.PORT_2
A1.08 UOPS_DISPATCHED_PORT.PORT_3
D1.01 MEM_LOAD_RETIRED.L1_HIT
D1.08 MEM_LOAD_RETIRED.L1_MISS
"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventCode;

    #[test]
    fn parses_builtin_configs() {
        let events = parse_config(cfg_skylake()).unwrap();
        assert_eq!(events.len(), 18);
        assert_eq!(events[0].code, EventCode::new(0x0E, 0x01));
        assert_eq!(events[9].name, "MEM_LOAD_RETIRED.L1_HIT");
        assert_eq!(parse_config(cfg_example()).unwrap().len(), 7);
    }

    #[test]
    fn modifiers_are_tolerated() {
        let events = parse_config("A1.01.CMSK=1.EDG UOPS_PORT0_EDGE").unwrap();
        assert_eq!(events[0].code, EventCode::new(0xA1, 0x01));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_config("0E.01 OK\nnot-a-selector NAME").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_config("ZZ.01 NAME").unwrap_err();
        assert!(err.message.contains("bad event select"));
        let err = parse_config("0E NAME").unwrap_err();
        assert!(err.message.contains("no umask"));
    }
}
