//! Replacement-policy identification by random access sequences (§VI-C1).
//!
//! "The second tool generates random access sequences, and compares the
//! number of hits obtained by executing them with cacheSeq with the number
//! of hits in a simulation of different replacement policies, including
//! common policies like LRU, PLRU, and FIFO, as well as all meaningful QLRU
//! variants. If there is only one policy that agrees with all measurement
//! results, the tool concludes that this is likely the policy actually
//! used."

use crate::cacheseq::{AccessSeq, CacheSeq};
use nanobench_cache::policy::{all_meaningful_qlru_variants, simulate_sequence, PolicyKind};
use nanobench_core::NbError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The candidate library: LRU, FIFO, PLRU (power-of-two associativity
/// only), MRU, the Sandy Bridge MRU variant, and all meaningful
/// deterministic QLRU variants (§VI-B2).
pub fn candidate_library(assoc: usize) -> Vec<PolicyKind> {
    let mut out = vec![PolicyKind::Lru, PolicyKind::Fifo];
    if assoc.is_power_of_two() {
        out.push(PolicyKind::Plru);
    }
    out.push(PolicyKind::Mru {
        fill_sets_all_ones: false,
    });
    out.push(PolicyKind::Mru {
        fill_sets_all_ones: true,
    });
    out.extend(
        all_meaningful_qlru_variants()
            .into_iter()
            .map(PolicyKind::Qlru),
    );
    out
}

/// Groups candidates into observational-equivalence classes by simulating
/// a battery of random sequences; returns one representative per class
/// (plus the full class). Some QLRU combinations are observationally
/// equivalent (§VI-B2 notes e.g. R0/R1 with U0), so exact-match inference
/// can only identify classes.
pub fn equivalence_classes(
    candidates: &[PolicyKind],
    assoc: usize,
    battery: usize,
    seed: u64,
) -> Vec<Vec<PolicyKind>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let universe = assoc as u64 + 2;
    let seqs: Vec<Vec<u64>> = (0..battery)
        .map(|_| {
            let len = assoc * 3 + rng.gen_range(0..assoc);
            (0..len).map(|_| rng.gen_range(0..universe)).collect()
        })
        .collect();
    let mut classes: Vec<(Vec<Vec<bool>>, Vec<PolicyKind>)> = Vec::new();
    for cand in candidates {
        let signature: Vec<Vec<bool>> = seqs
            .iter()
            .map(|s| simulate_sequence(cand, assoc, 0, s))
            .collect();
        match classes.iter_mut().find(|(sig, _)| *sig == signature) {
            Some((_, members)) => members.push(cand.clone()),
            None => classes.push((signature, vec![cand.clone()])),
        }
    }
    classes.into_iter().map(|(_, members)| members).collect()
}

/// Result of a policy-fitting run.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// Surviving equivalence classes (each a set of behaviourally
    /// identical policies); ideally exactly one.
    pub matching: Vec<Vec<PolicyKind>>,
    /// Number of random sequences evaluated on the hardware.
    pub sequences_tested: usize,
}

impl FitResult {
    /// Whether exactly one equivalence class survived.
    pub fn is_unique(&self) -> bool {
        self.matching.len() == 1
    }

    /// Whether the (ground truth) policy is among the survivors.
    pub fn contains(&self, kind: &PolicyKind) -> bool {
        self.matching.iter().any(|class| class.contains(kind))
    }

    /// A short human-readable summary, naming one representative per
    /// surviving class.
    pub fn summary(&self) -> String {
        if self.matching.is_empty() {
            return "no deterministic candidate matches (non-deterministic policy?)".to_string();
        }
        let names: Vec<String> = self
            .matching
            .iter()
            .map(|class| {
                if class.len() == 1 {
                    class[0].name()
                } else {
                    format!("{} (+{} equivalent)", class[0].name(), class.len() - 1)
                }
            })
            .collect();
        names.join(", ")
    }
}

/// Runs the inference: random sequences through cacheSeq vs. simulation.
///
/// Every candidate is simulated individually against every measured
/// sequence. Grouping candidates into equivalence classes up front and
/// simulating only one representative per class would be cheaper, but a
/// finite battery can lump distinguishable policies into one class, and a
/// later measurement that disagrees with the representative would then
/// silently eliminate the whole class — including the true policy. Classes
/// are therefore only formed at the end, from the actual survivors.
///
/// # Errors
///
/// Propagates measurement errors from cacheSeq.
pub fn fit_policy(
    cs: &mut CacheSeq,
    assoc: usize,
    max_sequences: usize,
    seed: u64,
) -> Result<FitResult, NbError> {
    let mut survivors = candidate_library(assoc);
    let mut rng = SmallRng::seed_from_u64(seed);
    let universe = assoc + 2;
    let mut tested = 0usize;
    while tested < max_sequences && survivors.len() > 1 {
        // Actively search (in simulation, which is cheap) for a random
        // sequence on which the surviving candidates disagree; only such
        // sequences are worth measuring. If none is found, the remaining
        // candidates are observationally equivalent and we stop.
        let mut chosen: Option<(Vec<usize>, Vec<u64>)> = None;
        for _ in 0..4000 {
            let len = assoc * 3 + rng.gen_range(0..assoc);
            let blocks: Vec<usize> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
            let blocks_u64: Vec<u64> = blocks.iter().map(|b| *b as u64).collect();
            let counts: Vec<u64> = survivors
                .iter()
                .map(|cand| {
                    simulate_sequence(cand, assoc, 0, &blocks_u64)
                        .iter()
                        .filter(|h| **h)
                        .count() as u64
                })
                .collect();
            if counts.windows(2).any(|w| w[0] != w[1]) {
                chosen = Some((blocks, counts));
                break;
            }
        }
        let Some((blocks, counts)) = chosen else {
            break; // surviving candidates cannot be separated by hit counts
        };
        let seq = AccessSeq::measured_all(&blocks);
        let measured = cs.run_hits(&seq)?;
        tested += 1;
        let mut keep = counts.iter().map(|c| *c == measured);
        survivors.retain(|_| keep.next().unwrap());
    }
    // Group the survivors for reporting. The search loop above stopped
    // because no random sequence separates them, so a fresh battery of the
    // same distribution groups them into a single class in the normal case.
    let matching = if survivors.is_empty() {
        Vec::new()
    } else {
        equivalence_classes(&survivors, assoc, 40, seed ^ 0xC1A55)
    };
    Ok(FitResult {
        matching,
        sequences_tested: tested,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addresses::Level;
    use nanobench_cache::presets::cpu_by_microarch;

    #[test]
    fn library_size_and_content() {
        let lib = candidate_library(8);
        assert!(lib.contains(&PolicyKind::Plru));
        assert_eq!(lib.len(), 5 + 480);
        let lib12 = candidate_library(12);
        assert!(!lib12.contains(&PolicyKind::Plru));
    }

    #[test]
    fn equivalence_classes_are_partition() {
        let lib = candidate_library(4);
        let classes = equivalence_classes(&lib, 4, 30, 1);
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, lib.len());
        assert!(classes.len() > 10, "should distinguish many candidates");
        assert!(
            classes.len() < lib.len(),
            "some QLRU variants must be observationally equivalent"
        );
    }

    #[test]
    fn fits_l1_plru_on_skylake() {
        let cpu = cpu_by_microarch("Skylake").unwrap();
        let mut cs = CacheSeq::new(&cpu, Level::L1, 7, None, 12, 11).unwrap();
        let fit = fit_policy(&mut cs, cpu.l1_assoc, 60, 5).unwrap();
        assert!(
            fit.contains(&PolicyKind::Plru),
            "PLRU must survive, got: {}",
            fit.summary()
        );
        assert!(fit.is_unique(), "got: {}", fit.summary());
    }
}
