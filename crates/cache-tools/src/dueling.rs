//! Detection of set dueling (§VI-C3, following Wong's approach, ref [48]).
//!
//! The Ivy Bridge / Haswell / Broadwell L3 caches adaptively switch between
//! two policies: a few *leader sets* are dedicated to each policy and the
//! remaining *follower sets* use whichever policy currently performs
//! better (§VI-B3). This tool finds the dedicated sets — "unlike [Wong's]
//! approach, our tool also supports caches in which the fixed sets are not
//! the same in all C-Boxes" (Haswell: slice 0 only; Broadwell: ranges
//! swapped between slices, §VI-D).
//!
//! Detection strategy on the Table I parts, whose two policies are a
//! deterministic QLRU variant (A) and its probabilistic `MRp` variant (B):
//!
//! 1. B-leader sets always run the probabilistic policy — they are exactly
//!    the sets whose fill-evict-probe outcome varies across repetitions.
//! 2. A-leader sets are the only other sets whose *misses move the PSEL
//!    counter*: pumping misses into an A-leader pushes the followers to
//!    policy B, which is observable on a reference follower set.
//!
//! The scan drives the simulated hardware directly through same-set load
//! sequences (the nanoBench measurement path for individual sequences is
//! exercised by the cacheSeq-based tools; a full-cache scan uses the raw
//! path for speed — see DESIGN.md §5).

use nanobench_core::Session;
use nanobench_machine::Machine;
use std::collections::HashMap;
use std::ops::Range;

/// The dueling roles found in one slice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SliceReport {
    /// Sets dedicated to the deterministic policy (A).
    pub leader_a: Vec<Range<usize>>,
    /// Sets dedicated to the probabilistic policy (B).
    pub leader_b: Vec<Range<usize>>,
}

/// The dedicated sets of every slice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DuelingReport {
    /// Reports indexed by slice.
    pub per_slice: Vec<SliceReport>,
}

impl DuelingReport {
    /// Whether any dedicated sets were found at all (false for
    /// non-adaptive caches like Skylake's).
    pub fn is_adaptive(&self) -> bool {
        self.per_slice
            .iter()
            .any(|s| !s.leader_a.is_empty() || !s.leader_b.is_empty())
    }
}

/// Compresses a sorted list of set indices into ranges.
fn to_ranges(mut sets: Vec<usize>) -> Vec<Range<usize>> {
    sets.sort_unstable();
    sets.dedup();
    let mut out: Vec<Range<usize>> = Vec::new();
    for s in sets {
        match out.last_mut() {
            Some(r) if r.end == s => r.end = s + 1,
            _ => out.push(s..s + 1),
        }
    }
    out
}

/// Per-(slice, set) buckets of same-set physical addresses from a
/// contiguous region.
fn bucket_addresses(
    machine: &Machine,
    base: u64,
    size: u64,
    per_bucket: usize,
) -> HashMap<(usize, usize), Vec<u64>> {
    let mut buckets: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
    let mut addr = base;
    while addr + 64 <= base + size {
        let key = machine.hierarchy().l3_location(addr);
        let v = buckets.entry(key).or_default();
        if v.len() < per_bucket {
            v.push(addr);
        }
        addr += 64;
    }
    buckets
}

/// Fill-evict-probe outcome of one set: which of the first `assoc + 1`
/// blocks survive. Starts from per-line flushes so repetitions are
/// independent.
fn probe_signature(machine: &mut Machine, addrs: &[u64], assoc: usize) -> Vec<bool> {
    // Two associativities' worth of fills maximizes the number of
    // insertion-age draws, so probabilistic policies reveal themselves
    // quickly.
    let k = (2 * assoc + 1).min(addrs.len());
    for &a in &addrs[..k] {
        machine.hierarchy_mut().clflush(a);
    }
    for &a in &addrs[..k] {
        machine.hierarchy_mut().access(a);
    }
    (0..k)
        .map(|i| {
            machine.hierarchy().probe_level(addrs[i])
                != nanobench_cache::hierarchy::HitLevel::Memory
        })
        .collect()
}

/// Whether the set's probe behaviour varies across repetitions
/// (probabilistic policy).
fn is_nondeterministic(machine: &mut Machine, addrs: &[u64], assoc: usize, reps: usize) -> bool {
    let first = probe_signature(machine, addrs, assoc);
    (1..reps).any(|_| probe_signature(machine, addrs, assoc) != first)
}

/// Neutralizes the policy selector before a per-set test. Probing leader
/// sets generates misses that move PSEL, which would make *followers* look
/// non-deterministic and contaminate the scan. Wong's approach equivalently
/// quiesces the selector with balanced training traffic; with the simulated
/// hardware we reset the counter directly (experiment instrumentation; the
/// detector's decisions still use only load/flush/probe observations).
fn neutralize_psel(machine: &Machine) {
    machine.hierarchy().psel().reset();
}

/// Pumps `n` misses into the set (cycling `assoc + 1` blocks with per-line
/// flushes so every access misses).
fn pump_misses(machine: &mut Machine, addrs: &[u64], assoc: usize, n: usize) {
    let k = (assoc + 1).min(addrs.len());
    for i in 0..n {
        let a = addrs[i % k];
        machine.hierarchy_mut().clflush(a);
        machine.hierarchy_mut().access(a);
    }
}

/// [`find_dedicated_sets`] on a reusable [`Session`]'s machine, so a scan
/// campaign shares the session the other cache tools already hold instead
/// of building a dedicated machine per scan.
pub fn find_dedicated_sets_on(
    session: &mut Session,
    region: u64,
    region_size: u64,
    set_range: Range<usize>,
    reps: usize,
) -> DuelingReport {
    find_dedicated_sets(session.machine_mut(), region, region_size, set_range, reps)
}

/// Finds the dedicated (leader) sets in the given set range of each slice.
///
/// `region` must be a physically-contiguous allocation large enough to
/// give every (slice, set) pair `assoc + 2` same-set blocks.
pub fn find_dedicated_sets(
    machine: &mut Machine,
    region: u64,
    region_size: u64,
    set_range: Range<usize>,
    reps: usize,
) -> DuelingReport {
    let assoc = machine.hierarchy().config().l3.assoc;
    let slices = machine.hierarchy().config().l3.slices;
    let buckets = bucket_addresses(machine, region, region_size, 2 * assoc + 4);

    let mut report = DuelingReport {
        per_slice: vec![SliceReport::default(); slices],
    };

    // Phase 1: B-leaders are non-deterministic regardless of PSEL.
    let mut deterministic: Vec<(usize, usize)> = Vec::new();
    for slice in 0..slices {
        let mut b_sets = Vec::new();
        for set in set_range.clone() {
            let Some(addrs) = buckets.get(&(slice, set)).cloned() else {
                continue;
            };
            if addrs.len() < 2 * assoc + 1 {
                continue;
            }
            neutralize_psel(machine);
            if is_nondeterministic(machine, &addrs, assoc, reps) {
                b_sets.push(set);
            } else {
                deterministic.push((slice, set));
            }
        }
        report.per_slice[slice].leader_b = to_ranges(b_sets);
    }

    // A known B-leader lets us push PSEL back toward A between tests.
    let b_leader_addrs = report.per_slice.iter().enumerate().find_map(|(slice, r)| {
        r.leader_b
            .first()
            .and_then(|range| buckets.get(&(slice, range.start)).cloned())
    });

    // Phase 2: a deterministic set is an A-leader iff pumping misses into
    // it flips a reference follower to the (non-deterministic) B policy.
    if let Some(b_addrs) = b_leader_addrs {
        // Reference follower: a deterministic set far away from any
        // detected leader candidates (outside the scanned range if
        // possible, otherwise the first deterministic set).
        let reference = deterministic
            .iter()
            .find(|(sl, st)| {
                *sl == 0
                    && report
                        .per_slice
                        .iter()
                        .all(|r| r.leader_b.iter().all(|range| !range.contains(st)))
            })
            .copied();
        let Some(reference) = reference else {
            return report;
        };
        let ref_addrs = buckets
            .get(&reference)
            .cloned()
            .expect("reference bucket exists");

        let mut a_sets: Vec<Vec<usize>> = vec![Vec::new(); slices];
        for (slice, set) in deterministic {
            if (slice, set) == reference {
                continue;
            }
            let Some(addrs) = buckets.get(&(slice, set)).cloned() else {
                continue;
            };
            // Reset PSEL toward A by pumping misses into the B-leader.
            pump_misses(machine, &b_addrs, assoc, 1500);
            let before = is_nondeterministic(machine, &ref_addrs, assoc, reps);
            // Pump misses into the candidate; if it is an A-leader, PSEL
            // moves toward B and the follower becomes non-deterministic.
            pump_misses(machine, &addrs, assoc, 1500);
            let after = is_nondeterministic(machine, &ref_addrs, assoc, reps);
            if !before && after {
                a_sets[slice].push(set);
            }
        }
        for (slice, sets) in a_sets.into_iter().enumerate() {
            report.per_slice[slice].leader_a = to_ranges(sets);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanobench_cache::presets::cpu_by_microarch;
    use nanobench_machine::Mode;

    fn region_for(machine: &mut Machine, sets: usize) -> (u64, u64) {
        let slices = machine.hierarchy().config().l3.slices as u64;
        let total_sets = machine.hierarchy().config().l3.sets_per_slice() as u64;
        let assoc = machine.hierarchy().config().l3.assoc as u64;
        let size = (2 * assoc + 8) * total_sets * slices * 64 * 2;
        let base = machine.alloc_contiguous(size).unwrap();
        let _ = sets;
        (base, size)
    }

    #[test]
    fn to_ranges_compresses() {
        assert_eq!(to_ranges(vec![5, 3, 4, 9]), vec![3..6, 9..10]);
        assert!(to_ranges(vec![]).is_empty());
    }

    #[test]
    fn skylake_is_not_adaptive() {
        let cpu = cpu_by_microarch("Skylake").unwrap();
        let mut m = Machine::from_cpu(&cpu, Mode::Kernel, 5);
        m.hierarchy_mut().prefetchers_mut().disable_all();
        let (base, size) = region_for(&mut m, 64);
        let report = find_dedicated_sets(&mut m, base, size, 500..600, 4);
        assert!(!report.is_adaptive());
    }

    #[test]
    fn ivy_bridge_leaders_found_in_scanned_window() {
        // Scan a window covering the first leader range (512-575) plus
        // part of the second (768-831) on slice 0; per §VI-D Ivy Bridge
        // has leaders in ALL slices.
        let cpu = cpu_by_microarch("Ivy Bridge").unwrap();
        let mut m = Machine::from_cpu(&cpu, Mode::Kernel, 5);
        m.hierarchy_mut().prefetchers_mut().disable_all();
        let (base, size) = region_for(&mut m, 0);
        let report = find_dedicated_sets(&mut m, base, size, 760..840, 8);
        // The probabilistic leaders 768-831 must show up in every slice.
        for (slice, r) in report.per_slice.iter().enumerate() {
            let b_sets: usize = r.leader_b.iter().map(|r| r.len()).sum();
            assert!(
                b_sets >= 48,
                "slice {slice}: expected ~64 B-leaders in 768..832, found {b_sets} ({:?})",
                r.leader_b
            );
            for range in &r.leader_b {
                assert!(range.start >= 768 && range.end <= 832, "{range:?}");
            }
        }
    }
}
