//! cacheSeq: measuring the hits and misses of an access sequence (§VI-C).
//!
//! cacheSeq takes a sequence of blocks that map to the same cache set,
//! generates a microbenchmark, and evaluates it with the kernel-space
//! version of nanoBench. Per-element measurement inclusion uses the
//! pause/resume-counting feature (§III-I); between two accesses to the same
//! set of a lower-level cache, eviction accesses to the higher-level caches
//! are inserted (and excluded from measurement) so the access actually
//! reaches the cache under analysis; `WBINVD` can be executed at the start
//! of each sequence.

use crate::addresses::{build_pool, AddrPool, Level};
use nanobench_cache::presets::CpuSpec;
use nanobench_core::{BenchSpec, NbError, Session};
use nanobench_machine::{Machine, Mode};
use nanobench_x86::inst::{Instruction, Mnemonic};
use nanobench_x86::operand::{MemRef, Operand};
use nanobench_x86::reg::{Gpr, Width};

/// One element of an access sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqItem {
    /// Index of the block (into the tool's block pool): `B3` has block 3.
    pub block: usize,
    /// Whether this access is included in the measurement (§VI-C).
    pub measured: bool,
}

/// An access sequence, e.g. `<WBINVD> B0 B1 B2? B0?`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessSeq {
    /// Execute `WBINVD` before the sequence (flushes all caches).
    pub wbinvd: bool,
    /// The accesses in order.
    pub items: Vec<SeqItem>,
}

impl AccessSeq {
    /// Parses the sequence notation used in the paper: blocks are written
    /// `B<i>`, a `?` suffix marks the access as measured, and an optional
    /// leading `<WBINVD>` flushes the caches first.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token.
    pub fn parse(text: &str) -> Result<AccessSeq, String> {
        let mut seq = AccessSeq::default();
        for token in text.split_whitespace() {
            let lower = token.to_ascii_lowercase();
            if lower == "<wbinvd>" {
                if !seq.items.is_empty() {
                    return Err("<WBINVD> must come first".to_string());
                }
                seq.wbinvd = true;
                continue;
            }
            let (body, measured) = match lower.strip_suffix('?') {
                Some(b) => (b, true),
                None => (lower.as_str(), false),
            };
            let block = body
                .strip_prefix('b')
                .and_then(|n| n.parse::<usize>().ok())
                .ok_or_else(|| format!("cannot parse sequence token `{token}`"))?;
            seq.items.push(SeqItem { block, measured });
        }
        Ok(seq)
    }

    /// A sequence accessing `blocks` in order, with every access measured,
    /// after a `WBINVD`.
    pub fn measured_all(blocks: &[usize]) -> AccessSeq {
        AccessSeq {
            wbinvd: true,
            items: blocks
                .iter()
                .map(|b| SeqItem {
                    block: *b,
                    measured: true,
                })
                .collect(),
        }
    }

    /// The number of distinct blocks required.
    pub fn max_block(&self) -> usize {
        self.items.iter().map(|i| i.block + 1).max().unwrap_or(0)
    }
}

/// The cacheSeq tool bound to one (CPU, level, set, slice) target.
///
/// Holds one reusable [`Session`] (machine, arenas, the level's hit-event
/// configuration) and a [`BenchSpec`] whose code is swapped per sequence —
/// the expensive setup (contiguous allocation, address-pool construction,
/// prefetcher disabling) happens once, and every sequence of a campaign
/// reuses it. Sequences normalize their own starting state via `<WBINVD>`,
/// so no session reset is needed (or wanted: a reset would re-enable the
/// prefetchers).
#[derive(Debug)]
pub struct CacheSeq {
    session: Session,
    spec: BenchSpec,
    pool: AddrPool,
}

impl CacheSeq {
    /// Prepares cacheSeq for a target cache set.
    ///
    /// Allocates physically-contiguous memory (kernel mode, §IV-D),
    /// disables the hardware prefetchers via MSR 0x1A4 (§IV-A2), and
    /// collects `n_blocks` same-set block addresses plus eviction
    /// addresses.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures as [`NbError::InvalidOption`].
    pub fn new(
        cpu: &CpuSpec,
        level: Level,
        set: usize,
        slice: Option<usize>,
        n_blocks: usize,
        seed: u64,
    ) -> Result<CacheSeq, NbError> {
        let mut machine = Machine::from_cpu(cpu, Mode::Kernel, seed);
        // Disable prefetchers exactly as the real tool does: by setting
        // bits in MSR 0x1A4 (§IV-A2).
        machine
            .run(&nanobench_x86::asm::parse_asm(
                "mov rcx, 0x1A4; mov rax, 0xF; mov rdx, 0; wrmsr",
            )?)
            .map_err(NbError::from)?;
        // Enough contiguous memory that every set/slice combination has
        // plenty of candidate blocks.
        let slices = machine.hierarchy().config().l3.slices as u64;
        let sets = machine.hierarchy().config().l3.sets_per_slice() as u64;
        let need = (n_blocks as u64 + 80) * sets * slices * 64 * 2;
        let region = machine
            .alloc_contiguous(need.max(8 << 20))
            .map_err(|e| NbError::InvalidOption(e.to_string()))?;
        let pool = build_pool(
            &mut machine,
            region,
            need.max(8 << 20),
            level,
            set,
            slice,
            n_blocks,
        );
        let mut session = Session::with_machine(machine);
        session.config_str(level.hit_event_config())?;
        let mut spec = BenchSpec::new();
        spec.no_mem(true)
            .basic_mode(true)
            .n_measurements(1)
            .unroll_count(1);
        Ok(CacheSeq {
            session,
            spec,
            pool,
        })
    }

    /// The address pool (for tests and diagnostics).
    pub fn pool(&self) -> &AddrPool {
        &self.pool
    }

    /// The underlying machine.
    pub fn machine_mut(&mut self) -> &mut Machine {
        self.session.machine_mut()
    }

    /// The underlying session.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    fn load_of(addr: u64) -> Instruction {
        Instruction::binary(
            Mnemonic::Mov,
            Operand::gpr(Gpr::Rbx),
            Operand::Mem(MemRef::absolute(addr, Width::Q)),
        )
    }

    /// Generates the microbenchmark body for a sequence.
    fn body(&self, seq: &AccessSeq) -> Vec<Instruction> {
        let mut out = Vec::new();
        let mut counting = true;
        let set_counting = |out: &mut Vec<Instruction>, on: bool, counting: &mut bool| {
            if *counting != on {
                out.push(Instruction::new(if on {
                    Mnemonic::NbResume
                } else {
                    Mnemonic::NbPause
                }));
                *counting = on;
            }
        };
        for (i, item) in seq.items.iter().enumerate() {
            // Eviction pads between same-set accesses (never before the
            // first access): excluded from measurement.
            if i > 0 && !self.pool.evictors.is_empty() {
                set_counting(&mut out, false, &mut counting);
                for _ in 0..2 {
                    for &e in &self.pool.evictors {
                        out.push(Self::load_of(e));
                    }
                }
            }
            set_counting(&mut out, item.measured, &mut counting);
            out.push(Self::load_of(self.pool.target_blocks[item.block]));
        }
        set_counting(&mut out, true, &mut counting);
        out
    }

    /// Runs the sequence once and returns the number of *measured*
    /// accesses that hit in the target cache.
    ///
    /// # Errors
    ///
    /// Propagates benchmark errors. Sequences referencing more blocks than
    /// the pool holds yield [`NbError::InvalidOption`].
    pub fn run_hits(&mut self, seq: &AccessSeq) -> Result<u64, NbError> {
        if seq.max_block() > self.pool.target_blocks.len() {
            return Err(NbError::InvalidOption(format!(
                "sequence needs {} blocks but the pool holds {}",
                seq.max_block(),
                self.pool.target_blocks.len()
            )));
        }
        let body = self.body(seq);
        let init = if seq.wbinvd {
            vec![Instruction::new(Mnemonic::Wbinvd)]
        } else {
            Vec::new()
        };
        self.spec.init(init).code(body);
        let result = self.session.run(&self.spec)?;
        let value = result.get(self.pool.level.hit_event()).unwrap_or(0.0);
        Ok(value.round().max(0.0) as u64)
    }

    /// Number of measured accesses in a sequence (for hit-ratio math).
    pub fn measured_count(seq: &AccessSeq) -> usize {
        seq.items.iter().filter(|i| i.measured).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanobench_cache::presets::cpu_by_microarch;

    #[test]
    fn parse_sequence_notation() {
        let seq = AccessSeq::parse("<WBINVD> B0 B1 B2? B0?").unwrap();
        assert!(seq.wbinvd);
        assert_eq!(seq.items.len(), 4);
        assert!(!seq.items[0].measured);
        assert!(seq.items[2].measured);
        assert_eq!(seq.items[3].block, 0);
        assert_eq!(seq.max_block(), 3);
        assert!(AccessSeq::parse("X1").is_err());
        assert!(AccessSeq::parse("B0 <WBINVD>").is_err());
    }

    #[test]
    fn l1_hits_and_misses_are_measured() {
        let cpu = cpu_by_microarch("Skylake").unwrap();
        let mut cs = CacheSeq::new(&cpu, Level::L1, 3, None, 12, 9).unwrap();
        // After WBINVD, a first access misses, a repeat hits (8-way set).
        let seq = AccessSeq::parse("<WBINVD> B0? B0? B1? B0?").unwrap();
        let hits = cs.run_hits(&seq).unwrap();
        assert_eq!(hits, 2, "B0 repeat and final B0 hit; first accesses miss");
        // Filling 9 distinct blocks into an 8-way PLRU set evicts B0.
        let seq = AccessSeq::parse("<WBINVD> B0 B1 B2 B3 B4 B5 B6 B7 B8 B0?").unwrap();
        let hits = cs.run_hits(&seq).unwrap();
        assert_eq!(hits, 0, "B0 must be evicted by the 9th distinct block");
    }

    #[test]
    fn l2_eviction_pads_let_accesses_reach_l2() {
        let cpu = cpu_by_microarch("Skylake").unwrap();
        let mut cs = CacheSeq::new(&cpu, Level::L2, 17, None, 8, 9).unwrap();
        // B0 twice: the second access must be served by the L2 (the pads
        // evicted it from L1), counting as an L2 hit.
        let seq = AccessSeq::parse("<WBINVD> B0 B0?").unwrap();
        let hits = cs.run_hits(&seq).unwrap();
        assert_eq!(hits, 1, "second access should hit in L2 after L1 eviction");
    }

    #[test]
    fn l3_sequence_on_skylake_matches_its_qlru_policy() {
        let cpu = cpu_by_microarch("Skylake").unwrap();
        let mut cs = CacheSeq::new(&cpu, Level::L3, 64, Some(0), 20, 9).unwrap();
        let assoc = cpu.l3_assoc;
        // Fill the 16-way set, then re-access the first block: with
        // QLRU_H11_M1_R0_U0 nothing exceeds the associativity, so it hits.
        let blocks: Vec<usize> = (0..assoc).chain([0]).collect();
        let seq = AccessSeq::measured_all(&blocks);
        let hits = cs.run_hits(&seq).unwrap();
        // All fills miss; the final re-access hits.
        assert_eq!(hits, 1);
    }
}
