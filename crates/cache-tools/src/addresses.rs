//! Address selection for cache microbenchmarks.
//!
//! cacheSeq needs blocks "that map to the same cache set" (§VI-C) — and,
//! for the L3, to the same slice — plus *eviction addresses* that flush a
//! line out of the higher-level caches without touching the target set, so
//! that an access actually reaches the cache under analysis. All of this
//! requires control over physical addresses, hence the kernel version's
//! physically-contiguous memory (§III-G, §IV-D).

use nanobench_cache::hierarchy::HitLevel;
use nanobench_machine::Machine;

/// The cache level a tool targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// L1 data cache.
    L1,
    /// Private L2.
    L2,
    /// Shared L3 (specific slice).
    L3,
}

impl Level {
    /// The hit level measured for accesses served by this cache.
    pub fn hit_level(self) -> HitLevel {
        match self {
            Level::L1 => HitLevel::L1,
            Level::L2 => HitLevel::L2,
            Level::L3 => HitLevel::L3,
        }
    }

    /// The PMU event name counting hits at this level.
    pub fn hit_event(self) -> &'static str {
        match self {
            Level::L1 => "MEM_LOAD_RETIRED.L1_HIT",
            Level::L2 => "MEM_LOAD_RETIRED.L2_HIT",
            Level::L3 => "MEM_LOAD_RETIRED.L3_HIT",
        }
    }

    /// Counter configuration line for [`Level::hit_event`].
    pub fn hit_event_config(self) -> &'static str {
        match self {
            Level::L1 => "D1.01 MEM_LOAD_RETIRED.L1_HIT",
            Level::L2 => "D1.02 MEM_LOAD_RETIRED.L2_HIT",
            Level::L3 => "D1.04 MEM_LOAD_RETIRED.L3_HIT",
        }
    }
}

/// A pool of addresses for one target (level, set, slice).
#[derive(Debug, Clone)]
pub struct AddrPool {
    /// Distinct block addresses mapping to the target set (and slice).
    pub target_blocks: Vec<u64>,
    /// Addresses that evict the target set's lines from the levels above
    /// the target without touching the target set itself.
    pub evictors: Vec<u64>,
    /// The target level.
    pub level: Level,
    /// Target set index (in the target level).
    pub set: usize,
    /// Target slice (L3 only).
    pub slice: Option<usize>,
}

/// Builds an address pool by scanning a physically-contiguous region.
///
/// `n_blocks` target blocks are collected. For L2/L3 targets, enough
/// evictors are collected to displace the L1 (and L2) copies of target
/// lines (`4 ×` the respective associativity, applied twice by the
/// sequence generator).
///
/// # Panics
///
/// Panics if the region is too small to find the requested addresses —
/// grow the contiguous allocation instead of handling this at runtime.
pub fn build_pool(
    machine: &mut Machine,
    region_base: u64,
    region_size: u64,
    level: Level,
    set: usize,
    slice: Option<usize>,
    n_blocks: usize,
) -> AddrPool {
    let mut target_blocks = Vec::with_capacity(n_blocks);
    let mut evictors = Vec::new();
    let h = machine.hierarchy();
    let l1_assoc = h.config().l1.assoc;
    let l2_assoc = h.config().l2.assoc;
    let n_evictors = match level {
        Level::L1 => 0,
        Level::L2 => 4 * l1_assoc,
        Level::L3 => 4 * l2_assoc.max(l1_assoc),
    };

    let mut addr = region_base;
    let end = region_base + region_size;
    // The reference L2 set of the target blocks (fixed once the first
    // target block is found; all same-L3-set blocks share it).
    let mut target_l2_set = None;
    while addr + 64 <= end && (target_blocks.len() < n_blocks || evictors.len() < n_evictors) {
        let paddr = machine.translate(addr).expect("region is mapped");
        let h = machine.hierarchy();
        let is_target = match level {
            Level::L1 => h.l1_set(paddr) == set,
            Level::L2 => h.l2_set(paddr) == set,
            Level::L3 => {
                let (sl, st) = h.l3_location(paddr);
                st == set && slice.is_none_or(|want| sl == want)
            }
        };
        if is_target {
            if target_blocks.len() < n_blocks {
                if target_l2_set.is_none() {
                    target_l2_set = Some(h.l2_set(paddr));
                }
                target_blocks.push(addr);
            }
        } else if evictors.len() < n_evictors {
            let good_evictor = match level {
                Level::L1 => false,
                // Evict from L1: same L1 set, different L2 set.
                Level::L2 => {
                    h.l1_set(paddr) == (set % h.config().l1.num_sets()) && h.l2_set(paddr) != set
                }
                // Evict from L1+L2: same L2 set as the targets, different
                // L3 set or slice.
                Level::L3 => match target_l2_set {
                    Some(l2s) => {
                        h.l2_set(paddr) == l2s && {
                            let (sl, st) = h.l3_location(paddr);
                            st != set || slice.is_some_and(|want| sl != want)
                        }
                    }
                    None => false,
                },
            };
            if good_evictor {
                evictors.push(addr);
            }
        }
        addr += 64;
    }
    assert!(
        target_blocks.len() >= n_blocks,
        "region too small: found {} of {} target blocks for set {set}",
        target_blocks.len(),
        n_blocks
    );
    assert!(
        evictors.len() >= n_evictors,
        "region too small: found {} of {n_evictors} evictors",
        evictors.len()
    );
    AddrPool {
        target_blocks,
        evictors,
        level,
        set,
        slice,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanobench_cache::presets::cpu_by_microarch;
    use nanobench_machine::Mode;

    fn machine() -> Machine {
        let cpu = cpu_by_microarch("Skylake").unwrap();
        Machine::from_cpu(&cpu, Mode::Kernel, 3)
    }

    #[test]
    fn l1_pool_blocks_map_to_set() {
        let mut m = machine();
        let base = m.alloc_contiguous(4 << 20).unwrap();
        let pool = build_pool(&mut m, base, 4 << 20, Level::L1, 5, None, 16);
        for &a in &pool.target_blocks {
            let p = m.translate(a).unwrap();
            assert_eq!(m.hierarchy().l1_set(p), 5);
        }
        assert_eq!(pool.target_blocks.len(), 16);
    }

    #[test]
    fn l3_pool_has_same_l2_set_evictors() {
        let mut m = machine();
        let base = m.alloc_contiguous(32 << 20).unwrap();
        let pool = build_pool(&mut m, base, 32 << 20, Level::L3, 100, Some(0), 20);
        let p0 = m.translate(pool.target_blocks[0]).unwrap();
        let l2s = m.hierarchy().l2_set(p0);
        for &a in &pool.target_blocks {
            let p = m.translate(a).unwrap();
            let (sl, st) = m.hierarchy().l3_location(p);
            assert_eq!((sl, st), (0, 100));
            assert_eq!(
                m.hierarchy().l2_set(p),
                l2s,
                "same L3 set implies same L2 set"
            );
        }
        for &a in &pool.evictors {
            let p = m.translate(a).unwrap();
            assert_eq!(m.hierarchy().l2_set(p), l2s);
            let (sl, st) = m.hierarchy().l3_location(p);
            assert!(
                (sl, st) != (0, 100),
                "evictors must not touch the target set"
            );
        }
    }
}
