//! Case study II: cache-characterization tools (§VI of the paper).
//!
//! Built on nanoBench (`nanobench-core`), this crate provides:
//!
//! * [`cacheseq`] — the cacheSeq tool: measures the hits/misses of an
//!   access sequence against a specific cache set, with per-element
//!   measurement inclusion, automatic higher-level eviction accesses, and
//!   optional `WBINVD` (§VI-C);
//! * [`perm_infer`] — inference of permutation policies (the RTAS'13
//!   algorithm of ref [15], §VI-C1);
//! * [`policy_fit`] — policy identification by comparing random-sequence
//!   measurements against simulations of LRU/FIFO/PLRU/MRU and all
//!   meaningful QLRU variants (§VI-C1);
//! * [`age_graph`] — "age" graphs for analyzing non-deterministic policies
//!   (§VI-C2, Figure 1);
//! * [`dueling`] — detection of the dedicated leader sets of adaptive
//!   caches, including per-C-Box differences (§VI-C3);
//! * [`infer`] — store-aware inference entry points: the same
//!   policy-fitting runs, answered from a persistent result store when an
//!   identical request has run before.

#![warn(missing_docs)]

pub mod addresses;
pub mod age_graph;
pub mod cacheseq;
pub mod dueling;
pub mod infer;
pub mod perm_infer;
pub mod policy_fit;

pub use addresses::{build_pool, AddrPool, Level};
pub use age_graph::{age_graph, AgeGraph};
pub use cacheseq::{AccessSeq, CacheSeq, SeqItem};
pub use dueling::{find_dedicated_sets, find_dedicated_sets_on, DuelingReport, SliceReport};
pub use infer::{run_infer, run_infer_stored, InferRequest, INFER_FORMAT_VERSION};
pub use perm_infer::{infer_permutation_policy, PermInferResult};
pub use policy_fit::{candidate_library, equivalence_classes, fit_policy, FitResult};
