//! Store-aware policy-inference entry points.
//!
//! A full [`fit_policy`] run measures dozens of random sequences through
//! cacheSeq — seconds of simulation per cache level. [`InferRequest`]
//! packages one such inference as a self-describing job, and
//! [`run_infer_stored`] answers it from a persistent
//! [`ResultStore`](nanobench_store::ResultStore) when the identical
//! request (same CPU configuration, level, set, seeds, budget) has run
//! before — so policy sweeps and Table I re-runs are warm-started across
//! processes.
//!
//! Keys follow the campaign scheme in `nanobench-core`: the `spec`
//! component fingerprints the request parameters, the `uarch` component
//! fingerprints the simulated CPU ([`CpuSpec::hash_config`]), the `seed`
//! component is the fit seed, and the version is
//! [`INFER_FORMAT_VERSION`] — bump it whenever the stored [`FitResult`]
//! encoding *or the semantics of the inference itself* change, so stale
//! records recompute instead of being trusted.

use crate::addresses::Level;
use crate::cacheseq::CacheSeq;
use crate::policy_fit::{fit_policy, FitResult};
use nanobench_cache::policy::PolicyKind;
use nanobench_cache::CpuSpec;
use nanobench_core::NbError;
use nanobench_store::{Fnv1a, ResultStore, StoreKey};
use std::hash::{Hash, Hasher};

/// Version of [`FitResult`]'s persistent-store encoding. Bump on any
/// change to the encoding or to the inference algorithm's behaviour.
pub const INFER_FORMAT_VERSION: u32 = 1;

/// One policy-inference job: everything [`run_infer`] needs to build a
/// cacheSeq and fit a policy, in a form that can be fingerprinted for the
/// persistent store.
#[derive(Debug, Clone)]
pub struct InferRequest {
    /// The CPU model to infer against.
    pub cpu: CpuSpec,
    /// The cache level under test.
    pub level: Level,
    /// The cache set accessed.
    pub set: usize,
    /// The L3 slice (must be `Some` exactly for [`Level::L3`]).
    pub slice: Option<usize>,
    /// Number of same-set blocks the cacheSeq pool holds.
    pub n_blocks: usize,
    /// Associativity the candidates are simulated at.
    pub assoc: usize,
    /// Maximum number of random sequences measured on the machine.
    pub max_sequences: usize,
    /// Seed of the cacheSeq machine.
    pub seq_seed: u64,
    /// Seed of the random-sequence generator in [`fit_policy`].
    pub fit_seed: u64,
}

impl InferRequest {
    /// The standard Table I inference for `level` of `cpu`: the set,
    /// block-count and seed choices of the E6 experiment (`n_blocks =
    /// assoc + 4`, machine seed 7, fit seed 21, 80-sequence budget).
    pub fn table1(cpu: &CpuSpec, level: Level, set: usize, assoc: usize) -> InferRequest {
        InferRequest {
            cpu: cpu.clone(),
            level,
            set,
            slice: Some(0).filter(|_| level == Level::L3),
            n_blocks: assoc + 4,
            assoc,
            max_sequences: 80,
            seq_seed: 7,
            fit_seed: 21,
        }
    }

    /// The request's [`StoreKey`]: parameters in `spec`, CPU
    /// configuration in `uarch`, fit seed in `seed`.
    pub fn store_key(&self) -> StoreKey {
        let mut spec = Fnv1a::new();
        match self.level {
            Level::L1 => 0u8,
            Level::L2 => 1u8,
            Level::L3 => 2u8,
        }
        .hash(&mut spec);
        self.set.hash(&mut spec);
        self.slice.hash(&mut spec);
        self.n_blocks.hash(&mut spec);
        self.assoc.hash(&mut spec);
        self.max_sequences.hash(&mut spec);
        self.seq_seed.hash(&mut spec);
        let mut uarch = Fnv1a::new();
        self.cpu.hash_config(&mut uarch);
        StoreKey {
            spec: spec.finish(),
            uarch: uarch.finish(),
            seed: self.fit_seed,
            version: INFER_FORMAT_VERSION,
        }
    }
}

/// Runs the inference cold: builds the cacheSeq and fits the policy.
///
/// # Errors
///
/// Propagates cacheSeq construction and measurement errors.
pub fn run_infer(req: &InferRequest) -> Result<FitResult, NbError> {
    let mut cs = CacheSeq::new(
        &req.cpu,
        req.level,
        req.set,
        req.slice,
        req.n_blocks,
        req.seq_seed,
    )?;
    fit_policy(&mut cs, req.assoc, req.max_sequences, req.fit_seed)
}

/// Runs the inference against a persistent store: answers from the store
/// when the identical request ran before, otherwise computes via
/// [`run_infer`] and publishes the result. Undecodable stored payloads
/// (corruption, a policy name a newer library no longer parses) recompute
/// and overwrite — never an error.
///
/// # Errors
///
/// Propagates [`run_infer`] errors and store I/O failures.
pub fn run_infer_stored(req: &InferRequest, store: &ResultStore) -> Result<FitResult, NbError> {
    let key = req.store_key();
    if let Some(fit) = store.get(&key).and_then(|b| fit_result_from_bytes(&b)) {
        return Ok(fit);
    }
    let fit = run_infer(req)?;
    store.insert(key, &fit_result_to_bytes(&fit))?;
    Ok(fit)
}

/// Serializes a [`FitResult`] for the persistent store (version
/// [`INFER_FORMAT_VERSION`]): sequence count, then the equivalence
/// classes as length-prefixed lists of policy names — names rather than
/// in-memory representations, so the payload survives representation
/// changes and round-trips through [`PolicyKind::parse`].
pub fn fit_result_to_bytes(fit: &FitResult) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(fit.sequences_tested as u32).to_le_bytes());
    out.extend_from_slice(&(fit.matching.len() as u32).to_le_bytes());
    for class in &fit.matching {
        out.extend_from_slice(&(class.len() as u32).to_le_bytes());
        for kind in class {
            let name = kind.name();
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
    }
    out
}

/// Decodes a [`FitResult`] from its store encoding. Returns `None` for
/// any malformed input, including policy names the current candidate
/// library no longer parses — the caller then recomputes.
pub fn fit_result_from_bytes(bytes: &[u8]) -> Option<FitResult> {
    fn take<'a>(rest: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
        let (head, tail) = rest.split_at_checked(n)?;
        *rest = tail;
        Some(head)
    }
    fn take_u32(rest: &mut &[u8]) -> Option<usize> {
        Some(u32::from_le_bytes(take(rest, 4)?.try_into().ok()?) as usize)
    }
    let mut rest = bytes;
    let sequences_tested = take_u32(&mut rest)?;
    let n_classes = take_u32(&mut rest)?;
    let mut matching = Vec::with_capacity(n_classes.min(1024));
    for _ in 0..n_classes {
        let n_members = take_u32(&mut rest)?;
        let mut class = Vec::with_capacity(n_members.min(1024));
        for _ in 0..n_members {
            let name_len = take_u32(&mut rest)?;
            let name = std::str::from_utf8(take(&mut rest, name_len)?).ok()?;
            class.push(PolicyKind::parse(name).ok()?);
        }
        matching.push(class);
    }
    rest.is_empty().then_some(FitResult {
        matching,
        sequences_tested,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy_fit::candidate_library;
    use nanobench_cache::presets::cpu_by_microarch;
    use nanobench_cache::L3PolicyConfig;

    #[test]
    fn fit_result_codec_round_trips_the_whole_library() {
        let fit = FitResult {
            matching: vec![candidate_library(8), vec![PolicyKind::Lru]],
            sequences_tested: 42,
        };
        let bytes = fit_result_to_bytes(&fit);
        let back = fit_result_from_bytes(&bytes).unwrap();
        assert_eq!(back.sequences_tested, 42);
        assert_eq!(back.matching, fit.matching);
        assert!(fit_result_from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut extended = bytes;
        extended.push(0);
        assert!(fit_result_from_bytes(&extended).is_none());
        assert!(fit_result_from_bytes(&[]).is_none());
    }

    #[test]
    fn store_keys_separate_requests_and_cpus() {
        let skylake = cpu_by_microarch("Skylake").unwrap();
        let base = InferRequest::table1(&skylake, Level::L1, 5, skylake.l1_assoc);
        assert_eq!(base.store_key(), base.clone().store_key());
        let l2 = InferRequest::table1(&skylake, Level::L2, 21, skylake.l2_assoc);
        assert_ne!(base.store_key(), l2.store_key());
        let haswell = cpu_by_microarch("Haswell").unwrap();
        let other_cpu = InferRequest::table1(&haswell, Level::L1, 5, haswell.l1_assoc);
        assert_ne!(base.store_key().uarch, other_cpu.store_key().uarch);
        // Changing only the ground-truth policy changes the uarch hash:
        // warm results must never leak across policy configurations.
        let mut lru_l3 = skylake.clone();
        lru_l3.l3_policy = L3PolicyConfig::Uniform(PolicyKind::Lru);
        let changed = InferRequest::table1(&lru_l3, Level::L1, 5, lru_l3.l1_assoc);
        assert_ne!(base.store_key().uarch, changed.store_key().uarch);
        let mut reseeded = base.clone();
        reseeded.fit_seed = 22;
        assert_ne!(base.store_key(), reseeded.store_key());
    }

    #[test]
    fn stored_inference_matches_cold_and_hits_on_rerun() {
        let path = std::env::temp_dir().join(format!("nbstore-infer-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let store = ResultStore::open(&path).unwrap();
        let cpu = cpu_by_microarch("Skylake").unwrap();
        let req = InferRequest::table1(&cpu, Level::L1, 5, cpu.l1_assoc);
        let cold = run_infer(&req).unwrap();
        let first = run_infer_stored(&req, &store).unwrap();
        assert_eq!(first.matching, cold.matching);
        assert_eq!(first.sequences_tested, cold.sequences_tested);
        let warm = run_infer_stored(&req, &store).unwrap();
        assert_eq!(warm.matching, cold.matching);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.inserts), (1, 1));
        let _ = std::fs::remove_file(&path);
    }
}
