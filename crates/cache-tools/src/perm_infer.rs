//! Inference of permutation policies (§VI-C1, first tool; algorithm of
//! Abel & Reineke, RTAS 2013 [15], adapted to the cacheSeq primitive).
//!
//! The state of a permutation policy is a total order of the cached
//! blocks; position 0 is the next victim. The order is *read out* by age
//! measurements: block `b` is at position `p` iff it survives exactly `p`
//! fresh misses after the state was established (fresh blocks are inserted
//! "above" the existing blocks by all policies in this class, so existing
//! blocks are evicted in position order). The hit permutation for position
//! `p` is obtained by establishing a canonical state, hitting the block at
//! position `p`, and reading the order back out; the miss permutation
//! analogously with one fresh miss.
//!
//! The inferred specification is validated against random sequences and
//! compared with the canonical LRU/FIFO/PLRU specifications.

use crate::cacheseq::{AccessSeq, CacheSeq, SeqItem};
use nanobench_cache::policy::{
    fifo_spec, lru_spec, plru_spec, simulate_sequence, Perm, PermutationSpec, PolicyKind,
};
use nanobench_core::NbError;

/// Outcome of the permutation-policy inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermInferResult {
    /// The inferred permutations match a known policy.
    Named {
        /// `"LRU"`, `"FIFO"` or `"PLRU"`.
        name: &'static str,
        /// The measured hit permutations.
        hit: Vec<Perm>,
        /// The measured miss permutation.
        miss: Perm,
    },
    /// A consistent permutation policy that matches no known name.
    Unknown {
        /// The measured hit permutations.
        hit: Vec<Perm>,
        /// The measured miss permutation.
        miss: Perm,
    },
    /// Measurements are inconsistent with a (deterministic, miss-monotone)
    /// permutation policy — e.g. MRU or the QLRU family (§VI-B2).
    NotPermutation {
        /// What went wrong.
        reason: String,
    },
}

/// Measures the age of `probe` after the given establishing accesses: the
/// number of fresh misses the block survives.
///
/// Fresh blocks use pool indices `fresh_base..`.
fn age_of(
    cs: &mut CacheSeq,
    establish: &[usize],
    probe: usize,
    assoc: usize,
    fresh_base: usize,
) -> Result<usize, NbError> {
    let mut age = 0usize;
    for n in 1..=assoc {
        let mut items: Vec<SeqItem> = establish
            .iter()
            .map(|b| SeqItem {
                block: *b,
                measured: false,
            })
            .collect();
        items.extend((0..n).map(|i| SeqItem {
            block: fresh_base + i,
            measured: false,
        }));
        items.push(SeqItem {
            block: probe,
            measured: true,
        });
        let seq = AccessSeq {
            wbinvd: true,
            items,
        };
        if cs.run_hits(&seq)? == 1 {
            age = n;
        } else {
            break;
        }
    }
    Ok(age)
}

/// Reads out the full order after the establishing accesses: returns
/// `positions[b]` for blocks `0..assoc` (or an error string if the ages do
/// not form a permutation).
fn read_order(
    cs: &mut CacheSeq,
    establish: &[usize],
    blocks: &[usize],
    assoc: usize,
    fresh_base: usize,
) -> Result<Result<Vec<usize>, String>, NbError> {
    let mut ages = Vec::with_capacity(blocks.len());
    for &b in blocks {
        ages.push(age_of(cs, establish, b, assoc, fresh_base)?);
    }
    let mut seen = vec![false; assoc];
    for &a in &ages {
        if a >= assoc || seen[a] {
            return Ok(Err(format!("ages {ages:?} are not a permutation")));
        }
        seen[a] = true;
    }
    Ok(Ok(ages))
}

/// Infers the permutation policy of the target cache.
///
/// Requires a pool of at least `2 * assoc + 2` blocks.
///
/// # Errors
///
/// Propagates measurement errors.
pub fn infer_permutation_policy(
    cs: &mut CacheSeq,
    assoc: usize,
) -> Result<PermInferResult, NbError> {
    let blocks: Vec<usize> = (0..assoc).collect();
    let fresh_base = assoc + 1;

    // Canonical state: <WBINVD> B0 .. B(A-1).
    let canonical = read_order(cs, &blocks, &blocks, assoc, fresh_base)?;
    let canonical = match canonical {
        Ok(pos) => pos,
        Err(reason) => return Ok(PermInferResult::NotPermutation { reason }),
    };
    // block_at[p] = block at position p in the canonical state.
    let mut block_at = vec![0usize; assoc];
    for (b, &p) in canonical.iter().enumerate() {
        block_at[p] = b;
    }

    // Hit permutations: canonical followed by a hit at each position.
    let mut hit: Vec<Perm> = Vec::with_capacity(assoc);
    for &block in block_at.iter().take(assoc) {
        let mut establish = blocks.clone();
        establish.push(block);
        let after = match read_order(cs, &establish, &blocks, assoc, fresh_base)? {
            Ok(pos) => pos,
            Err(reason) => return Ok(PermInferResult::NotPermutation { reason }),
        };
        // perm[old position] = new position.
        let mut perm = vec![0usize; assoc];
        for (b, &newp) in after.iter().enumerate() {
            perm[canonical[b]] = newp;
        }
        hit.push(perm);
    }

    // Miss permutation: canonical followed by one fresh miss. The victim
    // (canonical position 0) is replaced by the fresh block, which starts
    // at position 0 before the permutation applies.
    let fresh = assoc; // block index `assoc` is the miss block
    let mut establish = blocks.clone();
    establish.push(fresh);
    let mut probe_blocks: Vec<usize> = blocks.clone();
    probe_blocks.push(fresh);
    let mut miss = vec![usize::MAX; assoc];
    for &b in &probe_blocks {
        if b != fresh && canonical[b] == 0 {
            continue; // the evicted victim has no new position
        }
        let age = age_of(cs, &establish, b, assoc, fresh_base)?;
        if age >= assoc {
            return Ok(PermInferResult::NotPermutation {
                reason: format!("block B{b} has out-of-range age {age} after a miss"),
            });
        }
        let old_pos = if b == fresh { 0 } else { canonical[b] };
        miss[old_pos] = age;
    }
    if miss.contains(&usize::MAX) {
        return Ok(PermInferResult::NotPermutation {
            reason: "could not observe a complete miss permutation".to_string(),
        });
    }

    // Compare with the canonical specifications (hit + miss components).
    for (name, spec) in [
        ("LRU", lru_spec(assoc)),
        ("FIFO", fifo_spec(assoc)),
        (
            "PLRU",
            if assoc.is_power_of_two() {
                plru_spec(assoc)
            } else {
                lru_spec(assoc) // placeholder, never matches below
            },
        ),
    ] {
        if name == "PLRU" && !assoc.is_power_of_two() {
            continue;
        }
        // The measured canonical state fixes block->position; the spec's
        // permutations are position-based, so they compare directly.
        if spec_matches(&spec, &hit, &miss, &canonical) {
            return Ok(PermInferResult::Named { name, hit, miss });
        }
    }
    Ok(PermInferResult::Unknown { hit, miss })
}

/// Compares measured (hit, miss) permutations with a canonical spec,
/// accounting for the relabeling between the measured canonical state and
/// the spec's initial order.
fn spec_matches(
    spec: &PermutationSpec,
    measured_hit: &[Perm],
    measured_miss: &Perm,
    _canonical: &[usize],
) -> bool {
    // Derive the spec's own canonical state (fill B0..B(A-1) from flush)
    // and its position-based hit/miss permutations in that state; since
    // both the measurement and the derivation express permutations purely
    // over *positions*, they are directly comparable.
    let assoc = spec.assoc();
    let derived = derive_position_perms(spec, assoc);
    derived.0 == measured_hit && &derived.1 == measured_miss
}

/// Simulates the spec to derive position-based hit and miss permutations
/// from the canonical (post-fill) state.
fn derive_position_perms(spec: &PermutationSpec, assoc: usize) -> (Vec<Perm>, Perm) {
    use nanobench_cache::policy::{PermutationPolicy, SetPolicy};

    // Track block positions through a simulated fill.
    let fill_state = || {
        let mut policy = PermutationPolicy::new(spec.clone());
        let mut tags: Vec<Option<u64>> = vec![None; assoc];
        for b in 0..assoc as u64 {
            let occupied: Vec<bool> = tags.iter().map(Option::is_some).collect();
            let way = policy.on_miss(&occupied);
            tags[way] = Some(b);
        }
        (policy, tags)
    };
    // Position of each block = how many misses it survives.
    let positions = |policy: &PermutationPolicy, tags: &[Option<u64>]| -> Vec<usize> {
        let mut pos = vec![0usize; assoc];
        let mut p = policy.clone();
        let mut t = tags.to_vec();
        for round in 0..assoc {
            let occupied: Vec<bool> = t.iter().map(Option::is_some).collect();
            let way = p.on_miss(&occupied);
            if let Some(b) = t[way] {
                if (b as usize) < assoc {
                    pos[b as usize] = round;
                }
            }
            t[way] = Some(1000 + round as u64);
        }
        pos
    };

    let (base_policy, base_tags) = fill_state();
    let canonical = positions(&base_policy, &base_tags);
    let mut block_at = vec![0usize; assoc];
    for (b, &p) in canonical.iter().enumerate() {
        block_at[p] = b;
    }

    let mut hit = Vec::with_capacity(assoc);
    for &block in block_at.iter().take(assoc) {
        let (mut policy, tags) = fill_state();
        let way = tags
            .iter()
            .position(|t| *t == Some(block as u64))
            .expect("block present");
        let occupied: Vec<bool> = tags.iter().map(Option::is_some).collect();
        policy.on_hit(way, &occupied);
        let after = positions(&policy, &tags);
        let mut perm = vec![0usize; assoc];
        for (b, &newp) in after.iter().enumerate() {
            perm[canonical[b]] = newp;
        }
        hit.push(perm);
    }

    let (mut policy, mut tags) = fill_state();
    let occupied: Vec<bool> = tags.iter().map(Option::is_some).collect();
    let way = policy.on_miss(&occupied);
    tags[way] = Some(assoc as u64); // the fresh block
    let after_all = {
        let mut pos_of_fresh = 0usize;
        let mut pos = vec![0usize; assoc];
        let mut p2 = policy.clone();
        let mut t2 = tags.clone();
        for round in 0..assoc {
            let occ: Vec<bool> = t2.iter().map(Option::is_some).collect();
            let w = p2.on_miss(&occ);
            match t2[w] {
                Some(b) if (b as usize) < assoc => pos[b as usize] = round,
                Some(b) if b as usize == assoc => pos_of_fresh = round,
                _ => {}
            }
            t2[w] = Some(2000 + round as u64);
        }
        (pos, pos_of_fresh)
    };
    let mut miss = vec![usize::MAX; assoc];
    miss[0] = after_all.1;
    for b in 0..assoc {
        if canonical[b] == 0 {
            continue; // evicted victim
        }
        miss[canonical[b]] = after_all.0[b];
    }
    // Victim position 0 was replaced by the fresh block; fill any hole
    // defensively (cannot occur for valid specs).
    for slot in miss.iter_mut() {
        if *slot == usize::MAX {
            *slot = 0;
        }
    }
    (hit, miss)
}

/// Convenience: checks an inferred result against random sequences by
/// simulating the matched policy.
///
/// # Errors
///
/// Propagates measurement errors.
pub fn validate_inference(
    cs: &mut CacheSeq,
    assoc: usize,
    kind: &PolicyKind,
    n_seqs: usize,
    seed: u64,
) -> Result<bool, NbError> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..n_seqs {
        let len = assoc * 3;
        let blocks: Vec<usize> = (0..len).map(|_| rng.gen_range(0..assoc + 2)).collect();
        let seq = AccessSeq::measured_all(&blocks);
        let measured = cs.run_hits(&seq)?;
        let blocks_u64: Vec<u64> = blocks.iter().map(|b| *b as u64).collect();
        let sim = simulate_sequence(kind, assoc, 0, &blocks_u64)
            .iter()
            .filter(|h| **h)
            .count() as u64;
        if sim != measured {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addresses::Level;
    use nanobench_cache::presets::cpu_by_microarch;

    #[test]
    fn derived_perms_for_lru_are_promotions() {
        let (hit, miss) = derive_position_perms(&lru_spec(4), 4);
        // LRU: hit at p moves it to the top.
        assert_eq!(hit[0], vec![3, 0, 1, 2]);
        assert_eq!(hit[3], vec![0, 1, 2, 3]);
        assert_eq!(miss, vec![3, 0, 1, 2]);
        // FIFO: hits are the identity.
        let (fhit, fmiss) = derive_position_perms(&fifo_spec(4), 4);
        assert!(fhit.iter().all(|p| *p == vec![0, 1, 2, 3]));
        assert_eq!(fmiss, vec![3, 0, 1, 2]);
        // The three canonical policies are pairwise distinct.
        let p = derive_position_perms(&plru_spec(4), 4);
        assert_ne!((hit, miss), p);
    }

    #[test]
    fn infers_plru_on_skylake_l1() {
        let cpu = cpu_by_microarch("Skylake").unwrap();
        let mut cs = CacheSeq::new(&cpu, Level::L1, 9, None, 2 * 8 + 2, 13).unwrap();
        let result = infer_permutation_policy(&mut cs, 8).unwrap();
        match result {
            PermInferResult::Named { name, .. } => assert_eq!(name, "PLRU"),
            other => panic!("expected PLRU, got {other:?}"),
        }
        // And the inference cross-validates on random sequences.
        assert!(validate_inference(&mut cs, 8, &PolicyKind::Plru, 10, 3).unwrap());
    }

    #[test]
    fn mru_l3_is_not_a_permutation_policy() {
        // Nehalem's L3 uses MRU (Table I) which is not a permutation
        // policy (§VI-B2); the tool must notice rather than mis-infer.
        let cpu = cpu_by_microarch("Nehalem").unwrap();
        let mut cs = CacheSeq::new(&cpu, Level::L3, 40, Some(0), 2 * 16 + 2, 13).unwrap();
        let result = infer_permutation_policy(&mut cs, 16).unwrap();
        match result {
            PermInferResult::NotPermutation { .. } | PermInferResult::Unknown { .. } => {}
            other => panic!("MRU must not be identified as LRU/FIFO/PLRU: {other:?}"),
        }
    }
}
