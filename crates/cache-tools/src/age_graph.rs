//! Age graphs (§VI-C2, Figure 1 of the paper).
//!
//! "This tool generates a graph showing the 'ages' of all blocks of an
//! access sequence. [...] For each block B of an access sequence, we first
//! execute the access sequence, then we access n fresh blocks, and finally
//! we measure the number of hits when accessing B again." Age graphs are
//! the instrument for *non-deterministic* policies like the probabilistic
//! QLRU insertion on Ivy Bridge's L3 (QLRU_H11_MR161_R1_U2).

use crate::cacheseq::{AccessSeq, CacheSeq, SeqItem};
use nanobench_core::NbError;

/// One age graph: hit counts per (block, n-fresh-blocks) pair.
#[derive(Debug, Clone)]
pub struct AgeGraph {
    /// The x-axis: numbers of fresh blocks.
    pub n_values: Vec<usize>,
    /// `series[b][i]` = hits of block `b` (out of `reps`) after
    /// `n_values[i]` fresh blocks.
    pub series: Vec<Vec<u64>>,
    /// Repetitions per data point.
    pub reps: usize,
}

impl AgeGraph {
    /// Renders the graph as a gnuplot-ready data table (one column per
    /// block).
    pub fn to_table(&self) -> String {
        let mut out = String::from("# n");
        for b in 0..self.series.len() {
            out.push_str(&format!("\tB{b}"));
        }
        out.push('\n');
        for (i, n) in self.n_values.iter().enumerate() {
            out.push_str(&format!("{n}"));
            for series in &self.series {
                out.push_str(&format!("\t{}", series[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Measures the age graph of the sequence `<WBINVD> B0 ... B(k-1)`
/// (Figure 1 uses k = 12 on Ivy Bridge, whose L3 associativity is 12).
///
/// Fresh blocks use pool indices `k..k+max(n_values)`, so the pool must
/// hold `k + max(n) + 1` blocks.
///
/// # Errors
///
/// Propagates measurement errors.
pub fn age_graph(
    cs: &mut CacheSeq,
    k: usize,
    n_values: &[usize],
    reps: usize,
) -> Result<AgeGraph, NbError> {
    let mut series = vec![vec![0u64; n_values.len()]; k];
    for (i, &n) in n_values.iter().enumerate() {
        for (b, row) in series.iter_mut().enumerate() {
            let mut hits = 0u64;
            for _ in 0..reps {
                let mut items: Vec<SeqItem> = (0..k)
                    .map(|blk| SeqItem {
                        block: blk,
                        measured: false,
                    })
                    .collect();
                items.extend((0..n).map(|f| SeqItem {
                    block: k + f,
                    measured: false,
                }));
                items.push(SeqItem {
                    block: b,
                    measured: true,
                });
                let seq = AccessSeq {
                    wbinvd: true,
                    items,
                };
                hits += cs.run_hits(&seq)?;
            }
            row[i] = hits;
        }
    }
    Ok(AgeGraph {
        n_values: n_values.to_vec(),
        series,
        reps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addresses::Level;
    use nanobench_cache::presets::cpu_by_microarch;

    #[test]
    fn skylake_l3_ages_are_deterministic_steps() {
        // On a deterministic policy every repetition gives the same
        // outcome: each data point is 0 or `reps`.
        let cpu = cpu_by_microarch("Skylake").unwrap();
        let mut cs = CacheSeq::new(&cpu, Level::L3, 32, Some(0), 16 + 8 + 1, 17).unwrap();
        let g = age_graph(&mut cs, 4, &[0, 4, 8], 3).unwrap();
        for series in &g.series {
            for &v in series {
                assert!(v == 0 || v == 3, "deterministic policy, got {v}");
            }
        }
        // With n = 0 fresh blocks every block still hits.
        for series in &g.series {
            assert_eq!(series[0], 3);
        }
    }

    #[test]
    fn ivy_bridge_leader_b_sets_are_probabilistic() {
        // Figure 1's set range 768-831 uses QLRU_H11_MR161_R1_U2: with
        // enough repetitions, intermediate hit counts appear — the
        // signature of the non-deterministic policy.
        let cpu = cpu_by_microarch("Ivy Bridge").unwrap();
        let assoc = cpu.l3_assoc; // 12
        let mut cs = CacheSeq::new(&cpu, Level::L3, 800, Some(0), assoc + 30 + 1, 17).unwrap();
        let g = age_graph(&mut cs, assoc, &[14, 20, 26], 12).unwrap();
        let intermediate = g.series.iter().flatten().any(|&v| v > 0 && v < 12);
        assert!(
            intermediate,
            "probabilistic insertion must yield intermediate hit counts: {:?}",
            g.series
        );
    }
}
