//! The simulated machine for the nanoBench reproduction: a core
//! (`nanobench-uarch`) wired to physical memory, a cache hierarchy, a PMU,
//! and an OS-like environment with kernel/user modes (§III-D of the
//! paper), kmalloc plus the greedy physically-contiguous allocator
//! (§IV-D), user-mode interrupt injection (§IV-A2) and MSR dispatch.
//!
//! # Examples
//!
//! ```
//! use nanobench_machine::{Machine, Mode};
//! use nanobench_uarch::port::MicroArch;
//! use nanobench_x86::asm::parse_asm;
//! use nanobench_x86::reg::Gpr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = Machine::new(MicroArch::Skylake, Mode::Kernel, 42);
//! m.run(&parse_asm("mov rax, 6; add rax, 7")?)?;
//! assert_eq!(m.state().gpr(Gpr::Rax), 13);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod machine;
pub mod phys;

pub use alloc::{AllocError, KernelAllocator, KMALLOC_MAX};
pub use machine::{Env, Machine, Mode};
pub use phys::{PhysMem, PAGE_SIZE};
