//! The virtual machine: one or more simulated cores plus their shared
//! environment, in kernel or user mode (§III-D of the paper).
//!
//! Core 0 is the *measured* core — every legacy entry point ([`Machine::run`],
//! [`Machine::run_plan`], the register/PMU accessors) operates on it, so a
//! 1-core machine behaves bit-identically to the historical single-core
//! model. Additional cores ([`Machine::with_cores`]) run *co-runner*
//! programs via [`Machine::run_plan_with_corunners`], contending for the
//! shared L3 through the MESI coherence layer of `nanobench-cache`.

use crate::alloc::{AllocError, KernelAllocator};
use crate::phys::{IntMap, PhysMem, PAGE_SIZE};
use nanobench_cache::hierarchy::{CacheHierarchy, HierarchyConfig, MemAccessResult};
use nanobench_cache::presets::{table1_cpus, CpuSpec};
use nanobench_pmu::Pmu;
use nanobench_uarch::bus::{Bus, CpuFault, InterruptEvent};
use nanobench_uarch::engine::{Engine, RunContext, RunStats};
use nanobench_uarch::plan::DecodedProgram;
use nanobench_uarch::port::MicroArch;
use nanobench_uarch::state::CpuState;
use nanobench_x86::inst::Instruction;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Execution mode of the machine (§III-D: nanoBench has a user-space and a
/// kernel-space version).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// CPL 0: privileged instructions allowed, interrupts disabled during
    /// measurements, physically-contiguous allocation available.
    Kernel,
    /// CPL 3: privileged instructions fault, timer interrupts and
    /// preemptions perturb measurements, pages map to scattered frames.
    User,
}

/// Mean cycles between user-mode interrupts.
const INTERRUPT_MEAN: u64 = 120_000;

/// Entries in the per-machine direct-mapped micro-TLB (a power of two).
const TLB_ENTRIES: usize = 64;

/// A direct-mapped vaddr-page → frame cache in front of the user-mode
/// page map, so the memory fast path stops hashing on every access. It
/// is a pure memo over `user_map`: entries are filled on lookup and the
/// whole array is flushed whenever the map could change (`alloc_region`
/// in user mode, machine reset) — there is no partial invalidation, so
/// it can never return a stale frame.
#[derive(Debug)]
struct MicroTlb {
    /// Page number per entry; `u64::MAX` (no valid page for 64-bit
    /// vaddrs) marks an empty slot.
    pages: [u64; TLB_ENTRIES],
    frames: [u64; TLB_ENTRIES],
}

impl MicroTlb {
    fn new() -> MicroTlb {
        MicroTlb {
            pages: [u64::MAX; TLB_ENTRIES],
            frames: [0; TLB_ENTRIES],
        }
    }

    fn flush(&mut self) {
        self.pages = [u64::MAX; TLB_ENTRIES];
    }
}

/// The environment shared by all cores: memory, caches, privilege,
/// interrupts. `current_core` routes each access to the right private
/// L1/L2 inside the coherent hierarchy; the scheduler sets it before
/// stepping a core.
#[derive(Debug)]
pub struct Env {
    mode: Mode,
    phys: PhysMem,
    hierarchy: CacheHierarchy,
    alloc: KernelAllocator,
    user_map: IntMap<u64>,
    /// Interrupt-arrival randomness. Kept separate from `alloc_rng` so a
    /// reset can rewind the interrupt stream while page mappings persist.
    rng: SmallRng,
    /// Frame-scattering randomness for user-mode `alloc_region`.
    alloc_rng: SmallRng,
    interrupts_enabled: bool,
    cr4_pce: bool,
    next_interrupt: u64,
    /// The core whose accesses the bus currently serves.
    current_core: usize,
    /// Per-core snapshot of the C-Box lookup counters at that core's last
    /// drain (each core's PMU sees the deltas since *its* last read).
    uncore_seen: Vec<Vec<u64>>,
    /// Per-core snapshot of the lookup total at the last drain; lets the
    /// per-access drain poll return without touching the per-slice counts
    /// when no uncore traffic happened (the common L1-hit case).
    uncore_seen_total: Vec<u64>,
    /// Direct-mapped translation memo for the user-mode page map.
    tlb: MicroTlb,
    /// Address translations performed on behalf of the core (demand
    /// reads/writes/accesses, fused or not — never host-side readback).
    /// Diagnostic only; pinned by the fast-lane invariant tests.
    translations: u64,
    /// Hierarchy walks performed for demand accesses (not prefetches or
    /// interrupt-handler traffic). Diagnostic only.
    walks: u64,
}

impl Env {
    fn translate(&self, vaddr: u64) -> Option<u64> {
        match self.mode {
            Mode::Kernel => Some(vaddr),
            Mode::User => {
                let page = vaddr / PAGE_SIZE;
                let frame = self.user_map.get(&page)?;
                Some(frame * PAGE_SIZE + vaddr % PAGE_SIZE)
            }
        }
    }

    /// [`Env::translate`] through the micro-TLB (fills the entry on a
    /// miss). The core's demand-access paths use this; `&self` readback
    /// helpers keep using the uncached `translate`.
    #[inline]
    fn translate_mut(&mut self, vaddr: u64) -> Option<u64> {
        self.translations += 1;
        match self.mode {
            Mode::Kernel => Some(vaddr),
            Mode::User => {
                let page = vaddr / PAGE_SIZE;
                let idx = (page & (TLB_ENTRIES as u64 - 1)) as usize;
                if self.tlb.pages[idx] == page {
                    return Some(self.tlb.frames[idx] * PAGE_SIZE + vaddr % PAGE_SIZE);
                }
                let frame = *self.user_map.get(&page)?;
                self.tlb.pages[idx] = page;
                self.tlb.frames[idx] = frame;
                Some(frame * PAGE_SIZE + vaddr % PAGE_SIZE)
            }
        }
    }

    #[inline]
    fn translate_or_fault(&mut self, vaddr: u64) -> Result<u64, CpuFault> {
        self.translate_mut(vaddr)
            .ok_or(CpuFault::PageFault { vaddr })
    }
}

impl Bus for Env {
    #[inline]
    fn read(&mut self, vaddr: u64, len: u8) -> Result<u64, CpuFault> {
        let paddr = self.translate_or_fault(vaddr)?;
        Ok(self.phys.read(paddr, len))
    }

    #[inline]
    fn write(&mut self, vaddr: u64, len: u8, value: u64) -> Result<(), CpuFault> {
        let paddr = self.translate_or_fault(vaddr)?;
        self.phys.write(paddr, len, value);
        Ok(())
    }

    #[inline]
    fn access(&mut self, vaddr: u64, is_write: bool) -> Result<MemAccessResult, CpuFault> {
        let paddr = self.translate_or_fault(vaddr)?;
        self.walks += 1;
        Ok(self
            .hierarchy
            .access_from(self.current_core, paddr, is_write)
            .expect("current_core is bounded by Machine::with_cores"))
    }

    #[inline]
    fn load_fused(
        &mut self,
        vaddr: u64,
        len: u8,
        is_write: bool,
    ) -> Result<(MemAccessResult, u64), CpuFault> {
        // One translation serves both the hierarchy walk and the data
        // read; walk first, exactly like the unfused access-then-read
        // sequence this replaces.
        let paddr = self.translate_or_fault(vaddr)?;
        self.walks += 1;
        let res = self
            .hierarchy
            .access_from(self.current_core, paddr, is_write)
            .expect("current_core is bounded by Machine::with_cores");
        let value = self.phys.read(paddr, len);
        Ok((res, value))
    }

    #[inline]
    fn store_fused(
        &mut self,
        vaddr: u64,
        len: u8,
        value: u64,
    ) -> Result<MemAccessResult, CpuFault> {
        let paddr = self.translate_or_fault(vaddr)?;
        self.walks += 1;
        let res = self
            .hierarchy
            .access_from(self.current_core, paddr, true)
            .expect("current_core is bounded by Machine::with_cores");
        self.phys.write(paddr, len, value);
        Ok(res)
    }

    fn is_kernel(&self) -> bool {
        self.mode == Mode::Kernel
    }

    fn rdpmc_allowed(&self) -> bool {
        self.cr4_pce
    }

    fn rdmsr(&mut self, addr: u32) -> Result<u64, CpuFault> {
        match addr {
            nanobench_pmu::msr::MSR_MISC_FEATURE_CONTROL => Ok(self
                .hierarchy
                .prefetchers_of_mut(self.current_core)
                .disable_bits()),
            _ => Err(CpuFault::BadMsr { addr }),
        }
    }

    fn wrmsr(&mut self, addr: u32, value: u64) -> Result<(), CpuFault> {
        match addr {
            nanobench_pmu::msr::MSR_MISC_FEATURE_CONTROL => {
                self.hierarchy
                    .prefetchers_of_mut(self.current_core)
                    .set_disable_bits(value);
                Ok(())
            }
            _ => Err(CpuFault::BadMsr { addr }),
        }
    }

    fn wbinvd(&mut self) {
        self.hierarchy.wbinvd();
    }

    fn clflush(&mut self, vaddr: u64) {
        if let Some(paddr) = self.translate(vaddr) {
            self.hierarchy.clflush(paddr);
        }
    }

    fn prefetch(&mut self, vaddr: u64) {
        if let Some(paddr) = self.translate(vaddr) {
            self.hierarchy.access(paddr);
        }
    }

    fn poll_interrupt(&mut self, cycle: u64) -> Option<InterruptEvent> {
        // Only the measured core takes interrupts: delivering the shared
        // random stream to co-runner cores would make the measured core's
        // interrupt arrivals depend on the interleaving. (Co-runner cores
        // are modeled as running with interrupts masked.)
        if self.current_core != 0 || !self.interrupts_enabled || cycle < self.next_interrupt {
            return None;
        }
        self.next_interrupt = cycle + INTERRUPT_MEAN / 2 + self.rng.gen_range(0..INTERRUPT_MEAN);
        // The handler touches memory, perturbing the cache state the
        // benchmark's init phase may have established (§I, §IV-A2).
        for _ in 0..16 {
            let addr = (self.rng.gen_range(0u64..1 << 20)) * 64;
            self.hierarchy.access(addr);
        }
        Some(InterruptEvent {
            cycles: 2_000 + self.rng.gen_range(0..4_000),
            instructions: 500 + self.rng.gen_range(0..1_500),
            uops: 700 + self.rng.gen_range(0..2_000),
        })
    }

    fn set_interrupt_flag(&mut self, enabled: bool) {
        self.interrupts_enabled = enabled;
    }

    fn drain_uncore_lookups(&mut self, out: &mut Vec<u64>) {
        let total = self.hierarchy.uncore_total();
        if self.uncore_seen_total[self.current_core] == total {
            return; // nothing new: every delta is zero
        }
        self.uncore_seen_total[self.current_core] = total;
        let current = self.hierarchy.uncore_lookups();
        let seen = &mut self.uncore_seen[self.current_core];
        out.extend(current.iter().zip(seen.iter()).map(|(c, s)| c - s));
        seen.copy_from_slice(current);
    }
}

/// One simulated core: its out-of-order engine, architectural state,
/// per-core PMU, and local cycle clock.
#[derive(Debug)]
struct Core {
    engine: Engine,
    state: CpuState,
    pmu: Pmu,
    cycle: u64,
}

/// Seed salt separating core `i`'s engine random stream from core 0's;
/// core 0's salt is 0, so a 1-core machine replays the historical stream.
fn engine_seed(seed: u64, core: usize) -> u64 {
    seed ^ 0xE ^ ((core as u64) << 32)
}

/// A complete simulated machine: one or more cores + per-core PMUs +
/// coherent caches + memory + OS-ish environment.
#[derive(Debug)]
pub struct Machine {
    cores: Vec<Core>,
    env: Env,
    uarch: MicroArch,
    cpu: CpuSpec,
    seed: u64,
    user_next_vaddr: u64,
    kernel_next_region: u64,
    /// `(base page, page count)` of every user-mode `alloc_region` call,
    /// in order — replayed by [`Machine::reset_with_seed`] so the frame
    /// scattering matches a fresh machine making the same calls.
    user_region_log: Vec<(u64, u64)>,
    /// `(base, size)` of every `alloc_region` call in either mode — the
    /// virtual ranges the benchmark owns, for tools (e.g. the static
    /// analyzer) that need to know what is mapped.
    region_log: Vec<(u64, u64)>,
}

impl Machine {
    /// Creates a single-core machine for a Table I CPU model.
    pub fn from_cpu(cpu: &CpuSpec, mode: Mode, seed: u64) -> Machine {
        Machine::from_cpu_with_cores(cpu, mode, seed, 1)
    }

    /// Creates a machine for a Table I CPU model with `n_cores` cores.
    pub fn from_cpu_with_cores(cpu: &CpuSpec, mode: Mode, seed: u64, n_cores: usize) -> Machine {
        let uarch = MicroArch::parse(cpu.microarch).unwrap_or(MicroArch::Skylake);
        Machine::build(
            uarch,
            cpu.clone(),
            &cpu.hierarchy_config(),
            mode,
            seed,
            n_cores,
        )
    }

    /// Creates a single-core machine for a microarchitecture, using its
    /// Table I cache preset (or Skylake's geometry if the
    /// microarchitecture has no row).
    pub fn new(uarch: MicroArch, mode: Mode, seed: u64) -> Machine {
        Machine::with_cores(uarch, mode, seed, 1)
    }

    /// Like [`Machine::new`] but with `n_cores` cores sharing the L3.
    /// Core 0 is the measured core; a 1-core machine is bit-identical to
    /// [`Machine::new`].
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or greater than 8.
    pub fn with_cores(uarch: MicroArch, mode: Mode, seed: u64, n_cores: usize) -> Machine {
        let cpu = table1_cpus()
            .into_iter()
            .find(|c| MicroArch::parse(c.microarch) == Some(uarch))
            .unwrap_or_else(|| {
                table1_cpus()
                    .into_iter()
                    .find(|c| c.microarch == "Skylake")
                    .expect("Skylake preset exists")
            });
        let cfg = cpu.hierarchy_config();
        Machine::build(uarch, cpu, &cfg, mode, seed, n_cores)
    }

    fn build(
        uarch: MicroArch,
        cpu: CpuSpec,
        cfg: &HierarchyConfig,
        mode: Mode,
        seed: u64,
        n_cores: usize,
    ) -> Machine {
        let slices = cfg.slice_count();
        Machine {
            cores: (0..n_cores)
                .map(|core| Core {
                    engine: Engine::new(uarch, engine_seed(seed, core)),
                    state: CpuState::new(),
                    pmu: Pmu::new(uarch.n_prog_counters(), slices),
                    cycle: 0,
                })
                .collect(),
            env: Env {
                mode,
                phys: PhysMem::new(),
                hierarchy: CacheHierarchy::new_multi(cfg, seed, n_cores),
                alloc: KernelAllocator::new(seed ^ 0xA),
                user_map: IntMap::default(),
                rng: SmallRng::seed_from_u64(seed ^ 0x1),
                alloc_rng: SmallRng::seed_from_u64(seed ^ 0x3),
                interrupts_enabled: mode == Mode::User,
                cr4_pce: true,
                next_interrupt: INTERRUPT_MEAN,
                current_core: 0,
                uncore_seen: vec![vec![0; slices]; n_cores],
                uncore_seen_total: vec![0; n_cores],
                tlb: MicroTlb::new(),
                translations: 0,
                walks: 0,
            },
            uarch,
            cpu,
            seed,
            user_next_vaddr: 0x7000_0000,
            kernel_next_region: 0x4000_0000,
            user_region_log: Vec::new(),
            region_log: Vec::new(),
        }
    }

    /// Number of simulated cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Restores the deterministic initial state for the seed the machine
    /// was built with, keeping every allocation. See
    /// [`Machine::reset_with_seed`].
    pub fn reset(&mut self) {
        self.reset_with_seed(self.seed);
    }

    /// Restores the machine to the state a fresh `Machine` built with
    /// `seed` would reach after making the same `alloc_region` calls —
    /// without dropping allocations. Registers, PMU counters, caches (tags
    /// *and* replacement state, including probabilistic policies' random
    /// streams), branch predictor, AVX warm-up, prefetchers, interrupt
    /// stream, memory contents, and the cycle counter are all rewound;
    /// region mappings keep their addresses (user-mode frame scattering is
    /// replayed from the new seed so it matches a fresh machine).
    ///
    /// The kernel heap cursor ([`Machine::alloc_contiguous`]) is the one
    /// piece that persists: contiguous allocations stay reserved, though
    /// the allocator's random stream is rewound.
    pub fn reset_with_seed(&mut self, seed: u64) {
        self.seed = seed;
        for (i, core) in self.cores.iter_mut().enumerate() {
            core.engine.reset_with_seed(engine_seed(seed, i));
            core.state = CpuState::new();
            core.pmu.reset();
            core.cycle = 0;
        }
        let env = &mut self.env;
        env.phys.zero_all();
        env.hierarchy.reset(seed);
        env.alloc.reseed(seed ^ 0xA);
        env.rng = SmallRng::seed_from_u64(seed ^ 0x1);
        env.alloc_rng = SmallRng::seed_from_u64(seed ^ 0x3);
        env.interrupts_enabled = env.mode == Mode::User;
        env.cr4_pce = true;
        env.next_interrupt = INTERRUPT_MEAN;
        env.current_core = 0;
        for seen in &mut env.uncore_seen {
            seen.fill(0);
        }
        env.uncore_seen_total.fill(0);
        for &(base_page, pages) in &self.user_region_log {
            for i in 0..pages {
                let frame = env.alloc_rng.gen_range(0x1000u64..0x80000);
                env.user_map.insert(base_page + i, frame);
            }
        }
        // The replay above re-scatters frames, so every memoized
        // translation is suspect.
        env.tlb.flush();
    }

    /// The seed the machine's random streams are currently derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs a program to completion on the current architectural state.
    ///
    /// Decodes a transient execution plan per call; callers that run the
    /// same program repeatedly should [`Machine::decode`] once and use
    /// [`Machine::run_plan`] (what the Session layer's plan cache does).
    ///
    /// # Errors
    ///
    /// Propagates [`CpuFault`]s — notably privileged instructions in user
    /// mode (§III-D).
    pub fn run(&mut self, program: &[Instruction]) -> Result<RunStats, CpuFault> {
        self.env.current_core = 0;
        let core = &mut self.cores[0];
        let stats = core.engine.run(
            program,
            &mut core.state,
            &mut core.pmu,
            &mut self.env,
            core.cycle,
        )?;
        core.cycle = stats.end_cycle;
        Ok(stats)
    }

    /// Decodes `program` into a reusable execution plan for this machine's
    /// engines (all cores share one descriptor table and port
    /// configuration, so one plan serves any core).
    pub fn decode(&self, program: &[Instruction]) -> DecodedProgram {
        self.cores[0].engine.decode(program)
    }

    /// Runs a pre-decoded plan to completion on core 0; bit-identical to
    /// [`Machine::run`] on the plan's program, minus the per-run decode.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuFault`]s exactly like [`Machine::run`].
    pub fn run_plan(&mut self, plan: &DecodedProgram) -> Result<RunStats, CpuFault> {
        self.env.current_core = 0;
        let core = &mut self.cores[0];
        let stats = core.engine.run_plan(
            plan,
            &mut core.state,
            &mut core.pmu,
            &mut self.env,
            core.cycle,
        )?;
        core.cycle = stats.end_cycle;
        Ok(stats)
    }

    /// Runs `plan` to completion on core 0 while cores 1..N loop the
    /// co-runner plans (core `i` runs `corunners[(i - 1) % len]`,
    /// restarting from the top whenever it completes), contending for the
    /// shared L3 through the coherence layer.
    ///
    /// Scheduling is deterministic round-robin cycle interleaving: at each
    /// step the core with the smallest local cycle executes one
    /// instruction (ties broken by core index), so results are
    /// bit-identical for a given machine state regardless of host
    /// threading. Idle cores are fast-forwarded to the measured core's
    /// clock before the run begins.
    ///
    /// With no co-runners (or a 1-core machine) this is exactly
    /// [`Machine::run_plan`]. Empty co-runner programs are skipped.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CpuFault`] raised by *any* core, in
    /// scheduling order (deterministic).
    pub fn run_plan_with_corunners(
        &mut self,
        plan: &DecodedProgram,
        corunners: &[&DecodedProgram],
    ) -> Result<RunStats, CpuFault> {
        let assignments: Vec<Option<&DecodedProgram>> = (1..self.cores.len())
            .map(|i| {
                if corunners.is_empty() {
                    None
                } else {
                    Some(corunners[(i - 1) % corunners.len()])
                        .filter(|p| !p.instructions().is_empty())
                }
            })
            .collect();
        if assignments.iter().all(Option::is_none) {
            return self.run_plan(plan);
        }

        // Idle cores resume at the measured core's clock (they were
        // parked, but their cycle counters kept ticking).
        let start = self.cores.iter().map(|c| c.cycle).max().expect("core 0");
        let mut ctxs: Vec<RunContext> = self
            .cores
            .iter()
            .map(|c| {
                let mut ctx = c.engine.begin_plan(c.cycle.max(start));
                // The round-robin scheduler contends cores instruction by
                // instruction; a fused burst would bypass that interleaving
                // and weaken coherence interference.
                ctx.disable_fusion();
                ctx
            })
            .collect();

        let result = loop {
            // Pick the runnable core with the smallest local cycle;
            // ties go to the lowest core index.
            let mut best = 0usize;
            let mut best_now = ctxs[0].now();
            for (i, ctx) in ctxs.iter().enumerate().skip(1) {
                if assignments[i - 1].is_some() && ctx.now() < best_now {
                    best = i;
                    best_now = ctx.now();
                }
            }
            let chosen_plan = if best == 0 {
                plan
            } else {
                assignments[best - 1].expect("only runnable cores are picked")
            };
            self.env.current_core = best;
            let core = &mut self.cores[best];
            match core.engine.step_plan(
                &mut ctxs[best],
                chosen_plan,
                &mut core.state,
                &mut core.pmu,
                &mut self.env,
            ) {
                Err(fault) => break Err(fault),
                Ok(true) => {}
                Ok(false) if best == 0 => break Ok(()),
                Ok(false) => ctxs[best].restart(),
            }
        };
        self.env.current_core = 0;
        result?;

        let mut stats0 = None;
        for (i, (core, ctx)) in self.cores.iter_mut().zip(ctxs.iter_mut()).enumerate() {
            let stats = core.engine.finish_plan(ctx, &mut core.pmu);
            core.cycle = stats.end_cycle;
            if i == 0 {
                stats0 = Some(stats);
            }
        }
        Ok(stats0.expect("core 0 exists"))
    }

    /// Allocates a virtual memory region of `size` bytes and returns its
    /// base address.
    ///
    /// In kernel mode the region is identity-mapped (virtually *and*
    /// physically contiguous). In user mode pages are backed by
    /// pseudo-randomly scattered physical frames — which is why cache
    /// experiments that need control over physical addresses require the
    /// kernel version (§III-G / §IV-D).
    pub fn alloc_region(&mut self, size: u64) -> u64 {
        let pages = size.div_ceil(PAGE_SIZE);
        let base = match self.env.mode {
            Mode::Kernel => {
                let base = self.kernel_next_region;
                self.kernel_next_region += (pages + 16) * PAGE_SIZE;
                base
            }
            Mode::User => {
                let base = self.user_next_vaddr;
                for i in 0..pages {
                    let frame = self.env.alloc_rng.gen_range(0x1000u64..0x80000);
                    self.env.user_map.insert(base / PAGE_SIZE + i, frame);
                }
                // The page map changed; drop every memoized translation.
                self.env.tlb.flush();
                self.user_region_log.push((base / PAGE_SIZE, pages));
                self.user_next_vaddr += (pages + 16) * PAGE_SIZE;
                base
            }
        };
        self.region_log.push((base, pages * PAGE_SIZE));
        base
    }

    /// Kernel-only: allocates a physically-contiguous region via the greedy
    /// algorithm of §IV-D and returns its (identity-mapped) address.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] in user mode (modeled as `TooLarge(0)`),
    /// for oversize single allocations, or when memory is too fragmented
    /// (the "please reboot" case).
    pub fn alloc_contiguous(&mut self, size: u64) -> Result<u64, AllocError> {
        if self.env.mode != Mode::Kernel {
            return Err(AllocError::TooLarge { requested: 0 });
        }
        self.env.alloc.alloc_contiguous(size, 256)
    }

    /// Translates a virtual address (None if unmapped in user mode).
    pub fn translate(&self, vaddr: u64) -> Option<u64> {
        self.env.translate(vaddr)
    }

    /// `(translations, hierarchy walks)` performed for the core's demand
    /// accesses so far — the fast-lane invariant is one of each per
    /// memory µop (two translations for a read-modify-write, whose store
    /// side re-translates but never re-walks).
    pub fn mem_path_counters(&self) -> (u64, u64) {
        (self.env.translations, self.env.walks)
    }

    /// The `[start, end)` virtual ranges of every region handed out by
    /// [`Machine::alloc_region`], in allocation order. In user mode these
    /// are exactly the pages that will not fault; in kernel mode the
    /// identity map covers everything, but these are still the only
    /// ranges the benchmark owns.
    pub fn mapped_regions(&self) -> Vec<(u64, u64)> {
        self.region_log.iter().map(|&(b, s)| (b, b + s)).collect()
    }

    /// The execution mode.
    pub fn mode(&self) -> Mode {
        self.env.mode
    }

    /// The microarchitecture.
    pub fn uarch(&self) -> MicroArch {
        self.uarch
    }

    /// The Table I CPU model this machine simulates.
    pub fn cpu(&self) -> &CpuSpec {
        &self.cpu
    }

    /// Current absolute cycle of core 0 (the measured core).
    pub fn cycle(&self) -> u64 {
        self.cores[0].cycle
    }

    /// Current absolute cycle of `core`.
    pub fn cycle_of(&self, core: usize) -> u64 {
        self.cores[core].cycle
    }

    /// Core 0's architectural register state.
    pub fn state(&self) -> &CpuState {
        &self.cores[0].state
    }

    /// Core 0's mutable architectural register state.
    pub fn state_mut(&mut self) -> &mut CpuState {
        &mut self.cores[0].state
    }

    /// Architectural register state of `core`.
    pub fn state_of(&self, core: usize) -> &CpuState {
        &self.cores[core].state
    }

    /// Core 0's PMU.
    pub fn pmu(&self) -> &Pmu {
        &self.cores[0].pmu
    }

    /// Core 0's mutable PMU (for configuring counters).
    pub fn pmu_mut(&mut self) -> &mut Pmu {
        &mut self.cores[0].pmu
    }

    /// The PMU of `core` (co-runner cores count their own events).
    pub fn pmu_of(&self, core: usize) -> &Pmu {
        &self.cores[core].pmu
    }

    /// The cache hierarchy (for experiment instrumentation).
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.env.hierarchy
    }

    /// Mutable cache hierarchy.
    pub fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.env.hierarchy
    }

    /// Core 0's engine (branch predictor state, descriptor table).
    pub fn engine(&self) -> &Engine {
        &self.cores[0].engine
    }

    /// Core 0's mutable engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.cores[0].engine
    }

    /// Reads memory through the current mapping without touching cache or
    /// timing state (host-side readback of result areas).
    pub fn read_mem(&mut self, vaddr: u64, len: u8) -> Option<u64> {
        let paddr = self.env.translate(vaddr)?;
        Some(self.env.phys.read(paddr, len))
    }

    /// Writes memory through the current mapping without touching cache or
    /// timing state (host-side setup of data areas).
    pub fn write_mem(&mut self, vaddr: u64, len: u8, value: u64) -> Option<()> {
        let paddr = self.env.translate(vaddr)?;
        self.env.phys.write(paddr, len, value);
        Some(())
    }

    /// Whether `RDPMC` is enabled for user space (`CR4.PCE`).
    pub fn set_cr4_pce(&mut self, enabled: bool) {
        self.env.cr4_pce = enabled;
    }

    /// Simulates heap fragmentation from long uptime (for §IV-D).
    pub fn fragment_memory(&mut self) {
        self.env.alloc.fragment();
    }

    /// Simulates a reboot: resets the kernel heap (§IV-D).
    pub fn reboot(&mut self) {
        self.env.alloc.reboot();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanobench_x86::asm::parse_asm;
    use nanobench_x86::reg::Gpr;

    #[test]
    fn kernel_machine_runs_privileged_code() {
        let mut m = Machine::new(MicroArch::Skylake, Mode::Kernel, 7);
        let program = parse_asm("wbinvd; mov rax, 5; add rax, 3").unwrap();
        let stats = m.run(&program).unwrap();
        assert_eq!(m.state().gpr(Gpr::Rax), 8);
        assert_eq!(stats.instructions, 3);
        assert!(stats.cycles >= 5000, "wbinvd costs thousands of cycles");
    }

    #[test]
    fn user_machine_faults_on_privileged_code() {
        let mut m = Machine::new(MicroArch::Skylake, Mode::User, 7);
        let program = parse_asm("wbinvd").unwrap();
        assert!(matches!(
            m.run(&program),
            Err(CpuFault::PrivilegedInstruction(_))
        ));
    }

    #[test]
    fn user_pages_fault_when_unmapped() {
        let mut m = Machine::new(MicroArch::Skylake, Mode::User, 7);
        let program = parse_asm("mov rax, [0x1234000]").unwrap();
        assert!(matches!(m.run(&program), Err(CpuFault::PageFault { .. })));
        // After mapping, the same access works.
        let base = m.alloc_region(4096);
        let program = parse_asm(&format!("mov rax, [{base:#x}]")).unwrap();
        m.run(&program).unwrap();
    }

    #[test]
    fn kernel_regions_are_physically_contiguous_user_not() {
        let mut k = Machine::new(MicroArch::Skylake, Mode::Kernel, 7);
        let base = k.alloc_region(64 * 1024);
        let p0 = k.translate(base).unwrap();
        let p1 = k.translate(base + 8 * PAGE_SIZE).unwrap();
        assert_eq!(p1 - p0, 8 * PAGE_SIZE);

        let mut u = Machine::new(MicroArch::Skylake, Mode::User, 7);
        let base = u.alloc_region(64 * 1024);
        let contiguous = (0..15u64).all(|i| {
            let a = u.translate(base + i * PAGE_SIZE).unwrap();
            let b = u.translate(base + (i + 1) * PAGE_SIZE).unwrap();
            b == a + PAGE_SIZE
        });
        assert!(!contiguous, "user frames should be scattered");
    }

    #[test]
    fn pointer_chase_measures_l1_latency() {
        // The §III-A example end to end on the raw machine: a chain of
        // dependent L1 loads costs 4 cycles each.
        let mut m = Machine::new(MicroArch::Skylake, Mode::Kernel, 7);
        let base = m.alloc_region(1 << 20);
        m.state_mut().set_gpr(Gpr::R14, base);
        m.run(&parse_asm("mov [R14], R14").unwrap()).unwrap();
        // Warm the cache once.
        m.run(&parse_asm("mov R14, [R14]").unwrap()).unwrap();
        let chain = "mov R14, [R14]; ".repeat(100);
        let before = m.cycle();
        m.run(&parse_asm(&chain).unwrap()).unwrap();
        let cycles = m.cycle() - before;
        let per_load = cycles as f64 / 100.0;
        assert!(
            (3.9..4.3).contains(&per_load),
            "L1 latency should be ~4 cycles per load, got {per_load}"
        );
    }

    #[test]
    fn contiguous_alloc_only_in_kernel() {
        let mut u = Machine::new(MicroArch::Skylake, Mode::User, 7);
        assert!(u.alloc_contiguous(8 * 1024 * 1024).is_err());
        let mut k = Machine::new(MicroArch::Skylake, Mode::Kernel, 7);
        let addr = k.alloc_contiguous(8 * 1024 * 1024).unwrap();
        assert_eq!(k.translate(addr), Some(addr));
    }

    #[test]
    fn false_sharing_corunner_slows_the_measured_core() {
        // Measured core: dependent loads of one line. Co-runner: stores to
        // the same line from another core — every store invalidates core
        // 0's copy, so its loads keep snoop-missing and re-fetching.
        let run = |n_cores: usize, with_corunner: bool| {
            let mut m = Machine::with_cores(MicroArch::Skylake, Mode::Kernel, 7, n_cores);
            let base = m.alloc_region(4096);
            m.state_mut().set_gpr(Gpr::R14, base);
            m.run(&parse_asm("mov [R14], R14").unwrap()).unwrap();
            let chase = m.decode(&parse_asm(&"mov R14, [R14]; ".repeat(100)).unwrap());
            // The co-runner stores to a *different word of the same line*,
            // so it invalidates core 0's copy without clobbering the
            // chase pointer at [base].
            let store =
                m.decode(&parse_asm(&format!("mov [{:#x}], rax; ", base + 8).repeat(8)).unwrap());
            let corunners: Vec<&nanobench_uarch::plan::DecodedProgram> =
                if with_corunner { vec![&store] } else { vec![] };
            let stats = m.run_plan_with_corunners(&chase, &corunners).unwrap();
            let inval = m.hierarchy().invalidations();
            (stats, inval)
        };
        let (solo, solo_inval) = run(2, false);
        assert_eq!(solo_inval, 0);
        let (contended, inval) = run(2, true);
        assert!(inval > 0, "false sharing must invalidate remote copies");
        assert!(
            contended.cycles > solo.cycles * 2,
            "false sharing must slow the measured core substantially \
             (solo {} vs contended {})",
            solo.cycles,
            contended.cycles
        );
        // Deterministic: an identical fresh machine replays bit-identically.
        let (again, inval_again) = run(2, true);
        assert_eq!(again, contended);
        assert_eq!(inval_again, inval);
    }

    #[test]
    fn rmw_corunner_participates_in_coherence() {
        // A read-modify-write co-runner (`add [line], rbx`) never issues
        // a separate store bus access — its covering load must run the
        // write side of the protocol, or RMW false sharing would be
        // silently absent while `mov`-store co-runners model it.
        let mut m = Machine::with_cores(MicroArch::Skylake, Mode::Kernel, 7, 2);
        let base = m.alloc_region(4096);
        m.state_mut().set_gpr(Gpr::R14, base);
        m.run(&parse_asm("mov [R14], R14").unwrap()).unwrap();
        let chase = m.decode(&parse_asm(&"mov R14, [R14]; ".repeat(100)).unwrap());
        let rmw = m.decode(&parse_asm(&format!("add [{:#x}], rbx; ", base + 8).repeat(4)).unwrap());
        let stats = m.run_plan_with_corunners(&chase, &[&rmw]).unwrap();
        assert!(
            m.hierarchy().invalidations() > 0,
            "RMW stores must invalidate the measured core's copies"
        );
        assert!(
            stats.cycles > 100 * 8,
            "RMW false sharing must slow the chase (got {} cycles)",
            stats.cycles
        );
    }

    #[test]
    fn single_core_machine_ignores_corunner_api() {
        let mut m = Machine::new(MicroArch::Skylake, Mode::Kernel, 7);
        let plan = m.decode(&parse_asm("add rax, rax; add rax, rax").unwrap());
        let a = m.run_plan_with_corunners(&plan, &[]).unwrap();
        let mut m2 = Machine::new(MicroArch::Skylake, Mode::Kernel, 7);
        let b = m2.run_plan(&plan).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn msr_0x1a4_controls_prefetchers() {
        let mut m = Machine::new(MicroArch::Skylake, Mode::Kernel, 7);
        let program = parse_asm("mov rcx, 0x1A4; mov rax, 0xF; mov rdx, 0; wrmsr; rdmsr").unwrap();
        m.run(&program).unwrap();
        assert_eq!(m.state().gpr(Gpr::Rax), 0xF);
        assert_eq!(m.hierarchy().prefetchers().disable_bits(), 0xF);
    }

    /// The memory fast lane's core invariant: a fused load or store costs
    /// exactly one address translation and one hierarchy walk; a
    /// read-modify-write re-translates for its store side but never walks
    /// the hierarchy twice (the covering load ran write coherence).
    #[test]
    fn fast_lane_one_translation_one_walk_per_memory_uop() {
        for mode in [Mode::Kernel, Mode::User] {
            let mut m = Machine::new(MicroArch::Skylake, mode, 7);
            let base = m.alloc_region(4096);
            m.state_mut().set_gpr(Gpr::R14, base);
            m.write_mem(base, 8, base).unwrap();

            let (t0, w0) = m.mem_path_counters();
            m.run(&parse_asm(&"mov R14, [R14]; ".repeat(10)).unwrap())
                .unwrap();
            let (t1, w1) = m.mem_path_counters();
            assert_eq!(
                (t1 - t0, w1 - w0),
                (10, 10),
                "{mode:?}: a fused load is one translation + one walk"
            );

            m.run(&parse_asm(&"mov [R14+64], rax; ".repeat(10)).unwrap())
                .unwrap();
            let (t2, w2) = m.mem_path_counters();
            assert_eq!(
                (t2 - t1, w2 - w1),
                (10, 10),
                "{mode:?}: a fused store is one translation + one walk"
            );

            m.run(&parse_asm(&"add [R14+128], rax; ".repeat(10)).unwrap())
                .unwrap();
            let (t3, w3) = m.mem_path_counters();
            assert_eq!(
                (t3 - t2, w3 - w2),
                (20, 10),
                "{mode:?}: RMW re-translates for the store, walks once"
            );
        }
    }

    /// Two pages whose page numbers collide in the direct-mapped micro-TLB
    /// (64 entries apart) keep translating correctly while evicting each
    /// other's memoized entry.
    #[test]
    fn micro_tlb_collisions_still_translate_correctly() {
        let mut u = Machine::new(MicroArch::Skylake, Mode::User, 7);
        let base = u.alloc_region(65 * PAGE_SIZE);
        let far = base + 64 * PAGE_SIZE;
        u.write_mem(base, 8, 0x1111).unwrap();
        u.write_mem(far, 8, 0x2222).unwrap();
        let program = parse_asm(&format!(
            "mov rax, [{base:#x}]; mov rbx, [{far:#x}]; mov rcx, [{base:#x}]"
        ))
        .unwrap();
        u.run(&program).unwrap();
        assert_eq!(u.state().gpr(Gpr::Rax), 0x1111);
        assert_eq!(u.state().gpr(Gpr::Rbx), 0x2222);
        assert_eq!(u.state().gpr(Gpr::Rcx), 0x1111);
    }
}
