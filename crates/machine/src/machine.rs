//! The virtual machine: a simulated core plus its environment, in kernel
//! or user mode (§III-D of the paper).

use crate::alloc::{AllocError, KernelAllocator};
use crate::phys::{PhysMem, PAGE_SIZE};
use nanobench_cache::hierarchy::{CacheHierarchy, HierarchyConfig, MemAccessResult};
use nanobench_cache::presets::{table1_cpus, CpuSpec};
use nanobench_pmu::Pmu;
use nanobench_uarch::bus::{Bus, CpuFault, InterruptEvent};
use nanobench_uarch::engine::{Engine, RunStats};
use nanobench_uarch::plan::DecodedProgram;
use nanobench_uarch::port::MicroArch;
use nanobench_uarch::state::CpuState;
use nanobench_x86::inst::Instruction;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Execution mode of the machine (§III-D: nanoBench has a user-space and a
/// kernel-space version).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// CPL 0: privileged instructions allowed, interrupts disabled during
    /// measurements, physically-contiguous allocation available.
    Kernel,
    /// CPL 3: privileged instructions fault, timer interrupts and
    /// preemptions perturb measurements, pages map to scattered frames.
    User,
}

/// Mean cycles between user-mode interrupts.
const INTERRUPT_MEAN: u64 = 120_000;

/// The environment of the core: memory, caches, privilege, interrupts.
#[derive(Debug)]
pub struct Env {
    mode: Mode,
    phys: PhysMem,
    hierarchy: CacheHierarchy,
    alloc: KernelAllocator,
    user_map: HashMap<u64, u64>,
    /// Interrupt-arrival randomness. Kept separate from `alloc_rng` so a
    /// reset can rewind the interrupt stream while page mappings persist.
    rng: SmallRng,
    /// Frame-scattering randomness for user-mode `alloc_region`.
    alloc_rng: SmallRng,
    interrupts_enabled: bool,
    cr4_pce: bool,
    next_interrupt: u64,
    uncore_seen: Vec<u64>,
}

impl Env {
    fn translate(&self, vaddr: u64) -> Option<u64> {
        match self.mode {
            Mode::Kernel => Some(vaddr),
            Mode::User => {
                let page = vaddr / PAGE_SIZE;
                let frame = self.user_map.get(&page)?;
                Some(frame * PAGE_SIZE + vaddr % PAGE_SIZE)
            }
        }
    }

    fn translate_or_fault(&self, vaddr: u64) -> Result<u64, CpuFault> {
        self.translate(vaddr).ok_or(CpuFault::PageFault { vaddr })
    }
}

impl Bus for Env {
    fn read(&mut self, vaddr: u64, len: u8) -> Result<u64, CpuFault> {
        let paddr = self.translate_or_fault(vaddr)?;
        Ok(self.phys.read(paddr, len))
    }

    fn write(&mut self, vaddr: u64, len: u8, value: u64) -> Result<(), CpuFault> {
        let paddr = self.translate_or_fault(vaddr)?;
        self.phys.write(paddr, len, value);
        Ok(())
    }

    fn access(&mut self, vaddr: u64, _is_write: bool) -> Result<MemAccessResult, CpuFault> {
        let paddr = self.translate_or_fault(vaddr)?;
        Ok(self.hierarchy.access(paddr))
    }

    fn is_kernel(&self) -> bool {
        self.mode == Mode::Kernel
    }

    fn rdpmc_allowed(&self) -> bool {
        self.cr4_pce
    }

    fn rdmsr(&mut self, addr: u32) -> Result<u64, CpuFault> {
        match addr {
            nanobench_pmu::msr::MSR_MISC_FEATURE_CONTROL => {
                Ok(self.hierarchy.prefetchers().disable_bits())
            }
            _ => Err(CpuFault::BadMsr { addr }),
        }
    }

    fn wrmsr(&mut self, addr: u32, value: u64) -> Result<(), CpuFault> {
        match addr {
            nanobench_pmu::msr::MSR_MISC_FEATURE_CONTROL => {
                self.hierarchy.prefetchers_mut().set_disable_bits(value);
                Ok(())
            }
            _ => Err(CpuFault::BadMsr { addr }),
        }
    }

    fn wbinvd(&mut self) {
        self.hierarchy.wbinvd();
    }

    fn clflush(&mut self, vaddr: u64) {
        if let Some(paddr) = self.translate(vaddr) {
            self.hierarchy.clflush(paddr);
        }
    }

    fn prefetch(&mut self, vaddr: u64) {
        if let Some(paddr) = self.translate(vaddr) {
            self.hierarchy.access(paddr);
        }
    }

    fn poll_interrupt(&mut self, cycle: u64) -> Option<InterruptEvent> {
        if !self.interrupts_enabled || cycle < self.next_interrupt {
            return None;
        }
        self.next_interrupt = cycle + INTERRUPT_MEAN / 2 + self.rng.gen_range(0..INTERRUPT_MEAN);
        // The handler touches memory, perturbing the cache state the
        // benchmark's init phase may have established (§I, §IV-A2).
        for _ in 0..16 {
            let addr = (self.rng.gen_range(0u64..1 << 20)) * 64;
            self.hierarchy.access(addr);
        }
        Some(InterruptEvent {
            cycles: 2_000 + self.rng.gen_range(0..4_000),
            instructions: 500 + self.rng.gen_range(0..1_500),
            uops: 700 + self.rng.gen_range(0..2_000),
        })
    }

    fn set_interrupt_flag(&mut self, enabled: bool) {
        self.interrupts_enabled = enabled;
    }

    fn drain_uncore_lookups(&mut self, out: &mut Vec<u64>) {
        let current = self.hierarchy.uncore_lookups();
        out.extend(
            current
                .iter()
                .zip(self.uncore_seen.iter())
                .map(|(c, s)| c - s),
        );
        self.uncore_seen.copy_from_slice(current);
    }
}

/// A complete simulated machine: core + PMU + caches + memory + OS-ish
/// environment.
#[derive(Debug)]
pub struct Machine {
    engine: Engine,
    state: CpuState,
    pmu: Pmu,
    env: Env,
    cycle: u64,
    uarch: MicroArch,
    cpu: CpuSpec,
    seed: u64,
    user_next_vaddr: u64,
    kernel_next_region: u64,
    /// `(base page, page count)` of every user-mode `alloc_region` call,
    /// in order — replayed by [`Machine::reset_with_seed`] so the frame
    /// scattering matches a fresh machine making the same calls.
    user_region_log: Vec<(u64, u64)>,
}

impl Machine {
    /// Creates a machine for a Table I CPU model.
    pub fn from_cpu(cpu: &CpuSpec, mode: Mode, seed: u64) -> Machine {
        let uarch = MicroArch::parse(cpu.microarch).unwrap_or(MicroArch::Skylake);
        Machine::build(uarch, cpu.clone(), &cpu.hierarchy_config(), mode, seed)
    }

    /// Creates a machine for a microarchitecture, using its Table I cache
    /// preset (or Skylake's geometry if the microarchitecture has no row).
    pub fn new(uarch: MicroArch, mode: Mode, seed: u64) -> Machine {
        let cpu = table1_cpus()
            .into_iter()
            .find(|c| MicroArch::parse(c.microarch) == Some(uarch))
            .unwrap_or_else(|| {
                table1_cpus()
                    .into_iter()
                    .find(|c| c.microarch == "Skylake")
                    .expect("Skylake preset exists")
            });
        let cfg = cpu.hierarchy_config();
        Machine::build(uarch, cpu, &cfg, mode, seed)
    }

    fn build(
        uarch: MicroArch,
        cpu: CpuSpec,
        cfg: &HierarchyConfig,
        mode: Mode,
        seed: u64,
    ) -> Machine {
        let slices = cfg.l3.slices;
        Machine {
            engine: Engine::new(uarch, seed ^ 0xE),
            state: CpuState::new(),
            pmu: Pmu::new(uarch.n_prog_counters(), slices),
            env: Env {
                mode,
                phys: PhysMem::new(),
                hierarchy: CacheHierarchy::new(cfg, seed),
                alloc: KernelAllocator::new(seed ^ 0xA),
                user_map: HashMap::new(),
                rng: SmallRng::seed_from_u64(seed ^ 0x1),
                alloc_rng: SmallRng::seed_from_u64(seed ^ 0x3),
                interrupts_enabled: mode == Mode::User,
                cr4_pce: true,
                next_interrupt: INTERRUPT_MEAN,
                uncore_seen: vec![0; slices],
            },
            cycle: 0,
            uarch,
            cpu,
            seed,
            user_next_vaddr: 0x7000_0000,
            kernel_next_region: 0x4000_0000,
            user_region_log: Vec::new(),
        }
    }

    /// Restores the deterministic initial state for the seed the machine
    /// was built with, keeping every allocation. See
    /// [`Machine::reset_with_seed`].
    pub fn reset(&mut self) {
        self.reset_with_seed(self.seed);
    }

    /// Restores the machine to the state a fresh `Machine` built with
    /// `seed` would reach after making the same `alloc_region` calls —
    /// without dropping allocations. Registers, PMU counters, caches (tags
    /// *and* replacement state, including probabilistic policies' random
    /// streams), branch predictor, AVX warm-up, prefetchers, interrupt
    /// stream, memory contents, and the cycle counter are all rewound;
    /// region mappings keep their addresses (user-mode frame scattering is
    /// replayed from the new seed so it matches a fresh machine).
    ///
    /// The kernel heap cursor ([`Machine::alloc_contiguous`]) is the one
    /// piece that persists: contiguous allocations stay reserved, though
    /// the allocator's random stream is rewound.
    pub fn reset_with_seed(&mut self, seed: u64) {
        self.seed = seed;
        self.engine.reset_with_seed(seed ^ 0xE);
        self.state = CpuState::new();
        self.pmu.reset();
        self.cycle = 0;
        let env = &mut self.env;
        env.phys.zero_all();
        env.hierarchy.reset(seed);
        env.alloc.reseed(seed ^ 0xA);
        env.rng = SmallRng::seed_from_u64(seed ^ 0x1);
        env.alloc_rng = SmallRng::seed_from_u64(seed ^ 0x3);
        env.interrupts_enabled = env.mode == Mode::User;
        env.cr4_pce = true;
        env.next_interrupt = INTERRUPT_MEAN;
        env.uncore_seen.fill(0);
        for &(base_page, pages) in &self.user_region_log {
            for i in 0..pages {
                let frame = env.alloc_rng.gen_range(0x1000u64..0x80000);
                env.user_map.insert(base_page + i, frame);
            }
        }
    }

    /// The seed the machine's random streams are currently derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs a program to completion on the current architectural state.
    ///
    /// Decodes a transient execution plan per call; callers that run the
    /// same program repeatedly should [`Machine::decode`] once and use
    /// [`Machine::run_plan`] (what the Session layer's plan cache does).
    ///
    /// # Errors
    ///
    /// Propagates [`CpuFault`]s — notably privileged instructions in user
    /// mode (§III-D).
    pub fn run(&mut self, program: &[Instruction]) -> Result<RunStats, CpuFault> {
        let stats = self.engine.run(
            program,
            &mut self.state,
            &mut self.pmu,
            &mut self.env,
            self.cycle,
        )?;
        self.cycle = stats.end_cycle;
        Ok(stats)
    }

    /// Decodes `program` into a reusable execution plan for this machine's
    /// engine (its descriptor table and port configuration).
    pub fn decode(&self, program: &[Instruction]) -> DecodedProgram {
        self.engine.decode(program)
    }

    /// Runs a pre-decoded plan to completion; bit-identical to
    /// [`Machine::run`] on the plan's program, minus the per-run decode.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuFault`]s exactly like [`Machine::run`].
    pub fn run_plan(&mut self, plan: &DecodedProgram) -> Result<RunStats, CpuFault> {
        let stats = self.engine.run_plan(
            plan,
            &mut self.state,
            &mut self.pmu,
            &mut self.env,
            self.cycle,
        )?;
        self.cycle = stats.end_cycle;
        Ok(stats)
    }

    /// Allocates a virtual memory region of `size` bytes and returns its
    /// base address.
    ///
    /// In kernel mode the region is identity-mapped (virtually *and*
    /// physically contiguous). In user mode pages are backed by
    /// pseudo-randomly scattered physical frames — which is why cache
    /// experiments that need control over physical addresses require the
    /// kernel version (§III-G / §IV-D).
    pub fn alloc_region(&mut self, size: u64) -> u64 {
        let pages = size.div_ceil(PAGE_SIZE);
        match self.env.mode {
            Mode::Kernel => {
                let base = self.kernel_next_region;
                self.kernel_next_region += (pages + 16) * PAGE_SIZE;
                base
            }
            Mode::User => {
                let base = self.user_next_vaddr;
                for i in 0..pages {
                    let frame = self.env.alloc_rng.gen_range(0x1000u64..0x80000);
                    self.env.user_map.insert(base / PAGE_SIZE + i, frame);
                }
                self.user_region_log.push((base / PAGE_SIZE, pages));
                self.user_next_vaddr += (pages + 16) * PAGE_SIZE;
                base
            }
        }
    }

    /// Kernel-only: allocates a physically-contiguous region via the greedy
    /// algorithm of §IV-D and returns its (identity-mapped) address.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] in user mode (modeled as `TooLarge(0)`),
    /// for oversize single allocations, or when memory is too fragmented
    /// (the "please reboot" case).
    pub fn alloc_contiguous(&mut self, size: u64) -> Result<u64, AllocError> {
        if self.env.mode != Mode::Kernel {
            return Err(AllocError::TooLarge { requested: 0 });
        }
        self.env.alloc.alloc_contiguous(size, 256)
    }

    /// Translates a virtual address (None if unmapped in user mode).
    pub fn translate(&self, vaddr: u64) -> Option<u64> {
        self.env.translate(vaddr)
    }

    /// The execution mode.
    pub fn mode(&self) -> Mode {
        self.env.mode
    }

    /// The microarchitecture.
    pub fn uarch(&self) -> MicroArch {
        self.uarch
    }

    /// The Table I CPU model this machine simulates.
    pub fn cpu(&self) -> &CpuSpec {
        &self.cpu
    }

    /// Current absolute cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Architectural register state.
    pub fn state(&self) -> &CpuState {
        &self.state
    }

    /// Mutable architectural register state.
    pub fn state_mut(&mut self) -> &mut CpuState {
        &mut self.state
    }

    /// The PMU.
    pub fn pmu(&self) -> &Pmu {
        &self.pmu
    }

    /// Mutable PMU (for configuring counters).
    pub fn pmu_mut(&mut self) -> &mut Pmu {
        &mut self.pmu
    }

    /// The cache hierarchy (for experiment instrumentation).
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.env.hierarchy
    }

    /// Mutable cache hierarchy.
    pub fn hierarchy_mut(&mut self) -> &mut CacheHierarchy {
        &mut self.env.hierarchy
    }

    /// The engine (branch predictor state, descriptor table).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Reads memory through the current mapping without touching cache or
    /// timing state (host-side readback of result areas).
    pub fn read_mem(&mut self, vaddr: u64, len: u8) -> Option<u64> {
        let paddr = self.env.translate(vaddr)?;
        Some(self.env.phys.read(paddr, len))
    }

    /// Writes memory through the current mapping without touching cache or
    /// timing state (host-side setup of data areas).
    pub fn write_mem(&mut self, vaddr: u64, len: u8, value: u64) -> Option<()> {
        let paddr = self.env.translate(vaddr)?;
        self.env.phys.write(paddr, len, value);
        Some(())
    }

    /// Whether `RDPMC` is enabled for user space (`CR4.PCE`).
    pub fn set_cr4_pce(&mut self, enabled: bool) {
        self.env.cr4_pce = enabled;
    }

    /// Simulates heap fragmentation from long uptime (for §IV-D).
    pub fn fragment_memory(&mut self) {
        self.env.alloc.fragment();
    }

    /// Simulates a reboot: resets the kernel heap (§IV-D).
    pub fn reboot(&mut self) {
        self.env.alloc.reboot();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanobench_x86::asm::parse_asm;
    use nanobench_x86::reg::Gpr;

    #[test]
    fn kernel_machine_runs_privileged_code() {
        let mut m = Machine::new(MicroArch::Skylake, Mode::Kernel, 7);
        let program = parse_asm("wbinvd; mov rax, 5; add rax, 3").unwrap();
        let stats = m.run(&program).unwrap();
        assert_eq!(m.state().gpr(Gpr::Rax), 8);
        assert_eq!(stats.instructions, 3);
        assert!(stats.cycles >= 5000, "wbinvd costs thousands of cycles");
    }

    #[test]
    fn user_machine_faults_on_privileged_code() {
        let mut m = Machine::new(MicroArch::Skylake, Mode::User, 7);
        let program = parse_asm("wbinvd").unwrap();
        assert!(matches!(
            m.run(&program),
            Err(CpuFault::PrivilegedInstruction(_))
        ));
    }

    #[test]
    fn user_pages_fault_when_unmapped() {
        let mut m = Machine::new(MicroArch::Skylake, Mode::User, 7);
        let program = parse_asm("mov rax, [0x1234000]").unwrap();
        assert!(matches!(m.run(&program), Err(CpuFault::PageFault { .. })));
        // After mapping, the same access works.
        let base = m.alloc_region(4096);
        let program = parse_asm(&format!("mov rax, [{base:#x}]")).unwrap();
        m.run(&program).unwrap();
    }

    #[test]
    fn kernel_regions_are_physically_contiguous_user_not() {
        let mut k = Machine::new(MicroArch::Skylake, Mode::Kernel, 7);
        let base = k.alloc_region(64 * 1024);
        let p0 = k.translate(base).unwrap();
        let p1 = k.translate(base + 8 * PAGE_SIZE).unwrap();
        assert_eq!(p1 - p0, 8 * PAGE_SIZE);

        let mut u = Machine::new(MicroArch::Skylake, Mode::User, 7);
        let base = u.alloc_region(64 * 1024);
        let contiguous = (0..15u64).all(|i| {
            let a = u.translate(base + i * PAGE_SIZE).unwrap();
            let b = u.translate(base + (i + 1) * PAGE_SIZE).unwrap();
            b == a + PAGE_SIZE
        });
        assert!(!contiguous, "user frames should be scattered");
    }

    #[test]
    fn pointer_chase_measures_l1_latency() {
        // The §III-A example end to end on the raw machine: a chain of
        // dependent L1 loads costs 4 cycles each.
        let mut m = Machine::new(MicroArch::Skylake, Mode::Kernel, 7);
        let base = m.alloc_region(1 << 20);
        m.state_mut().set_gpr(Gpr::R14, base);
        m.run(&parse_asm("mov [R14], R14").unwrap()).unwrap();
        // Warm the cache once.
        m.run(&parse_asm("mov R14, [R14]").unwrap()).unwrap();
        let chain = "mov R14, [R14]; ".repeat(100);
        let before = m.cycle();
        m.run(&parse_asm(&chain).unwrap()).unwrap();
        let cycles = m.cycle() - before;
        let per_load = cycles as f64 / 100.0;
        assert!(
            (3.9..4.3).contains(&per_load),
            "L1 latency should be ~4 cycles per load, got {per_load}"
        );
    }

    #[test]
    fn contiguous_alloc_only_in_kernel() {
        let mut u = Machine::new(MicroArch::Skylake, Mode::User, 7);
        assert!(u.alloc_contiguous(8 * 1024 * 1024).is_err());
        let mut k = Machine::new(MicroArch::Skylake, Mode::Kernel, 7);
        let addr = k.alloc_contiguous(8 * 1024 * 1024).unwrap();
        assert_eq!(k.translate(addr), Some(addr));
    }

    #[test]
    fn msr_0x1a4_controls_prefetchers() {
        let mut m = Machine::new(MicroArch::Skylake, Mode::Kernel, 7);
        let program = parse_asm("mov rcx, 0x1A4; mov rax, 0xF; mov rdx, 0; wrmsr; rdmsr").unwrap();
        m.run(&program).unwrap();
        assert_eq!(m.state().gpr(Gpr::Rax), 0xF);
        assert_eq!(m.hierarchy().prefetchers().disable_bits(), 0xF);
    }
}
