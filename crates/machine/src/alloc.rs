//! Kernel memory allocation: `kmalloc` and the greedy physically-contiguous
//! allocator of §IV-D.
//!
//! The paper: "In Linux kernel code, the kmalloc function can be used to
//! allocate physically-contiguous memory. With recent kernel versions, this
//! is limited to at most 4 MB. [...] we noticed that in many cases,
//! subsequent calls to kmalloc yield adjacent memory areas. This is, in
//! particular, the case if the system was rebooted recently. [...] we
//! implemented a greedy algorithm that tries to find a physically-contiguous
//! memory area of the requested size by performing multiple calls to
//! kmalloc. If this does not succeed, the tool proposes a reboot."

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// `kmalloc`'s maximum allocation size on recent kernels (4 MB).
pub const KMALLOC_MAX: u64 = 4 * 1024 * 1024;

/// Error from the contiguous allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// A single `kmalloc` request exceeded [`KMALLOC_MAX`].
    TooLarge {
        /// Requested size in bytes.
        requested: u64,
    },
    /// The greedy algorithm could not find a contiguous region; the tool
    /// proposes a reboot (§IV-D).
    Fragmented {
        /// Size that was requested.
        requested: u64,
        /// Largest contiguous run found.
        best_found: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::TooLarge { requested } => {
                write!(f, "kmalloc cannot allocate {requested} bytes (max 4 MB)")
            }
            AllocError::Fragmented {
                requested,
                best_found,
            } => write!(
                f,
                "no contiguous region of {requested} bytes found (best {best_found}); try rebooting"
            ),
        }
    }
}

impl Error for AllocError {}

/// The kernel's physical allocator.
///
/// Freshly booted, `kmalloc` calls return adjacent areas; as the simulated
/// uptime grows (or after [`KernelAllocator::fragment`]), allocations skip
/// unpredictably, making large contiguous regions hard to assemble — the
/// situation the paper's greedy algorithm and reboot advice address.
#[derive(Debug)]
pub struct KernelAllocator {
    next: u64,
    rng: SmallRng,
    /// Probability (percent) that the next kmalloc is NOT adjacent.
    skip_percent: u32,
    allocations: u64,
}

/// Start of the kernel heap in physical memory.
const HEAP_BASE: u64 = 0x0100_0000;

impl KernelAllocator {
    /// Creates a freshly-booted allocator.
    pub fn new(seed: u64) -> KernelAllocator {
        KernelAllocator {
            next: HEAP_BASE,
            rng: SmallRng::seed_from_u64(seed),
            skip_percent: 0,
            allocations: 0,
        }
    }

    /// Simulates prolonged uptime: subsequent `kmalloc` calls frequently
    /// land in non-adjacent areas.
    pub fn fragment(&mut self) {
        self.skip_percent = 60;
    }

    /// Rewinds the allocator's random stream to the start for `seed`. The
    /// heap cursor and uptime state are kept: existing allocations stay
    /// reserved across a machine reset. An allocator that has never served
    /// a request becomes bit-identical to `KernelAllocator::new(seed)`.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// Simulates a reboot (§IV-D: "the tool proposes a reboot").
    pub fn reboot(&mut self) {
        self.next = HEAP_BASE;
        self.skip_percent = 0;
        self.allocations = 0;
    }

    /// `kmalloc(size)`: returns the physical address of a contiguous area.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::TooLarge`] for requests over 4 MB.
    pub fn kmalloc(&mut self, size: u64) -> Result<u64, AllocError> {
        if size == 0 || size > KMALLOC_MAX {
            return Err(AllocError::TooLarge { requested: size });
        }
        self.allocations += 1;
        // Uptime slowly fragments the heap even without explicit calls.
        if self.allocations.is_multiple_of(512) && self.skip_percent < 40 {
            self.skip_percent += 1;
        }
        if self.rng.gen_range(0..100) < self.skip_percent {
            // Non-adjacent: skip a pseudo-random number of pages.
            let skip_pages = self.rng.gen_range(2u64..64);
            self.next += skip_pages * 4096;
        }
        let addr = self.next;
        self.next += size.div_ceil(4096) * 4096;
        Ok(addr)
    }

    /// The greedy algorithm of §IV-D: builds a physically-contiguous region
    /// of `size` bytes out of repeated ≤4 MB `kmalloc` calls, keeping runs
    /// of adjacent areas and restarting when a gap appears.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Fragmented`] after `max_attempts` kmalloc
    /// calls without a sufficient run, mirroring the tool's reboot advice.
    pub fn alloc_contiguous(&mut self, size: u64, max_attempts: u32) -> Result<u64, AllocError> {
        if size <= KMALLOC_MAX {
            return self.kmalloc(size);
        }
        let chunk = KMALLOC_MAX;
        // (run_start, run_len) describe the current adjacent run; an empty
        // run is `run_len == 0`, so no `Option` (and no unwrap) is needed.
        let mut run_start = 0u64;
        let mut run_len = 0u64;
        let mut best = 0u64;
        for _ in 0..max_attempts {
            let addr = self.kmalloc(chunk)?;
            if run_len > 0 && addr == run_start + run_len {
                run_len += chunk;
            } else {
                run_start = addr;
                run_len = chunk;
            }
            best = best.max(run_len);
            if run_len >= size {
                return Ok(run_start);
            }
        }
        Err(AllocError::Fragmented {
            requested: size,
            best_found: best,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmalloc_is_adjacent_after_boot() {
        let mut a = KernelAllocator::new(1);
        let x = a.kmalloc(4096).unwrap();
        let y = a.kmalloc(4096).unwrap();
        assert_eq!(y, x + 4096);
    }

    #[test]
    fn kmalloc_rejects_oversize() {
        let mut a = KernelAllocator::new(1);
        assert!(matches!(
            a.kmalloc(KMALLOC_MAX + 1),
            Err(AllocError::TooLarge { .. })
        ));
    }

    #[test]
    fn contiguous_succeeds_after_boot() {
        let mut a = KernelAllocator::new(1);
        // 16 MB out of 4 MB chunks — possible on a fresh heap.
        let addr = a.alloc_contiguous(16 * 1024 * 1024, 64).unwrap();
        assert_eq!(addr % 4096, 0);
    }

    #[test]
    fn contiguous_fails_when_fragmented_then_reboot_helps() {
        let mut a = KernelAllocator::new(42);
        a.fragment();
        let err = a.alloc_contiguous(64 * 1024 * 1024, 40).unwrap_err();
        assert!(matches!(err, AllocError::Fragmented { .. }));
        assert!(err.to_string().contains("reboot"));
        a.reboot();
        assert!(a.alloc_contiguous(64 * 1024 * 1024, 40).is_ok());
    }
}
