//! Sparse physical memory.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Page size (4 KB, as on x86-64).
pub const PAGE_SIZE: u64 = 4096;

/// A multiply-xor hasher for small integer keys (frame and page numbers).
/// The default SipHash costs more than the lookup it guards on the
/// per-instruction memory path; this is the 64-bit finalizer of
/// MurmurHash3, which mixes well enough for page-number keys.
#[derive(Debug, Default)]
pub struct IntHasher(u64);

impl Hasher for IntHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut h = self.0 ^ n;
        h = (h ^ (h >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
        h = (h ^ (h >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        self.0 = h ^ (h >> 33);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` over integer keys using [`IntHasher`].
pub type IntMap<V> = HashMap<u64, V, BuildHasherDefault<IntHasher>>;

type Frame = [u8; PAGE_SIZE as usize];

/// Byte-addressable sparse physical memory backed by 4 KB frames.
///
/// Frames live in a stable arena indexed by a side table, with a
/// one-entry MRU memo so the streak of accesses to a single page (the
/// overwhelmingly common pattern in microbenchmark bodies) resolves its
/// frame without hashing at all.
#[derive(Debug, Default)]
pub struct PhysMem {
    frames: Vec<Box<Frame>>,
    index: IntMap<u32>,
    /// `(frame number, arena slot)` of the last successful lookup;
    /// `u64::MAX` is never a valid frame number for ≤64-bit addresses.
    mru: (u64, u32),
}

impl PhysMem {
    /// Creates empty physical memory.
    pub fn new() -> PhysMem {
        PhysMem {
            frames: Vec::new(),
            index: IntMap::default(),
            mru: (u64::MAX, 0),
        }
    }

    /// Arena slot of `frame` if materialized, via the MRU memo.
    fn slot(&mut self, frame: u64) -> Option<u32> {
        if self.mru.0 == frame {
            return Some(self.mru.1);
        }
        let slot = *self.index.get(&frame)?;
        self.mru = (frame, slot);
        Some(slot)
    }

    /// Arena slot of `frame`, materializing a zero frame if absent.
    fn slot_or_insert(&mut self, frame: u64) -> u32 {
        if self.mru.0 == frame {
            return self.mru.1;
        }
        let slot = match self.index.get(&frame) {
            Some(&s) => s,
            None => {
                let s = u32::try_from(self.frames.len()).expect("frame arena fits u32");
                self.frames.push(Box::new([0; PAGE_SIZE as usize]));
                self.index.insert(frame, s);
                s
            }
        };
        self.mru = (frame, slot);
        slot
    }

    /// Whether `[paddr, paddr + len)` stays within one 4 KB frame (the
    /// common case for the ≤8-byte accesses the machine issues).
    fn within_one_frame(paddr: u64, len: u8) -> bool {
        len > 0 && (paddr + len as u64 - 1) / PAGE_SIZE == paddr / PAGE_SIZE
    }

    /// Reads `len` bytes (little-endian) at a physical address.
    pub fn read(&mut self, paddr: u64, len: u8) -> u64 {
        if PhysMem::within_one_frame(paddr, len) {
            // Resolve the frame once for the whole span.
            let Some(slot) = self.slot(paddr / PAGE_SIZE) else {
                return 0;
            };
            let f = &self.frames[slot as usize];
            let offset = (paddr % PAGE_SIZE) as usize;
            let mut buf = [0u8; 8];
            buf[..len as usize].copy_from_slice(&f[offset..offset + len as usize]);
            return u64::from_le_bytes(buf);
        }
        let mut value = 0u64;
        for i in (0..len as u64).rev() {
            let addr = paddr + i;
            let offset = (addr % PAGE_SIZE) as usize;
            let byte = self
                .slot(addr / PAGE_SIZE)
                .map_or(0, |s| self.frames[s as usize][offset]);
            value = (value << 8) | u64::from(byte);
        }
        value
    }

    /// Writes `len` bytes (little-endian) at a physical address.
    pub fn write(&mut self, paddr: u64, len: u8, value: u64) {
        if PhysMem::within_one_frame(paddr, len) {
            let slot = self.slot_or_insert(paddr / PAGE_SIZE);
            let f = &mut self.frames[slot as usize];
            let offset = (paddr % PAGE_SIZE) as usize;
            f[offset..offset + len as usize].copy_from_slice(&value.to_le_bytes()[..len as usize]);
            return;
        }
        for i in 0..len as u64 {
            let addr = paddr + i;
            let offset = (addr % PAGE_SIZE) as usize;
            let slot = self.slot_or_insert(addr / PAGE_SIZE);
            self.frames[slot as usize][offset] = (value >> (8 * i)) as u8;
        }
    }

    /// Zeroes every materialized frame in place. Observationally identical
    /// to fresh memory (unwritten bytes read as zero) while keeping the
    /// frame allocations, which is what makes machine resets cheap.
    pub fn zero_all(&mut self) {
        for frame in &mut self.frames {
            frame.fill(0);
        }
    }

    /// Number of materialized frames (for tests).
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = PhysMem::new();
        m.write(0x1000, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x1000, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x1000, 4), 0x5566_7788);
        assert_eq!(m.read(0x1004, 4), 0x1122_3344);
        assert_eq!(m.read(0x1000, 1), 0x88);
    }

    #[test]
    fn cross_page_access() {
        let mut m = PhysMem::new();
        m.write(PAGE_SIZE - 4, 8, 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.read(PAGE_SIZE - 4, 8), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.frame_count(), 2);
    }

    #[test]
    fn zero_all_keeps_frames_but_clears_contents() {
        let mut m = PhysMem::new();
        m.write(0x2000, 8, 0x1234_5678);
        m.write(PAGE_SIZE - 2, 4, 0xAABB_CCDD); // straddles two frames
        m.zero_all();
        assert_eq!(m.frame_count(), 3);
        assert_eq!(m.read(0x2000, 8), 0);
        assert_eq!(m.read(PAGE_SIZE - 2, 4), 0);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let mut m = PhysMem::new();
        assert_eq!(m.read(0xDEAD_0000, 8), 0);
        assert_eq!(m.frame_count(), 0, "reads must not materialize frames");
    }

    #[test]
    fn interleaved_pages_hit_through_the_mru_memo() {
        let mut m = PhysMem::new();
        m.write(0x0, 8, 1);
        m.write(0x10_0000, 8, 2);
        for _ in 0..4 {
            assert_eq!(m.read(0x0, 8), 1);
            assert_eq!(m.read(0x10_0000, 8), 2);
        }
    }
}
