//! Sparse physical memory.

use std::collections::HashMap;

/// Page size (4 KB, as on x86-64).
pub const PAGE_SIZE: u64 = 4096;

/// Byte-addressable sparse physical memory backed by 4 KB frames.
#[derive(Debug, Default)]
pub struct PhysMem {
    frames: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl PhysMem {
    /// Creates empty physical memory.
    pub fn new() -> PhysMem {
        PhysMem::default()
    }

    fn frame_mut(&mut self, frame: u64) -> &mut [u8; PAGE_SIZE as usize] {
        self.frames
            .entry(frame)
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]))
    }

    /// Whether `[paddr, paddr + len)` stays within one 4 KB frame (the
    /// common case for the ≤8-byte accesses the machine issues).
    fn within_one_frame(paddr: u64, len: u8) -> bool {
        len > 0 && (paddr + len as u64 - 1) / PAGE_SIZE == paddr / PAGE_SIZE
    }

    /// Reads `len` bytes (little-endian) at a physical address.
    pub fn read(&mut self, paddr: u64, len: u8) -> u64 {
        if PhysMem::within_one_frame(paddr, len) {
            // Resolve the frame once for the whole span.
            let Some(f) = self.frames.get(&(paddr / PAGE_SIZE)) else {
                return 0;
            };
            let offset = (paddr % PAGE_SIZE) as usize;
            let mut value = 0u64;
            for i in (0..len as usize).rev() {
                value = (value << 8) | f[offset + i] as u64;
            }
            return value;
        }
        let mut value = 0u64;
        for i in (0..len as u64).rev() {
            let addr = paddr + i;
            let frame = addr / PAGE_SIZE;
            let offset = (addr % PAGE_SIZE) as usize;
            let byte = self.frames.get(&frame).map_or(0, |f| f[offset]);
            value = (value << 8) | byte as u64;
        }
        value
    }

    /// Writes `len` bytes (little-endian) at a physical address.
    pub fn write(&mut self, paddr: u64, len: u8, value: u64) {
        if PhysMem::within_one_frame(paddr, len) {
            let f = self.frame_mut(paddr / PAGE_SIZE);
            let offset = (paddr % PAGE_SIZE) as usize;
            for i in 0..len as usize {
                f[offset + i] = (value >> (8 * i)) as u8;
            }
            return;
        }
        for i in 0..len as u64 {
            let addr = paddr + i;
            let frame = addr / PAGE_SIZE;
            let offset = (addr % PAGE_SIZE) as usize;
            self.frame_mut(frame)[offset] = (value >> (8 * i)) as u8;
        }
    }

    /// Zeroes every materialized frame in place. Observationally identical
    /// to fresh memory (unwritten bytes read as zero) while keeping the
    /// frame allocations, which is what makes machine resets cheap.
    pub fn zero_all(&mut self) {
        for frame in self.frames.values_mut() {
            frame.fill(0);
        }
    }

    /// Number of materialized frames (for tests).
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = PhysMem::new();
        m.write(0x1000, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x1000, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(0x1000, 4), 0x5566_7788);
        assert_eq!(m.read(0x1004, 4), 0x1122_3344);
        assert_eq!(m.read(0x1000, 1), 0x88);
    }

    #[test]
    fn cross_page_access() {
        let mut m = PhysMem::new();
        m.write(PAGE_SIZE - 4, 8, 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.read(PAGE_SIZE - 4, 8), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.frame_count(), 2);
    }

    #[test]
    fn zero_all_keeps_frames_but_clears_contents() {
        let mut m = PhysMem::new();
        m.write(0x2000, 8, 0x1234_5678);
        m.write(PAGE_SIZE - 2, 4, 0xAABB_CCDD); // straddles two frames
        m.zero_all();
        assert_eq!(m.frame_count(), 3);
        assert_eq!(m.read(0x2000, 8), 0);
        assert_eq!(m.read(PAGE_SIZE - 2, 4), 0);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let mut m = PhysMem::new();
        assert_eq!(m.read(0xDEAD_0000, 8), 0);
        assert_eq!(m.frame_count(), 0, "reads must not materialize frames");
    }
}
