//! Reusable benchmark sessions and parallel campaigns.
//!
//! nanoBench's point is *low per-invocation overhead* (§III-K), and both
//! case studies are campaigns of thousands of invocations (§V, §VI-C).
//! This module separates the expensive part — building the simulated
//! machine and the dedicated memory areas of §III-G — from the cheap part,
//! the per-benchmark configuration:
//!
//! * [`Session`] owns the [`Machine`], the §III-G arenas and a default
//!   counter configuration. [`Session::reset`] restores the deterministic
//!   initial state *without reallocation*, so one session can run an
//!   entire campaign.
//! * [`BenchSpec`] is one benchmark: code, init, events, loop/unroll,
//!   warm-up and aggregate settings. Cheap to build and [`Clone`].
//! * [`Campaign`] runs many specs (or arbitrary session-based jobs) across
//!   `std::thread` workers. Job *j* always runs on a session reseeded to
//!   `base_seed ^ j`, so results are bit-identical regardless of the
//!   worker count and identical to running the jobs sequentially.
//!
//! The legacy [`crate::NanoBench`] builder is a thin facade over a
//! `Session` plus a `BenchSpec`.

use crate::codegen::{self, Arenas, CodegenRequest, ARENA_REGS, ARENA_SIZE, NO_MEM_ACC_REGS};
use crate::error::NbError;
use crate::result::{BenchmarkResult, FIXED_COUNTER_NAMES, RESULT_FORMAT_VERSION};
use crate::runner::{measure, user_syscall_stub, Aggregate};
use nanobench_analysis::{
    analyze_corunner, analyze_spec, has_errors, AnalysisEnv, Diagnostic, Severity,
};
use nanobench_cache::hierarchy::CoherenceViolation;
use nanobench_machine::{Machine, Mode};
use nanobench_pmu::{parse_config, PerfEvent};
use nanobench_store::{Fnv1a, ResultStore, StoreKey, StoreStats};
use nanobench_uarch::plan::DecodedProgram;
use nanobench_uarch::port::MicroArch;
use nanobench_x86::asm::parse_asm;
use nanobench_x86::encode::decode_program;
use nanobench_x86::inst::Instruction;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::Arc;

/// Deterministic default machine seed ("NB").
pub const NB_SEED: u64 = 0x4E42;

/// Upper bound on cached plans per session. Campaigns sweeping many
/// distinct programs would otherwise accumulate plans without bound; at
/// the cap the least-recently-used plan is evicted — one entry per miss,
/// in a deterministic order (use ticks are a per-session sequence, so the
/// victim never depends on map iteration order or host timing).
const PLAN_CACHE_CAP: usize = 64;

/// A cached plan plus the session-monotonic tick of its last use (the LRU
/// eviction key).
#[derive(Debug)]
struct CachedPlan {
    plan: DecodedProgram,
    last_used: u64,
}

/// Session-level cache of decoded execution plans, keyed by a hash of the
/// generated instruction sequence (verified by full program comparison on
/// hit, so key collisions cannot alias two programs).
#[derive(Debug, Default)]
struct PlanCache {
    plans: HashMap<u64, CachedPlan>,
    hits: u64,
    misses: u64,
    /// Monotonic use counter driving LRU eviction.
    tick: u64,
}

impl PlanCache {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evicts the least-recently-used plan. Ticks are unique, so the
    /// victim is fully determined by the use history.
    fn evict_lru(&mut self) {
        if let Some(victim) = self
            .plans
            .iter()
            .min_by_key(|(_, c)| c.last_used)
            .map(|(k, _)| *k)
        {
            self.plans.remove(&victim);
        }
    }
}

fn program_key(program: &[Instruction]) -> u64 {
    let mut h = DefaultHasher::new();
    program.hash(&mut h);
    h.finish()
}

/// What a [`Session`] does with the static analyzer's verdict before
/// running a spec (the `-lint` shell option maps to `Deny`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LintGate {
    /// Run without analyzing (the default — linting costs a dataflow pass
    /// per run, which campaigns re-running one spec thousands of times
    /// should opt into deliberately).
    #[default]
    Off,
    /// Print every diagnostic to stderr, then run anyway.
    Warn,
    /// Print warnings to stderr; refuse to run a spec with error-severity
    /// diagnostics ([`NbError::Lint`]).
    Deny,
}

/// Number of programmable counters readable per round in noMem mode
/// (three fixed + three programmable fit in R8–R13).
const NO_MEM_PROG_PER_ROUND: usize = NO_MEM_ACC_REGS.len() - FIXED_COUNTER_NAMES.len();

/// One microbenchmark: everything `nanoBench.sh` takes per invocation
/// (§III-E), with none of the machine state. Building one is cheap;
/// running it needs a [`Session`].
#[derive(Debug, Clone)]
pub struct BenchSpec {
    /// Initialization part (`-asm_init`, not measured).
    pub init: Vec<Instruction>,
    /// The main part of the microbenchmark.
    pub code: Vec<Instruction>,
    /// Performance events; empty uses the session's default configuration.
    pub events: Vec<PerfEvent>,
    /// `loopCount` (§III-F); 0 omits the loop.
    pub loop_count: u64,
    /// `unrollCount` (§III-F).
    pub unroll_count: usize,
    /// Number of measured runs (Algorithm 2).
    pub n_measurements: usize,
    /// Number of discarded warm-up runs (§III-H).
    pub warm_up_count: usize,
    /// Aggregate function (§III-C).
    pub aggregate: Aggregate,
    /// noMem mode: counter values kept in registers R8–R13 (§III-I).
    pub no_mem: bool,
    /// Use a `localUnrollCount` of 0 for the baseline run (§III-C).
    pub basic_mode: bool,
    /// Interference programs for multi-core sessions: while the measured
    /// code runs on core 0, co-runner `i` loops on core `i + 1` (programs
    /// cycle if the session's machine has more spare cores). Empty — the
    /// default — measures without interference; specs with co-runners need
    /// a session built with [`Session::with_seed_cores`] (on a single-core
    /// machine co-runners are ignored).
    pub corunners: Vec<Vec<Instruction>>,
}

impl Default for BenchSpec {
    fn default() -> BenchSpec {
        BenchSpec {
            init: Vec::new(),
            code: Vec::new(),
            events: Vec::new(),
            loop_count: 0,
            unroll_count: 1,
            n_measurements: 10,
            warm_up_count: 0,
            aggregate: Aggregate::Median,
            no_mem: false,
            basic_mode: false,
            corunners: Vec::new(),
        }
    }
}

impl BenchSpec {
    /// An empty spec with nanoBench's default settings.
    pub fn new() -> BenchSpec {
        BenchSpec::default()
    }

    /// Sets the main part from Intel-syntax assembly.
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Asm`] on parse failure.
    pub fn asm(&mut self, text: &str) -> Result<&mut BenchSpec, NbError> {
        self.code = parse_asm(text)?;
        Ok(self)
    }

    /// Sets the initialization part from Intel-syntax assembly.
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Asm`] on parse failure.
    pub fn asm_init(&mut self, text: &str) -> Result<&mut BenchSpec, NbError> {
        self.init = parse_asm(text)?;
        Ok(self)
    }

    /// Sets the main part from raw machine code (§III-E); magic
    /// pause/resume byte sequences (§III-I) are recognized.
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Decode`] for undecodable bytes.
    pub fn code_bytes(&mut self, bytes: &[u8]) -> Result<&mut BenchSpec, NbError> {
        self.code = decode_program(bytes)?;
        Ok(self)
    }

    /// Sets the initialization part from raw machine code (§III-E).
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Decode`] for undecodable bytes.
    pub fn init_bytes(&mut self, bytes: &[u8]) -> Result<&mut BenchSpec, NbError> {
        self.init = decode_program(bytes)?;
        Ok(self)
    }

    /// Sets the main part directly from instructions.
    pub fn code(&mut self, code: Vec<Instruction>) -> &mut BenchSpec {
        self.code = code;
        self
    }

    /// Sets the init part directly from instructions.
    pub fn init(&mut self, init: Vec<Instruction>) -> &mut BenchSpec {
        self.init = init;
        self
    }

    /// Parses a performance-counter configuration (§III-J).
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Config`] on parse failure.
    pub fn config_str(&mut self, text: &str) -> Result<&mut BenchSpec, NbError> {
        self.events = parse_config(text)?;
        Ok(self)
    }

    /// Sets the events directly.
    pub fn events(&mut self, events: Vec<PerfEvent>) -> &mut BenchSpec {
        self.events = events;
        self
    }

    /// Sets `loopCount` (§III-F).
    pub fn loop_count(&mut self, n: u64) -> &mut BenchSpec {
        self.loop_count = n;
        self
    }

    /// Sets `unrollCount` (§III-F).
    pub fn unroll_count(&mut self, n: usize) -> &mut BenchSpec {
        self.unroll_count = n.max(1);
        self
    }

    /// Sets the number of measured runs (Algorithm 2).
    pub fn n_measurements(&mut self, n: usize) -> &mut BenchSpec {
        self.n_measurements = n.max(1);
        self
    }

    /// Sets the number of discarded warm-up runs (§III-H).
    pub fn warm_up_count(&mut self, n: usize) -> &mut BenchSpec {
        self.warm_up_count = n;
        self
    }

    /// Sets the aggregate function (§III-C).
    pub fn aggregate(&mut self, agg: Aggregate) -> &mut BenchSpec {
        self.aggregate = agg;
        self
    }

    /// Enables noMem mode (§III-I).
    pub fn no_mem(&mut self, on: bool) -> &mut BenchSpec {
        self.no_mem = on;
        self
    }

    /// Uses a `localUnrollCount` of 0 for the baseline run (§III-C).
    pub fn basic_mode(&mut self, on: bool) -> &mut BenchSpec {
        self.basic_mode = on;
        self
    }

    /// Adds an interference co-runner from Intel-syntax assembly; it loops
    /// on a spare core while the main part is measured on core 0.
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Asm`] on parse failure.
    pub fn corunner_asm(&mut self, text: &str) -> Result<&mut BenchSpec, NbError> {
        self.corunners.push(parse_asm(text)?);
        Ok(self)
    }

    /// Adds an interference co-runner directly from instructions.
    pub fn corunner(&mut self, program: Vec<Instruction>) -> &mut BenchSpec {
        self.corunners.push(program);
        self
    }

    /// Stable content hash of the spec — every field the measurement
    /// computes *from* (code, init, events, loop/unroll/measurement
    /// settings, co-runners). This is the `spec` component of a
    /// [`StoreKey`]; two specs hash equal exactly when they describe the
    /// same benchmark, independent of process, thread, or Rust version
    /// (the hash is [`Fnv1a`], not `DefaultHasher`).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.init.hash(&mut h);
        self.code.hash(&mut h);
        self.events.len().hash(&mut h);
        for event in &self.events {
            event.code.hash(&mut h);
            event.name.hash(&mut h);
        }
        self.loop_count.hash(&mut h);
        self.unroll_count.hash(&mut h);
        self.n_measurements.hash(&mut h);
        self.warm_up_count.hash(&mut h);
        (self.aggregate as u8).hash(&mut h);
        self.no_mem.hash(&mut h);
        self.basic_mode.hash(&mut h);
        self.corunners.hash(&mut h);
        h.finish()
    }
}

/// A reusable benchmark session: the machine, the §III-G memory areas and
/// a default counter configuration, built once and reused across many
/// [`BenchSpec`] runs.
///
/// # Examples
///
/// The §III-A example, then a second benchmark on the *same* machine:
///
/// ```
/// use nanobench_core::{BenchSpec, Session};
/// use nanobench_uarch::port::MicroArch;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut session = Session::kernel(MicroArch::Skylake);
/// let mut spec = BenchSpec::new();
/// spec.asm("mov R14, [R14]")?
///     .asm_init("mov [R14], R14")?
///     .config_str(nanobench_pmu::config::cfg_example())?
///     .unroll_count(100)
///     .warm_up_count(1);
/// assert_eq!(session.run(&spec)?.core_cycles(), Some(4.0));
///
/// session.reset(); // back to the deterministic initial state, no realloc
/// let mut add = BenchSpec::new();
/// add.asm("add rax, rax")?.unroll_count(100).warm_up_count(1);
/// assert_eq!(session.run(&add)?.core_cycles(), Some(1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    machine: Machine,
    arenas: Arenas,
    /// Default events used by specs whose own event list is empty.
    default_events: Vec<PerfEvent>,
    /// Scratch buffer for aggregate computation (avoids per-run allocs).
    scratch: Vec<i64>,
    /// Decoded-plan cache: repeated runs of the same generated program
    /// (warm-up runs, both counter halves, identical specs re-run across
    /// seeds) skip decode entirely. Plans hold no machine state, so the
    /// cache survives [`Session::reset`].
    plan_cache: PlanCache,
    /// Decoded user-mode syscall stub (§III-K), built lazily.
    user_stub_plan: Option<DecodedProgram>,
    /// What [`Session::run`] does with the analyzer's verdict.
    lint_gate: LintGate,
}

impl Session {
    /// Creates a session over an existing machine, allocating the
    /// dedicated memory areas of §III-G.
    pub fn with_machine(mut machine: Machine) -> Session {
        let control = machine.alloc_region(4096);
        let mut arena_bases = [0u64; 5];
        for base in arena_bases.iter_mut() {
            *base = machine.alloc_region(ARENA_SIZE);
        }
        let arenas = Arenas {
            save_area: control,
            scratch: control + 0x100,
            m1: control + 0x200,
            m2: control + 0x300,
            arena_bases,
        };
        Session {
            machine,
            arenas,
            default_events: Vec::new(),
            scratch: Vec::new(),
            plan_cache: PlanCache::default(),
            user_stub_plan: None,
            lint_gate: LintGate::default(),
        }
    }

    /// A kernel-space session (`kernel-nanoBench.sh`, §III-D).
    pub fn kernel(uarch: MicroArch) -> Session {
        Session::with_seed(uarch, Mode::Kernel, NB_SEED)
    }

    /// A user-space session (`nanoBench.sh`).
    pub fn user(uarch: MicroArch) -> Session {
        Session::with_seed(uarch, Mode::User, NB_SEED)
    }

    /// A session with an explicit mode and machine seed (what
    /// [`Campaign`] uses for its per-job seeding).
    pub fn with_seed(uarch: MicroArch, mode: Mode, seed: u64) -> Session {
        Session::with_seed_cores(uarch, mode, seed, 1)
    }

    /// A session over a multi-core machine: core 0 runs the measured
    /// code, cores 1..`n_cores` run a spec's co-runners. With `n_cores`
    /// = 1 this is exactly [`Session::with_seed`].
    pub fn with_seed_cores(uarch: MicroArch, mode: Mode, seed: u64, n_cores: usize) -> Session {
        Session::with_machine(Machine::with_cores(uarch, mode, seed, n_cores))
    }

    /// Restores the deterministic initial state — registers, PMU, caches,
    /// branch predictor, memory contents, interrupt and random streams —
    /// without reallocating the machine or the arenas.
    pub fn reset(&mut self) {
        self.machine.reset();
    }

    /// Like [`Session::reset`], but restarts the machine's random streams
    /// from `seed`, as if it had been built with that seed. This is how a
    /// campaign worker turns into "the session for job *j*".
    pub fn reset_with_seed(&mut self, seed: u64) {
        self.machine.reset_with_seed(seed);
    }

    /// Sets the default counter configuration used by specs that do not
    /// carry their own (§III-J).
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Config`] on parse failure.
    pub fn config_str(&mut self, text: &str) -> Result<&mut Session, NbError> {
        self.default_events = parse_config(text)?;
        Ok(self)
    }

    /// Sets the default events directly.
    pub fn default_events(&mut self, events: Vec<PerfEvent>) -> &mut Session {
        self.default_events = events;
        self
    }

    /// The underlying machine (e.g. for pre-writing data areas).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Read access to the machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Audits every valid line in the machine's cache hierarchy against
    /// the MESI safety invariants (single writer, E-uniqueness, inclusive
    /// L3 — the properties the `nbverify` model checker proves on the
    /// bounded abstract protocol). The debug-build runtime monitor checks
    /// these per access; this is the on-demand release-build entry point,
    /// e.g. between the phases of a cacheSeq campaign.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoherenceViolation`] found.
    pub fn coherence_audit(&self) -> Result<(), CoherenceViolation> {
        self.machine.hierarchy().check_invariants()
    }

    /// The base address of the memory area register `reg` points into, if
    /// it is one of the dedicated arena registers (§III-G).
    pub fn arena_base(&self, reg: nanobench_x86::reg::Gpr) -> Option<u64> {
        ARENA_REGS
            .iter()
            .position(|r| *r == reg)
            .map(|i| self.arenas.arena_bases[i])
    }

    /// Runs the static analyzer over `spec` under this session's
    /// environment: mode (kernel/user, §III-D), noMem (§III-I), looping
    /// (§III-F), the §III-G arena registers, and the machine's mapped
    /// memory regions. Returns the diagnostics sorted errors-first; an
    /// empty vector means the spec lints clean.
    pub fn analyze(&self, spec: &BenchSpec) -> Vec<Diagnostic> {
        let env = AnalysisEnv {
            user_mode: self.machine.mode() == Mode::User,
            no_mem: spec.no_mem,
            looped: spec.loop_count > 0,
            arena_size: ARENA_SIZE,
            arena_regs: ARENA_REGS.to_vec(),
            regions: self.machine.mapped_regions(),
            arena_bases: self.arenas.arena_bases.to_vec(),
        };
        let mut diags = analyze_spec(&spec.init, &spec.code, &env);
        for (i, corunner) in spec.corunners.iter().enumerate() {
            diags.extend(analyze_corunner(i, corunner, &spec.init, &spec.code, &env));
        }
        diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
        diags
    }

    /// Sets what [`Session::run`] does with the analyzer's verdict
    /// (default [`LintGate::Off`]).
    pub fn lint(&mut self, gate: LintGate) -> &mut Session {
        self.lint_gate = gate;
        self
    }

    /// Runs one benchmark: generates both unroll versions (§III-C), runs
    /// them per Algorithm 2, multiplexes counters across rounds if the
    /// configuration has more events than programmable counters (§III-J),
    /// and reports per-repetition values.
    ///
    /// The session state is *not* reset first — state carried over from
    /// earlier runs is exactly what warm-up effects (§III-H) and the
    /// cacheSeq tools rely on. Call [`Session::reset`] between unrelated
    /// benchmarks.
    ///
    /// # Errors
    ///
    /// Propagates CPU faults (e.g. privileged instructions in user mode)
    /// and configuration errors; with a [`LintGate::Deny`] gate, specs the
    /// analyzer rejects fail with [`NbError::Lint`] before running.
    pub fn run(&mut self, spec: &BenchSpec) -> Result<BenchmarkResult, NbError> {
        if self.lint_gate != LintGate::Off {
            let mut diags = self.analyze(spec);
            for d in diags.iter().filter(|d| d.severity == Severity::Warning) {
                eprintln!("nblint: {d}");
            }
            match self.lint_gate {
                LintGate::Deny if has_errors(&diags) => {
                    diags.retain(|d| d.severity == Severity::Error);
                    return Err(NbError::Lint(diags));
                }
                LintGate::Warn => {
                    for d in diags.iter().filter(|d| d.severity == Severity::Error) {
                        eprintln!("nblint: {d}");
                    }
                }
                _ => {}
            }
        }
        let denom = (spec.loop_count.max(1) as f64) * (spec.unroll_count.max(1) as f64);
        let n_prog = self.machine.pmu().n_programmable();
        let per_round = if spec.no_mem {
            NO_MEM_PROG_PER_ROUND.min(n_prog)
        } else {
            n_prog
        };

        let events: &[PerfEvent] = if spec.events.is_empty() {
            &self.default_events
        } else {
            &spec.events
        };
        let chunks: Vec<Vec<PerfEvent>> = if events.is_empty() {
            vec![Vec::new()]
        } else {
            events
                .chunks(per_round)
                .map(<[PerfEvent]>::to_vec)
                .collect()
        };

        let mut fixed_values = [0.0f64; 3];
        let mut prog_entries: Vec<(String, f64)> = Vec::new();

        for (round, chunk) in chunks.iter().enumerate() {
            for i in 0..n_prog {
                let sel = chunk.get(i).map(|e| e.code);
                self.machine.pmu_mut().configure(i, sel);
            }
            let mut selectors: Vec<u32> = (0..3).map(|i| (1 << 30) | i).collect();
            selectors.extend((0..chunk.len()).map(|i| i as u32));

            let (unroll_a, unroll_b) = if spec.basic_mode {
                (0, spec.unroll_count.max(1))
            } else {
                (spec.unroll_count.max(1), 2 * spec.unroll_count.max(1))
            };
            let agg_a = self.measure_version(spec, unroll_a, &selectors)?;
            let agg_b = self.measure_version(spec, unroll_b, &selectors)?;

            for (slot, value) in agg_b
                .iter()
                .zip(agg_a.iter())
                .enumerate()
                .map(|(slot, (b, a))| (slot, (b - a) / denom))
            {
                if slot < 3 {
                    if round == 0 {
                        fixed_values[slot] = value;
                    }
                } else {
                    let event = &chunk[slot - 3];
                    prog_entries.push((event.name.clone(), value));
                }
            }
        }

        let mut entries = Vec::with_capacity(3 + prog_entries.len());
        for (i, name) in FIXED_COUNTER_NAMES.iter().enumerate() {
            entries.push(((*name).to_string(), fixed_values[i]));
        }
        entries.extend(prog_entries);
        Ok(BenchmarkResult::new(entries))
    }

    /// Decoded-plan cache statistics: `(hits, misses)`. A hit means a
    /// generated program was replayed without re-decoding it. The stats
    /// accumulate across [`Session::reset`] (plans hold no machine state,
    /// so the cache and its counters survive resets by design).
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        (self.plan_cache.hits, self.plan_cache.misses)
    }

    /// Number of plans currently cached (at most the cap of 64).
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.plans.len()
    }

    /// Looks `program` up in the plan cache, decoding and inserting it on
    /// a miss (evicting the LRU plan at the cap), and returns its key.
    /// Hits are verified by full program comparison, so a hash collision
    /// re-decodes into the colliding slot instead of aliasing.
    ///
    /// Keys ensured back-to-back stay valid together: each `ensure` marks
    /// its entry most-recently-used, so later ensures in the same batch
    /// can only evict *older* entries (the cap far exceeds the plans one
    /// run needs — one measured program plus its co-runners).
    fn ensure_plan(&mut self, program: &[Instruction]) -> u64 {
        let key = program_key(program);
        let cache = &mut self.plan_cache;
        let tick = cache.next_tick();
        match cache.plans.get_mut(&key) {
            Some(cached) if cached.plan.instructions() == program => {
                cached.last_used = tick;
                cache.hits += 1;
            }
            Some(cached) => {
                // Hash collision: replace the slot with this program.
                cache.misses += 1;
                cached.plan = self.machine.decode(program);
                cached.last_used = tick;
            }
            None => {
                if cache.plans.len() >= PLAN_CACHE_CAP {
                    cache.evict_lru();
                }
                cache.misses += 1;
                cache.plans.insert(
                    key,
                    CachedPlan {
                        plan: self.machine.decode(program),
                        last_used: tick,
                    },
                );
            }
        }
        key
    }

    fn measure_version(
        &mut self,
        spec: &BenchSpec,
        local_unroll: usize,
        selectors: &[u32],
    ) -> Result<Vec<f64>, NbError> {
        let request = CodegenRequest {
            init: &spec.init,
            code: &spec.code,
            local_unroll,
            loop_count: spec.loop_count,
            selectors,
            no_mem: spec.no_mem,
            arenas: self.arenas,
        };
        let generated = codegen::generate(&request);

        // Ensure every plan this run needs (measured program first, then
        // co-runners) before borrowing any of them out of the cache.
        let key = self.ensure_plan(&generated.program);
        let corunner_keys: Vec<u64> = spec
            .corunners
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| self.ensure_plan(p))
            .collect();
        let plan = &self.plan_cache.plans[&key].plan;
        let corunner_plans: Vec<&DecodedProgram> = corunner_keys
            .iter()
            .map(|k| &self.plan_cache.plans[k].plan)
            .collect();

        let stub_plan = if self.machine.mode() == Mode::User {
            Some(
                self.user_stub_plan
                    .get_or_insert_with(|| self.machine.decode(&user_syscall_stub()))
                    as &DecodedProgram,
            )
        } else {
            None
        };

        measure(
            &mut self.machine,
            &generated,
            plan,
            &corunner_plans,
            stub_plan,
            &self.arenas,
            spec.warm_up_count,
            spec.n_measurements.max(1),
            spec.aggregate,
            &mut self.scratch,
        )
    }
}

/// A batch of benchmark jobs fanned out across worker threads, one
/// [`Session`] per worker.
///
/// Determinism: job *j* always runs on a session reset to seed
/// `base_seed ^ j`, whatever worker picks it up — so the output is
/// byte-identical for 1, 2 or N workers, and identical to running every
/// job sequentially on fresh sessions with those seeds.
///
/// With a persistent store attached ([`Campaign::with_store`]),
/// [`Campaign::run_all`] consults the store before simulating each job
/// and publishes every computed result on completion — so a re-run only
/// executes new or changed specs, and an interrupted campaign resumes
/// from whatever finished. Stored results are the byte-exact results of
/// the original computation, so store-backed output stays bit-identical
/// to a cold run for any worker count.
#[derive(Debug, Clone)]
pub struct Campaign {
    uarch: MicroArch,
    mode: Mode,
    workers: usize,
    base_seed: u64,
    cores: usize,
    store: Option<Arc<ResultStore>>,
    lint: LintGate,
}

impl Campaign {
    /// A campaign of kernel-space sessions (§III-D) with the default seed
    /// and one worker per available CPU.
    pub fn kernel(uarch: MicroArch) -> Campaign {
        Campaign {
            uarch,
            mode: Mode::Kernel,
            workers: 0,
            base_seed: NB_SEED,
            cores: 1,
            store: None,
            lint: LintGate::default(),
        }
    }

    /// A campaign of user-space sessions.
    pub fn user(uarch: MicroArch) -> Campaign {
        Campaign {
            mode: Mode::User,
            ..Campaign::kernel(uarch)
        }
    }

    /// Sets the worker-thread count; 0 (the default) uses the available
    /// parallelism. The results do not depend on this — only the
    /// wall-clock time does.
    pub fn workers(mut self, n: usize) -> Campaign {
        self.workers = n;
        self
    }

    /// Sets the base seed; job *j* runs with seed `base_seed ^ j`.
    pub fn base_seed(mut self, seed: u64) -> Campaign {
        self.base_seed = seed;
        self
    }

    /// Sets the lint gate every worker session runs with (default
    /// [`LintGate::Off`]): `Deny` makes the campaign fail on the
    /// lowest-indexed spec the analyzer rejects, before simulating it.
    pub fn lint(mut self, gate: LintGate) -> Campaign {
        self.lint = gate;
        self
    }

    /// Sets the simulated core count of every worker's machine (default
    /// 1). Specs with co-runners need at least 2. Worker count shards
    /// *jobs* across host threads; this is the number of *simulated*
    /// cores inside each job's machine — results never depend on the
    /// former and always on the latter.
    pub fn cores(mut self, n: usize) -> Campaign {
        self.cores = n.max(1);
        self
    }

    /// Attaches a persistent result store at `path` (created on first
    /// use): [`Campaign::run_all`] then answers repeat jobs from the store
    /// instead of re-simulating them. See [`Campaign::store`] to share one
    /// open store across several campaigns.
    ///
    /// # Errors
    ///
    /// [`NbError::Store`] if the store cannot be opened.
    pub fn with_store(self, path: impl AsRef<Path>) -> Result<Campaign, NbError> {
        Ok(self.store(Arc::new(ResultStore::open(path)?)))
    }

    /// Attaches an already-open persistent result store.
    pub fn store(mut self, store: Arc<ResultStore>) -> Campaign {
        self.store = Some(store);
        self
    }

    /// The attached result store, if any.
    pub fn store_handle(&self) -> Option<&Arc<ResultStore>> {
        self.store.as_ref()
    }

    /// Hit/miss/insert counters of the attached store (mirroring
    /// [`Session::plan_cache_stats`] one layer up); `None` without a
    /// store. A hit means a whole job was answered without simulating.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// The microarchitecture the campaign's sessions simulate.
    pub fn uarch(&self) -> MicroArch {
        self.uarch
    }

    /// The base seed; job *j* runs with seed `base_seed ^ j`.
    pub fn seed(&self) -> u64 {
        self.base_seed
    }

    /// Stable fingerprint of the machine configuration every job runs on:
    /// microarchitecture, privilege mode, and simulated core count. This
    /// is the `uarch` component of the [`StoreKey`]s `run_all` derives;
    /// tools running their own jobs against campaign-style machines can
    /// reuse it for their keys.
    pub fn machine_fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.uarch.name().hash(&mut h);
        match self.mode {
            Mode::Kernel => 0u8,
            Mode::User => 1u8,
        }
        .hash(&mut h);
        self.cores.hash(&mut h);
        h.finish()
    }

    /// The effective worker count for `n_jobs` jobs. Unspecified (or 0)
    /// workers default to [`auto_workers`] — the available parallelism —
    /// not 1.
    pub fn effective_workers(&self, n_jobs: usize) -> usize {
        let w = if self.workers == 0 {
            auto_workers()
        } else {
            self.workers
        };
        w.clamp(1, n_jobs.max(1))
    }

    /// Runs every spec and returns the results in spec order. With a
    /// store attached, each job first consults the store under the key
    /// `(spec fingerprint, machine fingerprint, job seed, result-format
    /// version)` and only simulates on a miss, publishing the result for
    /// future runs; undecodable stored payloads (corruption, stale
    /// encodings) are recomputed and overwritten, never an error.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing job (deterministic
    /// regardless of worker count).
    pub fn run_all(&self, specs: &[BenchSpec]) -> Result<Vec<BenchmarkResult>, NbError> {
        let Some(store) = &self.store else {
            return self.run_map(specs, |session, spec, _| session.run(spec));
        };
        let machine_fp = self.machine_fingerprint();
        self.run_map(specs, |session, spec, j| {
            let key = StoreKey {
                spec: spec.fingerprint(),
                uarch: machine_fp,
                seed: self.base_seed ^ j as u64,
                version: RESULT_FORMAT_VERSION,
            };
            if let Some(result) = store
                .get(&key)
                .and_then(|b| BenchmarkResult::from_store_bytes(&b))
            {
                return Ok(result);
            }
            let result = session.run(spec)?;
            store.insert(key, &result.to_store_bytes())?;
            Ok(result)
        })
    }

    /// Runs an arbitrary session-based job for every element of `jobs`,
    /// sharded across workers, returning results in job order. The closure
    /// receives a session already reset to the job's seed, the job, and
    /// its index.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing job.
    pub fn run_map<J, T, F>(&self, jobs: &[J], f: F) -> Result<Vec<T>, NbError>
    where
        J: Sync,
        T: Send,
        F: Fn(&mut Session, &J, usize) -> Result<T, NbError> + Sync,
    {
        shard_map(
            self.effective_workers(jobs.len()),
            jobs.len(),
            || {
                let mut session =
                    Session::with_seed_cores(self.uarch, self.mode, self.base_seed, self.cores);
                session.lint(self.lint);
                session
            },
            |session, j| {
                session.reset_with_seed(self.base_seed ^ j as u64);
                f(session, &jobs[j], j)
            },
        )
    }
}

/// The worker count an unspecified (0) setting resolves to: the host's
/// available parallelism, or 1 if it cannot be determined. This is what
/// [`Campaign`]s and [`parallel_map`] use by default, and what experiment
/// binaries should report as the effective worker count in artifacts.
pub fn auto_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Fans arbitrary (non-session) jobs out across `workers` threads,
/// returning results in job order; the campaign analogue for jobs that
/// build their own machinery (e.g. one policy inference per CPU model).
/// `workers == 0` uses [`auto_workers`].
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing job.
pub fn parallel_map<J, T, F>(workers: usize, jobs: &[J], f: F) -> Result<Vec<T>, NbError>
where
    J: Sync,
    T: Send,
    F: Fn(&J, usize) -> Result<T, NbError> + Sync,
{
    let workers = if workers == 0 {
        auto_workers()
    } else {
        workers
    }
    .clamp(1, jobs.len().max(1));
    shard_map(workers, jobs.len(), || (), |(), j| f(&jobs[j], j))
}

/// The shared sharding engine behind [`Campaign::run_map`] and
/// [`parallel_map`]: splits job indices `0..n_jobs` into contiguous
/// chunks, one worker thread per chunk, each with its own state from
/// `make_state`, and returns the per-job results in job order. Collecting
/// in job order also makes the reported error the lowest-indexed one,
/// independent of thread timing.
fn shard_map<S, T>(
    workers: usize,
    n_jobs: usize,
    make_state: impl Fn() -> S + Sync,
    run_one: impl Fn(&mut S, usize) -> Result<T, NbError> + Sync,
) -> Result<Vec<T>, NbError>
where
    T: Send,
{
    if workers <= 1 {
        let mut state = make_state();
        return (0..n_jobs).map(|j| run_one(&mut state, j)).collect();
    }
    let mut slots: Vec<Option<Result<T, NbError>>> = Vec::new();
    slots.resize_with(n_jobs, || None);
    let chunk = n_jobs.div_ceil(workers);
    std::thread::scope(|scope| {
        // Hand each worker a disjoint slice of the result buffer; jobs
        // are sharded contiguously so the slices line up.
        let mut rest = slots.as_mut_slice();
        let mut start = 0usize;
        let mut handles = Vec::new();
        for _ in 0..workers {
            let take = chunk.min(rest.len());
            if take == 0 {
                break;
            }
            let (mine, tail) = rest.split_at_mut(take);
            rest = tail;
            let first = start;
            start += take;
            let (make_state, run_one) = (&make_state, &run_one);
            handles.push(scope.spawn(move || {
                let mut state = make_state();
                for (offset, slot) in mine.iter_mut().enumerate() {
                    *slot = Some(run_one(&mut state, first + offset));
                }
            }));
        }
        for handle in handles {
            handle.join().expect("campaign worker panicked");
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every job slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nop_spec() -> BenchSpec {
        let mut spec = BenchSpec::new();
        spec.asm("add rax, rax")
            .unwrap()
            .unroll_count(50)
            .warm_up_count(1)
            .n_measurements(3);
        spec
    }

    #[test]
    fn session_reuse_matches_fresh_sessions() {
        let spec = nop_spec();
        let mut fresh = Session::kernel(MicroArch::Skylake);
        let expected = fresh.run(&spec).unwrap();
        let mut reused = Session::kernel(MicroArch::Skylake);
        for _ in 0..3 {
            let got = reused.run(&spec).unwrap();
            assert_eq!(got, expected);
            reused.reset();
        }
    }

    #[test]
    fn campaign_results_keep_job_order() {
        let mut specs = Vec::new();
        for chain in ["add rax, rax", "imul rax, rax", "mov rax, rax"] {
            let mut spec = nop_spec();
            spec.asm(chain).unwrap();
            specs.push(spec);
        }
        let results = Campaign::kernel(MicroArch::Skylake)
            .workers(2)
            .run_all(&specs)
            .unwrap();
        assert_eq!(results.len(), 3);
        // Job j must equal a fresh session seeded NB_SEED ^ j, in order.
        for (j, spec) in specs.iter().enumerate() {
            let mut fresh =
                Session::with_seed(MicroArch::Skylake, Mode::Kernel, NB_SEED ^ j as u64);
            assert_eq!(results[j], fresh.run(spec).unwrap(), "job {j}");
        }
        let add = results[0].core_cycles().unwrap();
        assert!((add - 1.0).abs() < 0.05, "1 cycle/add, got {add}");
    }

    #[test]
    fn campaign_propagates_lowest_indexed_error() {
        // Job 1 faults (privileged instruction in user mode); jobs 0 and 2
        // are fine. Any worker count must surface job 1's error.
        let mut specs = vec![nop_spec(), nop_spec(), nop_spec()];
        specs[1].asm("wbinvd").unwrap();
        for workers in [1, 3] {
            let err = Campaign::user(MicroArch::Skylake)
                .workers(workers)
                .run_all(&specs)
                .unwrap_err();
            assert!(matches!(err, NbError::Fault(_)), "workers {workers}: {err}");
        }
    }

    #[test]
    fn unset_workers_default_to_available_parallelism() {
        // Regression pin: an unspecified worker count means "all cores",
        // not 1 — clamped to the job count.
        let campaign = Campaign::kernel(MicroArch::Skylake);
        let auto = auto_workers();
        assert!(auto >= 1);
        assert_eq!(campaign.effective_workers(1024), auto.min(1024));
        assert_eq!(campaign.effective_workers(1), 1);
        assert_eq!(campaign.clone().workers(3).effective_workers(1024), 3);
    }

    #[test]
    fn store_backed_campaign_matches_cold_run_and_counts_hits() {
        let path = std::env::temp_dir().join(format!("nbstore-session-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut specs = Vec::new();
        for chain in ["add rax, rax", "imul rax, rax", "mov rax, rax"] {
            let mut spec = nop_spec();
            spec.asm(chain).unwrap();
            specs.push(spec);
        }
        let cold = Campaign::kernel(MicroArch::Skylake)
            .workers(2)
            .run_all(&specs)
            .unwrap();

        let campaign = Campaign::kernel(MicroArch::Skylake)
            .workers(2)
            .with_store(&path)
            .unwrap();
        let first = campaign.run_all(&specs).unwrap();
        assert_eq!(first, cold);
        let stats = campaign.store_stats().unwrap();
        assert_eq!((stats.hits, stats.inserts), (0, 3));

        // Re-open the store from disk: every job is answered without
        // simulating, bit-identical, for a different worker count too.
        let warm_campaign = Campaign::kernel(MicroArch::Skylake)
            .workers(1)
            .with_store(&path)
            .unwrap();
        let warm = warm_campaign.run_all(&specs).unwrap();
        assert_eq!(warm, cold);
        let stats = warm_campaign.store_stats().unwrap();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (3, 0, 0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_keys_separate_machine_configurations() {
        let kernel = Campaign::kernel(MicroArch::Skylake);
        assert_ne!(
            kernel.machine_fingerprint(),
            Campaign::user(MicroArch::Skylake).machine_fingerprint()
        );
        assert_ne!(
            kernel.machine_fingerprint(),
            Campaign::kernel(MicroArch::IvyBridge).machine_fingerprint()
        );
        assert_ne!(
            kernel.machine_fingerprint(),
            Campaign::kernel(MicroArch::Skylake)
                .cores(2)
                .machine_fingerprint()
        );
        let a = nop_spec();
        let mut b = nop_spec();
        b.asm("imul rax, rax").unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), nop_spec().fingerprint());
    }

    #[test]
    fn parallel_map_orders_and_errors() {
        let jobs: Vec<u64> = (0..17).collect();
        let doubled = parallel_map(4, &jobs, |j, idx| {
            assert_eq!(*j, idx as u64);
            Ok(j * 2)
        })
        .unwrap();
        assert_eq!(doubled, (0..17).map(|j| j * 2).collect::<Vec<_>>());
        let err = parallel_map(3, &jobs, |j, _| {
            if *j == 5 {
                Err(NbError::InvalidOption("boom".into()))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("boom"));
    }
}
