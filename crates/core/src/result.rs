//! Benchmark results, formatted like the paper's §III-A example output.

use std::fmt;

/// Names of the three fixed-function counters, in output order.
pub const FIXED_COUNTER_NAMES: [&str; 3] =
    ["Instructions retired", "Core cycles", "Reference cycles"];

/// The result of one benchmark: per-event values, normalized per code
/// repetition.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkResult {
    entries: Vec<(String, f64)>,
}

impl BenchmarkResult {
    /// Creates a result from (event name, value) pairs.
    pub fn new(entries: Vec<(String, f64)>) -> BenchmarkResult {
        BenchmarkResult { entries }
    }

    /// Looks up an event's value by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Number of core cycles per repetition (the most common headline
    /// number).
    pub fn core_cycles(&self) -> Option<f64> {
        self.get("Core cycles")
    }

    /// All entries in output order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// Iterates over (name, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }
}

impl fmt::Display for BenchmarkResult {
    /// Formats the result exactly like nanoBench's output in §III-A:
    ///
    /// ```text
    /// Instructions retired: 1.00
    /// Core cycles: 4.00
    /// ...
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.entries {
            writeln!(f, "{name}: {value:.2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_format() {
        let r = BenchmarkResult::new(vec![
            ("Instructions retired".to_string(), 1.0),
            ("Core cycles".to_string(), 4.0),
            ("MEM_LOAD_RETIRED.L1_HIT".to_string(), 0.996),
        ]);
        let text = r.to_string();
        assert!(text.starts_with("Instructions retired: 1.00\nCore cycles: 4.00\n"));
        assert!(text.contains("MEM_LOAD_RETIRED.L1_HIT: 1.00"));
        assert_eq!(r.core_cycles(), Some(4.0));
        assert_eq!(r.get("nope"), None);
    }
}
