//! Benchmark results, formatted like the paper's §III-A example output.

use std::fmt;

/// Names of the three fixed-function counters, in output order.
pub const FIXED_COUNTER_NAMES: [&str; 3] =
    ["Instructions retired", "Core cycles", "Reference cycles"];

/// Version of [`BenchmarkResult`]'s persistent-store encoding
/// ([`BenchmarkResult::to_store_bytes`]). Bump it whenever the encoding
/// *or the meaning of the encoded values* changes; stored records written
/// under older versions are then never consulted again and their jobs
/// recompute.
pub const RESULT_FORMAT_VERSION: u32 = 1;

/// The result of one benchmark: per-event values, normalized per code
/// repetition.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkResult {
    entries: Vec<(String, f64)>,
}

impl BenchmarkResult {
    /// Creates a result from (event name, value) pairs.
    pub fn new(entries: Vec<(String, f64)>) -> BenchmarkResult {
        BenchmarkResult { entries }
    }

    /// Looks up an event's value by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Number of core cycles per repetition (the most common headline
    /// number).
    pub fn core_cycles(&self) -> Option<f64> {
        self.get("Core cycles")
    }

    /// All entries in output order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// Iterates over (name, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Serializes the result for the persistent store (version
    /// [`RESULT_FORMAT_VERSION`]): entry count, then per entry the
    /// length-prefixed name and the value's IEEE-754 bits, all
    /// little-endian. Bit-exact: `from_store_bytes(to_store_bytes(r))`
    /// compares equal to `r` even for NaN-free float edge cases like
    /// negative zero.
    pub fn to_store_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, value) in &self.entries {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&value.to_bits().to_le_bytes());
        }
        out
    }

    /// Decodes a result from its store encoding. Returns `None` for any
    /// malformed input (a stale or corrupt payload means the job
    /// recomputes — it is never an error).
    pub fn from_store_bytes(bytes: &[u8]) -> Option<BenchmarkResult> {
        let mut rest = bytes;
        let mut take = |n: usize| -> Option<&[u8]> {
            let (head, tail) = rest.split_at_checked(n)?;
            rest = tail;
            Some(head)
        };
        let count = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
        let mut entries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let name_len = u32::from_le_bytes(take(4)?.try_into().ok()?) as usize;
            let name = std::str::from_utf8(take(name_len)?).ok()?.to_string();
            let value = f64::from_bits(u64::from_le_bytes(take(8)?.try_into().ok()?));
            entries.push((name, value));
        }
        rest.is_empty().then(|| BenchmarkResult::new(entries))
    }
}

impl fmt::Display for BenchmarkResult {
    /// Formats the result exactly like nanoBench's output in §III-A:
    ///
    /// ```text
    /// Instructions retired: 1.00
    /// Core cycles: 4.00
    /// ...
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.entries {
            writeln!(f, "{name}: {value:.2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_format() {
        let r = BenchmarkResult::new(vec![
            ("Instructions retired".to_string(), 1.0),
            ("Core cycles".to_string(), 4.0),
            ("MEM_LOAD_RETIRED.L1_HIT".to_string(), 0.996),
        ]);
        let text = r.to_string();
        assert!(text.starts_with("Instructions retired: 1.00\nCore cycles: 4.00\n"));
        assert!(text.contains("MEM_LOAD_RETIRED.L1_HIT: 1.00"));
        assert_eq!(r.core_cycles(), Some(4.0));
        assert_eq!(r.get("nope"), None);
    }

    #[test]
    fn store_codec_round_trips_bit_exactly() {
        let r = BenchmarkResult::new(vec![
            ("Instructions retired".to_string(), 1.0),
            ("Core cycles".to_string(), -0.0),
            ("MEM_LOAD_RETIRED.L1_HIT".to_string(), 0.1 + 0.2),
            (String::new(), f64::MAX),
        ]);
        let bytes = r.to_store_bytes();
        let back = BenchmarkResult::from_store_bytes(&bytes).unwrap();
        assert_eq!(back, r);
        // Bit-exactness beyond PartialEq: -0.0 stays -0.0.
        assert_eq!(back.entries()[1].1.to_bits(), (-0.0f64).to_bits());
        let empty = BenchmarkResult::new(Vec::new());
        assert_eq!(
            BenchmarkResult::from_store_bytes(&empty.to_store_bytes()),
            Some(empty)
        );
    }

    #[test]
    fn store_codec_rejects_malformed_payloads() {
        let r = BenchmarkResult::new(vec![("Core cycles".to_string(), 4.0)]);
        let bytes = r.to_store_bytes();
        assert!(BenchmarkResult::from_store_bytes(&[]).is_none());
        assert!(
            BenchmarkResult::from_store_bytes(&bytes[..bytes.len() - 1]).is_none(),
            "truncated"
        );
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(
            BenchmarkResult::from_store_bytes(&extended).is_none(),
            "trailing garbage"
        );
        let mut bad_utf8 = bytes;
        bad_utf8[8] = 0xFF;
        assert!(BenchmarkResult::from_store_bytes(&bad_utf8).is_none());
    }
}
