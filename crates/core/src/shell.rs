//! Shell-style interface mirroring `nanoBench.sh` / `kernel-nanoBench.sh`
//! (§III-E: "a unified interface to the user-space and the kernel-space
//! version in the form of two shell scripts ... that have mostly the same
//! command-line options").

use crate::error::NbError;
use crate::nanobench::NanoBench;
use crate::result::BenchmarkResult;
use crate::runner::Aggregate;
use crate::session::LintGate;
use nanobench_analysis::Span;
use nanobench_uarch::port::MicroArch;

/// Splits a command line into tokens, honouring double and single quotes,
/// and reports each token's byte range in the original line (quotes
/// included) so option errors can point at their source.
///
/// # Errors
///
/// Returns [`NbError::OptionAt`] spanning from the opening quote to the
/// end of the line if a quote is left unterminated — a silently swallowed
/// quote would make the rest of the command line disappear into one token.
pub fn tokenize_spanned(line: &str) -> Result<Vec<(String, Span)>, NbError> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut tok_start = 0u32;
    let mut in_token = false;
    let mut quote: Option<(char, u32)> = None;
    for (pos, c) in line.char_indices() {
        let pos = pos as u32;
        match (c, quote) {
            (q, Some((open, _))) if q == open => quote = None,
            ('"', None) | ('\'', None) => {
                if !in_token {
                    tok_start = pos;
                    in_token = true;
                }
                quote = Some((c, pos));
            }
            (c, None) if c.is_whitespace() => {
                if !current.is_empty() {
                    let span = Span::new(tok_start, pos - tok_start);
                    tokens.push((std::mem::take(&mut current), span));
                }
                in_token = false;
            }
            (c, _) => {
                if !in_token {
                    tok_start = pos;
                    in_token = true;
                }
                current.push(c);
            }
        }
    }
    if let Some((open, pos)) = quote {
        return Err(NbError::OptionAt {
            message: format!("unterminated {open} quote"),
            span: Span::new(pos, line.len() as u32 - pos),
        });
    }
    if !current.is_empty() {
        tokens.push((current, Span::new(tok_start, line.len() as u32 - tok_start)));
    }
    Ok(tokens)
}

/// Splits a command line into tokens, honouring double and single quotes.
///
/// # Errors
///
/// Returns [`NbError::OptionAt`] if a quote is left unterminated (see
/// [`tokenize_spanned`], which this drops the spans of).
pub fn tokenize(line: &str) -> Result<Vec<String>, NbError> {
    Ok(tokenize_spanned(line)?
        .into_iter()
        .map(|(t, _)| t)
        .collect())
}

/// Renders a caret line pointing at `span` within `line`, for printing
/// under the offending option line:
///
/// ```text
/// -asm "add rax, rbx" -unroll_cnt 100
///                     ^^^^^^^^^^^
/// ```
///
/// The span is in bytes ([`NbError::OptionAt`] carries one); the carets
/// are placed by character so multi-byte text stays aligned.
pub fn caret_line(line: &str, span: Span) -> String {
    let start = (span.start as usize).min(line.len());
    let end = (span.end() as usize).min(line.len());
    let col = line.get(..start).map_or(start, |s| s.chars().count());
    let width = line.get(start..end).map_or(1, |s| s.chars().count().max(1));
    format!("{}{}", " ".repeat(col), "^".repeat(width))
}

/// Re-targets a value-parse error (`InvalidOption`) at the token it came
/// from; errors that already know their place pass through.
fn at(span: Span) -> impl Fn(NbError) -> NbError {
    move |e| match e {
        NbError::InvalidOption(message) => NbError::OptionAt { message, span },
        other => other,
    }
}

/// Parses a `-code`-style hex byte string (`"4D8B36"`, whitespace allowed
/// between bytes) into machine-code bytes.
fn parse_hex_bytes(v: &str) -> Result<Vec<u8>, NbError> {
    let digits: Vec<char> = v.chars().filter(|c| !c.is_whitespace()).collect();
    if digits.is_empty() || !digits.len().is_multiple_of(2) {
        return Err(NbError::InvalidOption(format!(
            "`{v}` is not an even-length hex byte string"
        )));
    }
    digits
        .chunks(2)
        .map(|pair| {
            let s: String = pair.iter().collect();
            u8::from_str_radix(&s, 16)
                .map_err(|_| NbError::InvalidOption(format!("`{s}` is not a hex byte in `{v}`")))
        })
        .collect()
}

/// Resolves a `-config` value: the name of a built-in configuration file
/// or inline configuration text.
fn resolve_config(value: &str) -> &str {
    match value.trim_end_matches(".txt") {
        "cfg_Skylake" | "configs/cfg_Skylake" => nanobench_pmu::config::cfg_skylake(),
        "cfg_example" => nanobench_pmu::config::cfg_example(),
        _ => value,
    }
}

/// Applies `nanoBench.sh`-style options to a runner.
///
/// Supported options (subset of the real tool's, §III-E):
/// `-asm`, `-asm_init`, `-code` (machine-code bytes as a hex string — the
/// binary-input path, SSE/AVX included), `-config`, `-unroll_count`,
/// `-loop_count`, `-n_measurements`, `-warm_up_count`, `-min`, `-median`,
/// `-avg`, `-basic_mode`, `-no_mem`, `-lint` (deny-gate the benchmark on
/// the static analyzer's errors). Numeric values accept decimal and
/// `0x`-prefixed hex, like the real tool's.
///
/// # Errors
///
/// Returns [`NbError::OptionAt`] — carrying the byte range of the
/// offending token, renderable with [`caret_line`] — for unknown options
/// and malformed or missing values, and parse errors for
/// `-asm`/`-code`/`-config` payloads.
pub fn apply_options(nb: &mut NanoBench, line: &str) -> Result<(), NbError> {
    let tokens = tokenize_spanned(line)?;
    let mut i = 0usize;
    let value = |i: &mut usize, name: &str, span: Span| -> Result<(String, Span), NbError> {
        *i += 1;
        tokens.get(*i).cloned().ok_or_else(|| NbError::OptionAt {
            message: format!("{name} needs a value"),
            span,
        })
    };
    while i < tokens.len() {
        let (token, span) = &tokens[i];
        match token.as_str() {
            "-asm" => {
                let (v, _) = value(&mut i, "-asm", *span)?;
                nb.asm(&v)?;
            }
            "-asm_init" => {
                let (v, _) = value(&mut i, "-asm_init", *span)?;
                nb.asm_init(&v)?;
            }
            "-code" => {
                let (v, vspan) = value(&mut i, "-code", *span)?;
                nb.code_bytes(&parse_hex_bytes(&v).map_err(at(vspan))?)?;
            }
            "-config" => {
                let (v, _) = value(&mut i, "-config", *span)?;
                nb.config_str(resolve_config(&v))?;
            }
            "-unroll_count" => {
                let (v, vspan) = value(&mut i, "-unroll_count", *span)?;
                nb.unroll_count(parse_num(&v).map_err(at(vspan))?);
            }
            "-loop_count" => {
                let (v, vspan) = value(&mut i, "-loop_count", *span)?;
                nb.loop_count(parse_num(&v).map_err(at(vspan))? as u64);
            }
            "-n_measurements" => {
                let (v, vspan) = value(&mut i, "-n_measurements", *span)?;
                nb.n_measurements(parse_num(&v).map_err(at(vspan))?);
            }
            "-warm_up_count" => {
                let (v, vspan) = value(&mut i, "-warm_up_count", *span)?;
                nb.warm_up_count(parse_num(&v).map_err(at(vspan))?);
            }
            "-min" => {
                nb.aggregate(Aggregate::Min);
            }
            "-median" => {
                nb.aggregate(Aggregate::Median);
            }
            "-avg" => {
                nb.aggregate(Aggregate::TrimmedMean);
            }
            "-basic_mode" => {
                nb.basic_mode(true);
            }
            "-no_mem" => {
                nb.no_mem(true);
            }
            "-lint" => {
                nb.lint(LintGate::Deny);
            }
            other => {
                return Err(NbError::OptionAt {
                    message: format!("unknown option `{other}`"),
                    span: *span,
                });
            }
        }
        i += 1;
    }
    Ok(())
}

/// Parses a numeric option value; `nanoBench.sh` accepts both decimal and
/// `0x`-prefixed hex for its numeric options.
fn parse_num(v: &str) -> Result<usize, NbError> {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => usize::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    };
    parsed.ok_or_else(|| NbError::InvalidOption(format!("`{v}` is not a number")))
}

/// Runs `./kernel-nanoBench.sh <options>` on a fresh machine.
///
/// # Errors
///
/// Propagates option and benchmark errors.
///
/// # Examples
///
/// ```
/// use nanobench_core::shell::kernel_nanobench;
/// use nanobench_uarch::port::MicroArch;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let out = kernel_nanobench(
///     MicroArch::Skylake,
///     r#"-asm "mov R14, [R14]" -asm_init "mov [R14], R14" -config cfg_example -unroll_count 100 -warm_up_count 1"#,
/// )?;
/// assert!(out.to_string().contains("Core cycles: 4.00"));
/// # Ok(())
/// # }
/// ```
pub fn kernel_nanobench(uarch: MicroArch, options: &str) -> Result<BenchmarkResult, NbError> {
    let mut nb = NanoBench::kernel(uarch);
    apply_options(&mut nb, options)?;
    nb.run()
}

/// Runs `./nanoBench.sh <options>` (user-space version) on a fresh machine.
///
/// # Errors
///
/// Propagates option and benchmark errors. Benchmarks containing
/// privileged instructions fail with a CPU fault here — use
/// [`kernel_nanobench`] for those (§III-D).
pub fn user_nanobench(uarch: MicroArch, options: &str) -> Result<BenchmarkResult, NbError> {
    let mut nb = NanoBench::user(uarch);
    apply_options(&mut nb, options)?;
    nb.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_handles_quotes() {
        let t = tokenize(r#"-asm "mov R14, [R14]" -unroll_count 10"#).unwrap();
        assert_eq!(t, vec!["-asm", "mov R14, [R14]", "-unroll_count", "10"]);
        let t = tokenize("-asm 'add rax, 1; nop'").unwrap();
        assert_eq!(t, vec!["-asm", "add rax, 1; nop"]);
    }

    #[test]
    fn unterminated_quotes_are_errors_for_both_styles() {
        for line in [r#"-asm "mov rax, rbx"#, "-asm 'mov rax, rbx"] {
            let err = tokenize(line).unwrap_err();
            assert!(err.to_string().contains("unterminated"), "`{line}`: {err}");
            // And the error propagates out of the option parser.
            let mut nb = NanoBench::kernel(MicroArch::Skylake);
            assert!(apply_options(&mut nb, line).is_err());
        }
    }

    #[test]
    fn numeric_options_accept_decimal_and_hex() {
        assert_eq!(parse_num("100").unwrap(), 100);
        assert_eq!(parse_num("0x40").unwrap(), 64);
        assert_eq!(parse_num("0X10").unwrap(), 16);
        assert!(parse_num("abc").is_err());
        assert!(parse_num("0xZZ").is_err());
        assert!(parse_num("").is_err());
        // End to end: a hex unroll count behaves like its decimal twin.
        let opts = |n: &str| {
            format!(r#"-asm "add rax, rax" -unroll_count {n} -warm_up_count 1 -n_measurements 3"#)
        };
        let hex = kernel_nanobench(MicroArch::Skylake, &opts("0x64")).unwrap();
        let dec = kernel_nanobench(MicroArch::Skylake, &opts("100")).unwrap();
        assert_eq!(hex, dec);
    }

    #[test]
    fn code_option_takes_hex_machine_code() {
        // `mov R14, [R14]` (§III-A) as raw bytes through the shell's
        // binary-input path (§III-E).
        let out = kernel_nanobench(
            MicroArch::Skylake,
            r#"-code "4D 8B 36" -asm_init "mov [R14], R14" -config cfg_example -unroll_count 100 -warm_up_count 1"#,
        )
        .unwrap();
        assert_eq!(out.core_cycles(), Some(4.0));
        // An SSE benchmark as code bytes: addps xmm0, xmm1 = 0F 58 C1.
        let sse = kernel_nanobench(
            MicroArch::Skylake,
            r#"-code 0F58C1 -unroll_count 50 -warm_up_count 1"#,
        )
        .unwrap();
        assert!(sse.core_cycles().unwrap() > 0.0);
        // Malformed hex is an option error, not a silent no-op.
        let mut nb = NanoBench::kernel(MicroArch::Skylake);
        assert!(apply_options(&mut nb, "-code 4D8").is_err());
        assert!(apply_options(&mut nb, "-code XY").is_err());
    }

    #[test]
    fn option_errors_carry_spans() {
        let mut nb = NanoBench::kernel(MicroArch::Skylake);
        // Unknown option: the span covers exactly the offending token.
        let line = r#"-asm "add rax, rax" -frobnicate 3"#;
        let err = apply_options(&mut nb, line).unwrap_err();
        let NbError::OptionAt { span, .. } = err else {
            panic!("expected OptionAt, got {err}");
        };
        assert_eq!(
            &line[span.start as usize..span.end() as usize],
            "-frobnicate"
        );
        assert_eq!(
            caret_line(line, span),
            format!("{}{}", " ".repeat(20), "^".repeat(11))
        );
        // A malformed value points at the value, not the option name.
        let line = "-code 4D8";
        let err = apply_options(&mut nb, line).unwrap_err();
        let NbError::OptionAt { span, .. } = err else {
            panic!("expected OptionAt, got {err}");
        };
        assert_eq!(&line[span.start as usize..span.end() as usize], "4D8");
        // A missing value points back at the option that wanted one.
        let line = "-unroll_count";
        let err = apply_options(&mut nb, line).unwrap_err();
        let NbError::OptionAt { span, .. } = err else {
            panic!("expected OptionAt, got {err}");
        };
        assert_eq!(
            &line[span.start as usize..span.end() as usize],
            "-unroll_count"
        );
        // An unterminated quote spans from the quote to the end of line.
        let line = r#"-asm "mov rax, rbx"#;
        let err = tokenize(line).unwrap_err();
        let NbError::OptionAt { span, .. } = err else {
            panic!("expected OptionAt, got {err}");
        };
        assert_eq!(span.start, 5);
        assert_eq!(span.end() as usize, line.len());
    }

    #[test]
    fn lint_option_gates_the_run() {
        // An uninitialized address register: denied before simulating.
        let err =
            kernel_nanobench(MicroArch::Skylake, r#"-lint -asm "mov rax, [rbx]""#).unwrap_err();
        assert!(matches!(err, NbError::Lint(_)), "{err}");
        // The §III-A example lints clean and still runs.
        let out = kernel_nanobench(
            MicroArch::Skylake,
            r#"-lint -asm "mov R14, [R14]" -asm_init "mov [R14], R14" -unroll_count 100 -warm_up_count 1"#,
        )
        .unwrap();
        assert_eq!(out.core_cycles(), Some(4.0));
    }

    #[test]
    fn unknown_option_is_error() {
        let mut nb = NanoBench::kernel(MicroArch::Skylake);
        let err = apply_options(&mut nb, "-frobnicate 3").unwrap_err();
        assert!(err.to_string().contains("unknown option"));
    }

    #[test]
    fn missing_value_is_error() {
        let mut nb = NanoBench::kernel(MicroArch::Skylake);
        assert!(apply_options(&mut nb, "-unroll_count").is_err());
        assert!(apply_options(&mut nb, "-loop_count abc").is_err());
    }
}
