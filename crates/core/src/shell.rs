//! Shell-style interface mirroring `nanoBench.sh` / `kernel-nanoBench.sh`
//! (§III-E: "a unified interface to the user-space and the kernel-space
//! version in the form of two shell scripts ... that have mostly the same
//! command-line options").

use crate::error::NbError;
use crate::nanobench::NanoBench;
use crate::result::BenchmarkResult;
use crate::runner::Aggregate;
use nanobench_uarch::port::MicroArch;

/// Splits a command line into tokens, honouring double and single quotes.
pub fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut quote: Option<char> = None;
    for c in line.chars() {
        match (c, quote) {
            (q, Some(open)) if q == open => quote = None,
            ('"', None) | ('\'', None) => quote = Some(c),
            (c, None) if c.is_whitespace() => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            (c, _) => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Resolves a `-config` value: the name of a built-in configuration file
/// or inline configuration text.
fn resolve_config(value: &str) -> &str {
    match value.trim_end_matches(".txt") {
        "cfg_Skylake" | "configs/cfg_Skylake" => nanobench_pmu::config::cfg_skylake(),
        "cfg_example" => nanobench_pmu::config::cfg_example(),
        _ => value,
    }
}

/// Applies `nanoBench.sh`-style options to a runner.
///
/// Supported options (subset of the real tool's, §III-E):
/// `-asm`, `-asm_init`, `-config`, `-unroll_count`, `-loop_count`,
/// `-n_measurements`, `-warm_up_count`, `-min`, `-median`, `-avg`,
/// `-basic_mode`, `-no_mem`.
///
/// # Errors
///
/// Returns [`NbError::InvalidOption`] for unknown options or malformed
/// values, and parse errors for `-asm`/`-config` payloads.
pub fn apply_options(nb: &mut NanoBench, line: &str) -> Result<(), NbError> {
    let tokens = tokenize(line);
    let mut i = 0usize;
    let value = |i: &mut usize, name: &str| -> Result<String, NbError> {
        *i += 1;
        tokens
            .get(*i)
            .cloned()
            .ok_or_else(|| NbError::InvalidOption(format!("{name} needs a value")))
    };
    while i < tokens.len() {
        match tokens[i].as_str() {
            "-asm" => {
                let v = value(&mut i, "-asm")?;
                nb.asm(&v)?;
            }
            "-asm_init" => {
                let v = value(&mut i, "-asm_init")?;
                nb.asm_init(&v)?;
            }
            "-config" => {
                let v = value(&mut i, "-config")?;
                nb.config_str(resolve_config(&v))?;
            }
            "-unroll_count" => {
                let v = value(&mut i, "-unroll_count")?;
                nb.unroll_count(parse_num(&v)?);
            }
            "-loop_count" => {
                let v = value(&mut i, "-loop_count")?;
                nb.loop_count(parse_num(&v)? as u64);
            }
            "-n_measurements" => {
                let v = value(&mut i, "-n_measurements")?;
                nb.n_measurements(parse_num(&v)?);
            }
            "-warm_up_count" => {
                let v = value(&mut i, "-warm_up_count")?;
                nb.warm_up_count(parse_num(&v)?);
            }
            "-min" => {
                nb.aggregate(Aggregate::Min);
            }
            "-median" => {
                nb.aggregate(Aggregate::Median);
            }
            "-avg" => {
                nb.aggregate(Aggregate::TrimmedMean);
            }
            "-basic_mode" => {
                nb.basic_mode(true);
            }
            "-no_mem" => {
                nb.no_mem(true);
            }
            other => {
                return Err(NbError::InvalidOption(format!("unknown option `{other}`")));
            }
        }
        i += 1;
    }
    Ok(())
}

fn parse_num(v: &str) -> Result<usize, NbError> {
    v.parse()
        .map_err(|_| NbError::InvalidOption(format!("`{v}` is not a number")))
}

/// Runs `./kernel-nanoBench.sh <options>` on a fresh machine.
///
/// # Errors
///
/// Propagates option and benchmark errors.
///
/// # Examples
///
/// ```
/// use nanobench_core::shell::kernel_nanobench;
/// use nanobench_uarch::port::MicroArch;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let out = kernel_nanobench(
///     MicroArch::Skylake,
///     r#"-asm "mov R14, [R14]" -asm_init "mov [R14], R14" -config cfg_example -unroll_count 100 -warm_up_count 1"#,
/// )?;
/// assert!(out.to_string().contains("Core cycles: 4.00"));
/// # Ok(())
/// # }
/// ```
pub fn kernel_nanobench(uarch: MicroArch, options: &str) -> Result<BenchmarkResult, NbError> {
    let mut nb = NanoBench::kernel(uarch);
    apply_options(&mut nb, options)?;
    nb.run()
}

/// Runs `./nanoBench.sh <options>` (user-space version) on a fresh machine.
///
/// # Errors
///
/// Propagates option and benchmark errors. Benchmarks containing
/// privileged instructions fail with a CPU fault here — use
/// [`kernel_nanobench`] for those (§III-D).
pub fn user_nanobench(uarch: MicroArch, options: &str) -> Result<BenchmarkResult, NbError> {
    let mut nb = NanoBench::user(uarch);
    apply_options(&mut nb, options)?;
    nb.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_handles_quotes() {
        let t = tokenize(r#"-asm "mov R14, [R14]" -unroll_count 10"#);
        assert_eq!(t, vec!["-asm", "mov R14, [R14]", "-unroll_count", "10"]);
        let t = tokenize("-asm 'add rax, 1; nop'");
        assert_eq!(t, vec!["-asm", "add rax, 1; nop"]);
    }

    #[test]
    fn unknown_option_is_error() {
        let mut nb = NanoBench::kernel(MicroArch::Skylake);
        let err = apply_options(&mut nb, "-frobnicate 3").unwrap_err();
        assert!(err.to_string().contains("unknown option"));
    }

    #[test]
    fn missing_value_is_error() {
        let mut nb = NanoBench::kernel(MicroArch::Skylake);
        assert!(apply_options(&mut nb, "-unroll_count").is_err());
        assert!(apply_options(&mut nb, "-loop_count abc").is_err());
    }
}
