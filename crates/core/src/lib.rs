//! # nanobench-core — the nanoBench tool
//!
//! A reproduction of *nanoBench: A Low-Overhead Tool for Running
//! Microbenchmarks on x86 Systems* (Abel & Reineke, ISPASS 2020), running
//! against the simulated machine of `nanobench-machine`.
//!
//! The crate implements the paper's §III features: code generation per
//! Algorithm 1 ([`codegen`]), the measurement loop per Algorithm 2 with
//! min/median/trimmed-mean aggregates ([`runner`]), overhead removal by
//! running two unroll versions (§III-C), kernel- and user-space execution
//! (§III-D), dedicated register memory areas (§III-G), warm-up runs
//! (§III-H), the noMem register mode with pausable counters (§III-I),
//! counter multiplexing from configuration files (§III-J), and a
//! `nanoBench.sh`-style option interface ([`shell`]).
//!
//! Campaigns — many benchmarks against the same machine model — should use
//! the [`session`] module: a [`Session`] amortizes machine construction
//! across runs and a [`Campaign`] shards runs over worker threads with
//! bit-deterministic results ([`session`] has the seeding scheme).
//!
//! # Examples
//!
//! The paper's §III-A example — L1 data cache latency on Skylake:
//!
//! ```
//! use nanobench_core::NanoBench;
//! use nanobench_uarch::port::MicroArch;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nb = NanoBench::kernel(MicroArch::Skylake);
//! let result = nb
//!     .asm("mov R14, [R14]")?
//!     .asm_init("mov [R14], R14")?
//!     .config_str(nanobench_pmu::config::cfg_skylake())?
//!     .unroll_count(100)
//!     .warm_up_count(1)
//!     .run()?;
//! assert_eq!(result.get("Instructions retired"), Some(1.0));
//! assert_eq!(result.core_cycles(), Some(4.0));
//! assert_eq!(result.get("MEM_LOAD_RETIRED.L1_HIT"), Some(1.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod error;
pub mod nanobench;
pub mod result;
pub mod runner;
pub mod session;
pub mod shell;

pub use error::NbError;
pub use nanobench::NanoBench;
pub use result::{BenchmarkResult, RESULT_FORMAT_VERSION};
pub use runner::Aggregate;
pub use session::{auto_workers, parallel_map, BenchSpec, Campaign, LintGate, Session, NB_SEED};
