//! Code generation for microbenchmarks — Algorithm 1 of the paper.
//!
//! The generated function:
//!
//! ```text
//! 1  saveRegs
//! 2  codeInit
//! 3  m1 <- readPerfCtrs      (does not clobber benchmark registers)
//! 4  for j <- 0 to loopCount (omitted if loopCount = 0; counter in R15)
//! 5..9  code x localUnrollCount
//! 10 m2 <- readPerfCtrs
//! 11 restoreRegs
//! ```
//!
//! Registers RSP, RBP, RDI, RSI and R14 are initialized to point into
//! dedicated memory areas of 1 MB each that the microbenchmark may freely
//! modify (§III-G). In `noMem` mode (§III-I) the counter values are
//! accumulated in registers R8–R13 instead of being written to memory.

use nanobench_x86::inst::{Instruction, Mnemonic};
use nanobench_x86::operand::{MemRef, Operand};
use nanobench_x86::reg::{Gpr, Width};

/// Size of each dedicated memory area (§III-G: "1 MB each").
pub const ARENA_SIZE: u64 = 1 << 20;

/// The registers nanoBench points into dedicated memory areas.
pub const ARENA_REGS: [Gpr; 5] = [Gpr::Rsp, Gpr::Rbp, Gpr::Rdi, Gpr::Rsi, Gpr::R14];

/// Registers that accumulate counter values in `noMem` mode; the
/// microbenchmark must not modify them (§III-I).
pub const NO_MEM_ACC_REGS: [Gpr; 6] = [Gpr::R8, Gpr::R9, Gpr::R10, Gpr::R11, Gpr::R12, Gpr::R13];

/// Memory layout used by the generated code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arenas {
    /// Register save area (16 qwords).
    pub save_area: u64,
    /// Scratch for RAX/RCX/RDX around counter reads (3 qwords).
    pub scratch: u64,
    /// First counter-read results (one qword per counter).
    pub m1: u64,
    /// Second counter-read results.
    pub m2: u64,
    /// Base of each dedicated register arena, in [`ARENA_REGS`] order.
    pub arena_bases: [u64; 5],
}

/// One generated benchmark function.
#[derive(Debug, Clone)]
pub struct GeneratedCode {
    /// The instruction sequence.
    pub program: Vec<Instruction>,
    /// RDPMC selectors measured, in result-slot order.
    pub selectors: Vec<u32>,
    /// Whether results live in registers (noMem) or in the m1/m2 areas.
    pub no_mem: bool,
}

/// Configuration for one code generation (one `localUnrollCount` version).
#[derive(Debug, Clone)]
pub struct CodegenRequest<'a> {
    /// Initialization part of the microbenchmark (not measured).
    pub init: &'a [Instruction],
    /// The main part of the microbenchmark.
    pub code: &'a [Instruction],
    /// `localUnrollCount` — number of copies of `code`.
    pub local_unroll: usize,
    /// `loopCount` — 0 omits the loop entirely.
    pub loop_count: u64,
    /// RDPMC selectors to read (fixed counters use bit 30).
    pub selectors: &'a [u32],
    /// Store results in registers instead of memory (§III-I).
    pub no_mem: bool,
    /// Memory layout.
    pub arenas: Arenas,
}

fn abs_mem(addr: u64) -> Operand {
    Operand::Mem(MemRef::absolute(addr, Width::Q))
}

fn mov_to_mem(addr: u64, reg: Gpr) -> Instruction {
    Instruction::binary(Mnemonic::Mov, abs_mem(addr), Operand::gpr(reg))
}

fn mov_from_mem(reg: Gpr, addr: u64) -> Instruction {
    Instruction::binary(Mnemonic::Mov, Operand::gpr(reg), abs_mem(addr))
}

fn mov_imm(reg: Gpr, value: u64) -> Instruction {
    Instruction::binary(Mnemonic::Mov, Operand::gpr(reg), Operand::imm(value as i64))
}

/// Emits the counter-read sequence (line 4 / line 10 of Algorithm 1).
///
/// Memory mode: saves RAX/RCX/RDX to scratch, reads each counter behind
/// LFENCE pairs, stores the 64-bit values to `results`, restores the
/// clobbered registers — so benchmark register state is preserved (§III-B).
///
/// noMem mode: subtracts (for m1) or adds (for m2) each counter value
/// into R8+slot, clobbering only RAX/RCX/RDX which the benchmark must not
/// rely on in this mode.
fn emit_read_counters(out: &mut Vec<Instruction>, req: &CodegenRequest, first: bool) {
    let results = if first { req.arenas.m1 } else { req.arenas.m2 };
    let scratch = req.arenas.scratch;
    if !req.no_mem {
        out.push(mov_to_mem(scratch, Gpr::Rax));
        out.push(mov_to_mem(scratch + 8, Gpr::Rcx));
        out.push(mov_to_mem(scratch + 16, Gpr::Rdx));
    }
    for (slot, sel) in req.selectors.iter().enumerate() {
        out.push(Instruction::new(Mnemonic::Lfence));
        out.push(mov_imm(Gpr::Rcx, *sel as u64));
        out.push(Instruction::new(Mnemonic::Rdpmc));
        out.push(Instruction::binary(
            Mnemonic::Shl,
            Operand::gpr(Gpr::Rdx),
            Operand::imm(32),
        ));
        out.push(Instruction::binary(
            Mnemonic::Or,
            Operand::gpr(Gpr::Rax),
            Operand::gpr(Gpr::Rdx),
        ));
        if req.no_mem {
            let acc = NO_MEM_ACC_REGS[slot];
            let op = if first { Mnemonic::Sub } else { Mnemonic::Add };
            out.push(Instruction::binary(
                op,
                Operand::gpr(acc),
                Operand::gpr(Gpr::Rax),
            ));
        } else {
            out.push(mov_to_mem(results + 8 * slot as u64, Gpr::Rax));
        }
    }
    out.push(Instruction::new(Mnemonic::Lfence));
    if !req.no_mem {
        out.push(mov_from_mem(Gpr::Rax, scratch));
        out.push(mov_from_mem(Gpr::Rcx, scratch + 8));
        out.push(mov_from_mem(Gpr::Rdx, scratch + 16));
    }
}

/// Generates the benchmark function per Algorithm 1.
///
/// # Panics
///
/// Panics if `selectors` exceeds the noMem accumulator registers in noMem
/// mode (callers multiplex counters across runs instead, §III-J).
pub fn generate(req: &CodegenRequest) -> GeneratedCode {
    assert!(
        !req.no_mem || req.selectors.len() <= NO_MEM_ACC_REGS.len(),
        "noMem mode supports at most {} counters per run",
        NO_MEM_ACC_REGS.len()
    );
    let mut out = Vec::new();

    // Line 2: saveRegs — all 16 GPRs to the save area.
    for reg in Gpr::ALL {
        out.push(mov_to_mem(
            req.arenas.save_area + 8 * reg.number() as u64,
            reg,
        ));
    }
    // §III-G: point RSP/RBP/RDI/RSI/R14 into their dedicated areas. RSP
    // points into the middle of its area so both pushes and positive
    // offsets stay inside.
    for (i, reg) in ARENA_REGS.iter().enumerate() {
        let base = req.arenas.arena_bases[i];
        let target = if *reg == Gpr::Rsp {
            base + ARENA_SIZE / 2
        } else {
            base
        };
        out.push(mov_imm(*reg, target));
    }
    if req.no_mem {
        for acc in NO_MEM_ACC_REGS.iter().take(req.selectors.len()) {
            out.push(Instruction::binary(
                Mnemonic::Xor,
                Operand::gpr(*acc),
                Operand::gpr(*acc),
            ));
        }
    }

    // Line 3: codeInit.
    out.extend_from_slice(req.init);

    // Line 4: m1 <- readPerfCtrs.
    emit_read_counters(&mut out, req, true);

    // Lines 5–9: optional loop around the unrolled body. The loop counter
    // lives in R15, which the benchmark must not modify when looping
    // (§III-B).
    if req.loop_count > 0 {
        out.push(mov_imm(Gpr::R15, req.loop_count));
        let loop_top = out.len();
        for _ in 0..req.local_unroll {
            out.extend_from_slice(req.code);
        }
        out.push(Instruction::unary(Mnemonic::Dec, Operand::gpr(Gpr::R15)));
        out.push(Instruction::unary(Mnemonic::Jnz, Operand::Label(loop_top)));
    } else {
        for _ in 0..req.local_unroll {
            out.extend_from_slice(req.code);
        }
    }

    // Line 10: m2 <- readPerfCtrs.
    emit_read_counters(&mut out, req, false);

    // In noMem mode the deltas live in R8..; spill them to the m2 area
    // before the registers are restored (measurement is already complete
    // here, so these stores cannot perturb the counters).
    if req.no_mem {
        for (slot, acc) in NO_MEM_ACC_REGS.iter().take(req.selectors.len()).enumerate() {
            out.push(mov_to_mem(req.arenas.m2 + 8 * slot as u64, *acc));
        }
    }

    // Line 11: restoreRegs.
    for reg in Gpr::ALL {
        out.push(mov_from_mem(
            reg,
            req.arenas.save_area + 8 * reg.number() as u64,
        ));
    }

    GeneratedCode {
        program: out,
        selectors: req.selectors.to_vec(),
        no_mem: req.no_mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanobench_x86::asm::parse_asm;

    fn arenas() -> Arenas {
        Arenas {
            save_area: 0x1000,
            scratch: 0x1100,
            m1: 0x1200,
            m2: 0x1300,
            arena_bases: [0x10_0000, 0x20_0000, 0x30_0000, 0x40_0000, 0x50_0000],
        }
    }

    #[test]
    fn structure_matches_algorithm1() {
        let code = parse_asm("mov R14, [R14]").unwrap();
        let init = parse_asm("mov [R14], R14").unwrap();
        let req = CodegenRequest {
            init: &init,
            code: &code,
            local_unroll: 3,
            loop_count: 0,
            selectors: &[1 << 30],
            no_mem: false,
            arenas: arenas(),
        };
        let g = generate(&req);
        // 16 saves + 5 arena inits + 1 init + 2 counter reads + 3 copies
        // + 16 restores; counter reads bracket the body.
        let body_count = g.program.iter().filter(|i| **i == code[0]).count();
        assert_eq!(body_count, 3);
        let rdpmc_count = g
            .program
            .iter()
            .filter(|i| i.mnemonic == Mnemonic::Rdpmc)
            .count();
        assert_eq!(rdpmc_count, 2);
        // First instruction saves RAX; last restores R15.
        assert_eq!(g.program[0], mov_to_mem(0x1000, Gpr::Rax));
        assert_eq!(
            *g.program.last().unwrap(),
            mov_from_mem(Gpr::R15, 0x1000 + 8 * 15)
        );
    }

    #[test]
    fn loop_uses_r15() {
        let code = parse_asm("nop").unwrap();
        let req = CodegenRequest {
            init: &[],
            code: &code,
            local_unroll: 2,
            loop_count: 10,
            selectors: &[1 << 30],
            no_mem: false,
            arenas: arenas(),
        };
        let g = generate(&req);
        let has_dec_r15 = g
            .program
            .iter()
            .any(|i| i.mnemonic == Mnemonic::Dec && i.dst() == Some(&Operand::gpr(Gpr::R15)));
        assert!(has_dec_r15);
        let jnz = g
            .program
            .iter()
            .find(|i| i.mnemonic == Mnemonic::Jnz)
            .expect("loop branch");
        let target = match jnz.dst() {
            Some(Operand::Label(t)) => *t,
            other => panic!("expected label, got {other:?}"),
        };
        // The branch targets the first body instruction.
        assert_eq!(g.program[target].mnemonic, Mnemonic::Nop);
    }

    #[test]
    fn no_mem_uses_accumulators_and_no_result_stores() {
        let code = parse_asm("nop").unwrap();
        let req = CodegenRequest {
            init: &[],
            code: &code,
            local_unroll: 1,
            loop_count: 0,
            selectors: &[1 << 30, (1 << 30) | 1],
            no_mem: true,
            arenas: arenas(),
        };
        let g = generate(&req);
        let subs = g
            .program
            .iter()
            .filter(|i| i.mnemonic == Mnemonic::Sub)
            .count();
        let adds = g
            .program
            .iter()
            .filter(|i| i.mnemonic == Mnemonic::Add)
            .count();
        assert_eq!(subs, 2);
        assert_eq!(adds, 2);
        // The only stores to the result areas are the two post-measurement
        // accumulator spills.
        let result_stores = g
            .program
            .iter()
            .filter(
                |i| matches!(i.dst(), Some(Operand::Mem(m)) if (0x1200..0x1400).contains(&m.disp)),
            )
            .count();
        assert_eq!(result_stores, 2);
    }

    #[test]
    #[should_panic(expected = "noMem mode supports")]
    fn no_mem_counter_limit() {
        let req = CodegenRequest {
            init: &[],
            code: &[],
            local_unroll: 0,
            loop_count: 0,
            selectors: &[0, 1, 2, 3, 4, 5, 6],
            no_mem: true,
            arenas: arenas(),
        };
        let _ = generate(&req);
    }
}
