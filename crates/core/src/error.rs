//! Error type of the nanoBench library.

use nanobench_analysis::{Diagnostic, Span};
use nanobench_pmu::ParseConfigError;
use nanobench_uarch::bus::CpuFault;
use nanobench_x86::asm::ParseAsmError;
use nanobench_x86::encode::{DecodeError, EncodeError};
use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running a benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NbError {
    /// The simulated CPU faulted (privilege violation, page fault, ...).
    Fault(CpuFault),
    /// The `-asm`/`-asm_init` text did not parse.
    Asm(ParseAsmError),
    /// The performance-counter configuration did not parse.
    Config(ParseConfigError),
    /// Binary microbenchmark code did not decode.
    Decode(DecodeError),
    /// A benchmark could not be encoded to machine-code bytes (§III-E).
    Encode(EncodeError),
    /// An option value was invalid.
    InvalidOption(String),
    /// An option error located in its command line: the [`Span`] is a byte
    /// range into the line handed to the shell-style parser (see
    /// [`crate::shell::caret_line`] for rendering).
    OptionAt {
        /// What is wrong with the option.
        message: String,
        /// Byte range of the offending token in the option line.
        span: Span,
    },
    /// The spec-level lint gate rejected the benchmark ([`crate::Session`]
    /// with a `Deny` gate): the error-severity diagnostics, in order.
    Lint(Vec<Diagnostic>),
    /// The persistent result store failed (I/O error, foreign file).
    Store(String),
}

impl fmt::Display for NbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NbError::Fault(e) => write!(f, "cpu fault: {e}"),
            NbError::Asm(e) => write!(f, "{e}"),
            NbError::Config(e) => write!(f, "{e}"),
            NbError::Decode(e) => write!(f, "{e}"),
            NbError::Encode(e) => write!(f, "{e}"),
            NbError::InvalidOption(s) => write!(f, "invalid option: {s}"),
            NbError::OptionAt { message, span } => {
                write!(f, "invalid option at byte {}: {message}", span.start)
            }
            NbError::Lint(diags) => {
                write!(f, "lint rejected the benchmark ({} error(s))", diags.len())?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            NbError::Store(s) => write!(f, "result store: {s}"),
        }
    }
}

impl Error for NbError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NbError::Fault(e) => Some(e),
            NbError::Asm(e) => Some(e),
            NbError::Config(e) => Some(e),
            NbError::Decode(e) => Some(e),
            NbError::Encode(e) => Some(e),
            NbError::InvalidOption(_) => None,
            NbError::OptionAt { .. } => None,
            NbError::Lint(_) => None,
            NbError::Store(_) => None,
        }
    }
}

impl From<nanobench_store::StoreError> for NbError {
    // `StoreError` wraps `std::io::Error`, which is neither `Clone` nor
    // `PartialEq`; `NbError` is both, so the store error flattens to its
    // message here.
    fn from(e: nanobench_store::StoreError) -> NbError {
        NbError::Store(e.to_string())
    }
}

impl From<CpuFault> for NbError {
    fn from(e: CpuFault) -> NbError {
        NbError::Fault(e)
    }
}

impl From<ParseAsmError> for NbError {
    fn from(e: ParseAsmError) -> NbError {
        NbError::Asm(e)
    }
}

impl From<ParseConfigError> for NbError {
    fn from(e: ParseConfigError) -> NbError {
        NbError::Config(e)
    }
}

impl From<DecodeError> for NbError {
    fn from(e: DecodeError) -> NbError {
        NbError::Decode(e)
    }
}

impl From<EncodeError> for NbError {
    fn from(e: EncodeError) -> NbError {
        NbError::Encode(e)
    }
}
