//! Running generated code — Algorithm 2 of the paper.
//!
//! The generated function is run `warm_up_count + n_measurements` times;
//! warm-up runs are discarded (§III-H) and an aggregate function — minimum,
//! median, or arithmetic mean excluding the top and bottom 20% — is applied
//! to the rest (§III-C).

use crate::codegen::Arenas;
use crate::codegen::GeneratedCode;
use crate::error::NbError;
use nanobench_machine::{Machine, Mode};
use nanobench_uarch::plan::DecodedProgram;
use nanobench_x86::inst::{Instruction, Mnemonic};
use nanobench_x86::operand::Operand;
use nanobench_x86::reg::Gpr;

/// The user-space version cannot program the counters itself: each
/// invocation goes through the perf subsystem's syscall path first. This
/// stub models that per-run kernel round trip (the reason the user-space
/// version is ~3x slower in §III-K; the real tool additionally pays for
/// process startup).
pub(crate) fn user_syscall_stub() -> Vec<Instruction> {
    vec![
        Instruction::binary(Mnemonic::Mov, Operand::gpr(Gpr::R15), Operand::imm(150)),
        Instruction::binary(Mnemonic::Add, Operand::gpr(Gpr::Rax), Operand::imm(1)),
        Instruction::unary(Mnemonic::Dec, Operand::gpr(Gpr::R15)),
        Instruction::unary(Mnemonic::Jnz, Operand::Label(1)),
    ]
}

/// Aggregate function applied to the per-run measurements (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Aggregate {
    /// Minimum.
    Min,
    /// Median.
    #[default]
    Median,
    /// Arithmetic mean excluding the top and bottom 20% of the values.
    TrimmedMean,
}

impl Aggregate {
    /// Applies the aggregate to a set of values.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn apply(self, values: &[i64]) -> f64 {
        self.apply_with_scratch(values, &mut Vec::new())
    }

    /// [`Aggregate::apply`] with a caller-provided scratch buffer, so a
    /// measurement loop aggregating many sample vectors allocates once.
    /// `Min` never copies; `Median` uses a linear-time selection instead
    /// of a full sort; only `TrimmedMean` sorts.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn apply_with_scratch(self, values: &[i64], scratch: &mut Vec<i64>) -> f64 {
        assert!(!values.is_empty(), "no measurements to aggregate");
        match self {
            Aggregate::Min => *values.iter().min().expect("non-empty") as f64,
            Aggregate::Median => {
                scratch.clear();
                scratch.extend_from_slice(values);
                let n = scratch.len();
                let (below, mid, _) = scratch.select_nth_unstable(n / 2);
                let mid = *mid;
                if n % 2 == 1 {
                    mid as f64
                } else {
                    // The left partition holds the n/2 smallest values, so
                    // its maximum is the lower middle element.
                    let lower = *below.iter().max().expect("n >= 2");
                    (lower + mid) as f64 / 2.0
                }
            }
            Aggregate::TrimmedMean => {
                scratch.clear();
                scratch.extend_from_slice(values);
                scratch.sort_unstable();
                let n = scratch.len();
                let trim = n / 5;
                let kept = &scratch[trim..n - trim];
                kept.iter().sum::<i64>() as f64 / kept.len() as f64
            }
        }
    }
}

/// Runs the generated code once — through its pre-decoded `plan` — and
/// extracts the per-counter deltas (`m2 - m1`).
///
/// `corunner_plans` loop on cores 1..N of a multi-core machine while the
/// plan runs on core 0 (pass `&[]` for an uncontended measurement — the
/// path is then byte-for-byte the single-core one).
///
/// `stub_plan` is the decoded [`user_syscall_stub`] a user-mode session
/// caches; kernel-mode callers pass `None`.
///
/// # Errors
///
/// Propagates CPU faults from the run.
pub fn run_once(
    machine: &mut Machine,
    generated: &GeneratedCode,
    plan: &DecodedProgram,
    corunner_plans: &[&DecodedProgram],
    stub_plan: Option<&DecodedProgram>,
    arenas: &Arenas,
) -> Result<Vec<i64>, NbError> {
    if machine.mode() == Mode::User {
        match stub_plan {
            Some(stub) => machine.run_plan(stub)?,
            None => machine.run(&user_syscall_stub())?,
        };
    }
    if corunner_plans.is_empty() {
        machine.run_plan(plan)?;
    } else {
        machine.run_plan_with_corunners(plan, corunner_plans)?;
    }
    let mut deltas = Vec::with_capacity(generated.selectors.len());
    if generated.no_mem {
        // The generated code spilled the register accumulators to the m2
        // area after the second counter read.
        for slot in 0..generated.selectors.len() as u64 {
            let delta = machine
                .read_mem(arenas.m2 + 8 * slot, 8)
                .expect("m2 area is mapped");
            deltas.push(delta as i64);
        }
    } else {
        for slot in 0..generated.selectors.len() as u64 {
            let m1 = machine
                .read_mem(arenas.m1 + 8 * slot, 8)
                .expect("m1 area is mapped");
            let m2 = machine
                .read_mem(arenas.m2 + 8 * slot, 8)
                .expect("m2 area is mapped");
            deltas.push(m2.wrapping_sub(m1) as i64);
        }
    }
    Ok(deltas)
}

/// Algorithm 2: runs the code `warm_up + n` times and aggregates the last
/// `n` per-counter deltas. All `warm_up + n` runs replay the same decoded
/// `plan` — the program is decoded at most once per measurement series.
///
/// # Errors
///
/// Propagates CPU faults from any run.
#[allow(clippy::too_many_arguments)]
pub fn measure(
    machine: &mut Machine,
    generated: &GeneratedCode,
    plan: &DecodedProgram,
    corunner_plans: &[&DecodedProgram],
    stub_plan: Option<&DecodedProgram>,
    arenas: &Arenas,
    warm_up: usize,
    n: usize,
    agg: Aggregate,
    scratch: &mut Vec<i64>,
) -> Result<Vec<f64>, NbError> {
    assert!(n > 0, "need at least one measurement");
    let mut samples: Vec<Vec<i64>> = vec![Vec::with_capacity(n); generated.selectors.len()];
    for i in 0..warm_up + n {
        let deltas = run_once(machine, generated, plan, corunner_plans, stub_plan, arenas)?;
        if i >= warm_up {
            for (slot, d) in deltas.into_iter().enumerate() {
                samples[slot].push(d);
            }
        }
    }
    Ok(samples
        .iter()
        .map(|s| agg.apply_with_scratch(s, scratch))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let v = [5i64, 1, 9, 3, 7];
        assert_eq!(Aggregate::Min.apply(&v), 1.0);
        assert_eq!(Aggregate::Median.apply(&v), 5.0);
        let even = [1i64, 3, 5, 7];
        assert_eq!(Aggregate::Median.apply(&even), 4.0);
        // Trimmed mean over 10 values drops 2 on each side.
        let ten: Vec<i64> = vec![100, 1, 2, 3, 4, 5, 6, 7, 8, -50];
        let tm = Aggregate::TrimmedMean.apply(&ten);
        assert_eq!(tm, (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8) as f64 / 8.0);
    }

    #[test]
    #[should_panic(expected = "no measurements")]
    fn empty_aggregate_panics() {
        let _ = Aggregate::Min.apply(&[]);
    }
}
