//! The nanoBench tool: a builder API over the simulated machine.
//!
//! Mirrors the workflow of §III: supply a microbenchmark (`-asm` /
//! `-asm_init`, or raw machine code), a performance-counter configuration
//! (§III-J), loop/unroll counts (§III-F), warm-up and measurement counts
//! (§III-C/H), and run. Counter multiplexing, overhead removal by running
//! two unroll versions (§III-C), and the noMem register mode (§III-I) are
//! handled automatically.

use crate::codegen::{self, Arenas, CodegenRequest, ARENA_REGS, ARENA_SIZE, NO_MEM_ACC_REGS};
use crate::error::NbError;
use crate::result::{BenchmarkResult, FIXED_COUNTER_NAMES};
use crate::runner::{measure, Aggregate};
use nanobench_machine::{Machine, Mode};
use nanobench_pmu::{parse_config, PerfEvent};
use nanobench_uarch::port::MicroArch;
use nanobench_x86::asm::parse_asm;
use nanobench_x86::encode::decode_program;
use nanobench_x86::inst::Instruction;

/// Number of programmable counters readable per round in noMem mode
/// (three fixed + three programmable fit in R8–R13).
const NO_MEM_PROG_PER_ROUND: usize = NO_MEM_ACC_REGS.len() - FIXED_COUNTER_NAMES.len();

/// The nanoBench benchmark runner.
///
/// # Examples
///
/// The §III-A example — measuring the L1 data cache latency:
///
/// ```
/// use nanobench_core::NanoBench;
/// use nanobench_uarch::port::MicroArch;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nb = NanoBench::kernel(MicroArch::Skylake);
/// let result = nb
///     .asm("mov R14, [R14]")?
///     .asm_init("mov [R14], R14")?
///     .config_str(nanobench_pmu::config::cfg_example())?
///     .unroll_count(100)
///     .warm_up_count(1)
///     .run()?;
/// assert_eq!(result.core_cycles(), Some(4.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NanoBench {
    machine: Machine,
    init: Vec<Instruction>,
    code: Vec<Instruction>,
    events: Vec<PerfEvent>,
    loop_count: u64,
    unroll_count: usize,
    n_measurements: usize,
    warm_up_count: usize,
    aggregate: Aggregate,
    no_mem: bool,
    basic_mode: bool,
    arenas: Arenas,
}

impl NanoBench {
    /// Creates a runner over an existing machine, allocating the dedicated
    /// memory areas of §III-G.
    pub fn with_machine(mut machine: Machine) -> NanoBench {
        let control = machine.alloc_region(4096);
        let mut arena_bases = [0u64; 5];
        for (i, base) in arena_bases.iter_mut().enumerate() {
            *base = machine.alloc_region(ARENA_SIZE);
            let _ = i;
        }
        let arenas = Arenas {
            save_area: control,
            scratch: control + 0x100,
            m1: control + 0x200,
            m2: control + 0x300,
            arena_bases,
        };
        NanoBench {
            machine,
            init: Vec::new(),
            code: Vec::new(),
            events: Vec::new(),
            loop_count: 0,
            unroll_count: 1,
            n_measurements: 10,
            warm_up_count: 0,
            aggregate: Aggregate::Median,
            no_mem: false,
            basic_mode: false,
            arenas,
        }
    }

    /// The kernel-space version (`kernel-nanoBench.sh`, §III-D).
    pub fn kernel(uarch: MicroArch) -> NanoBench {
        NanoBench::with_machine(Machine::new(uarch, Mode::Kernel, NB_SEED))
    }

    /// The user-space version (`nanoBench.sh`).
    pub fn user(uarch: MicroArch) -> NanoBench {
        NanoBench::with_machine(Machine::new(uarch, Mode::User, NB_SEED))
    }

    /// Sets the main part of the microbenchmark from Intel-syntax assembly.
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Asm`] on parse failure.
    pub fn asm(&mut self, text: &str) -> Result<&mut NanoBench, NbError> {
        self.code = parse_asm(text)?;
        Ok(self)
    }

    /// Sets the initialization part (`-asm_init`, not measured).
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Asm`] on parse failure.
    pub fn asm_init(&mut self, text: &str) -> Result<&mut NanoBench, NbError> {
        self.init = parse_asm(text)?;
        Ok(self)
    }

    /// Sets the main part from raw x86 machine code (§III-E). Magic
    /// pause/resume byte sequences (§III-I) are recognized.
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Decode`] for undecodable bytes.
    pub fn code_bytes(&mut self, bytes: &[u8]) -> Result<&mut NanoBench, NbError> {
        self.code = decode_program(bytes)?;
        Ok(self)
    }

    /// Sets the main part directly from instructions.
    pub fn code(&mut self, code: Vec<Instruction>) -> &mut NanoBench {
        self.code = code;
        self
    }

    /// Sets the init part directly from instructions.
    pub fn init(&mut self, init: Vec<Instruction>) -> &mut NanoBench {
        self.init = init;
        self
    }

    /// Parses a performance-counter configuration (§III-J).
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Config`] on parse failure.
    pub fn config_str(&mut self, text: &str) -> Result<&mut NanoBench, NbError> {
        self.events = parse_config(text)?;
        Ok(self)
    }

    /// Sets the events directly.
    pub fn events(&mut self, events: Vec<PerfEvent>) -> &mut NanoBench {
        self.events = events;
        self
    }

    /// Sets `loopCount` (§III-F).
    pub fn loop_count(&mut self, n: u64) -> &mut NanoBench {
        self.loop_count = n;
        self
    }

    /// Sets `unrollCount` (§III-F).
    pub fn unroll_count(&mut self, n: usize) -> &mut NanoBench {
        self.unroll_count = n.max(1);
        self
    }

    /// Sets the number of measured runs (Algorithm 2).
    pub fn n_measurements(&mut self, n: usize) -> &mut NanoBench {
        self.n_measurements = n.max(1);
        self
    }

    /// Sets the number of discarded warm-up runs (§III-H).
    pub fn warm_up_count(&mut self, n: usize) -> &mut NanoBench {
        self.warm_up_count = n;
        self
    }

    /// Sets the aggregate function (§III-C).
    pub fn aggregate(&mut self, agg: Aggregate) -> &mut NanoBench {
        self.aggregate = agg;
        self
    }

    /// Enables noMem mode: counter values are kept in registers R8–R13
    /// (§III-I). The microbenchmark must not modify those registers, nor
    /// RAX/RCX/RDX.
    pub fn no_mem(&mut self, on: bool) -> &mut NanoBench {
        self.no_mem = on;
        self
    }

    /// Uses a `localUnrollCount` of 0 for the baseline run instead of
    /// `2 * unrollCount` (the option described at the end of §III-C).
    pub fn basic_mode(&mut self, on: bool) -> &mut NanoBench {
        self.basic_mode = on;
        self
    }

    /// The underlying machine (e.g. for pre-writing data areas).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Read access to the machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The base address of the memory area register `reg` points into, if
    /// it is one of the dedicated arena registers (§III-G).
    pub fn arena_base(&self, reg: nanobench_x86::reg::Gpr) -> Option<u64> {
        ARENA_REGS
            .iter()
            .position(|r| *r == reg)
            .map(|i| self.arenas.arena_bases[i])
    }

    /// Runs the benchmark: generates both unroll versions (§III-C), runs
    /// them per Algorithm 2, multiplexes counters across rounds if the
    /// configuration has more events than programmable counters (§III-J),
    /// and reports per-repetition values.
    ///
    /// # Errors
    ///
    /// Propagates CPU faults (e.g. privileged instructions in user mode)
    /// and configuration errors.
    pub fn run(&mut self) -> Result<BenchmarkResult, NbError> {
        let denom = (self.loop_count.max(1) as f64) * (self.unroll_count as f64);
        let n_prog = self.machine.pmu().n_programmable();
        let per_round = if self.no_mem {
            NO_MEM_PROG_PER_ROUND.min(n_prog)
        } else {
            n_prog
        };

        let chunks: Vec<Vec<PerfEvent>> = if self.events.is_empty() {
            vec![Vec::new()]
        } else {
            self.events
                .chunks(per_round)
                .map(<[PerfEvent]>::to_vec)
                .collect()
        };

        let mut fixed_values = [0.0f64; 3];
        let mut prog_entries: Vec<(String, f64)> = Vec::new();

        for (round, chunk) in chunks.iter().enumerate() {
            for i in 0..n_prog {
                let sel = chunk.get(i).map(|e| e.code);
                self.machine.pmu_mut().configure(i, sel);
            }
            let mut selectors: Vec<u32> = (0..3).map(|i| (1 << 30) | i).collect();
            selectors.extend((0..chunk.len()).map(|i| i as u32));

            let (unroll_a, unroll_b) = if self.basic_mode {
                (0, self.unroll_count)
            } else {
                (self.unroll_count, 2 * self.unroll_count)
            };
            let agg_a = self.measure_version(unroll_a, &selectors)?;
            let agg_b = self.measure_version(unroll_b, &selectors)?;

            for (slot, name_value) in agg_b
                .iter()
                .zip(agg_a.iter())
                .enumerate()
                .map(|(slot, (b, a))| (slot, (b - a) / denom))
            {
                let (slot, value) = (slot, name_value);
                if slot < 3 {
                    if round == 0 {
                        fixed_values[slot] = value;
                    }
                } else {
                    let event = &chunk[slot - 3];
                    prog_entries.push((event.name.clone(), value));
                }
            }
        }

        let mut entries = Vec::with_capacity(3 + prog_entries.len());
        for (i, name) in FIXED_COUNTER_NAMES.iter().enumerate() {
            entries.push(((*name).to_string(), fixed_values[i]));
        }
        entries.extend(prog_entries);
        Ok(BenchmarkResult::new(entries))
    }

    fn measure_version(
        &mut self,
        local_unroll: usize,
        selectors: &[u32],
    ) -> Result<Vec<f64>, NbError> {
        let request = CodegenRequest {
            init: &self.init,
            code: &self.code,
            local_unroll,
            loop_count: self.loop_count,
            selectors,
            no_mem: self.no_mem,
            arenas: self.arenas,
        };
        let generated = codegen::generate(&request);
        measure(
            &mut self.machine,
            &generated,
            &self.arenas,
            self.warm_up_count,
            self.n_measurements,
            self.aggregate,
        )
    }
}

/// Deterministic default machine seed ("NB").
const NB_SEED: u64 = 0x4E42;
