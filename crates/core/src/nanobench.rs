//! The nanoBench tool: a builder API over the simulated machine.
//!
//! Mirrors the workflow of §III: supply a microbenchmark (`-asm` /
//! `-asm_init`, or raw machine code), a performance-counter configuration
//! (§III-J), loop/unroll counts (§III-F), warm-up and measurement counts
//! (§III-C/H), and run. Counter multiplexing, overhead removal by running
//! two unroll versions (§III-C), and the noMem register mode (§III-I) are
//! handled automatically.
//!
//! `NanoBench` is a thin compatibility facade over the reusable
//! [`Session`] / [`BenchSpec`] split: it bundles one session with one spec
//! so the original one-shot builder workflow (and the shell-style option
//! parser in [`crate::shell`]) keeps working unchanged. Campaign-shaped
//! callers should use [`Session`] and [`crate::Campaign`] directly and
//! amortize the machine construction.

use crate::error::NbError;
use crate::result::BenchmarkResult;
use crate::runner::Aggregate;
use crate::session::{BenchSpec, LintGate, Session};
use nanobench_analysis::Diagnostic;
use nanobench_machine::Machine;
use nanobench_pmu::PerfEvent;
use nanobench_uarch::port::MicroArch;
use nanobench_x86::inst::Instruction;

/// The nanoBench benchmark runner: one [`Session`] plus one [`BenchSpec`].
///
/// # Examples
///
/// The §III-A example — measuring the L1 data cache latency:
///
/// ```
/// use nanobench_core::NanoBench;
/// use nanobench_uarch::port::MicroArch;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nb = NanoBench::kernel(MicroArch::Skylake);
/// let result = nb
///     .asm("mov R14, [R14]")?
///     .asm_init("mov [R14], R14")?
///     .config_str(nanobench_pmu::config::cfg_example())?
///     .unroll_count(100)
///     .warm_up_count(1)
///     .run()?;
/// assert_eq!(result.core_cycles(), Some(4.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NanoBench {
    session: Session,
    spec: BenchSpec,
}

impl NanoBench {
    /// Creates a runner over an existing machine, allocating the dedicated
    /// memory areas of §III-G.
    pub fn with_machine(machine: Machine) -> NanoBench {
        NanoBench {
            session: Session::with_machine(machine),
            spec: BenchSpec::new(),
        }
    }

    /// The kernel-space version (`kernel-nanoBench.sh`, §III-D).
    pub fn kernel(uarch: MicroArch) -> NanoBench {
        NanoBench {
            session: Session::kernel(uarch),
            spec: BenchSpec::new(),
        }
    }

    /// The user-space version (`nanoBench.sh`).
    pub fn user(uarch: MicroArch) -> NanoBench {
        NanoBench {
            session: Session::user(uarch),
            spec: BenchSpec::new(),
        }
    }

    /// Sets the main part of the microbenchmark from Intel-syntax assembly.
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Asm`] on parse failure.
    pub fn asm(&mut self, text: &str) -> Result<&mut NanoBench, NbError> {
        self.spec.asm(text)?;
        Ok(self)
    }

    /// Sets the initialization part (`-asm_init`, not measured).
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Asm`] on parse failure.
    pub fn asm_init(&mut self, text: &str) -> Result<&mut NanoBench, NbError> {
        self.spec.asm_init(text)?;
        Ok(self)
    }

    /// Sets the main part from raw x86 machine code (§III-E). Magic
    /// pause/resume byte sequences (§III-I) are recognized.
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Decode`] for undecodable bytes.
    pub fn code_bytes(&mut self, bytes: &[u8]) -> Result<&mut NanoBench, NbError> {
        self.spec.code_bytes(bytes)?;
        Ok(self)
    }

    /// Sets the main part directly from instructions.
    pub fn code(&mut self, code: Vec<Instruction>) -> &mut NanoBench {
        self.spec.code(code);
        self
    }

    /// Sets the init part directly from instructions.
    pub fn init(&mut self, init: Vec<Instruction>) -> &mut NanoBench {
        self.spec.init(init);
        self
    }

    /// Parses a performance-counter configuration (§III-J).
    ///
    /// # Errors
    ///
    /// Returns [`NbError::Config`] on parse failure.
    pub fn config_str(&mut self, text: &str) -> Result<&mut NanoBench, NbError> {
        self.spec.config_str(text)?;
        Ok(self)
    }

    /// Sets the events directly.
    pub fn events(&mut self, events: Vec<PerfEvent>) -> &mut NanoBench {
        self.spec.events(events);
        self
    }

    /// Sets `loopCount` (§III-F).
    pub fn loop_count(&mut self, n: u64) -> &mut NanoBench {
        self.spec.loop_count(n);
        self
    }

    /// Sets `unrollCount` (§III-F).
    pub fn unroll_count(&mut self, n: usize) -> &mut NanoBench {
        self.spec.unroll_count(n);
        self
    }

    /// Sets the number of measured runs (Algorithm 2).
    pub fn n_measurements(&mut self, n: usize) -> &mut NanoBench {
        self.spec.n_measurements(n);
        self
    }

    /// Sets the number of discarded warm-up runs (§III-H).
    pub fn warm_up_count(&mut self, n: usize) -> &mut NanoBench {
        self.spec.warm_up_count(n);
        self
    }

    /// Sets the aggregate function (§III-C).
    pub fn aggregate(&mut self, agg: Aggregate) -> &mut NanoBench {
        self.spec.aggregate(agg);
        self
    }

    /// Enables noMem mode: counter values are kept in registers R8–R13
    /// (§III-I). The microbenchmark must not modify those registers, nor
    /// RAX/RCX/RDX.
    pub fn no_mem(&mut self, on: bool) -> &mut NanoBench {
        self.spec.no_mem(on);
        self
    }

    /// Uses a `localUnrollCount` of 0 for the baseline run instead of
    /// `2 * unrollCount` (the option described at the end of §III-C).
    pub fn basic_mode(&mut self, on: bool) -> &mut NanoBench {
        self.spec.basic_mode(on);
        self
    }

    /// The underlying machine (e.g. for pre-writing data areas).
    pub fn machine_mut(&mut self) -> &mut Machine {
        self.session.machine_mut()
    }

    /// Read access to the machine.
    pub fn machine(&self) -> &Machine {
        self.session.machine()
    }

    /// The underlying reusable session.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// The current benchmark specification.
    pub fn spec(&self) -> &BenchSpec {
        &self.spec
    }

    /// The base address of the memory area register `reg` points into, if
    /// it is one of the dedicated arena registers (§III-G).
    pub fn arena_base(&self, reg: nanobench_x86::reg::Gpr) -> Option<u64> {
        self.session.arena_base(reg)
    }

    /// Decoded-plan cache statistics of the underlying session:
    /// `(hits, misses)`. Repeated [`NanoBench::run`] calls on an unchanged
    /// benchmark replay cached plans instead of re-decoding.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.session.plan_cache_stats()
    }

    /// Runs the static analyzer over the configured benchmark under this
    /// runner's session environment; see [`Session::analyze`].
    pub fn analyze(&self) -> Vec<Diagnostic> {
        self.session.analyze(&self.spec)
    }

    /// Sets what [`NanoBench::run`] does with the analyzer's verdict
    /// (default [`LintGate::Off`]; the shell's `-lint` option sets
    /// [`LintGate::Deny`]).
    pub fn lint(&mut self, gate: LintGate) -> &mut NanoBench {
        self.session.lint(gate);
        self
    }

    /// Runs the configured benchmark; see [`Session::run`].
    ///
    /// # Errors
    ///
    /// Propagates CPU faults (e.g. privileged instructions in user mode)
    /// and configuration errors; with a [`LintGate::Deny`] gate, specs
    /// the analyzer rejects fail with [`NbError::Lint`] before running.
    pub fn run(&mut self) -> Result<BenchmarkResult, NbError> {
        self.session.run(&self.spec)
    }
}
