//! §III-E path equivalence: a microbenchmark submitted as raw machine-code
//! bytes must produce a `BenchmarkResult` bit-identical to the same
//! microbenchmark submitted as assembly, over the *entire* round-trip
//! corpus — every xmm/ymm line included. This is the end-to-end acceptance
//! check for the byte-level encoder: text → instructions → bytes →
//! instructions → Algorithm 1 codegen → measurement.

use nanobench_core::{BenchSpec, NbError, Session};
use nanobench_uarch::port::MicroArch;
use nanobench_x86::asm::parse_asm;
use nanobench_x86::corpus::ROUNDTRIP_CORPUS;
use nanobench_x86::encode::{encode_program, MAGIC_PAUSE, MAGIC_RESUME};

fn run_one(code_as_bytes: bool, text: &str) -> Result<nanobench_core::BenchmarkResult, NbError> {
    let mut session = Session::kernel(MicroArch::Skylake);
    let mut spec = BenchSpec::new();
    if code_as_bytes {
        let (bytes, _) = encode_program(&parse_asm(text).map_err(NbError::Asm)?)?;
        spec.code_bytes(&bytes)?;
    } else {
        spec.asm(text)?;
    }
    spec.unroll_count(10).warm_up_count(1).n_measurements(2);
    session.run(&spec)
}

#[test]
fn asm_and_code_byte_paths_agree_on_the_full_corpus() {
    for text in ROUNDTRIP_CORPUS {
        let via_asm = run_one(false, text);
        let via_bytes = run_one(true, text);
        assert_eq!(
            via_asm, via_bytes,
            "`{text}`: the asm path and the code-bytes path must agree"
        );
        // Every vector line must actually run — not just fail identically.
        if text.contains("xmm") || text.contains("ymm") || text.starts_with('v') {
            assert!(via_asm.is_ok(), "`{text}` must run: {via_asm:?}");
        }
    }
}

#[test]
fn vector_code_bytes_honour_magic_pause_resume() {
    // §III-I over the byte path with vector code: instructions between the
    // magic pause/resume sequences must not be counted, and the vector
    // instructions outside them must be.
    let mut bytes = Vec::new();
    let counted = parse_asm("vaddps ymm0, ymm1, ymm2").unwrap();
    bytes.extend_from_slice(&encode_program(&counted).unwrap().0);
    bytes.extend_from_slice(&MAGIC_PAUSE);
    let paused = parse_asm(&"mulps xmm3, xmm4\n".repeat(10)).unwrap();
    bytes.extend_from_slice(&encode_program(&paused).unwrap().0);
    bytes.extend_from_slice(&MAGIC_RESUME);
    let counted_too = parse_asm("vfmadd231ps ymm5, ymm6, ymm7").unwrap();
    bytes.extend_from_slice(&encode_program(&counted_too).unwrap().0);

    let mut session = Session::kernel(MicroArch::Skylake);
    let mut spec = BenchSpec::new();
    spec.code_bytes(&bytes)
        .unwrap()
        .no_mem(true)
        .unroll_count(10)
        .warm_up_count(1);
    let out = session.run(&spec).unwrap();
    let retired = out.get("Instructions retired").unwrap();
    assert!(
        (retired - 2.0).abs() < 0.2,
        "only the 2 unpaused vector instructions count, got {retired}"
    );
}
