//! Determinism suite for the Session/Campaign layer.
//!
//! The campaign contract: job *j* always runs on a session seeded
//! `base_seed ^ j`, so results are byte-identical for any worker count and
//! identical to sequential fresh-session runs. The machine contract:
//! `Machine::reset()` + rerun equals a fresh machine making the same
//! allocation calls — in kernel *and* user mode, where page mappings and
//! the interrupt stream are random-seeded.

use nanobench_core::{BenchSpec, Campaign, Session, NB_SEED};
use nanobench_machine::{Machine, Mode};
use nanobench_uarch::port::MicroArch;
use nanobench_x86::asm::parse_asm;
use nanobench_x86::reg::Gpr;

/// A mixed batch the shape of a real campaign: ALU chains, loads/stores
/// against the arenas, a looped benchmark, and different aggregates.
fn campaign_specs() -> Vec<BenchSpec> {
    let mut specs = Vec::new();
    for asm in [
        "add rax, rax",
        "imul rax, rax",
        "mov r14, [r14]",
        "nop",
        "xor rax, rax; add rbx, rbx",
    ] {
        let mut spec = BenchSpec::new();
        spec.asm(asm)
            .unwrap()
            .config_str("0E.01 UOPS_ISSUED.ANY\nD1.01 MEM_LOAD_RETIRED.L1_HIT")
            .unwrap()
            .unroll_count(60)
            .warm_up_count(2)
            .n_measurements(5);
        if asm.starts_with("mov r14") {
            spec.asm_init("mov [r14], r14").unwrap();
        }
        specs.push(spec);
    }
    let mut looped = BenchSpec::new();
    looped
        .asm("add rcx, 1")
        .unwrap()
        .unroll_count(10)
        .loop_count(50)
        .warm_up_count(1)
        .n_measurements(4)
        .aggregate(nanobench_core::Aggregate::TrimmedMean);
    specs.push(looped);
    specs
}

#[test]
fn campaign_worker_count_does_not_change_results() {
    let specs = campaign_specs();
    for mode in ["kernel", "user"] {
        let campaign = |workers| {
            let c = if mode == "kernel" {
                Campaign::kernel(MicroArch::Skylake)
            } else {
                Campaign::user(MicroArch::Skylake)
            };
            c.workers(workers).run_all(&specs).unwrap()
        };
        let sequential = campaign(1);
        for workers in [2usize, 8] {
            assert_eq!(
                campaign(workers),
                sequential,
                "{mode}: {workers} workers vs sequential"
            );
        }
        // The sequential path itself must equal per-job fresh sessions.
        for (j, spec) in specs.iter().enumerate() {
            let machine_mode = if mode == "kernel" {
                Mode::Kernel
            } else {
                Mode::User
            };
            let mut fresh =
                Session::with_seed(MicroArch::Skylake, machine_mode, NB_SEED ^ j as u64);
            assert_eq!(sequential[j], fresh.run(spec).unwrap(), "{mode}: job {j}");
        }
    }
}

#[test]
fn store_backed_campaign_is_bit_identical_for_any_worker_count() {
    // The store pin of the campaign contract: cold store-backed runs,
    // warm store-backed re-runs (fresh handle over the same log), and
    // store-less runs must all be bit-identical, for every worker count,
    // in both modes.
    let specs = campaign_specs();
    let path = std::env::temp_dir().join(format!("nbstore-det-{}", std::process::id()));
    for mode in ["kernel", "user"] {
        let _ = std::fs::remove_file(&path);
        let base = |workers: usize| {
            let c = if mode == "kernel" {
                Campaign::kernel(MicroArch::Skylake)
            } else {
                Campaign::user(MicroArch::Skylake)
            };
            c.workers(workers)
        };
        let cold_plain = base(1).run_all(&specs).unwrap();
        for workers in [1usize, 2, 8] {
            let campaign = base(workers).with_store(&path).unwrap();
            assert_eq!(
                campaign.run_all(&specs).unwrap(),
                cold_plain,
                "{mode}: store-backed, {workers} workers"
            );
        }
        // After the first pass every job is stored: a fresh handle must
        // answer all jobs from disk and still match bit-exactly.
        let warm = base(2).with_store(&path).unwrap();
        assert_eq!(warm.run_all(&specs).unwrap(), cold_plain, "{mode}: warm");
        let stats = warm.store_stats().unwrap();
        assert_eq!(stats.hits as usize, specs.len(), "{mode}: all jobs hit");
        assert_eq!(stats.inserts, 0, "{mode}: nothing recomputed");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn interrupted_campaign_resumes_from_partial_store() {
    // Simulate an interrupted campaign: only a subset of jobs made it
    // into the store. A re-run must compute exactly the missing jobs and
    // still produce bit-identical output.
    let specs = campaign_specs();
    let path = std::env::temp_dir().join(format!("nbstore-resume-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cold = Campaign::kernel(MicroArch::Skylake)
        .workers(2)
        .run_all(&specs)
        .unwrap();

    // First pass over a prefix of the batch, as if the campaign died
    // after three jobs (job seeds are position-based, so a prefix of the
    // spec list stores the same records the full batch would).
    let partial = Campaign::kernel(MicroArch::Skylake)
        .workers(1)
        .with_store(&path)
        .unwrap();
    let prefix = partial.run_all(&specs[..3]).unwrap();
    assert_eq!(prefix, cold[..3], "prefix results match the full cold run");
    drop(partial);

    let resumed = Campaign::kernel(MicroArch::Skylake)
        .workers(2)
        .with_store(&path)
        .unwrap();
    assert_eq!(resumed.run_all(&specs).unwrap(), cold, "resumed output");
    let stats = resumed.store_stats().unwrap();
    assert_eq!(stats.hits, 3, "the three stored jobs are not recomputed");
    assert_eq!(
        stats.inserts as usize,
        specs.len() - 3,
        "only the missing jobs are computed and published"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn campaign_base_seed_flows_into_jobs() {
    let specs = campaign_specs();
    let seeded = Campaign::kernel(MicroArch::Skylake)
        .base_seed(0xFEED)
        .workers(2)
        .run_all(&specs)
        .unwrap();
    for (j, spec) in specs.iter().enumerate() {
        let mut fresh = Session::with_seed(MicroArch::Skylake, Mode::Kernel, 0xFEED ^ j as u64);
        assert_eq!(seeded[j], fresh.run(spec).unwrap(), "job {j}");
    }
}

/// Runs a fixed little workload on a machine and digests everything
/// observable: run stats, final registers, readback of the touched memory.
fn drive(machine: &mut Machine, base: u64) -> Vec<u64> {
    let mut observed = Vec::new();
    machine.state_mut().set_gpr(Gpr::R14, base);
    let program = parse_asm(
        "mov [r14], r14; mov rax, [r14]; add rax, 5; mov [r14+64], rax; \
         mov rcx, 3; add rbx, rcx; imul rbx, rcx",
    )
    .unwrap();
    for _ in 0..3 {
        let stats = machine.run(&program).unwrap();
        observed.push(stats.instructions);
        observed.push(stats.uops);
        observed.push(stats.cycles);
        observed.push(stats.end_cycle);
    }
    observed.push(machine.state().gpr(Gpr::Rax));
    observed.push(machine.state().gpr(Gpr::Rbx));
    observed.push(machine.read_mem(base + 64, 8).unwrap());
    observed.push(machine.cycle());
    let stats = machine.hierarchy().l1_stats();
    observed.extend([stats.hits, stats.misses, stats.evictions]);
    observed
}

#[test]
fn machine_reset_equals_fresh_machine_kernel_and_user() {
    for mode in [Mode::Kernel, Mode::User] {
        let mut machine = Machine::new(MicroArch::Skylake, mode, 77);
        let base = machine.alloc_region(1 << 16);
        let first = drive(&mut machine, base);

        // Reset + rerun on the same machine must replay bit-identically.
        machine.reset();
        assert_eq!(drive(&mut machine, base), first, "{mode:?}: reset + rerun");

        // And equal a fresh machine making the same allocation calls.
        let mut fresh = Machine::new(MicroArch::Skylake, mode, 77);
        let fresh_base = fresh.alloc_region(1 << 16);
        assert_eq!(fresh_base, base, "{mode:?}: allocation addresses");
        if mode == Mode::User {
            // The frame scattering must replay identically too.
            for page in 0..16u64 {
                assert_eq!(
                    machine.translate(base + page * 4096),
                    fresh.translate(base + page * 4096),
                    "{mode:?}: page {page}"
                );
            }
        }
        assert_eq!(drive(&mut fresh, fresh_base), first, "{mode:?}: fresh");
    }
}

#[test]
fn machine_reset_with_seed_matches_fresh_seed() {
    // Resetting to a *different* seed must equal a fresh machine built
    // with that seed (same allocation calls), including user-mode page
    // scattering and the interrupt stream.
    for mode in [Mode::Kernel, Mode::User] {
        let mut machine = Machine::new(MicroArch::Skylake, mode, 77);
        let base = machine.alloc_region(1 << 16);
        let _ = drive(&mut machine, base);
        machine.reset_with_seed(1234);

        let mut fresh = Machine::new(MicroArch::Skylake, mode, 1234);
        let fresh_base = fresh.alloc_region(1 << 16);
        assert_eq!(fresh_base, base);
        assert_eq!(
            drive(&mut machine, base),
            drive(&mut fresh, fresh_base),
            "{mode:?}"
        );
    }
}

/// An e10-shaped batch: measured programs on core 0 with co-runners
/// looping on cores 1..3 (same-line stores and a streaming walk).
fn multicore_specs() -> Vec<BenchSpec> {
    // Every session allocates identically, so the R14 arena sits at the
    // same address in every campaign worker — probe it once.
    let arena = Session::kernel(MicroArch::Skylake)
        .arena_base(Gpr::R14)
        .unwrap();
    let mut specs = Vec::new();
    for (asm, init) in [
        ("mov r14, [r14]", Some("mov [r14], r14")),
        ("mov rax, [r14]", Some("mov [r14], r14")),
        ("add rax, rax", None),
    ] {
        let mut spec = BenchSpec::new();
        spec.asm(asm)
            .unwrap()
            .unroll_count(40)
            .loop_count(8)
            .warm_up_count(1)
            .n_measurements(3);
        if let Some(init) = init {
            spec.asm_init(init).unwrap();
        }
        // Co-runner 1: false-sharing stores into the line the measured
        // code self-chases. Co-runner 2: a short streaming loop.
        spec.corunner_asm(&format!("mov [{0:#x}], rbx; mov [{0:#x}], rbx", arena + 8))
            .unwrap();
        spec.corunner_asm(
            "mov rbx, 0x60000000; mov rax, [rbx]; add rbx, 64; \
             mov rax, [rbx]; add rbx, 64; mov rax, [rbx]",
        )
        .unwrap();
        specs.push(spec);
    }
    specs
}

#[test]
fn multicore_campaign_is_bit_identical_across_worker_counts() {
    let specs = multicore_specs();
    let campaign = |workers| {
        Campaign::kernel(MicroArch::Skylake)
            .cores(3)
            .workers(workers)
            .run_all(&specs)
            .unwrap()
    };
    let sequential = campaign(1);
    for workers in [2usize, 8] {
        assert_eq!(campaign(workers), sequential, "{workers} workers");
    }
    // And equal to per-job fresh multi-core sessions.
    for (j, spec) in specs.iter().enumerate() {
        let mut fresh =
            Session::with_seed_cores(MicroArch::Skylake, Mode::Kernel, NB_SEED ^ j as u64, 3);
        assert_eq!(sequential[j], fresh.run(spec).unwrap(), "job {j}");
    }
}

#[test]
fn multicore_machine_reset_equals_fresh_machine() {
    // Interfered runs must replay bit-identically after Machine::reset,
    // and equal a fresh machine making the same calls.
    let drive_interfered = |machine: &mut Machine, base: u64| -> Vec<u64> {
        machine.state_mut().set_gpr(Gpr::R14, base);
        machine.run(&parse_asm("mov [r14], r14").unwrap()).unwrap();
        let chase = machine.decode(&parse_asm(&"mov r14, [r14]; ".repeat(60)).unwrap());
        let store =
            machine.decode(&parse_asm(&format!("mov [{:#x}], rax", base + 8).repeat(1)).unwrap());
        let stream = machine.decode(
            &parse_asm("mov rbx, 0x60000000; mov rax, [rbx]; add rbx, 64; mov rax, [rbx]").unwrap(),
        );
        let mut observed = Vec::new();
        for _ in 0..3 {
            let stats = machine
                .run_plan_with_corunners(&chase, &[&store, &stream])
                .unwrap();
            observed.extend([
                stats.instructions,
                stats.uops,
                stats.cycles,
                stats.end_cycle,
            ]);
        }
        observed.push(machine.cycle_of(1));
        observed.push(machine.cycle_of(2));
        observed.push(machine.hierarchy().invalidations());
        observed.extend(machine.hierarchy().snoop_hits().iter().copied());
        let l1 = machine.hierarchy().l1_stats_of(1);
        observed.extend([l1.hits, l1.misses]);
        observed
    };

    let mut machine = Machine::with_cores(MicroArch::Skylake, Mode::Kernel, 77, 3);
    let base = machine.alloc_region(1 << 16);
    let first = drive_interfered(&mut machine, base);
    assert!(
        *first.last().unwrap() > 0 || first.iter().any(|v| *v > 0),
        "the interfered run must actually run"
    );

    machine.reset();
    assert_eq!(
        drive_interfered(&mut machine, base),
        first,
        "reset + rerun must replay the interfered workload bit-identically"
    );

    let mut fresh = Machine::with_cores(MicroArch::Skylake, Mode::Kernel, 77, 3);
    let fresh_base = fresh.alloc_region(1 << 16);
    assert_eq!(fresh_base, base);
    assert_eq!(drive_interfered(&mut fresh, fresh_base), first, "fresh");
}

#[test]
fn session_reset_replays_noisy_user_benchmarks() {
    // User mode injects interrupts from the machine's random stream; a
    // reset must rewind that stream so even *noisy* results replay.
    let mut spec = BenchSpec::new();
    spec.asm("add rax, rax")
        .unwrap()
        .unroll_count(50)
        .loop_count(800)
        .n_measurements(6);
    let mut session = Session::user(MicroArch::Skylake);
    let first = session.run(&spec).unwrap();
    session.reset();
    assert_eq!(session.run(&spec).unwrap(), first);
}
