//! The session-level plan cache: repeated runs of the same generated
//! program skip decode entirely, and cached replay is bit-identical to
//! the first (decoding) run.

use nanobench_core::{BenchSpec, Session};
use nanobench_uarch::port::MicroArch;

fn add_spec() -> BenchSpec {
    let mut spec = BenchSpec::new();
    spec.asm("add rax, rax")
        .unwrap()
        .config_str("0E.01 UOPS_ISSUED.ANY")
        .unwrap()
        .unroll_count(50)
        .warm_up_count(3)
        .n_measurements(5);
    spec
}

#[test]
fn identical_specs_hit_the_cache() {
    let mut session = Session::kernel(MicroArch::Skylake);
    let spec = add_spec();

    let first = session.run(&spec).unwrap();
    let (hits, misses) = session.plan_cache_stats();
    // One round, two unroll versions: two distinct generated programs,
    // each decoded exactly once — the 8 runs per version (3 warm-up + 5
    // measured) all replay the same plan.
    assert_eq!((hits, misses), (0, 2));

    session.reset();
    let second = session.run(&spec).unwrap();
    let (hits, misses) = session.plan_cache_stats();
    // The re-run generates byte-identical programs: all hits, no decode.
    assert_eq!((hits, misses), (2, 2));
    assert_eq!(first, second, "cached-plan replay must be bit-identical");
}

#[test]
fn distinct_programs_miss_and_coexist() {
    let mut session = Session::kernel(MicroArch::Skylake);
    let add = add_spec();
    let mut imul = add_spec();
    imul.asm("imul rax, rax").unwrap();

    session.run(&add).unwrap();
    session.reset();
    session.run(&imul).unwrap();
    assert_eq!(session.plan_cache_stats(), (0, 4));

    // Both specs' plans are cached side by side; re-running either is
    // pure hits.
    session.reset();
    session.run(&add).unwrap();
    session.reset();
    session.run(&imul).unwrap();
    assert_eq!(session.plan_cache_stats(), (4, 4));
}

#[test]
fn user_mode_caches_plans_too() {
    let mut session = Session::user(MicroArch::Skylake);
    let spec = add_spec();
    let first = session.run(&spec).unwrap();
    session.reset();
    let second = session.run(&spec).unwrap();
    assert_eq!(session.plan_cache_stats(), (2, 2));
    assert_eq!(first, second);
}

#[test]
fn cap_eviction_is_lru_and_survives_reset() {
    // Each spec generates two distinct programs (the two unroll versions
    // of §III-C), so 40 specs push 80 plans through the cap-64 cache.
    let spec_for = |i: usize| {
        let mut spec = add_spec();
        spec.asm(&format!("add rax, {}", i + 1))
            .unwrap()
            .warm_up_count(0)
            .n_measurements(1);
        spec
    };
    let mut session = Session::kernel(MicroArch::Skylake);
    for i in 0..40 {
        session.run(&spec_for(i)).unwrap();
        session.reset();
    }
    assert_eq!(session.plan_cache_len(), 64, "cache must stay at the cap");
    assert_eq!(session.plan_cache_stats(), (0, 80));

    // LRU eviction: the 16 oldest plans — specs 0..8's — are gone, the
    // newest are still cached. Re-running the newest spec is pure hits...
    session.run(&spec_for(39)).unwrap();
    assert_eq!(session.plan_cache_stats(), (2, 80));

    // ...while the oldest re-decodes both versions (and evicts the then
    // least-recently-used entries, keeping the cache at the cap).
    session.reset();
    session.run(&spec_for(0)).unwrap();
    assert_eq!(session.plan_cache_stats(), (2, 82));
    assert_eq!(session.plan_cache_len(), 64);

    // The same fill sequence on a fresh session evicts identically: the
    // same survivors hit, the same victims miss (deterministic order).
    let mut replay = Session::kernel(MicroArch::Skylake);
    for i in 0..40 {
        replay.run(&spec_for(i)).unwrap();
        replay.reset();
    }
    replay.run(&spec_for(39)).unwrap();
    replay.reset();
    replay.run(&spec_for(0)).unwrap();
    assert_eq!(replay.plan_cache_stats(), session.plan_cache_stats());

    // Stats and cached plans survive reset(): a reset then re-run of a
    // cached spec only adds hits, never misses.
    session.reset();
    let before = session.plan_cache_stats();
    session.run(&spec_for(0)).unwrap();
    let after = session.plan_cache_stats();
    assert_eq!(after.1, before.1, "reset must not drop cached plans");
    assert_eq!(after.0, before.0 + 2);
}

#[test]
fn multiplexed_rounds_reuse_per_round_plans() {
    // 6 events on 4 programmable counters: two rounds, each generating
    // its own pair of unroll versions (different selectors → different
    // programs), so one run decodes 4 programs; the second run hits all.
    let mut spec = add_spec();
    spec.config_str("0E.01 UOPS_ISSUED.ANY\nA1.01 P0\nA1.02 P1\nA1.04 P2\nA1.08 P3\nA1.10 P4")
        .unwrap();
    let mut session = Session::kernel(MicroArch::Skylake);
    session.run(&spec).unwrap();
    let (_, misses) = session.plan_cache_stats();
    session.reset();
    session.run(&spec).unwrap();
    let (hits, misses_after) = session.plan_cache_stats();
    assert_eq!(misses_after, misses, "second run must not decode");
    assert_eq!(hits, misses);
}
