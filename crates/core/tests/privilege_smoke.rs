//! Crate-level smoke test: the kernel/user privilege split of §III-D, as a
//! standalone check so `nanobench-core` is testable without the workspace
//! façade (mirrors `tests/integration.rs` at the repo root).

use nanobench_core::shell::{kernel_nanobench, user_nanobench};
use nanobench_core::NbError;
use nanobench_uarch::port::MicroArch;

/// Privileged instructions the paper's kernel version exists for: they must
/// run in the kernel shell and fault in the user shell.
const PRIVILEGED: &[&str] = &["wbinvd", "rdmsr", "wrmsr"];

#[test]
fn privileged_instructions_need_the_kernel_version() {
    for asm in PRIVILEGED {
        // RDMSR/WRMSR dereference RCX as the MSR number; 0x1A4 (prefetcher
        // control) is valid in both directions.
        let opts =
            format!(r#"-asm "mov rcx, 0x1A4; mov rax, 0; mov rdx, 0; {asm}" -n_measurements 2"#);
        assert!(
            kernel_nanobench(MicroArch::Skylake, &opts).is_ok(),
            "`{asm}` must run in the kernel shell"
        );
        let err = user_nanobench(MicroArch::Skylake, &opts)
            .expect_err(&format!("`{asm}` must fault in the user shell"));
        assert!(
            matches!(err, NbError::Fault(_)),
            "`{asm}` must fail with a CPU fault, got: {err}"
        );
    }
}

#[test]
fn unprivileged_code_runs_in_both_shells() {
    let opts = r#"-asm "add rax, rax" -unroll_count 200 -warm_up_count 2 -n_measurements 3"#;
    let k = kernel_nanobench(MicroArch::Skylake, opts).expect("kernel shell runs");
    let u = user_nanobench(MicroArch::Skylake, opts).expect("user shell runs");
    // Both agree on the architectural result for a trivial ALU benchmark.
    assert_eq!(k.core_cycles(), Some(1.0));
    let uc = u.core_cycles().expect("user run reports core cycles");
    assert!(
        (uc - 1.0).abs() < 0.1,
        "user-mode noise must be aggregated away, got {uc}"
    );
}
