//! Instructions: mnemonics plus operands.
//!
//! The mnemonic set covers everything nanoBench's own generated code uses
//! (moves, ALU, fences, counter reads, loop control), the privileged
//! instructions that motivate the kernel-space version (§III-D), and a broad
//! arithmetic/SSE/AVX tail for case study I (§V). Operand *forms* of a
//! mnemonic are distinguished by the operands themselves; the
//! microarchitectural descriptor tables in `nanobench-uarch` key on
//! mnemonic + form.

use crate::operand::Operand;
use std::fmt;

/// An instruction mnemonic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the variants are x86 mnemonics; rustdoc text would be noise
pub enum Mnemonic {
    // -- data movement ----------------------------------------------------
    Mov,
    Movzx,
    Movsx,
    Lea,
    Xchg,
    Push,
    Pop,
    Bswap,
    Cmovz,
    Cmovnz,
    Setz,
    Setnz,
    // -- integer ALU -------------------------------------------------------
    Add,
    Adc,
    Sub,
    Sbb,
    And,
    Or,
    Xor,
    Cmp,
    Test,
    Inc,
    Dec,
    Neg,
    Not,
    Imul,
    Mul,
    Idiv,
    Div,
    Shl,
    Shr,
    Sar,
    Rol,
    Ror,
    Popcnt,
    Lzcnt,
    Tzcnt,
    Bsf,
    Bsr,
    Crc32,
    Xadd,
    // -- control flow -------------------------------------------------------
    Jmp,
    Jz,
    Jnz,
    Jc,
    Jnc,
    Call,
    Ret,
    Nop,
    Pause,
    // -- fences / serialization ---------------------------------------------
    Lfence,
    Mfence,
    Sfence,
    Cpuid,
    // -- counters / timing ---------------------------------------------------
    Rdtsc,
    Rdtscp,
    Rdpmc,
    // -- privileged (kernel-space only, §III-D) -------------------------------
    Rdmsr,
    Wrmsr,
    Wbinvd,
    Invd,
    Invlpg,
    Cli,
    Sti,
    Hlt,
    Swapgs,
    MovCr3,
    // -- cache control (unprivileged) -----------------------------------------
    Clflush,
    Clflushopt,
    Prefetcht0,
    Prefetcht1,
    Prefetcht2,
    Prefetchnta,
    // -- x87 / scalar float (SSE scalar) --------------------------------------
    Addss,
    Addsd,
    Subss,
    Subsd,
    Mulss,
    Mulsd,
    Divss,
    Divsd,
    Sqrtss,
    Sqrtsd,
    Comiss,
    Comisd,
    Cvtsi2sd,
    Cvtsd2si,
    Cvtss2sd,
    Cvtsd2ss,
    // -- SSE/AVX packed float ---------------------------------------------------
    Movaps,
    Movups,
    Movapd,
    Movdqa,
    Movdqu,
    Movd,
    Movq,
    Addps,
    Addpd,
    Subps,
    Subpd,
    Mulps,
    Mulpd,
    Divps,
    Divpd,
    Sqrtps,
    Sqrtpd,
    Maxps,
    Minps,
    Andps,
    Orps,
    Xorps,
    Shufps,
    Blendps,
    Dpps,
    Haddps,
    Roundps,
    // -- SSE/AVX packed integer ---------------------------------------------------
    Paddb,
    Paddw,
    Paddd,
    Paddq,
    Psubb,
    Psubd,
    Psubq,
    Pmulld,
    Pmullw,
    Pmuludq,
    Pmaddwd,
    Pand,
    Por,
    Pxor,
    Pcmpeqb,
    Pcmpeqd,
    Pcmpgtd,
    Pshufb,
    Pshufd,
    Psllw,
    Pslld,
    Psllq,
    Punpcklbw,
    Punpckldq,
    Packsswb,
    Pmovmskb,
    Ptest,
    Pabsd,
    Pminsd,
    Pmaxsd,
    Phaddd,
    Psadbw,
    // -- AVX(2)/FMA/AVX-512 (VEX/EVEX-coded; modeled as distinct mnemonics) ----
    Vaddps,
    Vaddpd,
    Vmulps,
    Vmulpd,
    Vdivps,
    Vdivpd,
    Vsqrtps,
    Vfmadd132ps,
    Vfmadd213ps,
    Vfmadd231ps,
    Vfmadd231pd,
    Vpaddd,
    Vpaddq,
    Vpmulld,
    Vpand,
    Vpor,
    Vpxor,
    Vpermilps,
    Vperm2f128,
    Vbroadcastss,
    Vextractf128,
    Vinsertf128,
    Vzeroupper,
    Vzeroall,
    Vgatherdps,
    // -- crypto / misc ----------------------------------------------------------
    Aesenc,
    Aesenclast,
    Aesdec,
    Pclmulqdq,
    Sha256rnds2,
    Rdrand,
    Rdseed,
    // -- nanoBench pseudo-instructions (magic byte markers, §III-I) -------------
    /// Marker that pauses performance counting (replaced by counter-read code).
    NbPause,
    /// Marker that resumes performance counting.
    NbResume,
}

impl Mnemonic {
    /// Whether the instruction can only execute in kernel mode (CPL 0).
    ///
    /// Benchmarking such instructions is the headline capability of
    /// nanoBench's kernel-space version (§III-D of the paper).
    pub fn is_privileged(self) -> bool {
        matches!(
            self,
            Mnemonic::Rdmsr
                | Mnemonic::Wrmsr
                | Mnemonic::Wbinvd
                | Mnemonic::Invd
                | Mnemonic::Invlpg
                | Mnemonic::Cli
                | Mnemonic::Sti
                | Mnemonic::Hlt
                | Mnemonic::Swapgs
                | Mnemonic::MovCr3
        )
    }

    /// Whether this instruction serializes the instruction stream.
    ///
    /// `CPUID` is fully serializing; `LFENCE` has the weaker (but for
    /// measurement purposes stronger-ended, §IV-A1) dispatch-serializing
    /// property that is handled separately by the timing engine.
    pub fn is_serializing(self) -> bool {
        matches!(self, Mnemonic::Cpuid | Mnemonic::Wbinvd | Mnemonic::Invd)
    }

    /// Whether this is one of the SSE/AVX vector mnemonics — including the
    /// scalar-SSE tail, which also lives in the xmm register file (used for
    /// the AVX warm-up model, §III-H, and the opaque vector execution
    /// semantics).
    pub fn is_vector(self) -> bool {
        use Mnemonic::*;
        matches!(
            self,
            Addss
                | Addsd
                | Subss
                | Subsd
                | Mulss
                | Mulsd
                | Divss
                | Divsd
                | Sqrtss
                | Sqrtsd
                | Comiss
                | Comisd
                | Cvtsi2sd
                | Cvtsd2si
                | Cvtss2sd
                | Cvtsd2ss
                | Movaps
                | Movups
                | Movapd
                | Movdqa
                | Movdqu
                | Movd
                | Movq
                | Addps
                | Addpd
                | Subps
                | Subpd
                | Mulps
                | Mulpd
                | Divps
                | Divpd
                | Sqrtps
                | Sqrtpd
                | Maxps
                | Minps
                | Andps
                | Orps
                | Xorps
                | Shufps
                | Blendps
                | Dpps
                | Haddps
                | Roundps
                | Paddb
                | Paddw
                | Paddd
                | Paddq
                | Psubb
                | Psubd
                | Psubq
                | Pmulld
                | Pmullw
                | Pmuludq
                | Pmaddwd
                | Pand
                | Por
                | Pxor
                | Pcmpeqb
                | Pcmpeqd
                | Pcmpgtd
                | Pshufb
                | Pshufd
                | Psllw
                | Pslld
                | Psllq
                | Punpcklbw
                | Punpckldq
                | Packsswb
                | Pmovmskb
                | Ptest
                | Pabsd
                | Pminsd
                | Pmaxsd
                | Phaddd
                | Psadbw
                | Vaddps
                | Vaddpd
                | Vmulps
                | Vmulpd
                | Vdivps
                | Vdivpd
                | Vsqrtps
                | Vfmadd132ps
                | Vfmadd213ps
                | Vfmadd231ps
                | Vfmadd231pd
                | Vpaddd
                | Vpaddq
                | Vpmulld
                | Vpand
                | Vpor
                | Vpxor
                | Vpermilps
                | Vperm2f128
                | Vbroadcastss
                | Vextractf128
                | Vinsertf128
                | Vgatherdps
                | Aesenc
                | Aesenclast
                | Aesdec
                | Pclmulqdq
                | Sha256rnds2
        )
    }

    /// Whether this is an AVX (256-bit capable, VEX-coded) mnemonic, which
    /// is subject to vector-unit warm-up on some microarchitectures.
    pub fn is_avx(self) -> bool {
        use Mnemonic::*;
        matches!(
            self,
            Vaddps
                | Vaddpd
                | Vmulps
                | Vmulpd
                | Vdivps
                | Vdivpd
                | Vsqrtps
                | Vfmadd132ps
                | Vfmadd213ps
                | Vfmadd231ps
                | Vfmadd231pd
                | Vpaddd
                | Vpaddq
                | Vpmulld
                | Vpand
                | Vpor
                | Vpxor
                | Vpermilps
                | Vperm2f128
                | Vbroadcastss
                | Vextractf128
                | Vinsertf128
                | Vgatherdps
        )
    }

    /// Whether this is a conditional or unconditional branch.
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Mnemonic::Jmp
                | Mnemonic::Jz
                | Mnemonic::Jnz
                | Mnemonic::Jc
                | Mnemonic::Jnc
                | Mnemonic::Call
                | Mnemonic::Ret
        )
    }

    /// The canonical lower-case name used by the assembler.
    pub fn name(self) -> &'static str {
        // Kept in sync with `crate::asm::mnemonic_table` via the
        // `asm::tests::names_round_trip` test.
        crate::asm::mnemonic_name(self)
    }
}

impl fmt::Display for Mnemonic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A decoded instruction: a mnemonic plus up to four operands.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The operation.
    pub mnemonic: Mnemonic,
    /// The operands, in Intel order (destination first).
    pub operands: Vec<Operand>,
}

impl Instruction {
    /// Creates an instruction with no operands.
    pub fn new(mnemonic: Mnemonic) -> Instruction {
        Instruction {
            mnemonic,
            operands: Vec::new(),
        }
    }

    /// Creates an instruction with the given operands.
    pub fn with_operands(mnemonic: Mnemonic, operands: Vec<Operand>) -> Instruction {
        Instruction { mnemonic, operands }
    }

    /// Creates a one-operand instruction.
    pub fn unary(mnemonic: Mnemonic, op: impl Into<Operand>) -> Instruction {
        Instruction::with_operands(mnemonic, vec![op.into()])
    }

    /// Creates a two-operand instruction.
    pub fn binary(
        mnemonic: Mnemonic,
        dst: impl Into<Operand>,
        src: impl Into<Operand>,
    ) -> Instruction {
        Instruction::with_operands(mnemonic, vec![dst.into(), src.into()])
    }

    /// First operand (destination in Intel syntax), if present.
    pub fn dst(&self) -> Option<&Operand> {
        self.operands.first()
    }

    /// Second operand (source), if present.
    pub fn src(&self) -> Option<&Operand> {
        self.operands.get(1)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic)?;
        for (i, op) in self.operands.iter().enumerate() {
            if i == 0 {
                write!(f, " {op}")?;
            } else {
                write!(f, ", {op}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Gpr;

    #[test]
    fn privileged_set_matches_paper() {
        // §III-D: the kernel-space version exists to benchmark privileged
        // instructions; WBINVD in particular is used by cacheSeq (§VI-C).
        assert!(Mnemonic::Wbinvd.is_privileged());
        assert!(Mnemonic::Rdmsr.is_privileged());
        assert!(Mnemonic::Wrmsr.is_privileged());
        assert!(!Mnemonic::Rdpmc.is_privileged()); // readable in user space with CR4.PCE
        assert!(!Mnemonic::Rdtsc.is_privileged());
        assert!(!Mnemonic::Clflush.is_privileged());
    }

    #[test]
    fn display_forms() {
        let inst = Instruction::binary(Mnemonic::Mov, Gpr::R14, Operand::mem(Gpr::R14));
        assert_eq!(inst.to_string(), "mov r14, qword ptr [r14]");
        assert_eq!(Instruction::new(Mnemonic::Lfence).to_string(), "lfence");
    }

    #[test]
    fn branch_classification() {
        assert!(Mnemonic::Jnz.is_branch());
        assert!(Mnemonic::Ret.is_branch());
        assert!(!Mnemonic::Add.is_branch());
    }

    #[test]
    fn avx_is_vector() {
        assert!(Mnemonic::Vfmadd231ps.is_avx());
        assert!(Mnemonic::Vfmadd231ps.is_vector());
        assert!(Mnemonic::Addps.is_vector());
        assert!(!Mnemonic::Addps.is_avx());
    }
}
