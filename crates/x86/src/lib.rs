//! x86-64 machine model for the nanoBench reproduction.
//!
//! This crate provides the instruction-set layer that everything else builds
//! on: registers ([`reg`]), operands ([`operand`]), instructions ([`inst`]),
//! an Intel-syntax assembler ([`asm`]) matching the input format of
//! nanoBench's `-asm` options, and a byte-level machine-code encoder/decoder
//! ([`encode`]) for the binary-input path and the magic pause/resume byte
//! sequences of §III-I of the paper. The [`defuse`] module carries the
//! per-instruction read/write sets (registers, flags, vectors, memory)
//! that the execution engine and the static analyzer both consume.
//!
//! # Examples
//!
//! ```
//! use nanobench_x86::asm::parse_asm;
//! use nanobench_x86::encode::{encode_program, decode_program};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The L1-latency microbenchmark from §III-A of the paper.
//! let insts = parse_asm("mov R14, [R14]")?;
//! let (bytes, _offsets) = encode_program(&insts)?;
//! assert_eq!(bytes, [0x4D, 0x8B, 0x36]);
//! assert_eq!(decode_program(&bytes)?, insts);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod corpus;
pub mod defuse;
pub mod encode;
pub mod inst;
pub mod operand;
pub mod reg;

pub use asm::{parse_asm, ParseAsmError};
pub use encode::{decode_program, encode_program, DecodeError, EncodeError};
pub use inst::{Instruction, Mnemonic};
pub use operand::{MemRef, Operand};
pub use reg::{Flag, Gpr, GprPart, VecClass, VecReg, Width};
